//! # qcemu — High Performance Emulation of Quantum Circuits
//!
//! A full Rust reproduction of Häner, Steiger, Smelyanskiy & Troyer,
//! *High Performance Emulation of Quantum Circuits* (SC 2016,
//! arXiv:1604.06460): an operation-level **quantum computer emulator**, the
//! gate-level state-vector **simulator** it is benchmarked against, and
//! every substrate both need — dense complex linear algebra, FFTs,
//! reversible arithmetic synthesis, baseline simulators, and a virtual
//! cluster with the paper's distributed cost models.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`qcemu_core`] | the emulator: program IR, classical-function / QFT / QPE / measurement shortcuts, crossover advisor |
//! | [`qcemu_sim`] | state-vector simulator with structure-specialised kernels, circuits, measurement, decomposition |
//! | [`qcemu_revarith`] | Cuccaro adders, multiplier, divider, comparators, Bennett compilation |
//! | [`qcemu_linalg`] | complex GEMM, Strassen, Hessenberg + QR eigensolver (`zgemm`/`zgeev` stand-ins) |
//! | [`qcemu_fft`] | radix-2 and four-step FFTs, subspace transforms (FFTW/MKL stand-in) |
//! | [`qcemu_cluster`] | virtual cluster, distributed state & FFT, Eq. (5)/(6) machine models |
//! | [`qcemu_baselines`] | qHiPSTER-like and LIQUi|⟩-like reference simulators |
//! | [`qcemu_serve`] | multi-tenant daemon: wire protocol, admission control, cross-request plan cache |
//!
//! ## Quickstart
//!
//! ```
//! use qcemu::prelude::*;
//!
//! // (a, b) in superposition; c = a*b computed by ONE emulated op.
//! let mut pb = ProgramBuilder::new();
//! let a = pb.register("a", 3);
//! let b = pb.register("b", 3);
//! let c = pb.register("c", 3);
//! pb.hadamard_all(a);
//! pb.hadamard_all(b);
//! pb.classical(stdops::multiply(a, b, c, 3));
//! let program = pb.build().unwrap();
//!
//! let out = Emulator::new()
//!     .run(&program, StateVector::zero_state(program.n_qubits()))
//!     .unwrap();
//! assert!((out.norm() - 1.0).abs() < 1e-10);
//! ```
//!
//! See `examples/` for Shor period finding, Grover search, QPE on the
//! transverse-field Ising model, and the arithmetic speedup demo; see
//! `crates/bench/src/bin/` for the harnesses regenerating every table and
//! figure of the paper, and EXPERIMENTS.md for measured-vs-paper results.

pub use qcemu_baselines;
pub use qcemu_cluster;
pub use qcemu_core;
pub use qcemu_fft;
pub use qcemu_linalg;
pub use qcemu_revarith;
pub use qcemu_serve;
pub use qcemu_sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use qcemu_core::{
        stdops, Backend, BatchExecutor, BatchReport, ClassicalMap, CostModel, EmuError, Emulator,
        ExecutionPlan, Executor, GateLevelSimulator, HighLevelOp, HybridExecutor, MapKind,
        PlanReport, ProgramBuilder, QpeOp, QpeStrategy, QpeTimings, QuantumProgram, RegisterId,
        SharedPlanCache,
    };
    pub use qcemu_linalg::{c64, CMatrix, C64};
    pub use qcemu_serve::{
        AdmissionPolicy, EmuClient, EmuServer, ServeError, ServerConfig, SubmitOptions, WireOp,
        WireProgram, WireRegister,
    };
    pub use qcemu_sim::{
        estimate_mps_cost, measure, segment_circuit, BatchStateVector, Circuit, FusionPolicy, Gate,
        GateOp, MpsCostEstimate, MpsPolicy, MpsState, SegmentPolicy, SegmentedCircuit, SimConfig,
        StateVector, DEFAULT_BLOCK_BITS, DEFAULT_MAX_BOND,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_builds_and_runs_a_program() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        pb.hadamard_all(a);
        pb.qft(a);
        pb.inverse_qft(a);
        let program = pb.build().unwrap();
        let out = Emulator::new()
            .run(&program, StateVector::zero_state(2))
            .unwrap();
        // H⊗H then QFT then IQFT = H⊗H: uniform distribution.
        for i in 0..4 {
            assert!((out.probability(i) - 0.25).abs() < 1e-10);
        }
    }
}

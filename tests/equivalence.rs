//! Cross-crate integration tests: the emulator and the gate-level
//! simulator must produce the same quantum state on composite programs —
//! the core correctness claim behind every speedup in the paper.

use qcemu::prelude::*;
use qcemu_core::stdops::{self, mark_value};
use qcemu_sim::circuits::{tfim_trotter_step, TfimParams};
use std::f64::consts::PI;

fn assert_paths_agree(program: &QuantumProgram, init: StateVector, tol: f64, what: &str) {
    let emulated = Emulator::new()
        .run(program, init.clone())
        .unwrap_or_else(|e| panic!("{what}: emulator failed: {e}"));
    let simulated = GateLevelSimulator::new()
        .run(program, init.clone())
        .unwrap_or_else(|e| panic!("{what}: simulator failed: {e}"));
    let diff = emulated.max_diff_up_to_phase(&simulated);
    assert!(diff < tol, "{what}: paths disagree by {diff}");

    // The elementary-gate simulator must agree too.
    let elementary = GateLevelSimulator::elementary()
        .run(program, init)
        .unwrap_or_else(|e| panic!("{what}: elementary simulator failed: {e}"));
    let diff = emulated.max_diff_up_to_phase(&elementary);
    assert!(diff < tol, "{what}: elementary path disagrees by {diff}");
}

#[test]
fn arithmetic_pipeline_add_multiply() {
    let m = 2;
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", m);
    let b = pb.register("b", m);
    let c = pb.register("c", m);
    pb.hadamard_all(a);
    pb.hadamard_all(b);
    pb.classical(stdops::add(a, b, m)); // b += a
    pb.classical(stdops::multiply(a, b, c, m)); // c += a·b
    let program = pb.build().unwrap();
    assert_paths_agree(
        &program,
        StateVector::zero_state(program.n_qubits()),
        1e-9,
        "add+multiply",
    );
}

#[test]
fn division_after_superposition() {
    let m = 2;
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", m);
    let b = pb.register("b", m);
    let q = pb.register("q", m);
    let r = pb.register("r", m);
    pb.hadamard_all(a);
    pb.hadamard_all(b);
    pb.classical(stdops::divide(a, b, q, r, m));
    let program = pb.build().unwrap();
    assert_paths_agree(
        &program,
        StateVector::zero_state(program.n_qubits()),
        1e-9,
        "divide",
    );
}

#[test]
fn qft_sandwich_on_offset_register() {
    // QFT on a register that is neither at offset 0 nor the whole machine.
    let mut pb = ProgramBuilder::new();
    let pad = pb.register("pad", 2);
    let x = pb.register("x", 3);
    pb.hadamard_all(pad);
    pb.set_constant(x, 5);
    pb.qft(x);
    pb.gates(|c| {
        c.cphase(0, 2, 0.7); // entangle pad with x between the transforms
    });
    pb.inverse_qft(x);
    let program = pb.build().unwrap();
    assert_paths_agree(
        &program,
        StateVector::zero_state(program.n_qubits()),
        1e-9,
        "qft sandwich",
    );
}

#[test]
fn grover_oracle_and_diffusion() {
    let n = 5;
    let marked = 19u64;
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", n);
    pb.hadamard_all(x);
    for _ in 0..4 {
        pb.phase_oracle(mark_value(x, marked, PI));
        pb.hadamard_all(x);
        pb.phase_oracle(mark_value(x, 0, PI));
        pb.hadamard_all(x);
    }
    let program = pb.build().unwrap();
    let init = StateVector::zero_state(n);
    let emulated = Emulator::new().run(&program, init.clone()).unwrap();
    assert!(
        emulated.probability(marked as usize) > 0.9,
        "Grover amplification failed: {}",
        emulated.probability(marked as usize)
    );
    assert_paths_agree(&program, init, 1e-8, "grover");
}

#[test]
fn qpe_program_all_strategies_match_gate_level() {
    let n = 3;
    let b = 4;
    let unitary = tfim_trotter_step(n, TfimParams::default());
    let mut pb = ProgramBuilder::new();
    let target = pb.register("t", n);
    let phase = pb.register("p", b);
    pb.gates(|c| {
        c.h(0);
        c.cnot(0, 1);
        c.x(2);
    });
    pb.qpe(QpeOp {
        unitary,
        target,
        phase,
    });
    let program = pb.build().unwrap();
    let init = StateVector::zero_state(program.n_qubits());

    let gate = GateLevelSimulator::new()
        .run(&program, init.clone())
        .unwrap();
    for strategy in [
        QpeStrategy::RepeatedSquaring,
        QpeStrategy::Eigendecomposition,
    ] {
        let emu = Emulator::with_qpe_strategy(strategy)
            .run(&program, init.clone())
            .unwrap();
        let diff = gate.max_diff_up_to_phase(&emu);
        assert!(diff < 1e-6, "{strategy:?} diverges by {diff}");
    }
}

#[test]
fn emulation_only_program_runs_where_simulation_cannot() {
    // A classical function with no reversible circuit: the emulator's whole
    // point (§3.1). 12-bit nonlinear bijection (affine + xorshift mix).
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", 12);
    pb.hadamard_all(x);
    pb.classical(stdops::apply_classical_fn("mix", vec![x], |v| {
        let mut z = v[0];
        z = (z.wrapping_mul(2787) + 15) & 0xFFF; // 2787 odd → bijective mod 2^12
        z ^= z >> 5;
        v[0] = z & 0xFFF;
    }));
    let program = pb.build().unwrap();
    let init = StateVector::zero_state(12);
    let out = Emulator::new().run(&program, init.clone()).unwrap();
    assert!((out.norm() - 1.0).abs() < 1e-10);
    assert!(matches!(
        GateLevelSimulator::new().run(&program, init),
        Err(EmuError::NoGateImplementation { .. })
    ));
}

#[test]
fn modular_exponentiation_matches_bruteforce() {
    // Emulated Shor kernel vs direct computation of the final state.
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", 4);
    let y = pb.register("y", 4);
    pb.hadamard_all(x);
    pb.set_constant(y, 1);
    pb.classical(stdops::modexp(x, y, 2, 15));
    let program = pb.build().unwrap();
    let out = Emulator::new()
        .run(&program, StateVector::zero_state(8))
        .unwrap();
    for xv in 0..16usize {
        let yv = qcemu_core::stdops::pow_mod(2, xv as u64, 15) as usize;
        let idx = xv | (yv << 4);
        assert!(
            (out.probability(idx) - 1.0 / 16.0).abs() < 1e-12,
            "x = {xv}: expected weight at y = {yv}"
        );
    }
}

#[test]
fn ancilla_leak_is_detected() {
    // A "classical map" whose gate impl deliberately dirties the ancilla.
    use qcemu_core::{ClassicalMap, GateImpl, MapKind};
    use std::sync::Arc;
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", 2);
    let _ = a;
    pb.classical(ClassicalMap {
        name: "leaky".into(),
        regs: vec![a],
        f: Arc::new(|_| {}),
        kind: MapKind::InPlaceBijection,
        gate_impl: Some(GateImpl {
            n_ancilla: 1,
            build: Arc::new(|prog| {
                let mut c = qcemu_sim::Circuit::new(prog.n_qubits() + 1);
                c.x(prog.n_qubits()); // sets the ancilla to |1⟩ and leaves it
                c
            }),
        }),
    });
    let program = pb.build().unwrap();
    let err = GateLevelSimulator::new()
        .run(&program, StateVector::zero_state(2))
        .unwrap_err();
    assert!(matches!(err, EmuError::AncillaNotClean { .. }));
}

//! Black-box integration tests for the serving daemon: an in-process
//! [`EmuServer`] exercised over real TCP connections by concurrent
//! clients.
//!
//! The load-bearing assertion: N structurally identical (but
//! differently parameterised) concurrent requests produce results
//! matching a local [`HybridExecutor`] to ≤1e-12 while incurring
//! **exactly one** plan-cache miss — the cross-request cache with
//! single-flight lowering doing its job.

use qcemu::prelude::*;
use qcemu::qcemu_serve::wire::{self, ErrorCode, FrameKind};
use qcemu::qcemu_serve::ServeError;
use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

/// A parameter sweep's program: same structure for every `slope`, so the
/// daemon should plan it once.
fn sweep_program(slope: f64) -> WireProgram {
    WireProgram {
        registers: vec![
            WireRegister {
                name: "x".into(),
                len: 3,
            },
            WireRegister {
                name: "ind".into(),
                len: 1,
            },
        ],
        ops: vec![
            WireOp::Hadamard(0),
            WireOp::Rotation {
                x: 0,
                target: 1,
                slope,
                intercept: 0.1,
            },
            WireOp::Qft(0),
        ],
    }
}

fn start_server(config: ServerConfig) -> qcemu::qcemu_serve::ServerHandle {
    EmuServer::bind("127.0.0.1:0", config)
        .expect("bind")
        .start()
        .expect("start")
}

#[test]
fn concurrent_same_structure_requests_cost_one_plan_miss_and_match_local_runs() {
    let handle = start_server(ServerConfig {
        workers: 2,
        batch_window: Duration::from_millis(3),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let n_clients = 8;
    let slopes: Vec<f64> = (0..n_clients).map(|i| 0.2 + 0.15 * i as f64).collect();

    let results: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = slopes
            .iter()
            .map(|&slope| {
                scope.spawn(move || {
                    let mut client = EmuClient::connect(addr).expect("connect");
                    let options = SubmitOptions {
                        shots: 32,
                        seed: slope.to_bits(),
                        want_amplitudes: true,
                    };
                    client
                        .submit(&sweep_program(slope), &options)
                        .expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every response matches a from-scratch local run to 1e-12.
    for (slope, result) in slopes.iter().zip(&results) {
        let program = sweep_program(*slope).to_program().expect("valid program");
        let local = HybridExecutor::new()
            .run_structural(&program, StateVector::zero_state(program.n_qubits()))
            .expect("local run")
            .0;
        let amps = result.amplitudes.as_ref().expect("amplitudes requested");
        assert_eq!(amps.len(), local.dim());
        let max_diff = amps
            .iter()
            .zip(local.amplitudes())
            .map(|(a, b)| ((a.re - b.re).powi(2) + (a.im - b.im).powi(2)).sqrt())
            .fold(0.0f64, f64::max);
        assert!(
            max_diff <= 1e-12,
            "served result diverged from local run: {max_diff:e}"
        );
        assert_eq!(result.shots.len(), 32);
        assert!(result.shots.iter().all(|&s| s < 16));
        assert!(!result.report.is_empty(), "plan report must be attached");
    }

    // The core tentpole claim: 8 concurrent same-structure requests,
    // exactly one lowering.
    let stats = handle.stats();
    assert_eq!(stats.requests, n_clients as u64);
    assert_eq!(stats.served, n_clients as u64);
    assert_eq!(
        stats.plan_misses, 1,
        "structurally identical requests must share one lowering, got {stats:?}"
    );
    assert!(stats.plan_hits >= n_clients as u64 - 1);
    assert_eq!(stats.plan_entries, 1);
    handle.shutdown();
}

#[test]
fn coalescing_window_batches_simultaneous_requests() {
    let handle = start_server(ServerConfig {
        workers: 1,
        batch_window: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    let results: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = EmuClient::connect(addr).expect("connect");
                    client
                        .submit(
                            &sweep_program(0.3 + 0.1 * i as f64),
                            &SubmitOptions::default(),
                        )
                        .expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // With one worker and a generous window, the simultaneous arrivals
    // coalesce: at least one response reports batched execution, and the
    // batched members still match local runs.
    assert!(
        results.iter().any(|r| r.batched && r.batch_size >= 2),
        "expected at least one coalesced batch"
    );
    for (i, result) in results.iter().enumerate() {
        let program = sweep_program(0.3 + 0.1 * i as f64).to_program().unwrap();
        let local = HybridExecutor::new()
            .run_structural(&program, StateVector::zero_state(program.n_qubits()))
            .unwrap()
            .0;
        let amps = result.amplitudes.as_ref().unwrap();
        for (a, b) in amps.iter().zip(local.amplitudes()) {
            assert!((a.re - b.re).abs() <= 1e-12 && (a.im - b.im).abs() <= 1e-12);
        }
    }
    let stats = handle.stats();
    assert!(stats.batches >= 1);
    assert_eq!(stats.plan_misses, 1);
    handle.shutdown();
}

#[test]
fn malformed_frames_get_a_typed_reply_and_do_not_kill_the_daemon() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.addr();

    // Garbage bytes: the daemon answers with a Malformed error frame and
    // drops that connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"this is not a qcemu frame at all....")
        .unwrap();
    raw.flush().unwrap();
    let (kind, body) = wire::read_frame(&mut raw)
        .expect("error frame expected")
        .expect("reply expected");
    assert_eq!(kind, FrameKind::Error);
    let (code, _) = wire::decode_error(&body).unwrap();
    assert_eq!(code, ErrorCode::Malformed);
    drop(raw);

    // A truncated frame (valid header, missing payload) likewise.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, FrameKind::Submit, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
    raw.write_all(&frame[..frame.len() - 6]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    // The daemon is still fully serviceable afterwards.
    let mut client = EmuClient::connect(addr).unwrap();
    let result = client
        .submit(&sweep_program(0.4), &SubmitOptions::default())
        .expect("daemon must survive malformed input");
    assert!(result.amplitudes.is_some());
    assert!(handle.stats().malformed >= 1);
    handle.shutdown();
}

#[test]
fn invalid_programs_are_rejected_without_dropping_the_connection() {
    let handle = start_server(ServerConfig::default());
    let mut client = EmuClient::connect(handle.addr()).unwrap();

    // An out-of-range gate used to be a panic deep in the state-vector
    // kernels; at the daemon boundary it must be a typed error on a
    // connection that stays open.
    let mut bad = sweep_program(0.5);
    bad.ops.push(WireOp::Gates(vec![Gate::x(99)]));
    match client.submit(&bad, &SubmitOptions::default()) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidProgram),
        other => panic!("expected InvalidProgram, got {other:?}"),
    }

    // Same connection, valid program: still served.
    let result = client
        .submit(&sweep_program(0.5), &SubmitOptions::default())
        .expect("connection must remain usable");
    assert!(result.amplitudes.is_some());
    handle.shutdown();
}

#[test]
fn qubit_bound_rejects_above_and_admits_at_the_boundary() {
    let handle = start_server(ServerConfig {
        policy: AdmissionPolicy {
            max_qubits: 4,
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    });
    let mut client = EmuClient::connect(handle.addr()).unwrap();

    // 5 qubits: one over the bound → typed rejection.
    let wide = WireProgram {
        registers: vec![WireRegister {
            name: "w".into(),
            len: 5,
        }],
        ops: vec![WireOp::Hadamard(0)],
    };
    match client.submit(&wide, &SubmitOptions::default()) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::TooManyQubits),
        other => panic!("expected TooManyQubits, got {other:?}"),
    }

    // Exactly at the bound: admitted.
    let at_bound = sweep_program(0.7); // 4 qubits
    client
        .submit(&at_bound, &SubmitOptions::default())
        .expect("program at the qubit bound must be admitted");
    assert_eq!(handle.stats().rejected_qubits, 1);
    handle.shutdown();
}

#[test]
fn over_budget_programs_are_rejected_with_a_typed_error() {
    let handle = start_server(ServerConfig {
        policy: AdmissionPolicy {
            max_cost_s: 1e-15, // everything costs more than this
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    });
    let mut client = EmuClient::connect(handle.addr()).unwrap();
    match client.submit(&sweep_program(0.9), &SubmitOptions::default()) {
        Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::OverBudget),
        other => panic!("expected OverBudget, got {other:?}"),
    }
    // Stats keep flowing even when everything is over budget.
    let stats = handle.stats();
    assert_eq!(stats.rejected_cost, 1);
    assert_eq!(stats.served, 0);
    handle.shutdown();
}

#[test]
fn queue_overflow_is_a_typed_error_and_the_daemon_recovers() {
    // One worker, everything forced onto the queued lane, queue bounded
    // at a single waiter, and a long batching window to hold the worker
    // occupied deterministically.
    let handle = start_server(ServerConfig {
        workers: 1,
        batch_window: Duration::from_millis(400),
        policy: AdmissionPolicy {
            fast_lane_cost_s: -1.0, // nothing qualifies as fast
            max_queue_depth: 1,
            ..AdmissionPolicy::default()
        },
        ..ServerConfig::default()
    });
    let addr = handle.addr();

    thread::scope(|scope| {
        // Job A: popped immediately; the worker then sits in its
        // batching window for 400ms.
        let a = scope.spawn(move || {
            EmuClient::connect(addr)
                .unwrap()
                .submit(&sweep_program(0.1), &SubmitOptions::default())
        });
        thread::sleep(Duration::from_millis(100));
        // Job B (different structure — it will not be coalesced into A):
        // occupies the single queue slot.
        let b = scope.spawn(move || {
            let mut p = sweep_program(0.2);
            p.ops.push(WireOp::Qft(0));
            EmuClient::connect(addr)
                .unwrap()
                .submit(&p, &SubmitOptions::default())
        });
        thread::sleep(Duration::from_millis(100));
        // Job C: the queue is full → typed overflow rejection.
        let mut p = sweep_program(0.3);
        p.ops.push(WireOp::Qft(0));
        match EmuClient::connect(addr)
            .unwrap()
            .submit(&p, &SubmitOptions::default())
        {
            Err(ServeError::Server { code, .. }) => assert_eq!(code, ErrorCode::QueueFull),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // A and B were unaffected by the rejection.
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    });

    // After the burst drains, the daemon admits queued work again.
    let mut client = EmuClient::connect(addr).unwrap();
    client
        .submit(&sweep_program(0.4), &SubmitOptions::default())
        .expect("daemon must stay serviceable after a queue overflow");
    let stats = handle.stats();
    assert_eq!(stats.rejected_queue_full, 1);
    assert!(stats.served >= 3);
    handle.shutdown();
}

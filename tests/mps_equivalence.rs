//! MPS equivalence harness: the bond-truncated compressed backend must
//! be *invisible* at ample bond dimension. For random circuits over the
//! full gate zoo — including non-adjacent two-qubit gates (SWAP-routed
//! internally) and controlled gates — `MpsState` run from the zero state
//! densifies to the per-gate reference within 1e-10 at n ≤ 12, with a
//! truncation-error accumulator that reads exactly 0.0. Shrinking the
//! bond cap below the circuit's entanglement makes that accumulator
//! grow monotonically; seeded shot sampling off the tensors is
//! bit-identical to the dense CDF scan over the densified state; and
//! the `SimConfig`/planner route (`MpsPolicy::Forced`) reproduces the
//! same states end-to-end.

use proptest::prelude::*;
use qcemu::prelude::*;
use qcemu_sim::{qft_circuit, sample_shots, DEFAULT_MAX_BOND};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random circuit on `n` qubits over the full gate zoo —
/// real (H, Ry), diagonal (Rz, phase, cphase), permutation (X, CNOT,
/// Toffoli, SWAP). Two-qubit gates land on arbitrary (non-adjacent)
/// pairs, exercising the MPS SWAP-chain routing.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0..9usize, 0..n, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q1, q2, q3, theta)| {
            let distinct2 = |a: usize, b: usize| if a == b { (a, (b + 1) % n) } else { (a, b) };
            let (a, b) = distinct2(q1, q2);
            match kind {
                0 => Gate::h(a),
                1 => Gate::x(a),
                2 => Gate::rz(a, theta),
                3 => Gate::ry(a, theta),
                4 => Gate::phase(a, theta),
                5 => Gate::cnot(a, b),
                6 => Gate::cphase(a, b, theta),
                7 => Gate::swap(a, b),
                _ => {
                    let c = if q3 == a || q3 == b { (b + 1) % n } else { q3 };
                    if c != a && c != b {
                        Gate::toffoli(a, c, b)
                    } else {
                        Gate::ry(a, theta)
                    }
                }
            }
        });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Exact elementwise amplitude distance: SVD splits are gauge choices
/// that cancel on contraction, so densification reproduces the dense
/// amplitudes directly — no global-phase forgiveness needed.
fn max_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0f64, f64::max)
}

/// Asserts compressed ≡ per-gate on `circuit` at a bond cap ample for
/// its width (χ ≤ 2^⌊n/2⌋ always suffices), via the direct `MpsState`
/// API, the `from_statevector` round-trip, and the `SimConfig` route.
fn assert_mps_equivalence(circuit: &Circuit) {
    let n = circuit.n_qubits();
    let ample = 1 << n.div_ceil(2);

    let mut reference = StateVector::zero_state(n);
    reference.run(circuit, &SimConfig::unfused());

    let mut mps = MpsState::zero_state(n, ample);
    mps.run(circuit);
    assert_eq!(
        mps.truncation_error(),
        0.0,
        "ample bond cap must never force a truncation"
    );
    let diff = max_diff(&mps.to_statevector(), &reference);
    assert!(diff <= 1e-10, "compressed run deviates by {diff:.3e}");

    // Decompose the final (generally entangled) state and come back.
    let round = MpsState::from_statevector(&reference, ample).to_statevector();
    let rdiff = max_diff(&round, &reference);
    assert!(rdiff <= 1e-10, "densify round-trip deviates by {rdiff:.3e}");

    // The forced-policy route through the dense simulator front-end
    // (audited compressed attempt, dense fallback) must agree too.
    let mut sv = StateVector::zero_state(n);
    sv.run(
        circuit,
        &SimConfig::unfused().with_mps(MpsPolicy::Forced { max_bond: ample }),
    );
    let cdiff = max_diff(&sv, &reference);
    assert!(
        cdiff <= 1e-10,
        "SimConfig MPS route deviates by {cdiff:.3e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mps_matches_dense_on_gate_zoo(circuit in random_circuit(8, 48)) {
        assert_mps_equivalence(&circuit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mps_matches_dense_at_twelve_qubits(circuit in random_circuit(12, 32)) {
        assert_mps_equivalence(&circuit);
    }
}

/// Brickwork ladder whose true χ saturates 2^⌊n/2⌋: every bond cap
/// below that must truncate, and harder caps must truncate more.
fn entangling_ladder(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..n {
        for q in 0..n - 1 {
            c.cphase(q, q + 1, 0.3 + 0.07 * layer as f64);
            c.ry(q, 0.4 + 0.15 * (q + layer) as f64);
        }
    }
    c
}

#[test]
fn truncation_error_grows_monotonically_as_bond_shrinks() {
    let n = 8;
    let circuit = entangling_ladder(n);
    let errs: Vec<f64> = [16usize, 8, 4, 2, 1]
        .iter()
        .map(|&chi| {
            let mut mps = MpsState::zero_state(n, chi);
            mps.run(&circuit);
            mps.truncation_error()
        })
        .collect();
    assert_eq!(
        errs[0], 0.0,
        "χ = 2^{{n/2}} holds any 8-qubit state exactly"
    );
    assert!(
        errs[4] > 0.0,
        "χ = 1 (product state) must truncate a ladder"
    );
    for w in errs.windows(2) {
        assert!(
            w[1] >= w[0],
            "halving the bond cap reduced the truncation error: {errs:?}"
        );
    }
}

#[test]
fn seeded_sampling_is_bit_identical_to_densified_reference() {
    for (label, circuit) in [("qft", qft_circuit(9)), ("ladder", entangling_ladder(9))] {
        let mut mps = MpsState::zero_state(9, DEFAULT_MAX_BOND);
        mps.run(&circuit);
        let dense = mps.to_statevector();
        let compressed = mps.sample_shots(500, &mut StdRng::seed_from_u64(0xfeed));
        let reference = sample_shots(&dense, 500, &mut StdRng::seed_from_u64(0xfeed));
        assert_eq!(compressed, reference, "{label}: sampling paths diverged");
    }
}

//! Segment-sweep equivalence harness: the cache-blocked segment executor
//! must be *invisible* to every observable. For random circuits over the
//! full gate zoo, `segment ≡ per-gate ≡ fused` amplitude-for-amplitude
//! (≤1e-12) across block sizes from degenerate (every gate a sweep)
//! through L2-sized to whole-state (one resident block), with fusion on
//! and off inside blocks, on both the build's default backend and with
//! SIMD forced off — plus the named circuit families (QFT, GHZ) and the
//! `SimConfig::segmented()` route through [`StateVector::run`].

use proptest::prelude::*;
use qcemu::prelude::*;
use qcemu_sim::qft_circuit;
use std::sync::{Mutex, MutexGuard};

/// Serialises tests that toggle or depend on the global SIMD switch.
fn scalar_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: forces the scalar backend for the guard's lifetime.
struct ForcedScalar(#[allow(dead_code)] MutexGuard<'static, ()>);
impl ForcedScalar {
    fn engage() -> ForcedScalar {
        let g = scalar_lock();
        qcemu_linalg::simd::force_scalar(true);
        ForcedScalar(g)
    }
}
impl Drop for ForcedScalar {
    fn drop(&mut self) {
        qcemu_linalg::simd::force_scalar(false);
    }
}

/// Strategy: a random circuit on `n` qubits over the full gate zoo —
/// real (H, Ry), diagonal (Rz, phase, cphase), permutation (X, CNOT,
/// Toffoli, SWAP) and generic unitaries all take distinct kernel paths.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0..9usize, 0..n, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q1, q2, q3, theta)| {
            let distinct2 = |a: usize, b: usize| if a == b { (a, (b + 1) % n) } else { (a, b) };
            let (a, b) = distinct2(q1, q2);
            match kind {
                0 => Gate::h(a),
                1 => Gate::x(a),
                2 => Gate::rz(a, theta),
                3 => Gate::ry(a, theta),
                4 => Gate::phase(a, theta),
                5 => Gate::cnot(a, b),
                6 => Gate::cphase(a, b, theta),
                7 => Gate::swap(a, b),
                _ => {
                    let c = if q3 == a || q3 == b { (b + 1) % n } else { q3 };
                    if c != a && c != b {
                        Gate::toffoli(a, c, b)
                    } else {
                        Gate::ry(a, theta)
                    }
                }
            }
        });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Exact elementwise amplitude distance (no global-phase forgiveness:
/// every execution tier applies the same matrices in the same order).
fn max_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0f64, f64::max)
}

/// Block sizes to sweep: degenerate tiny blocks (most gates forced to
/// streamed sweeps), just-above-arity, whole-state (one resident block),
/// and the production L2-sized default (clamped to `n` by the pass).
fn block_sizes(n: usize) -> [usize; 4] {
    [2, 3, n, DEFAULT_BLOCK_BITS]
}

/// Asserts segment ≡ per-gate ≡ fused on `circuit` from a start state
/// with every amplitude live, across block sizes × in-block fusion, via
/// both the direct [`SegmentedCircuit`] API and the `SimConfig` route.
fn assert_segment_equivalence(circuit: &Circuit) {
    let n = circuit.n_qubits();
    let start = StateVector::uniform_superposition(n);

    let mut reference = start.clone();
    reference.run(circuit, &SimConfig::unfused());

    let mut fused = start.clone();
    fused.run(circuit, &SimConfig::fused(3));
    let fdiff = max_diff(&fused, &reference);
    assert!(
        fdiff <= 1e-12,
        "fused deviates from per-gate by {fdiff:.3e}"
    );

    for block_bits in block_sizes(n) {
        for fusion in [
            FusionPolicy::Disabled,
            FusionPolicy::greedy(),
            FusionPolicy::Greedy {
                max_fused_qubits: 2,
            },
        ] {
            let seg = segment_circuit(circuit, block_bits, &fusion);
            let mut sv = start.clone();
            seg.apply_slice(sv.amplitudes_mut());
            let diff = max_diff(&sv, &reference);
            assert!(
                diff <= 1e-12,
                "segmented (block_bits {block_bits}, fusion {fusion:?}) deviates by {diff:.3e} \
                 [{} blocked / {} sweep segments]",
                seg.blocked_segments(),
                seg.sweep_segments(),
            );
        }

        let config = SimConfig {
            segments: SegmentPolicy::Blocked { block_bits },
            ..SimConfig::segmented()
        };
        let mut sv = start.clone();
        sv.run(circuit, &config);
        let diff = max_diff(&sv, &reference);
        assert!(
            diff <= 1e-12,
            "SimConfig segmented route (block_bits {block_bits}) deviates by {diff:.3e}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence on the build's default backend: random gate-zoo
    /// circuits, every block size, fusion on/off inside blocks.
    #[test]
    fn segmented_matches_per_gate_and_fused(circuit in random_circuit(6, 30)) {
        let _shared = scalar_lock();
        assert_segment_equivalence(&circuit);
    }

    /// Same equivalence with SIMD forced off: the scalar gather/scatter and
    /// run-walk kernels inside blocks must be just as invisible.
    #[test]
    fn segmented_matches_per_gate_and_fused_forced_scalar(
        circuit in random_circuit(5, 20)
    ) {
        let _scalar = ForcedScalar::engage();
        assert_segment_equivalence(&circuit);
    }
}

/// The named families the ablation measures: QFT's trailing swaps force
/// sweep segments at every block size below `n`, and the GHZ ladder is one
/// long compatible run — both must agree with per-gate execution exactly.
#[test]
fn named_circuits_segment_equivalence() {
    let _shared = scalar_lock();
    for n in [4, 8, 10] {
        assert_segment_equivalence(&qft_circuit(n));
        assert_segment_equivalence(&qcemu_sim::entangle_circuit(n));
    }
}

/// Degenerate shapes: a single gate, a circuit touching only the top
/// qubit (all sweeps), and a 1-qubit circuit (block covers the state).
#[test]
fn degenerate_circuits_segment_equivalence() {
    let _shared = scalar_lock();

    let mut single = Circuit::new(5);
    single.push(Gate::h(2));
    assert_segment_equivalence(&single);

    let mut top = Circuit::new(6);
    for _ in 0..4 {
        top.push(Gate::h(5));
        top.push(Gate::rz(5, 0.3));
    }
    assert_segment_equivalence(&top);

    let mut tiny = Circuit::new(1);
    tiny.push(Gate::h(0));
    tiny.push(Gate::phase(0, 0.7));
    assert_segment_equivalence(&tiny);
}

/// Segment execution must be thread-count invariant: with the kernel
/// parallel threshold forced to 1 (so every sweep actually dispatches to
/// the worker pool) and the visible thread budget pinned to {1, 2, 4},
/// the segmented route must reproduce the serial per-gate reference
/// bit-comparably. CI additionally runs this whole harness under
/// `QCEMU_THREADS=4` so the pool genuinely has workers to hand blocks
/// to.
#[test]
fn segment_equivalence_across_forced_thread_counts() {
    let _shared = scalar_lock();
    for circuit in [qft_circuit(9), qcemu_sim::entangle_circuit(9)] {
        let n = circuit.n_qubits();
        let start = StateVector::uniform_superposition(n);
        let mut reference = start.clone();
        reference.run(&circuit, &SimConfig::unfused());

        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                for config in [
                    SimConfig::unfused().with_par_threshold(1),
                    SimConfig::fused(3).with_par_threshold(1),
                    SimConfig::segmented().with_par_threshold(1),
                ] {
                    let mut sv = start.clone();
                    sv.run(&circuit, &config);
                    let diff = max_diff(&sv, &reference);
                    assert!(
                        diff <= 1e-12,
                        "{threads}-thread run ({config:?}) deviates by {diff:.3e}"
                    );
                }
            });
        }
    }
}

//! Cross-executor equivalence on randomized mixed programs (proptest):
//! classical maps, QFTs, phase oracles, register-controlled rotations and
//! raw gate runs, in random order, must produce identical final states
//! (≤ 1e-10 up to global phase) under all four execution paths —
//! `Emulator`, `GateLevelSimulator`, `GateLevelSimulator::fused`, and the
//! cost-model-driven `HybridExecutor`. This is the contract that makes
//! per-op hybrid dispatch safe: whatever the planner chooses, the state
//! is the same.

use proptest::prelude::*;
use qcemu::prelude::*;
use std::sync::Arc;

/// One randomly chosen high-level op, lowered onto a fixed register
/// layout: a (2 qubits), b (2 qubits), t (1 qubit) — 5 qubits total.
/// Every variant carries a gate-level implementation (or a generic
/// expansion), so all four executors can run every sampled program.
#[derive(Clone, Debug)]
enum OpChoice {
    /// `b ← a + b (mod 4)` — Cuccaro adder vs word addition.
    Add,
    /// Grover-style phase mark of one 2-bit value on register `a`.
    Mark { value: u64, phase_millis: u64 },
    /// QFT / inverse QFT on `a` or `b`.
    Qft { on_b: bool, inverse: bool },
    /// Register-controlled rotation `|x⟩|t⟩ ↦ |x⟩ Ry(θ(x))|t⟩` with
    /// θ(x) = base/1000 + x·step/1000 — per-value expansion vs sweep.
    Rotate {
        on_b: bool,
        base_millis: u64,
        step_millis: u64,
    },
    /// A short raw gate run drawn from the gate zoo.
    Gates { seed: u64, len: usize },
}

fn op_choice() -> impl Strategy<Value = OpChoice> {
    (0..5usize, 0..4u64, 1..1500u64, 0..8u64, 1..6usize).prop_map(
        |(kind, value, millis, seed, len)| match kind {
            0 => OpChoice::Add,
            1 => OpChoice::Mark {
                value,
                phase_millis: millis,
            },
            2 => OpChoice::Qft {
                on_b: value % 2 == 0,
                inverse: value / 2 == 0,
            },
            3 => OpChoice::Rotate {
                on_b: value % 2 == 0,
                base_millis: millis,
                step_millis: 100 + value * 37,
            },
            _ => OpChoice::Gates { seed, len },
        },
    )
}

/// Deterministic small gate run over the 5 program qubits.
fn gate_run(c: &mut Circuit, seed: u64, len: usize) {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let q = ((s >> 33) % 5) as usize;
        let p = ((s >> 13) % 5) as usize;
        let theta = ((s >> 3) % 1000) as f64 / 500.0;
        match (s >> 60) % 5 {
            0 => {
                c.push(Gate::h(q));
            }
            1 => {
                c.push(Gate::x(q));
            }
            2 => {
                c.push(Gate::phase(q, theta));
            }
            3 if p != q => {
                c.push(Gate::cnot(q, p));
            }
            _ => {
                c.push(Gate::ry(q, theta));
            }
        }
    }
}

fn build_program(ops: &[OpChoice]) -> QuantumProgram {
    let mut pb = ProgramBuilder::new();
    let a = pb.register("a", 2);
    let b = pb.register("b", 2);
    let t = pb.register("t", 1);
    // Non-trivial input: superpose everything so every branch of every
    // permutation carries weight.
    pb.hadamard_all(a);
    pb.hadamard_all(b);
    for (i, op) in ops.iter().enumerate() {
        match op {
            OpChoice::Add => {
                pb.classical(stdops::add(a, b, 2));
            }
            OpChoice::Mark {
                value,
                phase_millis,
            } => {
                pb.phase_oracle(stdops::mark_value(a, *value, *phase_millis as f64 / 500.0));
            }
            OpChoice::Qft { on_b, inverse } => {
                let reg = if *on_b { b } else { a };
                if *inverse {
                    pb.inverse_qft(reg);
                } else {
                    pb.qft(reg);
                }
            }
            OpChoice::Rotate {
                on_b,
                base_millis,
                step_millis,
            } => {
                let base = *base_millis as f64 / 1000.0;
                let step = *step_millis as f64 / 1000.0;
                pb.rotation(qcemu_core::RotationOp {
                    name: format!("rot{i}"),
                    x: if *on_b { b } else { a },
                    target: t,
                    angle: Arc::new(move |v| base + step * v as f64),
                    gate_impl: None,
                });
            }
            OpChoice::Gates { seed, len } => {
                let (seed, len) = (*seed, *len);
                pb.gates(|c| gate_run(c, seed, len));
            }
        }
    }
    pb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The headline invariant: four executors, one state.
    #[test]
    fn all_executors_agree_on_random_mixed_programs(
        ops in proptest::collection::vec(op_choice(), 1..7)
    ) {
        let program = build_program(&ops);
        let initial = StateVector::zero_state(program.n_qubits());
        let reference = Emulator::new().run(&program, initial.clone()).unwrap();
        let executors: [(&str, Box<dyn Executor>); 3] = [
            ("simulator", Box::new(GateLevelSimulator::new())),
            ("fused simulator", Box::new(GateLevelSimulator::fused())),
            ("hybrid", Box::new(HybridExecutor::new())),
        ];
        for (name, exec) in executors {
            let out = exec.run(&program, initial.clone()).unwrap();
            let diff = reference.max_diff_up_to_phase(&out);
            prop_assert!(
                diff < 1e-10,
                "{name} deviates from emulator by {diff:.3e} on {ops:?}"
            );
        }
        // Norm stays exact through every path.
        prop_assert!((reference.norm() - 1.0).abs() < 1e-9);
    }

    /// The hybrid plan itself is well-formed on arbitrary programs: every
    /// op gets exactly one step, predictions are finite (everything here
    /// is simulable), and ancilla head-room is only reserved when some
    /// step actually simulates an ancilla-bearing op.
    #[test]
    fn hybrid_plans_are_well_formed(
        ops in proptest::collection::vec(op_choice(), 1..7)
    ) {
        let program = build_program(&ops);
        let exec = HybridExecutor::new();
        let plan = exec.plan(&program);
        prop_assert_eq!(plan.steps().len(), program.ops().len());
        for (i, step) in plan.steps().iter().enumerate() {
            prop_assert_eq!(step.op_index, i);
            prop_assert!(step.predicted_s.is_finite(), "step {i} has ∞ cost");
        }
        let needed = plan
            .steps()
            .iter()
            .filter(|s| s.backend.is_simulate())
            .map(|s| s.n_ancilla)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(plan.n_ancilla(), needed);
    }
}

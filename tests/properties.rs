//! Property-based integration tests (proptest): randomized programs and
//! circuits must satisfy the structural invariants the paper's shortcuts
//! rely on — norm preservation, emulator/simulator agreement, decomposition
//! equivalence, FFT/QFT-circuit agreement.

use proptest::prelude::*;
use qcemu::prelude::*;
use qcemu_core::stdops;
use qcemu_linalg::{max_abs_diff, norm2};
use qcemu_sim::{decompose_circuit, qft_circuit};

/// Strategy: a random circuit on `n` qubits drawn from the full gate zoo.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0..8usize, 0..n, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q1, q2, q3, theta)| {
            let distinct2 = |a: usize, b: usize| if a == b { (a, (b + 1) % n) } else { (a, b) };
            let (a, b) = distinct2(q1, q2);
            match kind {
                0 => Gate::h(a),
                1 => Gate::x(a),
                2 => Gate::rz(a, theta),
                3 => Gate::phase(a, theta),
                4 => Gate::cnot(a, b),
                5 => Gate::cphase(a, b, theta),
                6 => Gate::swap(a, b),
                _ => {
                    let c = if q3 == a || q3 == b { (b + 1) % n } else { q3 };
                    if c != a && c != b {
                        Gate::toffoli(a, c, b)
                    } else {
                        Gate::ry(a, theta)
                    }
                }
            }
        });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_circuits_preserve_norm(circuit in random_circuit(6, 30)) {
        let mut sv = StateVector::uniform_superposition(6);
        sv.apply_circuit(&circuit);
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_then_inverse_is_identity(circuit in random_circuit(5, 25)) {
        let mut sv = StateVector::basis_state(5, 13);
        sv.apply_circuit(&circuit);
        sv.apply_circuit(&circuit.inverse());
        prop_assert!(sv.max_diff_up_to_phase(&StateVector::basis_state(5, 13)) < 1e-9);
    }

    #[test]
    fn decomposition_preserves_semantics(circuit in random_circuit(5, 20)) {
        let lowered = decompose_circuit(&circuit);
        prop_assert!(qcemu_sim::is_elementary(&lowered));
        let mut a = StateVector::uniform_superposition(5);
        let mut b = a.clone();
        a.apply_circuit(&circuit);
        b.apply_circuit(&lowered);
        prop_assert!(a.max_diff_up_to_phase(&b) < 1e-8);
    }

    #[test]
    fn fused_execution_matches_unfused(circuit in random_circuit(6, 40)) {
        // The gate zoo includes controlled (CNOT, cphase, Toffoli),
        // diagonal (Rz, phase, cphase) and SWAP gates; fused execution
        // must agree amplitude-for-amplitude at every window width.
        let mut reference = StateVector::uniform_superposition(6);
        reference.apply_circuit(&circuit);
        for max_fused_qubits in 1..=qcemu_sim::MAX_FUSED_QUBITS {
            let mut fused = StateVector::uniform_superposition(6);
            fused.run(&circuit, &SimConfig::fused(max_fused_qubits));
            prop_assert!(
                max_abs_diff(reference.amplitudes(), fused.amplitudes()) < 1e-12,
                "k = {}: diff = {}",
                max_fused_qubits,
                max_abs_diff(reference.amplitudes(), fused.amplitudes())
            );
        }
    }

    #[test]
    fn baselines_agree_with_reference(circuit in random_circuit(5, 20)) {
        let mut reference = StateVector::uniform_superposition(5);
        reference.apply_circuit(&circuit);

        let mut qh = StateVector::uniform_superposition(5);
        qcemu_baselines::QhipsterSim::new().run(&circuit, &mut qh);
        prop_assert!(reference.max_diff_up_to_phase(&qh) < 1e-9);

        let mut lq = StateVector::uniform_superposition(5);
        qcemu_baselines::LiquidSim::new().run(&circuit, &mut lq);
        prop_assert!(reference.max_diff_up_to_phase(&lq) < 1e-8);
    }

    #[test]
    fn xor_and_affine_maps_match_simulation(mult in 1u64..8, offset in 0u64..8, xor in 0u64..8) {
        // Affine-ish bijections over 3 bits: x -> (odd*x + offset) ^ xor mod 8.
        let odd = mult | 1;
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 3);
        pb.hadamard_all(x);
        pb.gates(|c| { c.cphase(0, 2, 0.8); }); // some phase structure
        pb.classical(stdops::apply_classical_fn("affine", vec![x], move |v| {
            v[0] = ((odd.wrapping_mul(v[0]).wrapping_add(offset)) ^ xor) & 7;
        }));
        let program = pb.build().unwrap();
        let init = StateVector::zero_state(3);
        let emulated = Emulator::new().run(&program, init.clone()).unwrap();
        prop_assert!((emulated.norm() - 1.0).abs() < 1e-10);
        // Brute-force reference: permute amplitudes by the same map.
        let mut pre = StateVector::zero_state(3);
        for q in 0..3 { pre.apply(&Gate::h(q)); }
        pre.apply(&Gate::cphase(0, 2, 0.8));
        let mut expect = vec![qcemu_linalg::C64::ZERO; 8];
        for (i, amp) in pre.amplitudes().iter().enumerate() {
            let j = (((odd.wrapping_mul(i as u64).wrapping_add(offset)) ^ xor) & 7) as usize;
            expect[j] = *amp;
        }
        prop_assert!(max_abs_diff(emulated.amplitudes(), &expect) < 1e-12);
    }

    #[test]
    fn qft_circuit_equals_fft_for_any_input(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 6;
        let input = qcemu_linalg::random_state(1 << n, &mut rng);
        let mut circuit_path = StateVector::from_amplitudes(input.clone());
        circuit_path.apply_circuit(&qft_circuit(n));
        let mut fft_path = input;
        qcemu_fft::qft_convention(&mut fft_path);
        prop_assert!(max_abs_diff(circuit_path.amplitudes(), &fft_path) < 1e-9);
        prop_assert!((norm2(&fft_path) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn adders_add_for_all_operands(a in 0u64..64, b in 0u64..64) {
        let m = 6;
        let ad = qcemu_revarith::adder(m, true);
        let mut word = 0u64;
        word = ad.a.set(word, a);
        word = ad.b.set(word, b);
        let out = qcemu_revarith::run_classical(&ad.circuit, word);
        prop_assert_eq!(ad.b.get(out), (a + b) % 64);
        prop_assert_eq!(ad.a.get(out), a);
        prop_assert_eq!((out >> ad.carry_out.unwrap()) & 1, (a + b) / 64);
    }

    #[test]
    fn dividers_divide_for_all_operands(a in 0u64..32, b in 1u64..32) {
        let m = 5;
        let dc = qcemu_revarith::divider(m);
        let mut word = 0u64;
        word = dc.a.set(word, a);
        word = dc.b.set(word, b);
        let out = qcemu_revarith::run_classical(&dc.circuit, word);
        prop_assert_eq!(dc.q.get(out), a / b);
        prop_assert_eq!(dc.r.slice(0, m).get(out), a % b);
    }
}

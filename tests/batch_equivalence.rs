//! Batched-execution harness: the batch axis must be *invisible* to every
//! observable. A [`BatchStateVector`] advanced through batch-major kernels
//! must agree amplitude-for-amplitude (≤1e-12) with N independent
//! sequential runs — across gate classes, fusion on/off, SIMD and
//! forced-scalar backends, and ragged batch sizes — and batched sampling
//! must reproduce each member's seeded sample stream bit-for-bit.
//!
//! Also covers the satellite properties: the [`BatchExecutor`] plan cache
//! misses exactly once per program *structure* (not per instance, not per
//! run), a seeded chi-square test pins the sampler to a known 3-qubit
//! distribution, and [`CostModel::calibrated`] stays finite, positive and
//! thread-consistent under `force_scalar`.

use proptest::prelude::*;
use qcemu::prelude::*;
use qcemu_core::RotationOp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex, MutexGuard};

/// Ragged batch widths: 1 (degenerate), sub-lane (3), exactly one AVX2
/// register of complex lanes (4), one-past (5), and a multi-register run
/// with a scalar tail (17).
const RAGGED: [usize; 5] = [1, 3, 4, 5, 17];

/// Serialises tests that toggle or depend on the global SIMD switch.
fn scalar_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: forces the scalar backend for the guard's lifetime.
struct ForcedScalar(#[allow(dead_code)] MutexGuard<'static, ()>);
impl ForcedScalar {
    fn engage() -> ForcedScalar {
        let g = scalar_lock();
        qcemu_linalg::simd::force_scalar(true);
        ForcedScalar(g)
    }
}
impl Drop for ForcedScalar {
    fn drop(&mut self) {
        qcemu_linalg::simd::force_scalar(false);
    }
}

/// Strategy: a random circuit on `n` qubits over the full gate zoo —
/// real (H, Ry), diagonal (Rz, phase, cphase), permutation (X, CNOT,
/// Toffoli, SWAP) and generic unitaries all take distinct kernel paths.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate =
        (0..9usize, 0..n, 0..n, 0..n, -3.0f64..3.0).prop_map(move |(kind, q1, q2, q3, theta)| {
            let distinct2 = |a: usize, b: usize| if a == b { (a, (b + 1) % n) } else { (a, b) };
            let (a, b) = distinct2(q1, q2);
            match kind {
                0 => Gate::h(a),
                1 => Gate::x(a),
                2 => Gate::rz(a, theta),
                3 => Gate::ry(a, theta),
                4 => Gate::phase(a, theta),
                5 => Gate::cnot(a, b),
                6 => Gate::cphase(a, b, theta),
                7 => Gate::swap(a, b),
                _ => {
                    let c = if q3 == a || q3 == b { (b + 1) % n } else { q3 };
                    if c != a && c != b {
                        Gate::toffoli(a, c, b)
                    } else {
                        Gate::ry(a, theta)
                    }
                }
            }
        });
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Distinct member start states: basis states walked through the space so
/// no two members coincide (until the dimension wraps).
fn member_states(n: usize, batch: usize) -> Vec<StateVector> {
    (0..batch)
        .map(|j| StateVector::basis_state(n, (j * 3 + 1) % (1 << n)))
        .collect()
}

/// Runs `circuit` batched and per-member under `config`; asserts the
/// batched result matches every sequential member ≤1e-12.
fn assert_batched_matches_sequential(circuit: &Circuit, config: &SimConfig, batch: usize) {
    let n = circuit.n_qubits();
    let starts = member_states(n, batch);
    let mut bsv = BatchStateVector::from_states(&starts);
    bsv.run(circuit, config);
    for (j, start) in starts.iter().enumerate() {
        let mut reference = start.clone();
        reference.run(circuit, config);
        let diff = bsv.member_max_diff(j, &reference);
        assert!(
            diff <= 1e-12,
            "member {j}/{batch} deviates by {diff:.3e} (fusion: {:?})",
            config.fusion
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole equivalence: batched ≡ N independent runs over random
    /// circuits, fused and unfused, at every ragged batch width, on the
    /// build's default backend.
    #[test]
    fn batched_run_matches_sequential_members(circuit in random_circuit(6, 30)) {
        let _shared = scalar_lock();
        for config in [
            SimConfig::unfused(),
            SimConfig::fused(3),
            SimConfig::fused(5),
            SimConfig::segmented(),
        ] {
            for &batch in &RAGGED {
                assert_batched_matches_sequential(&circuit, &config, batch);
            }
        }
    }

    /// Same equivalence with SIMD forced off: the scalar batch kernels
    /// must be just as invisible as the vectorised ones.
    #[test]
    fn batched_run_matches_sequential_members_forced_scalar(
        circuit in random_circuit(5, 20)
    ) {
        let _scalar = ForcedScalar::engage();
        for config in [
            SimConfig::unfused(),
            SimConfig::fused(4),
            SimConfig::segmented(),
        ] {
            for &batch in &RAGGED {
                assert_batched_matches_sequential(&circuit, &config, batch);
            }
        }
    }

    /// Satellite: the plan cache is structure-keyed. Rebuilding the whole
    /// ensemble from scratch (fresh instance ids, fresh closures) and
    /// re-running must not re-plan; widening the register must.
    #[test]
    fn plan_cache_misses_once_per_structure(
        (m, batch, scale) in (2usize..5, 1usize..6, 0.1f64..0.9)
    ) {
        let exec = BatchExecutor::new();
        for round in 0..3 {
            let members = sweep_members(m, batch, scale);
            let out = exec
                .run(&members, BatchStateVector::zero_state(members[0].n_qubits(), batch))
                .unwrap();
            prop_assert!((out.member_norm(0) - 1.0).abs() < 1e-9);
            let _ = round;
            prop_assert_eq!(exec.plan_cache_misses(), 1);
        }
        // A different qubit count is a different structure: new entry.
        let widened = sweep_members(m + 1, batch, scale);
        exec.run(&widened, BatchStateVector::zero_state(widened[0].n_qubits(), batch))
            .unwrap();
        prop_assert_eq!(exec.plan_cache_misses(), 2);
        // …and the original structure is still (or again) planned exactly once.
        let members = sweep_members(m, batch, scale);
        exec.run(&members, BatchStateVector::zero_state(members[0].n_qubits(), batch))
            .unwrap();
        prop_assert!(exec.plan_cache_misses() <= 3);
    }
}

/// A parameter-sweep ensemble: identical structure, per-member rotation
/// closure — the workload the batch executor exists for.
fn sweep_members(m: usize, batch: usize, scale: f64) -> Vec<QuantumProgram> {
    (0..batch)
        .map(|j| {
            let s = scale + 0.03 * j as f64;
            let mut pb = ProgramBuilder::new();
            let x = pb.register("x", m);
            let ind = pb.register("ind", 1);
            pb.hadamard_all(x);
            pb.rotation(RotationOp {
                name: "encode".into(),
                x,
                target: ind,
                angle: Arc::new(move |v| {
                    let f = s * (v as f64 + 0.5) / (1u64 << m) as f64;
                    2.0 * f.min(1.0).sqrt().asin()
                }),
                gate_impl: None,
            });
            pb.gates(|c| {
                for q in 0..m {
                    c.push(Gate::h(q));
                    c.push(Gate::cnot(q, m));
                }
            });
            pb.build().unwrap()
        })
        .collect()
}

/// BatchExecutor vs solo HybridExecutor on the emulated-rotation sweep,
/// on the default backend and forced scalar: the batched Givens sweep
/// (tabulated, per-lane coefficients) must match the per-member kernel.
#[test]
fn batch_executor_rotation_sweep_matches_solo_runs() {
    let _shared = scalar_lock();
    rotation_sweep_case();
}

#[test]
fn batch_executor_rotation_sweep_matches_solo_runs_forced_scalar() {
    let _scalar = ForcedScalar::engage();
    rotation_sweep_case();
}

fn rotation_sweep_case() {
    for &batch in &RAGGED {
        let members = sweep_members(5, batch, 0.25);
        let n = members[0].n_qubits();
        let out = BatchExecutor::new()
            .run(&members, BatchStateVector::zero_state(n, batch))
            .unwrap();
        let solo = HybridExecutor::new();
        for (j, prog) in members.iter().enumerate() {
            let reference = solo.run(prog, StateVector::zero_state(n)).unwrap();
            let diff = out.member_max_diff(j, &reference);
            assert!(diff <= 1e-12, "member {j}/{batch} deviates by {diff:.3e}");
        }
    }
}

/// Batched sampling is bit-identical to per-member seeded sampling: the
/// batch axis must not perturb a single drawn shot.
#[test]
fn batched_sampling_reproduces_per_member_streams() {
    let mut circuit = Circuit::new(4);
    for q in 0..4 {
        circuit.push(Gate::h(q));
    }
    circuit.push(Gate::cnot(0, 2));
    circuit.push(Gate::ry(1, 0.7));
    circuit.push(Gate::cphase(2, 3, 1.1));

    let starts = member_states(4, 7);
    let mut bsv = BatchStateVector::from_states(&starts);
    bsv.run(&circuit, &SimConfig::fused(3));

    const SHOTS: usize = 400;
    const BASE_SEED: u64 = 0xC0FFEE;
    let shots = measure::sample_shots_batch(&bsv, SHOTS, BASE_SEED);
    let hists = measure::sample_histogram_batch(&bsv, SHOTS, BASE_SEED);
    assert_eq!(shots.len(), 7);
    for (j, start) in starts.iter().enumerate() {
        let mut reference = start.clone();
        reference.run(&circuit, &SimConfig::fused(3));
        let mut rng = StdRng::seed_from_u64(BASE_SEED + j as u64);
        let expect = measure::sample_shots(&reference, SHOTS, &mut rng);
        assert_eq!(shots[j], expect, "member {j} sample stream diverged");
        let mut rng = StdRng::seed_from_u64(BASE_SEED + j as u64);
        let expect_hist = measure::sample_histogram(&reference, SHOTS, &mut rng);
        assert_eq!(hists[j], expect_hist, "member {j} histogram diverged");
        // The histogram is exactly the binned shot stream.
        let mut binned = vec![0usize; reference.dim()];
        for &s in &shots[j] {
            binned[s] += 1;
        }
        assert_eq!(hists[j], binned);
    }
    // Distinct members get distinct RNG streams even from identical states.
    let same = BatchStateVector::broadcast(&bsv.member(0), 3);
    let per_member = measure::sample_shots_batch(&same, SHOTS, BASE_SEED);
    assert_ne!(per_member[0], per_member[1]);
    assert_ne!(per_member[1], per_member[2]);
}

/// Satellite: seeded chi-square goodness-of-fit on a *known* 3-qubit
/// distribution. With 8 bins (7 degrees of freedom) the 99.9% critical
/// value is 24.32 — a correct sampler fails with p < 0.001, and the seed
/// makes the verdict deterministic.
#[test]
fn sampler_passes_chi_square_on_known_distribution() {
    let probs = [0.30, 0.02, 0.08, 0.15, 0.05, 0.20, 0.10, 0.10];
    let amps: Vec<C64> = probs.iter().map(|&p: &f64| c64(p.sqrt(), 0.0)).collect();
    let sv = StateVector::from_amplitudes(amps);

    const SHOTS: usize = 8000;
    const CHI2_999_DF7: f64 = 24.32;
    let chi2 = |hist: &[usize]| -> f64 {
        hist.iter()
            .zip(probs.iter())
            .map(|(&obs, &p)| {
                let exp = SHOTS as f64 * p;
                (obs as f64 - exp).powi(2) / exp
            })
            .sum()
    };

    let mut rng = StdRng::seed_from_u64(1234);
    let hist = measure::sample_histogram(&sv, SHOTS, &mut rng);
    assert_eq!(hist.iter().sum::<usize>(), SHOTS);
    let x2 = chi2(&hist);
    assert!(x2 < CHI2_999_DF7, "chi-square {x2:.2} ≥ {CHI2_999_DF7}");

    // Every member of a batched ensemble passes independently, on its own
    // stream.
    let batch = BatchStateVector::broadcast(&sv, 4);
    let hists = measure::sample_histogram_batch(&batch, SHOTS, 1234);
    for (j, h) in hists.iter().enumerate() {
        let x2 = chi2(h);
        assert!(x2 < CHI2_999_DF7, "member {j}: chi-square {x2:.2}");
    }
    assert_ne!(hists[0], hists[1], "member streams must be independent");

    // And a deliberately wrong model is rejected: scoring the uniform
    // hypothesis against these skewed counts must blow past the
    // threshold, so the test has actual statistical power.
    let uniform_exp = SHOTS as f64 / 8.0;
    let x2_wrong: f64 = hist
        .iter()
        .map(|&obs| (obs as f64 - uniform_exp).powi(2) / uniform_exp)
        .sum();
    assert!(x2_wrong > CHI2_999_DF7, "no power: {x2_wrong:.2}");
}

/// Satellite: calibration stays sane with SIMD forced off — every rate
/// finite and positive — and the `OnceLock` cache hands every thread the
/// same model.
#[test]
fn calibrated_cost_model_is_finite_positive_and_thread_consistent() {
    let _scalar = ForcedScalar::engage();
    let models: Vec<CostModel> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(CostModel::calibrated)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let rates = |m: &CostModel| {
        [
            m.entry_rate,
            m.fused_entry_rate,
            m.cache_rate,
            m.table_rate,
            m.fuse_per_gate,
            m.qpe.gate_rate,
            m.qpe.build_rate,
            m.qpe.gemm_flops,
            m.qpe.eig_flops,
        ]
    };
    for m in &models {
        for r in rates(m) {
            assert!(r.is_finite() && r > 0.0, "bad calibrated rate {r}");
        }
    }
    let first = rates(&models[0]);
    for m in &models[1..] {
        assert_eq!(rates(m), first, "OnceLock must hand out one model");
    }
}

/// Batched execution must be thread-count invariant: with the kernel
/// parallel threshold forced to 1 (every member sweep dispatches to the
/// worker pool) and the visible budget pinned to {1, 2, 4}, batched ≡
/// sequential members must keep holding. CI also runs this harness
/// under `QCEMU_THREADS=4` so the pool genuinely has workers.
#[test]
fn batch_equivalence_across_forced_thread_counts() {
    let _shared = scalar_lock();
    let circuit = qcemu_sim::qft_circuit(8);
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            for config in [
                SimConfig::unfused().with_par_threshold(1),
                SimConfig::fused(3).with_par_threshold(1),
                SimConfig::segmented().with_par_threshold(1),
            ] {
                for &batch in &[1usize, 3, 8] {
                    assert_batched_matches_sequential(&circuit, &config, batch);
                }
            }
        });
    }
}

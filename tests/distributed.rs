//! Integration tests for the distributed substrate: the virtual cluster
//! must reproduce single-process results exactly for both the simulation
//! path (distributed gate application) and the emulation path (distributed
//! FFT), under both communication policies.

use qcemu_cluster::{distributed_fft, run, CommPolicy, DistributedState, MachineModel};
use qcemu_fft::{Direction, Normalization};
use qcemu_linalg::{max_abs_diff, random_state};
use qcemu_sim::circuits::{entangle_circuit, qft_circuit, tfim_trotter_step, TfimParams};
use qcemu_sim::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn distributed_qft_simulation_equals_local_for_all_policies() {
    let n = 9;
    let circuit = qft_circuit(n);
    let mut rng = StdRng::seed_from_u64(1);
    let input = StateVector::from_amplitudes(random_state(1 << n, &mut rng));
    let mut expect = input.clone();
    expect.apply_circuit(&circuit);

    for p in [2usize, 4, 8] {
        for policy in [CommPolicy::Specialized, CommPolicy::Generic] {
            let input_ref = &input;
            let circuit_ref = &circuit;
            let results = run(p, MachineModel::stampede(), move |comm| {
                let mut ds = DistributedState::from_full(input_ref, comm);
                ds.apply_circuit(circuit_ref, comm, policy);
                ds.gather(comm)
            });
            let got = results[0].0.as_ref().unwrap();
            assert!(
                got.max_diff_up_to_phase(&expect) < 1e-9,
                "p = {p}, {policy:?}"
            );
        }
    }
}

#[test]
fn distributed_fft_emulation_equals_local_qft() {
    // The full Fig. 3 correctness statement: distributed FFT output ==
    // gate-level QFT output, across rank counts.
    let n = 10;
    let mut rng = StdRng::seed_from_u64(2);
    let input = random_state(1 << n, &mut rng);

    let mut gate_path = StateVector::from_amplitudes(input.clone());
    gate_path.apply_circuit(&qft_circuit(n));

    for p in [1usize, 2, 4] {
        let input_ref = &input;
        let results = run(p, MachineModel::stampede(), move |comm| {
            let chunk = input_ref.len() / p;
            let mut local = input_ref[comm.rank() * chunk..(comm.rank() + 1) * chunk].to_vec();
            distributed_fft(&mut local, n, Direction::Inverse, Normalization::Sqrt, comm);
            local
        });
        let mut gathered = Vec::new();
        for (piece, _) in &results {
            gathered.extend_from_slice(piece);
        }
        assert!(
            max_abs_diff(&gathered, gate_path.amplitudes()) < 1e-9,
            "p = {p}: distributed FFT diverges from the QFT circuit"
        );
    }
}

#[test]
fn specialized_policy_sends_strictly_less_on_phase_heavy_circuits() {
    // TFIM + entangle + QFT: diagonal-rich circuits where the paper's
    // communication avoidance matters.
    let n = 8;
    let mut big = qcemu_sim::Circuit::new(n);
    big.extend(&tfim_trotter_step(n, TfimParams::default()));
    big.extend(&entangle_circuit(n));
    big.extend(&qft_circuit(n));

    let total_bytes = |policy: CommPolicy| -> u64 {
        let circuit = &big;
        let results = run(4, MachineModel::stampede(), move |comm| {
            let mut ds = DistributedState::zero_state(n, comm);
            ds.apply_circuit(circuit, comm, policy);
            comm.bytes_sent()
        });
        results.iter().map(|r| r.0).sum()
    };
    let spec = total_bytes(CommPolicy::Specialized);
    let gen = total_bytes(CommPolicy::Generic);
    assert!(
        spec < gen,
        "specialised policy must communicate less: {spec} vs {gen}"
    );
}

#[test]
fn remapped_execution_matches_serial_and_sends_fewer_bytes() {
    // The communication-avoiding path on a mixed workload (TFIM + GHZ +
    // QFT): planned remap + fusion must agree with single-node execution
    // and undercut the per-gate exchange baseline on bytes sent.
    let n = 8;
    let mut big = qcemu_sim::Circuit::new(n);
    big.extend(&tfim_trotter_step(n, TfimParams::default()));
    big.extend(&entangle_circuit(n));
    big.extend(&qft_circuit(n));

    let mut rng = StdRng::seed_from_u64(3);
    let input = StateVector::from_amplitudes(random_state(1 << n, &mut rng));
    let mut expect = input.clone();
    expect.apply_circuit(&big);

    for p in [2usize, 4, 8] {
        let circuit = &big;
        let input_ref = &input;
        let run_mode = |remap: bool| {
            let results = run(p, MachineModel::stampede(), move |comm| {
                let mut ds = DistributedState::from_full(input_ref, comm);
                if remap {
                    ds.run_circuit(circuit, &qcemu_sim::FusionPolicy::greedy(), comm);
                } else {
                    ds.apply_circuit(circuit, comm, CommPolicy::Specialized);
                }
                (ds.gather(comm), comm.bytes_sent())
            });
            let state = results[0].0 .0.clone().unwrap();
            let bytes: u64 = results.iter().map(|r| r.0 .1).sum();
            (state, bytes)
        };
        let (planned, planned_bytes) = run_mode(true);
        let (per_gate, per_gate_bytes) = run_mode(false);
        assert!(
            planned.max_diff_up_to_phase(&expect) < 1e-12,
            "p = {p}: planned path diverges"
        );
        assert!(per_gate.max_diff_up_to_phase(&expect) < 1e-9);
        assert!(
            planned_bytes < per_gate_bytes,
            "p = {p}: remap+fusion must send fewer bytes ({planned_bytes} vs {per_gate_bytes})"
        );
    }
}

#[test]
fn eq5_eq6_models_reproduce_paper_headline_numbers() {
    let m = MachineModel::stampede();
    // §4.3: single-node speedup estimate 28·20/40 = 14.
    assert!((m.single_node_speedup_estimate(28) - 14.0).abs() < 0.1);
    // Weak-scaling speedups stay within the paper's observed 6–15× band
    // (the paper's own congestion-free model is slightly optimistic at
    // large P, see §4.3 discussion).
    for n in 28u32..=36 {
        let p = 1usize << (n - 28);
        let s = m.qft_speedup(n, p);
        assert!(s > 4.0 && s < 25.0, "n = {n}: modelled speedup {s}");
    }
}

#[test]
fn measurement_statistics_survive_distribution() {
    // Gather + register_distribution equals the distribution computed on
    // the never-distributed state.
    let n = 8;
    let circuit = entangle_circuit(n);
    let circuit_ref = &circuit;
    let results = run(4, MachineModel::stampede(), move |comm| {
        let mut ds = DistributedState::zero_state(n, comm);
        ds.apply_circuit(circuit_ref, comm, CommPolicy::Specialized);
        ds.gather(comm)
    });
    let gathered = results[0].0.as_ref().unwrap();
    let dist = gathered.register_distribution(&(0..n).collect::<Vec<_>>());
    assert!((dist[0] - 0.5).abs() < 1e-10);
    assert!((dist[(1 << n) - 1] - 0.5).abs() < 1e-10);
}

//! SIMD ≡ scalar equivalence for every vectorised kernel.
//!
//! The contract behind the `simd` feature gate: whatever path the
//! runtime dispatch picks — AVX2+FMA, or the scalar fallback — every
//! kernel produces the same state to 1e-12. Random states, targets both
//! below `log2(LANES)` (where the pair runs are too short to vectorise
//! and the per-pair scalar path must engage) and above it (the
//! contiguous-run vector path), random controls, and fused blocks at
//! every width 1..=6.
//!
//! On hosts without AVX2 (or builds without `--features simd`) both
//! sides of each comparison run the scalar path and the tests degenerate
//! to scalar self-consistency — they still pass, keeping the suite
//! portable. The forced-fallback test at the bottom pins the scalar
//! path explicitly so it stays exercised on AVX hosts too.

use proptest::prelude::*;
use qcemu_linalg::{max_abs_diff, random_state, simd, C64};
use qcemu_sim::kernels::apply_gate_slice;
use qcemu_sim::{Circuit, FusionPolicy, Gate, GateOp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serialises tests that flip the global [`simd::force_scalar`] toggle,
/// so a concurrently running comparison never sees the flag mid-flip.
static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

/// Applies `f` twice to clones of `input` — once forced scalar, once on
/// the native path — and returns (scalar, native).
fn scalar_vs_native(input: &[C64], f: impl Fn(&mut Vec<C64>)) -> (Vec<C64>, Vec<C64>) {
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    simd::force_scalar(true);
    let mut scalar = input.to_vec();
    f(&mut scalar);
    simd::force_scalar(false);
    let mut native = input.to_vec();
    f(&mut native);
    (scalar, native)
}

/// A random single-qubit gate drawn from every structural class the
/// kernels specialise (general / diagonal / permutation).
fn gate_for(kind: usize, target: usize, controls: Vec<usize>, theta: f64) -> Gate {
    let op = match kind {
        0 => GateOp::H,
        1 => GateOp::Rx(theta),
        2 => GateOp::Ry(theta),
        3 => GateOp::Rz(theta),
        4 => GateOp::Phase(theta),
        5 => GateOp::S,
        6 => GateOp::X,
        _ => GateOp::T,
    };
    Gate::Unary {
        op,
        target,
        controls,
    }
}

/// Distinct qubit picks from an `n`-qubit register, derived from a seed.
fn pick_qubits(n: usize, how_many: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for i in (1..order.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        order.swap(i, (s as usize) % (i + 1));
    }
    order.truncate(how_many);
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-gate kernels: every structural class, targets spanning the
    /// short-run (< log2(LANES)) and contiguous-run regimes, 0–2
    /// controls.
    #[test]
    fn single_gate_kernels_simd_matches_scalar(
        kind in 0..8usize,
        n in 4..9usize,
        qubit_seed in 0..1000u64,
        n_controls in 0..3usize,
        theta in -3.0f64..3.0,
        state_seed in 0..1000u64,
    ) {
        let qs = pick_qubits(n, n_controls + 1, qubit_seed);
        let gate = gate_for(kind, qs[0], qs[1..].to_vec(), theta);
        let mut rng = StdRng::seed_from_u64(state_seed);
        let input = random_state(1usize << n, &mut rng);
        let (scalar, native) = scalar_vs_native(&input, |s| apply_gate_slice(s, &gate));
        prop_assert!(
            max_abs_diff(&scalar, &native) < 1e-12,
            "kernel mismatch for {gate:?} on {n} qubits: {}",
            max_abs_diff(&scalar, &native)
        );
    }

    /// SWAP kernel (two targets) across low and high qubit positions.
    #[test]
    fn swap_kernel_simd_matches_scalar(
        n in 4..9usize,
        qubit_seed in 0..1000u64,
        controlled_sel in 0..2usize,
        state_seed in 0..1000u64,
    ) {
        let controlled = controlled_sel == 1;
        let qs = pick_qubits(n, 3, qubit_seed);
        let gate = Gate::Swap {
            a: qs[0],
            b: qs[1],
            controls: if controlled { vec![qs[2]] } else { vec![] },
        };
        let mut rng = StdRng::seed_from_u64(state_seed);
        let input = random_state(1usize << n, &mut rng);
        let (scalar, native) = scalar_vs_native(&input, |s| apply_gate_slice(s, &gate));
        prop_assert!(max_abs_diff(&scalar, &native) < 1e-12, "{gate:?}");
    }

    /// Fused blocks at every width 1..=6 (gather–matvec–scatter for the
    /// dense ones, in-cache replay for the general ones), checked both
    /// SIMD-vs-scalar and fused-vs-unfused.
    #[test]
    fn fused_blocks_simd_matches_scalar_at_all_widths(
        k in 1..7usize,
        n in 7..9usize,
        qubit_seed in 0..1000u64,
        dense_sel in 0..2usize,
        theta in -3.0f64..3.0,
        state_seed in 0..1000u64,
    ) {
        // A gate run confined to k window qubits; enough general gates to
        // trip the dense-classify threshold when `dense` is set.
        let dense = dense_sel == 1;
        let mut window = pick_qubits(n, k, qubit_seed);
        window.sort_unstable();
        let reps = if dense { (1usize << k) / k + 1 } else { 2 };
        let mut c = Circuit::new(n);
        for r in 0..reps {
            for (i, &q) in window.iter().enumerate() {
                match (r + i) % 3 {
                    0 => { c.h(q); },
                    1 => { c.ry(q, theta); },
                    _ => { c.rz(q, theta * 0.7); },
                };
                if i + 1 < window.len() {
                    c.cnot(q, window[i + 1]);
                }
            }
        }
        let fused = c.fuse(&FusionPolicy::Greedy { max_fused_qubits: k });
        let mut rng = StdRng::seed_from_u64(state_seed);
        let input = random_state(1usize << n, &mut rng);
        let (scalar, native) = scalar_vs_native(&input, |s| fused.apply_slice(s));
        prop_assert!(
            max_abs_diff(&scalar, &native) < 1e-12,
            "fused k={k} mismatch: {}",
            max_abs_diff(&scalar, &native)
        );
        // And the fused result still equals plain gate-by-gate execution.
        let mut unfused = input;
        for g in c.gates() {
            apply_gate_slice(&mut unfused, g);
        }
        prop_assert!(max_abs_diff(&native, &unfused) < 1e-11);
    }

    /// The radix-2 FFT (emulation path) agrees across kernels and
    /// directions.
    #[test]
    fn fft_simd_matches_scalar(
        log2n in 2..12usize,
        inverse_sel in 0..2usize,
        state_seed in 0..1000u64,
    ) {
        use qcemu_fft::{fft, Direction, Normalization};
        let dir = if inverse_sel == 1 { Direction::Inverse } else { Direction::Forward };
        let mut rng = StdRng::seed_from_u64(state_seed);
        let input = random_state(1usize << log2n, &mut rng);
        let (scalar, native) =
            scalar_vs_native(&input, |s| fft(s, dir, Normalization::Sqrt));
        prop_assert!(
            max_abs_diff(&scalar, &native) < 1e-12,
            "fft mismatch at n=2^{log2n}"
        );
    }
}

/// The scalar path must stay exercised (and correct) on AVX hosts: force
/// the fallback and check a full mixed circuit against an independently
/// computed reference.
#[test]
fn forced_fallback_runs_the_scalar_path_correctly() {
    let _guard = SCALAR_TOGGLE.lock().unwrap();
    let n = 8;
    let mut c = Circuit::new(n);
    c.h(0)
        .h(7)
        .cnot(0, 7)
        .rz(5, 0.3)
        .cphase(2, 6, -0.9)
        .swap(1, 6);
    c.toffoli(0, 3, 5).ry(4, 1.1).phase(7, 0.25);
    let fused = c.fuse(&FusionPolicy::greedy());

    let mut rng = StdRng::seed_from_u64(77);
    let input = random_state(1usize << n, &mut rng);

    simd::force_scalar(true);
    assert!(
        !simd::simd_active(),
        "force_scalar must disable the vector path"
    );
    let mut gate_by_gate = input.clone();
    for g in c.gates() {
        apply_gate_slice(&mut gate_by_gate, g);
    }
    let mut fused_scalar = input.clone();
    fused.apply_slice(&mut fused_scalar);
    simd::force_scalar(false);

    // Scalar fused ≡ scalar unfused …
    assert!(max_abs_diff(&gate_by_gate, &fused_scalar) < 1e-12);
    // … and ≡ whatever the native path computes.
    let mut native = input;
    for g in c.gates() {
        apply_gate_slice(&mut native, g);
    }
    assert!(max_abs_diff(&gate_by_gate, &native) < 1e-12);
}

/// `SimConfig::par_threshold` reaches the kernels: forcing the parallel
/// threshold to 1 (every kernel call goes through the parallel dispatch)
/// must not change any state, fused or unfused.
#[test]
fn par_threshold_override_preserves_semantics() {
    use qcemu_sim::{SimConfig, StateVector};
    let n = 10;
    let c = qcemu_sim::qft_circuit(n);
    let mut reference = StateVector::uniform_superposition(n);
    reference.run(&c, &SimConfig::unfused());
    for config in [
        SimConfig::unfused().with_par_threshold(1),
        SimConfig::fused(4).with_par_threshold(1),
        SimConfig::fused(4).with_par_threshold(usize::MAX),
    ] {
        let mut sv = StateVector::uniform_superposition(n);
        sv.run(&c, &config);
        assert!(
            sv.max_diff_up_to_phase(&reference) < 1e-12,
            "config {config:?} diverged"
        );
    }
}

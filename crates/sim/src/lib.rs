//! # qcemu-sim
//!
//! Gate-level state-vector simulator — the "our simulator" baseline of
//! *High Performance Emulation of Quantum Circuits* (SC 2016), against
//! which the emulator (`qcemu-core`) demonstrates its shortcuts, and which
//! itself outperforms generic simulators by exploiting gate structure
//! (paper §4.5, Figs. 4–6).
//!
//! Contents:
//! * [`gate`] — Table 1 gate set with arbitrary controls and structural
//!   classification (diagonal / permutation / general);
//! * [`kernels`] — specialised amplitude kernels: a controlled phase shift
//!   touches exactly ¼ of the state, X gates move data without arithmetic,
//!   controls shrink the index space instead of being checked per entry;
//!   all rayon-parallel over disjoint index sets; plus the fused blocked
//!   kernels ([`kernels::apply_fused`] and friends);
//! * [`fusion`] — the gate-fusion engine: merge runs of adjacent gates
//!   into k-qubit blocks applied in one cache-blocked sweep, behind a
//!   [`SimConfig`]/[`FusionPolicy`] (see `docs/PERFORMANCE.md`);
//! * [`segment`] — cache-blocked segment sweeps: runs of block-compatible
//!   gates replayed against one L2-resident block of amplitudes at a
//!   time, turning d full-state traversals into ~1 ([`SegmentPolicy`]);
//! * [`mps`] — bond-truncated matrix-product-state simulation: O(χ³)
//!   per two-qubit gate instead of Θ(2ⁿ) per sweep, with an auditable
//!   truncation-error accumulator ([`MpsState`], [`MpsPolicy`]);
//! * [`statevector`] — the 2ⁿ-amplitude wave function (paper Eq. 1);
//! * [`circuit`] — gate sequences with inverse / controlled / remap
//!   transforms (uncomputation and QPE building blocks);
//! * [`circuits`] — QFT, entangle and TFIM-Trotter benchmark generators;
//! * [`measure`] — shot sampling, collapse, and exact expectations;
//! * [`batch`] — ensembles of state vectors in a batch-major interleaved
//!   layout, advanced by batched kernel drivers that vectorise across the
//!   batch dimension and pay per-gate fixed costs once per ensemble;
//! * [`dense`] — circuit → dense unitary (QPE emulation front-end) and
//!   (controlled) dense-operator application to registers.
//!
//! ### Qubit convention
//! Little-endian throughout: qubit `k` is bit `k` of the basis index, so
//! `|q_{n−1} … q_1 q_0⟩` has index `Σ q_k 2^k`.

pub mod batch;
pub mod circuit;
pub mod circuits;
pub mod decompose;
pub mod dense;
pub mod fusion;
pub mod gate;
pub mod kernels;
pub mod measure;
pub mod mps;
pub mod segment;
pub mod statevector;

pub use batch::{apply_gate_batch, BatchStateVector};
pub use circuit::{Circuit, CircuitCensus};
pub use circuits::{
    entangle_circuit, inverse_qft_circuit, qft_circuit, qft_circuit_no_swap, qft_gate_count,
    tfim_gate_count, tfim_trotter_step, TfimParams,
};
pub use decompose::{decompose_circuit, decompose_gate, is_elementary, mat2_sqrt};
pub use dense::{apply_dense_to_register, circuit_to_dense};
pub use fusion::{
    fuse_circuit, fuse_circuit_with_barriers, FusedCircuit, FusedGate, FusedOp, FusedStructure,
    FusionCensus, FusionPolicy, SimConfig, DEFAULT_MAX_FUSED_QUBITS,
};
pub use gate::{Gate, GateOp, GateStructure, Mat2};
pub use kernels::{
    apply_fused, apply_fused_diagonal, apply_fused_permutation, apply_gate_slice,
    fused_touched_entries, scatter_index, touched_entries, MAX_FUSED_QUBITS, PAR_THRESHOLD,
};
pub use mps::{
    estimate_mps_cost, MpsCostEstimate, MpsPolicy, MpsState, DEFAULT_MAX_BOND, MPS_EXACT_TOL,
};

pub use measure::{
    expectation_z, expectation_z_sampled, expectation_z_string, measure_all, measure_qubit,
    prob_qubit_one, sample_histogram, sample_histogram_batch, sample_once, sample_shots,
    sample_shots_batch,
};
pub use segment::{segment_circuit, SegmentPolicy, SegmentedCircuit, DEFAULT_BLOCK_BITS};
pub use statevector::StateVector;

//! Dense-operator bridging: circuits ↔ 2ⁿ×2ⁿ matrices.
//!
//! The QPE emulation path (paper §3.3) starts by "building a (dense) matrix
//! representation of the unitary operator U" at cost O(G·2²ⁿ): we apply the
//! circuit to every basis column in parallel. The resulting `CMatrix` feeds
//! repeated squaring or the eigensolver, and can be applied — optionally
//! controlled — to a register inside a larger state.

use crate::circuit::Circuit;
use crate::kernels::{apply_gate_slice, scatter_index};
use qcemu_linalg::{CMatrix, C64};
use rayon::prelude::*;

/// Builds the dense 2ⁿ×2ⁿ unitary of a circuit by simulating every basis
/// column (embarrassingly parallel, O(G·2²ⁿ) as in the paper).
pub fn circuit_to_dense(circuit: &Circuit) -> CMatrix {
    let n = circuit.n_qubits();
    let dim = 1usize << n;
    // Column-major staging: column j is the circuit applied to |j⟩.
    let cols: Vec<Vec<C64>> = (0..dim)
        .into_par_iter()
        .map(|j| {
            let mut col = vec![C64::ZERO; dim];
            col[j] = C64::ONE;
            for g in circuit.gates() {
                apply_gate_slice(&mut col, g);
            }
            col
        })
        .collect();
    // Assemble row-major.
    let mut m = CMatrix::zeros(dim, dim);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    m
}

/// Applies a dense `2^m × 2^m` operator to the register formed by `bits`
/// (LSB first) of a state vector with `n_qubits` qubits, for every
/// assignment of the remaining qubits, optionally gated on `control`
/// qubits being |1⟩.
///
/// Cost: O(2^{n+m}) complex multiply-adds (2^{n−m} batched mat-vecs).
pub fn apply_dense_to_register(
    state: &mut [C64],
    n_qubits: usize,
    bits: &[usize],
    u: &CMatrix,
    controls: &[usize],
) {
    let m = bits.len();
    let dim = 1usize << m;
    assert_eq!(
        u.shape(),
        (dim, dim),
        "operator does not match register size"
    );
    assert_eq!(state.len(), 1usize << n_qubits, "state length mismatch");
    for &b in bits {
        assert!(b < n_qubits, "register bit out of range");
        assert!(!controls.contains(&b), "control overlaps register");
    }
    let mut all = bits.to_vec();
    all.extend_from_slice(controls);
    all.sort_unstable();
    all.dedup();
    assert_eq!(
        all.len(),
        bits.len() + controls.len(),
        "register/control bits must be distinct"
    );

    // Complement = qubits not in the register (controls included: they are
    // fixed to 1 by masking below).
    let comp: Vec<usize> = (0..n_qubits).filter(|q| !bits.contains(q)).collect();
    let cmask = controls.iter().fold(0usize, |acc, &c| acc | (1usize << c));
    let batches = 1usize << comp.len();

    // Each batch owns a disjoint set of indices (a coset of the register
    // subspace), so parallel batches never alias.
    struct Ptr(*mut C64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(state.as_mut_ptr());
    let process = |c: usize| {
        // Capture the Send+Sync wrapper, not the raw-pointer field.
        let p = &ptr;
        let base = scatter_index(c, &comp);
        if base & cmask != cmask {
            return; // a control qubit is 0 → identity on this coset
        }
        // Gather the register subvector.
        let mut v = vec![C64::ZERO; dim];
        for (val, slot) in v.iter_mut().enumerate() {
            let idx = base | scatter_index(val, bits);
            // SAFETY: distinct batches have distinct `base` complements and
            // therefore disjoint index sets; within a batch we are serial.
            unsafe { *slot = *p.0.add(idx) };
        }
        let y = u.matvec(&v);
        for (val, res) in y.iter().enumerate() {
            let idx = base | scatter_index(val, bits);
            unsafe { *p.0.add(idx) = *res };
        }
    };
    if batches >= 2 && state.len() >= 1 << 12 {
        (0..batches).into_par_iter().for_each(process);
    } else {
        (0..batches).for_each(process);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::qft::qft_circuit;
    use crate::circuits::tfim::{tfim_trotter_step, TfimParams};
    use crate::gate::Gate;
    use crate::statevector::StateVector;
    use qcemu_linalg::{gemm, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_of_single_hadamard() {
        let mut c = Circuit::new(1);
        c.h(0);
        let m = circuit_to_dense(&c);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((m[(0, 0)].re - s).abs() < 1e-14);
        assert!((m[(1, 1)].re + s).abs() < 1e-14);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn dense_of_cnot_is_permutation() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let m = circuit_to_dense(&c);
        // CNOT with control qubit 0 (LSB): |01⟩ ↔ |11⟩, i.e. indices 1 and 3.
        assert_eq!(m[(0, 0)], C64::ONE);
        assert_eq!(m[(3, 1)], C64::ONE);
        assert_eq!(m[(2, 2)], C64::ONE);
        assert_eq!(m[(1, 3)], C64::ONE);
    }

    #[test]
    fn dense_matches_statevector_application() {
        let mut rng = StdRng::seed_from_u64(100);
        let c = tfim_trotter_step(4, TfimParams::default());
        let u = circuit_to_dense(&c);
        assert!(u.is_unitary(1e-10));
        let input = random_state(16, &mut rng);
        let via_matrix = u.matvec(&input);
        let mut sv = StateVector::from_amplitudes(input);
        sv.apply_circuit(&c);
        assert!(qcemu_linalg::max_abs_diff(sv.amplitudes(), &via_matrix) < 1e-11);
    }

    #[test]
    fn dense_composition_equals_circuit_concatenation() {
        let mut c1 = Circuit::new(3);
        c1.h(0).cnot(0, 1);
        let mut c2 = Circuit::new(3);
        c2.cphase(1, 2, 0.4).x(0);
        let mut cat = Circuit::new(3);
        cat.extend(&c1);
        cat.extend(&c2);
        let u_cat = circuit_to_dense(&cat);
        let u_prod = gemm(&circuit_to_dense(&c2), &circuit_to_dense(&c1));
        assert!(u_cat.max_abs_diff(&u_prod) < 1e-11);
    }

    #[test]
    fn apply_dense_full_register_matches_matvec() {
        let mut rng = StdRng::seed_from_u64(101);
        let c = qft_circuit(3);
        let u = circuit_to_dense(&c);
        let input = random_state(8, &mut rng);
        let mut state = input.clone();
        apply_dense_to_register(&mut state, 3, &[0, 1, 2], &u, &[]);
        let expect = u.matvec(&input);
        assert!(qcemu_linalg::max_abs_diff(&state, &expect) < 1e-11);
    }

    #[test]
    fn apply_dense_to_subregister_matches_gate_level() {
        let mut rng = StdRng::seed_from_u64(102);
        // Operator on qubits [1, 3] of a 4-qubit state.
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.3);
        let u = circuit_to_dense(&c);
        let input = random_state(16, &mut rng);

        let mut fast = input.clone();
        apply_dense_to_register(&mut fast, 4, &[1, 3], &u, &[]);

        // Gate-level reference: remap the circuit onto qubits 1, 3.
        let remapped = c.remap_qubits(4, |q| if q == 0 { 1 } else { 3 });
        let mut sv = StateVector::from_amplitudes(input);
        sv.apply_circuit(&remapped);

        assert!(qcemu_linalg::max_abs_diff(&fast, sv.amplitudes()) < 1e-11);
    }

    #[test]
    fn controlled_dense_application() {
        let mut rng = StdRng::seed_from_u64(103);
        let mut c = Circuit::new(2);
        c.h(0).cphase(0, 1, 1.2);
        let u = circuit_to_dense(&c);
        let input = random_state(8, &mut rng);

        // Controlled on qubit 2, register = qubits [0, 1].
        let mut fast = input.clone();
        apply_dense_to_register(&mut fast, 3, &[0, 1], &u, &[2]);

        // Gate-level: controlled circuit.
        let cc = c.controlled_by(2);
        let mut sv = StateVector::from_amplitudes(input);
        sv.apply_circuit(&cc);
        assert!(qcemu_linalg::max_abs_diff(&fast, sv.amplitudes()) < 1e-11);
    }

    #[test]
    fn control_zero_leaves_state_untouched() {
        let mut rng = StdRng::seed_from_u64(104);
        let mut c = Circuit::new(1);
        c.h(0);
        let u = circuit_to_dense(&c);
        // Qubit 1 is |0⟩ in basis states 0 and 1 only.
        let input = random_state(4, &mut rng);
        let mut state = input.clone();
        apply_dense_to_register(&mut state, 2, &[0], &u, &[1]);
        // Coset where control = 0 must be identical.
        assert!(state[0].approx_eq(input[0], 1e-14));
        assert!(state[1].approx_eq(input[1], 1e-14));
        // Coset where control = 1 must be transformed.
        let g = Gate::controlled(crate::gate::GateOp::H, 1, 0);
        let mut sv = StateVector::from_amplitudes(input);
        sv.apply(&g);
        assert!(qcemu_linalg::max_abs_diff(&state, sv.amplitudes()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "does not match register")]
    fn wrong_operator_size_panics() {
        let mut state = vec![C64::ONE; 8];
        let u = CMatrix::identity(2);
        apply_dense_to_register(&mut state, 3, &[0, 1], &u, &[]);
    }

    #[test]
    #[should_panic(expected = "control overlaps register")]
    fn overlapping_control_panics() {
        let mut state = vec![C64::ONE; 8];
        let u = CMatrix::identity(4);
        apply_dense_to_register(&mut state, 3, &[0, 1], &u, &[1]);
    }
}

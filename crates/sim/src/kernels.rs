//! Structure-specialised state-vector kernels.
//!
//! These kernels are the reason the paper's simulator beats qHiPSTER and
//! LIQUi|⟩ (§4.5): instead of one generic sparse-matrix product per gate,
//! each structural class gets its own loop —
//!
//! * **general 2×2**: one butterfly per amplitude pair;
//! * **diagonal**: pure scaling, no pairing; with `d0 = 1` (phase gates)
//!   only the `|1⟩` half is touched — a *controlled* phase therefore
//!   touches exactly a quarter of the state vector, the access pattern the
//!   paper's QFT cost model (Eq. 6) is built on;
//! * **X / SWAP**: pure permutations, no arithmetic.
//!
//! Controls are folded into the index enumeration (not checked per entry):
//! a gate with `c` controls iterates `2^{n−1−c}` compressed indices and
//! expands each by bit insertion, so work shrinks geometrically with the
//! number of controls.
//!
//! All kernels operate on raw `&mut [C64]` slices so that the distributed
//! simulator (`qcemu-cluster`) can run them unchanged on node-local slabs.

use crate::gate::{Gate, GateStructure, Mat2};
use qcemu_linalg::C64;
use rayon::prelude::*;

/// State sizes below this run serially: thread handoff would dominate.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Pointer wrapper that lets rayon tasks write to provably disjoint indices
/// of one buffer.
#[derive(Copy, Clone)]
struct StatePtr(*mut C64);
// SAFETY: `StatePtr` is only used inside this module by the pair/single
// drivers below, which guarantee that distinct loop indices expand to
// disjoint state-vector indices (the expansion is injective and the target
// bit separates the two elements of each pair). No two tasks ever alias.
unsafe impl Send for StatePtr {}
unsafe impl Sync for StatePtr {}

/// Inserts zero bits into `k` at each of the (ascending) `positions`,
/// producing the state index whose "free" bits are `k` and whose bits at
/// `positions` are 0.
#[inline(always)]
pub fn expand_index(k: usize, positions: &[usize]) -> usize {
    let mut x = k;
    for &p in positions {
        let low = x & ((1usize << p) - 1);
        x = ((x >> p) << (p + 1)) | low;
    }
    x
}

/// Sorted gate-qubit positions plus the OR-mask of the control bits.
fn control_layout(target_bits: &[usize], controls: &[usize]) -> (Vec<usize>, usize) {
    let mut positions: Vec<usize> = controls.iter().chain(target_bits.iter()).copied().collect();
    positions.sort_unstable();
    let cmask = controls.iter().fold(0usize, |m, &c| m | (1usize << c));
    (positions, cmask)
}

#[inline]
fn log2_len(state: &[C64]) -> u32 {
    debug_assert!(state.len().is_power_of_two(), "state length must be 2^n");
    state.len().trailing_zeros()
}

/// Runs `f(&mut amp0, &mut amp1)` over every amplitude pair selected by
/// (`target`, `controls`): indices with all control bits 1, differing only
/// in the target bit.
pub fn for_each_pair<F>(state: &mut [C64], target: usize, controls: &[usize], f: F)
where
    F: Fn(&mut C64, &mut C64) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    debug_assert!(
        positions.len() <= n_bits,
        "gate uses more qubits than the state has"
    );
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let tbit = 1usize << target;

    if count >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let i0 = expand_index(k, &positions) | cmask;
            // SAFETY: `expand_index` is injective in k and leaves the target
            // bit clear, so (i0, i0|tbit) pairs are pairwise disjoint across
            // the loop; both indices are < state.len() by construction.
            unsafe {
                let p = ptr;
                f(&mut *p.0.add(i0), &mut *p.0.add(i0 | tbit));
            }
        });
    } else {
        for k in 0..count {
            let i0 = expand_index(k, &positions) | cmask;
            let (a, b) = pair_mut(state, i0, i0 | tbit);
            f(a, b);
        }
    }
}

/// Runs `f(&mut amp)` over every amplitude whose target bit is 1 and whose
/// control bits are all 1 — the quarter-touch access pattern of the
/// controlled phase shift.
pub fn for_each_one<F>(state: &mut [C64], target: usize, controls: &[usize], f: F)
where
    F: Fn(&mut C64) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let tbit = 1usize << target;

    if count >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let i = expand_index(k, &positions) | cmask | tbit;
            // SAFETY: injective expansion ⇒ disjoint indices (see module doc).
            unsafe {
                let p = ptr;
                f(&mut *p.0.add(i));
            }
        });
    } else {
        for k in 0..count {
            let i = expand_index(k, &positions) | cmask | tbit;
            f(&mut state[i]);
        }
    }
}

/// Two disjoint mutable references into one slice.
#[inline(always)]
fn pair_mut(state: &mut [C64], i: usize, j: usize) -> (&mut C64, &mut C64) {
    debug_assert!(i < j);
    let (lo, hi) = state.split_at_mut(j);
    (&mut lo[i], &mut hi[0])
}

/// General (controlled) single-qubit unitary: one butterfly per pair.
pub fn apply_general(state: &mut [C64], target: usize, controls: &[usize], m: &Mat2) {
    let m = *m;
    for_each_pair(state, target, controls, move |a, b| {
        let x = *a;
        let y = *b;
        *a = m[0][0] * x + m[0][1] * y;
        *b = m[1][0] * x + m[1][1] * y;
    });
}

/// Diagonal (controlled) gate `diag(d0, d1)`. When `d0 = 1` (phase-type
/// gates: Z, S, T, Rθ…) only the `|1⟩` half of the selected subspace is
/// read and written.
pub fn apply_diagonal(state: &mut [C64], target: usize, controls: &[usize], d0: C64, d1: C64) {
    if d0 == C64::ONE {
        if d1 == C64::ONE {
            return; // identity
        }
        for_each_one(state, target, controls, move |z| *z *= d1);
    } else {
        for_each_pair(state, target, controls, move |a, b| {
            *a *= d0;
            *b *= d1;
        });
    }
}

/// (Controlled) X: swaps amplitude pairs, no arithmetic.
pub fn apply_perm_x(state: &mut [C64], target: usize, controls: &[usize]) {
    for_each_pair(state, target, controls, |a, b| std::mem::swap(a, b));
}

/// (Controlled) SWAP of qubits `a` and `b`: exchanges amplitudes whose two
/// bits differ, touching half (uncontrolled) of the selected subspace.
pub fn apply_swap(state: &mut [C64], qa: usize, qb: usize, controls: &[usize]) {
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[qa, qb], controls);
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let abit = 1usize << qa;
    let bbit = 1usize << qb;

    if count >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let base = expand_index(k, &positions) | cmask;
            let i = base | abit;
            let j = base | bbit;
            // SAFETY: disjointness as in `for_each_pair`; i ≠ j since a ≠ b.
            unsafe {
                let p = ptr;
                std::ptr::swap(p.0.add(i), p.0.add(j));
            }
        });
    } else {
        for k in 0..count {
            let base = expand_index(k, &positions) | cmask;
            state.swap(base | abit, base | bbit);
        }
    }
}

/// Applies one [`Gate`] to a raw state slice, dispatching on structure.
pub fn apply_gate_slice(state: &mut [C64], gate: &Gate) {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => match op.structure() {
            GateStructure::Diagonal(d0, d1) => apply_diagonal(state, *target, controls, d0, d1),
            GateStructure::PermutationX => apply_perm_x(state, *target, controls),
            GateStructure::General(m) => apply_general(state, *target, controls, &m),
        },
        Gate::Swap { a, b, controls } => apply_swap(state, *a, *b, controls),
    }
}

/// Number of state-vector entries a gate's kernel writes, as a function of
/// structure — the quantity behind the paper's Eq. 6 memory-traffic model.
/// (A controlled phase on n qubits writes `2^{n−2}` entries: a quarter.)
pub fn touched_entries(n_qubits: usize, gate: &Gate) -> usize {
    match gate {
        Gate::Unary { op, controls, .. } => {
            let free = n_qubits - 1 - controls.len();
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    if d0 == C64::ONE && d1 == C64::ONE {
                        0
                    } else if d0 == C64::ONE {
                        1usize << free
                    } else {
                        2usize << free
                    }
                }
                _ => 2usize << free,
            }
        }
        Gate::Swap { controls, .. } => 2usize << (n_qubits - 2 - controls.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateOp;
    use qcemu_linalg::{c64, max_abs_diff, norm2, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Independent semantic oracle: applies a gate by explicit scatter of
    /// each basis amplitude. O(2^n) per gate, used only for validation.
    fn oracle_apply(state: &[C64], gate: &Gate) -> Vec<C64> {
        let n = state.len();
        let mut out = vec![C64::ZERO; n];
        for (j, &amp) in state.iter().enumerate() {
            match gate {
                Gate::Unary {
                    op,
                    target,
                    controls,
                } => {
                    let ctrl_ok = controls.iter().all(|&c| (j >> c) & 1 == 1);
                    if !ctrl_ok {
                        out[j] += amp;
                        continue;
                    }
                    let m = op.matrix();
                    let b = (j >> target) & 1;
                    let tbit = 1usize << target;
                    out[j & !tbit] += m[0][b] * amp;
                    out[j | tbit] += m[1][b] * amp;
                }
                Gate::Swap { a, b, controls } => {
                    let ctrl_ok = controls.iter().all(|&c| (j >> c) & 1 == 1);
                    if !ctrl_ok {
                        out[j] += amp;
                        continue;
                    }
                    let ba = (j >> a) & 1;
                    let bb = (j >> b) & 1;
                    let mut t = j & !((1usize << a) | (1usize << b));
                    t |= bb << a;
                    t |= ba << b;
                    out[t] += amp;
                }
            }
        }
        out
    }

    fn check_gate(n_qubits: usize, gate: Gate, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_state(1 << n_qubits, &mut rng);
        let mut fast = input.clone();
        apply_gate_slice(&mut fast, &gate);
        let slow = oracle_apply(&input, &gate);
        assert!(
            max_abs_diff(&fast, &slow) < 1e-12,
            "kernel mismatch for {gate:?} on {n_qubits} qubits: {}",
            max_abs_diff(&fast, &slow)
        );
        assert!(
            (norm2(&fast) - 1.0).abs() < 1e-10,
            "norm broken by {gate:?}"
        );
    }

    #[test]
    fn expand_index_inserts_zero_bits() {
        // positions [1, 3]: k bits fill positions 0, 2, 4, ...
        assert_eq!(expand_index(0b000, &[1, 3]), 0b00000);
        assert_eq!(expand_index(0b001, &[1, 3]), 0b00001);
        assert_eq!(expand_index(0b010, &[1, 3]), 0b00100);
        assert_eq!(expand_index(0b011, &[1, 3]), 0b00101);
        assert_eq!(expand_index(0b100, &[1, 3]), 0b10000);
    }

    #[test]
    fn expand_index_is_injective_and_avoids_positions() {
        let positions = [0usize, 2, 5];
        let mut seen = std::collections::HashSet::new();
        for k in 0..64 {
            let x = expand_index(k, &positions);
            for &p in &positions {
                assert_eq!((x >> p) & 1, 0, "bit {p} must be clear in {x:#b}");
            }
            assert!(seen.insert(x), "duplicate expansion {x}");
        }
    }

    #[test]
    fn single_qubit_gates_match_oracle() {
        for (i, op) in [
            GateOp::X,
            GateOp::Y,
            GateOp::Z,
            GateOp::H,
            GateOp::S,
            GateOp::T,
            GateOp::Rx(0.37),
            GateOp::Ry(-0.9),
            GateOp::Rz(1.1),
            GateOp::Phase(2.2),
        ]
        .into_iter()
        .enumerate()
        {
            for target in [0usize, 2, 4] {
                check_gate(5, Gate::unary(op.clone(), target), 100 + i as u64);
            }
        }
    }

    #[test]
    fn controlled_gates_match_oracle() {
        check_gate(5, Gate::cnot(0, 4), 200);
        check_gate(5, Gate::cnot(4, 0), 201);
        check_gate(5, Gate::cz(2, 3), 202);
        check_gate(5, Gate::cphase(1, 3, 0.77), 203);
        check_gate(5, Gate::controlled(GateOp::H, 3, 1), 204);
        check_gate(5, Gate::controlled(GateOp::Rz(0.5), 0, 2), 205);
    }

    #[test]
    fn multi_controlled_gates_match_oracle() {
        check_gate(6, Gate::toffoli(0, 1, 2), 300);
        check_gate(6, Gate::toffoli(5, 3, 0), 301);
        check_gate(6, Gate::mcx(vec![0, 2, 4], 5), 302);
        check_gate(
            6,
            Gate::Unary {
                op: GateOp::Phase(0.3),
                target: 1,
                controls: vec![0, 3, 5],
            },
            303,
        );
    }

    #[test]
    fn swap_gates_match_oracle() {
        check_gate(5, Gate::swap(0, 4), 400);
        check_gate(5, Gate::swap(2, 1), 401);
        check_gate(
            5,
            Gate::Swap {
                a: 0,
                b: 3,
                controls: vec![2],
            },
            402,
        );
    }

    #[test]
    fn large_state_parallel_path_matches_oracle() {
        // Above PAR_THRESHOLD so the rayon branches execute.
        let n_qubits = 16;
        let mut rng = StdRng::seed_from_u64(500);
        let input = random_state(1 << n_qubits, &mut rng);
        for gate in [
            Gate::h(15),
            Gate::h(0),
            Gate::cphase(3, 14, 0.9),
            Gate::cnot(15, 1),
            Gate::swap(0, 15),
            Gate::rz(7, 0.123),
        ] {
            let mut fast = input.clone();
            apply_gate_slice(&mut fast, &gate);
            let slow = oracle_apply(&input, &gate);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-12,
                "parallel kernel mismatch for {gate:?}"
            );
        }
    }

    #[test]
    fn double_x_is_identity() {
        let mut rng = StdRng::seed_from_u64(501);
        let input = random_state(64, &mut rng);
        let mut s = input.clone();
        apply_perm_x(&mut s, 3, &[]);
        apply_perm_x(&mut s, 3, &[]);
        assert!(max_abs_diff(&s, &input) < 1e-15);
    }

    #[test]
    fn phase_kernel_touches_only_one_half() {
        // Phase gate on |0⟩-basis state must be a no-op.
        let mut s = vec![C64::ZERO; 8];
        s[0] = C64::ONE; // |000⟩
        apply_diagonal(&mut s, 1, &[], C64::ONE, C64::cis(0.4));
        assert!(s[0].approx_eq(C64::ONE, 1e-15));
        // On |010⟩ it must apply the phase.
        let mut s = vec![C64::ZERO; 8];
        s[2] = C64::ONE;
        apply_diagonal(&mut s, 1, &[], C64::ONE, C64::cis(0.4));
        assert!(s[2].approx_eq(C64::cis(0.4), 1e-15));
    }

    #[test]
    fn identity_diagonal_is_noop() {
        let mut rng = StdRng::seed_from_u64(502);
        let input = random_state(32, &mut rng);
        let mut s = input.clone();
        apply_diagonal(&mut s, 2, &[], C64::ONE, C64::ONE);
        assert_eq!(
            max_abs_diff(&s, &input),
            0.0,
            "identity must not even perturb rounding"
        );
    }

    #[test]
    fn touched_entries_model() {
        let n = 10;
        let full = 1usize << n;
        // Hadamard: everything.
        assert_eq!(touched_entries(n, &Gate::h(0)), full);
        // Plain phase: half.
        assert_eq!(touched_entries(n, &Gate::phase(0, 0.1)), full / 2);
        // Controlled phase: a quarter (paper §3.2).
        assert_eq!(touched_entries(n, &Gate::cphase(0, 1, 0.1)), full / 4);
        // CNOT: half (pairs restricted by one control).
        assert_eq!(touched_entries(n, &Gate::cnot(0, 1)), full / 2);
        // Rz: both halves (d0 ≠ 1).
        assert_eq!(touched_entries(n, &Gate::rz(0, 0.1)), full);
        // Toffoli: a quarter.
        assert_eq!(touched_entries(n, &Gate::toffoli(0, 1, 2)), full / 4);
        // SWAP: half.
        assert_eq!(touched_entries(n, &Gate::swap(0, 1)), full / 2);
    }

    #[test]
    fn touched_entries_matches_instrumented_count() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 8;
        let mut state = vec![c64(1.0, 0.0); 1 << n]; // unnormalised, fine
        let counter = AtomicUsize::new(0);
        // Controlled phase via for_each_one.
        for_each_one(&mut state, 3, &[5], |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            touched_entries(n, &Gate::cphase(5, 3, 0.1))
        );
        // General pair kernel writes 2 per pair.
        let counter = AtomicUsize::new(0);
        for_each_pair(&mut state, 2, &[0, 6], |_, _| {
            counter.fetch_add(2, Ordering::Relaxed);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            touched_entries(n, &Gate::toffoli(0, 6, 2))
        );
    }
}

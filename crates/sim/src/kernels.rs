//! Structure-specialised state-vector kernels.
//!
//! These kernels are the reason the paper's simulator beats qHiPSTER and
//! LIQUi|⟩ (§4.5): instead of one generic sparse-matrix product per gate,
//! each structural class gets its own loop —
//!
//! * **general 2×2**: one butterfly per amplitude pair;
//! * **diagonal**: pure scaling, no pairing; with `d0 = 1` (phase gates)
//!   only the `|1⟩` half is touched — a *controlled* phase therefore
//!   touches exactly a quarter of the state vector, the access pattern the
//!   paper's QFT cost model (Eq. 6) is built on;
//! * **X / SWAP**: pure permutations, no arithmetic.
//!
//! Controls are folded into the index enumeration (not checked per entry):
//! a gate with `c` controls iterates `2^{n−1−c}` compressed indices and
//! expands each by bit insertion, so work shrinks geometrically with the
//! number of controls.
//!
//! On top of the per-gate kernels sit the **fused** kernels
//! ([`apply_fused`], [`apply_fused_diagonal`], [`apply_fused_permutation`]):
//! they apply a whole k-qubit block — produced by [`crate::fusion`] from a
//! run of adjacent gates — in *one* blocked pass over the state vector,
//! so memory traffic is paid once per block instead of once per gate (the
//! qHiPSTER-style optimisation layered on the paper's §4.5 kernels).
//!
//! All kernels operate on raw `&mut [C64]` slices so that the distributed
//! simulator (`qcemu-cluster`) can run them unchanged on node-local slabs.
//!
//! ## Vectorisation
//!
//! The arithmetic kernels (butterfly, diagonal sweep, fused dense
//! product) run on the complex-SIMD primitives of
//! [`qcemu_linalg::simd`] whenever their index space decomposes into
//! contiguous runs of at least [`simd::LANES`]
//! amplitude (pairs): with the lowest gate qubit at position `p`, both
//! halves of every pair group are contiguous runs of `2^p` amplitudes, so
//! any gate whose target *and* controls all sit at qubit `≥ log2(LANES)`
//! takes the vector path. Gates on the lowest qubits (runs shorter than a
//! vector) keep the per-pair scalar path. The primitives themselves
//! dispatch at runtime (AVX2+FMA under the `simd` cargo feature, scalar
//! everywhere else), so this module is layout- and feature-agnostic.

use crate::gate::{Gate, GateStructure, Mat2};
use qcemu_linalg::{simd, CMatrix, C64};
use rayon::prelude::*;

/// Default state size below which kernels run serially: thread handoff
/// would dominate. Overridable per execution via
/// [`SimConfig::par_threshold`](crate::SimConfig) — the `_with` kernel
/// variants thread the override through; the plain entry points use this
/// constant.
pub const PAR_THRESHOLD: usize = 1 << 15;

/// `true` when a kernel over `count` independent tasks should go parallel.
#[inline]
pub(crate) fn parallel_ok(count: usize, par_threshold: usize) -> bool {
    count >= par_threshold && rayon::current_num_threads() > 1
}

/// Widest block the fused kernels accept. The gather/scatter buffers are
/// stack-allocated at `2^MAX_FUSED_QUBITS` amplitudes (1 KiB), keeping the
/// per-group working set L1-resident — the whole point of fusion.
pub const MAX_FUSED_QUBITS: usize = 6;

/// Stack-buffer dimension backing the fused kernels.
const MAX_FUSED_DIM: usize = 1 << MAX_FUSED_QUBITS;

/// Pointer wrapper that lets rayon tasks write to provably disjoint indices
/// of one buffer.
#[derive(Copy, Clone)]
pub(crate) struct StatePtr(pub(crate) *mut C64);
// SAFETY: `StatePtr` is only used by the pair/single drivers in this module
// and the batched drivers in `crate::batch`, all of which guarantee that
// distinct loop indices expand to disjoint state-vector indices (the
// expansion is injective and the target bit separates the two elements of
// each pair). No two tasks ever alias.
unsafe impl Send for StatePtr {}
unsafe impl Sync for StatePtr {}

/// Inserts zero bits into `k` at each of the (ascending) `positions`,
/// producing the state index whose "free" bits are `k` and whose bits at
/// `positions` are 0.
#[inline(always)]
pub fn expand_index(k: usize, positions: &[usize]) -> usize {
    let mut x = k;
    for &p in positions {
        let low = x & ((1usize << p) - 1);
        x = ((x >> p) << (p + 1)) | low;
    }
    x
}

/// Sorted gate-qubit positions plus the OR-mask of the control bits.
pub(crate) fn control_layout(target_bits: &[usize], controls: &[usize]) -> (Vec<usize>, usize) {
    let mut positions: Vec<usize> = controls.iter().chain(target_bits.iter()).copied().collect();
    positions.sort_unstable();
    let cmask = controls.iter().fold(0usize, |m, &c| m | (1usize << c));
    (positions, cmask)
}

#[inline]
fn log2_len(state: &[C64]) -> u32 {
    debug_assert!(state.len().is_power_of_two(), "state length must be 2^n");
    state.len().trailing_zeros()
}

/// Runs `f(&mut amp0, &mut amp1)` over every amplitude pair selected by
/// (`target`, `controls`): indices with all control bits 1, differing only
/// in the target bit.
///
/// # Examples
///
/// ```
/// use qcemu_linalg::C64;
/// use qcemu_sim::kernels::for_each_pair;
///
/// // An X gate on qubit 0 of |00⟩, written as a raw pair swap.
/// let mut state = vec![C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO];
/// for_each_pair(&mut state, 0, &[], |a, b| std::mem::swap(a, b));
/// assert_eq!(state[1], C64::ONE);
/// ```
pub fn for_each_pair<F>(state: &mut [C64], target: usize, controls: &[usize], f: F)
where
    F: Fn(&mut C64, &mut C64) + Sync + Send,
{
    for_each_pair_with(state, target, controls, PAR_THRESHOLD, f)
}

/// [`for_each_pair`] with an explicit parallelism threshold (see
/// [`SimConfig::par_threshold`](crate::SimConfig)).
pub fn for_each_pair_with<F>(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) where
    F: Fn(&mut C64, &mut C64) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    debug_assert!(
        positions.len() <= n_bits,
        "gate uses more qubits than the state has"
    );
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let tbit = 1usize << target;

    if parallel_ok(count, par_threshold) {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let i0 = expand_index(k, &positions) | cmask;
            // SAFETY: `expand_index` is injective in k and leaves the target
            // bit clear, so (i0, i0|tbit) pairs are pairwise disjoint across
            // the loop; both indices are < state.len() by construction.
            unsafe {
                let p = ptr;
                f(&mut *p.0.add(i0), &mut *p.0.add(i0 | tbit));
            }
        });
    } else {
        for k in 0..count {
            let i0 = expand_index(k, &positions) | cmask;
            let (a, b) = pair_mut(state, i0, i0 | tbit);
            f(a, b);
        }
    }
}

/// Runs `f(&mut amp)` over every amplitude whose target bit is 1 and whose
/// control bits are all 1 — the quarter-touch access pattern of the
/// controlled phase shift.
///
/// # Examples
///
/// ```
/// use qcemu_linalg::C64;
/// use qcemu_sim::kernels::for_each_one;
///
/// // A controlled phase on (control 1, target 0) touches only |11⟩.
/// let mut state = vec![C64::ONE; 4];
/// for_each_one(&mut state, 0, &[1], |z| *z *= C64::cis(0.5));
/// assert_eq!(state[0], C64::ONE);
/// assert!(state[3].approx_eq(C64::cis(0.5), 1e-15));
/// ```
pub fn for_each_one<F>(state: &mut [C64], target: usize, controls: &[usize], f: F)
where
    F: Fn(&mut C64) + Sync + Send,
{
    for_each_one_with(state, target, controls, PAR_THRESHOLD, f)
}

/// [`for_each_one`] with an explicit parallelism threshold.
pub fn for_each_one_with<F>(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) where
    F: Fn(&mut C64) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let tbit = 1usize << target;

    if parallel_ok(count, par_threshold) {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let i = expand_index(k, &positions) | cmask | tbit;
            // SAFETY: injective expansion ⇒ disjoint indices (see module doc).
            unsafe {
                let p = ptr;
                f(&mut *p.0.add(i));
            }
        });
    } else {
        for k in 0..count {
            let i = expand_index(k, &positions) | cmask | tbit;
            f(&mut state[i]);
        }
    }
}

/// Two disjoint mutable references into one slice.
#[inline(always)]
fn pair_mut(state: &mut [C64], i: usize, j: usize) -> (&mut C64, &mut C64) {
    debug_assert!(i < j);
    let (lo, hi) = state.split_at_mut(j);
    (&mut lo[i], &mut hi[0])
}

// --- contiguous-run drivers (the vector fast path) -----------------------
//
// With the lowest gate-qubit position at `p0`, the compressed index space
// of `for_each_pair` / `for_each_one` decomposes into contiguous runs of
// `2^p0` state indices (the bits below p0 are all free, and expansion
// leaves them in place). When `2^p0 ≥ simd::LANES` the drivers below hand
// out whole runs as slices — the shape the SIMD primitives consume — and
// the callers fall back to the per-element drivers otherwise.

/// Runs `f(lo_run, hi_run)` over contiguous pair runs, or returns `false`
/// when the runs are shorter than a vector (lowest gate qubit below
/// `log2(LANES)`) and the caller must use [`for_each_pair_with`].
fn for_each_pair_runs_with<F>(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) -> bool
where
    F: Fn(&mut [C64], &mut [C64]) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    let run = 1usize << positions[0];
    if run < simd::LANES {
        return false;
    }
    let count = 1usize << (n_bits - positions.len());
    let outer = count / run;
    let tbit = 1usize << target;
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |o: usize| {
        let i0 = expand_index(o * run, &positions) | cmask;
        // SAFETY: expansion is injective and leaves the target bit clear,
        // and both runs only vary bits below positions[0] ≤ target — so
        // lo/hi runs are disjoint from each other and across `o`, and all
        // indices are < state.len() by construction.
        unsafe {
            let p = ptr;
            let lo = std::slice::from_raw_parts_mut(p.0.add(i0), run);
            let hi = std::slice::from_raw_parts_mut(p.0.add(i0 | tbit), run);
            f(lo, hi);
        }
    };
    if parallel_ok(count, par_threshold) && outer > 1 {
        (0..outer).into_par_iter().for_each(body);
    } else {
        (0..outer).for_each(body);
    }
    true
}

/// Runs `f(run)` over the contiguous runs of the one-bit (target = 1,
/// controls = 1) index set, or returns `false` when runs are shorter
/// than a vector.
fn for_each_one_runs_with<F>(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) -> bool
where
    F: Fn(&mut [C64]) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[target], controls);
    let run = 1usize << positions[0];
    if run < simd::LANES {
        return false;
    }
    let count = 1usize << (n_bits - positions.len());
    let outer = count / run;
    let tbit = 1usize << target;
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |o: usize| {
        let i0 = expand_index(o * run, &positions) | cmask | tbit;
        // SAFETY: disjoint contiguous runs, as in `for_each_pair_runs_with`.
        unsafe {
            let p = ptr;
            f(std::slice::from_raw_parts_mut(p.0.add(i0), run));
        }
    };
    if parallel_ok(count, par_threshold) && outer > 1 {
        (0..outer).into_par_iter().for_each(body);
    } else {
        (0..outer).for_each(body);
    }
    true
}

/// General (controlled) single-qubit unitary: one butterfly per pair.
/// Contiguous pair runs go through the vectorised
/// [`simd::butterfly_slices`]; gates on the lowest qubits stay scalar.
pub fn apply_general(state: &mut [C64], target: usize, controls: &[usize], m: &Mat2) {
    apply_general_with(state, target, controls, m, PAR_THRESHOLD)
}

/// [`apply_general`] with an explicit parallelism threshold.
pub fn apply_general_with(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    m: &Mat2,
    par_threshold: usize,
) {
    let m = *m;
    if for_each_pair_runs_with(state, target, controls, par_threshold, move |lo, hi| {
        simd::butterfly_slices(lo, hi, &m)
    }) {
        return;
    }
    for_each_pair_with(state, target, controls, par_threshold, move |a, b| {
        let x = *a;
        let y = *b;
        *a = m[0][0] * x + m[0][1] * y;
        *b = m[1][0] * x + m[1][1] * y;
    });
}

/// Diagonal (controlled) gate `diag(d0, d1)`. When `d0 = 1` (phase-type
/// gates: Z, S, T, Rθ…) only the `|1⟩` half of the selected subspace is
/// read and written. Contiguous runs are scaled through
/// [`simd::scale_slice`].
pub fn apply_diagonal(state: &mut [C64], target: usize, controls: &[usize], d0: C64, d1: C64) {
    apply_diagonal_with(state, target, controls, d0, d1, PAR_THRESHOLD)
}

/// [`apply_diagonal`] with an explicit parallelism threshold.
pub fn apply_diagonal_with(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    d0: C64,
    d1: C64,
    par_threshold: usize,
) {
    if d0 == C64::ONE {
        if d1 == C64::ONE {
            return; // identity
        }
        if for_each_one_runs_with(state, target, controls, par_threshold, move |xs| {
            simd::scale_slice(xs, d1)
        }) {
            return;
        }
        for_each_one_with(state, target, controls, par_threshold, move |z| *z *= d1);
    } else {
        if for_each_pair_runs_with(state, target, controls, par_threshold, move |lo, hi| {
            simd::scale_slice(lo, d0);
            simd::scale_slice(hi, d1);
        }) {
            return;
        }
        for_each_pair_with(state, target, controls, par_threshold, move |a, b| {
            *a *= d0;
            *b *= d1;
        });
    }
}

/// (Controlled) X: swaps amplitude pairs, no arithmetic. Contiguous runs
/// swap as whole slices (one `memcpy`-class move per run).
pub fn apply_perm_x(state: &mut [C64], target: usize, controls: &[usize]) {
    apply_perm_x_with(state, target, controls, PAR_THRESHOLD)
}

/// [`apply_perm_x`] with an explicit parallelism threshold.
pub fn apply_perm_x_with(
    state: &mut [C64],
    target: usize,
    controls: &[usize],
    par_threshold: usize,
) {
    if for_each_pair_runs_with(state, target, controls, par_threshold, |lo, hi| {
        lo.swap_with_slice(hi)
    }) {
        return;
    }
    for_each_pair_with(state, target, controls, par_threshold, |a, b| {
        std::mem::swap(a, b)
    });
}

/// (Controlled) SWAP of qubits `a` and `b`: exchanges amplitudes whose two
/// bits differ, touching half (uncontrolled) of the selected subspace.
pub fn apply_swap(state: &mut [C64], qa: usize, qb: usize, controls: &[usize]) {
    apply_swap_with(state, qa, qb, controls, PAR_THRESHOLD)
}

/// [`apply_swap`] with an explicit parallelism threshold. Contiguous runs
/// (lowest gate qubit at `≥ log2(LANES)`) exchange as whole slices.
pub fn apply_swap_with(
    state: &mut [C64],
    qa: usize,
    qb: usize,
    controls: &[usize],
    par_threshold: usize,
) {
    let n_bits = log2_len(state) as usize;
    let (positions, cmask) = control_layout(&[qa, qb], controls);
    let free_bits = n_bits - positions.len();
    let count = 1usize << free_bits;
    let abit = 1usize << qa;
    let bbit = 1usize << qb;
    let run = 1usize << positions[0];

    if run >= simd::LANES {
        let outer = count / run;
        let ptr = StatePtr(state.as_mut_ptr());
        let body = |o: usize| {
            let base = expand_index(o * run, &positions) | cmask;
            // SAFETY: the runs at base|abit and base|bbit only vary bits
            // below positions[0] < min(qa, qb), so they are disjoint from
            // each other and across `o` (injective expansion).
            unsafe {
                let p = ptr;
                let lo = std::slice::from_raw_parts_mut(p.0.add(base | abit), run);
                let hi = std::slice::from_raw_parts_mut(p.0.add(base | bbit), run);
                lo.swap_with_slice(hi);
            }
        };
        if parallel_ok(count, par_threshold) && outer > 1 {
            (0..outer).into_par_iter().for_each(body);
        } else {
            (0..outer).for_each(body);
        }
        return;
    }

    if parallel_ok(count, par_threshold) {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|k| {
            let base = expand_index(k, &positions) | cmask;
            let i = base | abit;
            let j = base | bbit;
            // SAFETY: disjointness as in `for_each_pair`; i ≠ j since a ≠ b.
            unsafe {
                let p = ptr;
                std::ptr::swap(p.0.add(i), p.0.add(j));
            }
        });
    } else {
        for k in 0..count {
            let base = expand_index(k, &positions) | cmask;
            state.swap(base | abit, base | bbit);
        }
    }
}

// --- fused (blocked) kernels --------------------------------------------
//
// A fused block acts on the register formed by k ascending `qubits`. The
// state splits into 2^{n−k} groups of 2^k amplitudes (one group per
// assignment of the free qubits); every kernel below sweeps the groups
// once, so a block of g gates costs one memory pass instead of g.

/// Scatters the bits of local value `v` onto the global bit `positions`:
/// bit `j` of `v` becomes bit `positions[j]` of the result. Unlike
/// [`expand_index`], `positions` need not be ascending — the distributed
/// executor uses this with remapped (arbitrary-order) physical slots.
/// With ascending positions it is the inverse of [`expand_index`]'s bit
/// removal, and the convention by which a fused block's local amplitude
/// index maps into the full state.
/// (Same semantics as `qcemu_fft::scatter_bits`, re-exposed here so the
/// kernel layer's index conventions live next to [`expand_index`].)
#[inline(always)]
pub fn scatter_index(v: usize, positions: &[usize]) -> usize {
    qcemu_fft::scatter_bits(v, positions)
}

/// Validates a fused-kernel qubit list against the state size.
pub(crate) fn check_fused_qubits(n_bits: usize, qubits: &[usize]) {
    assert!(
        !qubits.is_empty() && qubits.len() <= MAX_FUSED_QUBITS,
        "fused block must use 1..={MAX_FUSED_QUBITS} qubits, got {}",
        qubits.len()
    );
    assert!(
        qubits.windows(2).all(|w| w[0] < w[1]),
        "fused qubits must be strictly ascending: {qubits:?}"
    );
    assert!(
        *qubits.last().unwrap() < n_bits,
        "fused block touches qubit {} but state has {n_bits}",
        qubits.last().unwrap()
    );
}

/// Runs `f(ptr, base)` for every group base index (an index with all the
/// block's qubit bits clear), in parallel for large states.
fn for_each_group<F>(state: &mut [C64], qubits: &[usize], par_threshold: usize, f: F)
where
    F: Fn(StatePtr, usize) + Sync + Send,
{
    let n_bits = log2_len(state) as usize;
    check_fused_qubits(n_bits, qubits);
    let count = 1usize << (n_bits - qubits.len());
    let ptr = StatePtr(state.as_mut_ptr());
    if state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1 {
        // SAFETY: `expand_index` is injective in the group index and `f`
        // only touches `base | off` with `off` confined to the block's
        // qubit bits, so distinct groups own disjoint state indices.
        (0..count)
            .into_par_iter()
            .for_each(|g| f(ptr, expand_index(g, qubits)));
    } else {
        for g in 0..count {
            f(ptr, expand_index(g, qubits));
        }
    }
}

/// Applies a dense `2^k × 2^k` matrix to the register formed by the `k`
/// ascending `qubits` — every amplitude group gets one gather / mat-vec /
/// scatter, so the whole block costs a single blocked pass over the state
/// regardless of how many gates were fused into the matrix.
///
/// Prefer [`crate::fusion`]'s structure-aware dispatch over calling this
/// directly: diagonal and permutation blocks have far cheaper appliers.
///
/// # Panics
///
/// Panics if `qubits` is not strictly ascending, uses more than
/// [`MAX_FUSED_QUBITS`] qubits, indexes past the state, or if the matrix
/// is not `2^k × 2^k`.
///
/// # Examples
///
/// ```
/// use qcemu_linalg::{CMatrix, C64};
/// use qcemu_sim::kernels::apply_fused;
///
/// // SWAP(0, 1) as a fused 2-qubit block: |01⟩ ↦ |10⟩.
/// let mut state = vec![C64::ZERO; 4];
/// state[0b01] = C64::ONE;
/// let mut swap = CMatrix::zeros(4, 4);
/// for (row, col) in [(0, 0), (2, 1), (1, 2), (3, 3)] {
///     swap[(row, col)] = C64::ONE;
/// }
/// apply_fused(&mut state, &[0, 1], &swap);
/// assert_eq!(state[0b10], C64::ONE);
/// ```
pub fn apply_fused(state: &mut [C64], qubits: &[usize], m: &CMatrix) {
    apply_fused_with(state, qubits, m, PAR_THRESHOLD)
}

/// [`apply_fused`] with an explicit parallelism threshold. The per-group
/// mat-vec — the FLOP-dense loop of the whole fusion engine — reduces
/// each (contiguous) matrix row against the gathered block through the
/// vectorised [`simd::cdot`], and the gather/scatter itself moves
/// memcpy-class runs: the block's low qubits `0..run_bits` (those equal
/// to their own position) address a contiguous `2^run_bits`-amplitude
/// prefix of every group, so only the remaining high qubits pay a
/// strided offset.
pub fn apply_fused_with(state: &mut [C64], qubits: &[usize], m: &CMatrix, par_threshold: usize) {
    let n_bits = log2_len(state) as usize;
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    assert_eq!(
        m.shape(),
        (dim, dim),
        "fused matrix must be 2^k x 2^k for k = {}",
        qubits.len()
    );
    let run_bits = qubits
        .iter()
        .enumerate()
        .take_while(|&(i, &q)| q == i)
        .count();
    let run = 1usize << run_bits;
    let hi_offs: Vec<usize> = (0..dim >> run_bits)
        .map(|w| scatter_index(w, &qubits[run_bits..]))
        .collect();
    let count = 1usize << (n_bits - qubits.len());
    if state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|g| {
            let p = ptr;
            let base = expand_index(g, qubits);
            let mut x = [C64::ZERO; MAX_FUSED_DIM];
            let mut out = [C64::ZERO; MAX_FUSED_DIM];
            // SAFETY: distinct groups own disjoint state indices (see
            // `for_each_group`), and every run `base + off .. + run` stays
            // confined to this group's qubit-bit offsets.
            unsafe {
                for (w, &off) in hi_offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        p.0.add(base + off),
                        x.as_mut_ptr().add(w * run),
                        run,
                    );
                }
                for (r, o) in out[..dim].iter_mut().enumerate() {
                    *o = simd::cdot(m.row(r), &x[..dim]);
                }
                for (w, &off) in hi_offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        out.as_ptr().add(w * run),
                        p.0.add(base + off),
                        run,
                    );
                }
            }
        });
    } else {
        let mut x = [C64::ZERO; MAX_FUSED_DIM];
        let mut out = [C64::ZERO; MAX_FUSED_DIM];
        for g in 0..count {
            let base = expand_index(g, qubits);
            simd::gather_runs(state, base, &hi_offs, run, &mut x[..dim]);
            for (r, o) in out[..dim].iter_mut().enumerate() {
                *o = simd::cdot(m.row(r), &x[..dim]);
            }
            simd::scatter_runs(&out[..dim], state, base, &hi_offs, run);
        }
    }
}

/// Applies a fused **diagonal** block `diag(factors)` over `qubits`: only
/// amplitudes whose local factor differs from 1 are read and written, so a
/// run of g controlled phases fused into one block costs a single partial
/// sweep instead of g quarter-sweeps.
///
/// # Examples
///
/// ```
/// use qcemu_linalg::{c64, C64};
/// use qcemu_sim::kernels::apply_fused_diagonal;
///
/// // CZ(0, 1) as a fused diagonal block: only |11⟩ changes.
/// let mut state = vec![C64::ONE; 4];
/// let factors = [C64::ONE, C64::ONE, C64::ONE, c64(-1.0, 0.0)];
/// apply_fused_diagonal(&mut state, &[0, 1], &factors);
/// assert_eq!(state[0b11], c64(-1.0, 0.0));
/// assert_eq!(state[0b01], C64::ONE);
/// ```
pub fn apply_fused_diagonal(state: &mut [C64], qubits: &[usize], factors: &[C64]) {
    apply_fused_diagonal_with(state, qubits, factors, PAR_THRESHOLD)
}

/// [`apply_fused_diagonal`] with an explicit parallelism threshold.
pub fn apply_fused_diagonal_with(
    state: &mut [C64],
    qubits: &[usize],
    factors: &[C64],
    par_threshold: usize,
) {
    let n_bits = log2_len(state) as usize;
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    assert_eq!(factors.len(), dim, "diagonal block needs 2^k factors");
    let touched: Vec<(usize, C64)> = factors
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != C64::ONE)
        .map(|(v, &f)| (scatter_index(v, qubits), f))
        .collect();
    if touched.is_empty() {
        return; // identity block
    }
    for_each_group(state, qubits, par_threshold, |p, base| {
        // SAFETY: disjoint groups as in `for_each_group`.
        unsafe {
            for &(off, f) in &touched {
                *p.0.add(base | off) *= f;
            }
        }
    });
}

/// Applies a fused **monomial** (permutation-with-phases) block: column
/// `v` of the block's matrix has its single non-zero `factor[v]` in row
/// `target[v]`. Amplitudes move along the permutation's cycles with one
/// temporary per cycle; fixed points with factor 1 are never touched, so
/// e.g. a run of CNOTs sharing a control sweeps only the control-on half.
///
/// # Panics
///
/// Panics if `target` is not a permutation of `0..2^k` or the slice
/// lengths disagree with `qubits`.
pub fn apply_fused_permutation(
    state: &mut [C64],
    qubits: &[usize],
    target: &[usize],
    factor: &[C64],
) {
    apply_fused_permutation_with(state, qubits, target, factor, PAR_THRESHOLD)
}

/// [`apply_fused_permutation`] with an explicit parallelism threshold.
pub fn apply_fused_permutation_with(
    state: &mut [C64],
    qubits: &[usize],
    target: &[usize],
    factor: &[C64],
    par_threshold: usize,
) {
    let n_bits = log2_len(state) as usize;
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    assert_eq!(target.len(), dim, "permutation block needs 2^k targets");
    assert_eq!(factor.len(), dim, "permutation block needs 2^k factors");

    // Cycle decomposition over the non-identity support, precomputed once:
    // each cycle stores (state offset, factor) per element, in cycle order.
    let mut cycles: Vec<Vec<(usize, C64)>> = Vec::new();
    let mut seen = vec![false; dim];
    for start in 0..dim {
        if seen[start] {
            continue;
        }
        let mut cyc = Vec::new();
        let mut v = start;
        loop {
            seen[v] = true;
            cyc.push(v);
            v = target[v];
            assert!(v < dim, "permutation target {v} out of range");
            if v == start {
                break;
            }
            assert!(!seen[v], "targets do not form a permutation");
        }
        if cyc.len() == 1 && factor[start] == C64::ONE {
            continue; // untouched fixed point
        }
        cycles.push(
            cyc.into_iter()
                .map(|v| (scatter_index(v, qubits), factor[v]))
                .collect(),
        );
    }
    if cycles.is_empty() {
        return; // identity block
    }

    for_each_group(state, qubits, par_threshold, |p, base| {
        // SAFETY: disjoint groups as in `for_each_group`.
        unsafe {
            for cyc in &cycles {
                // new[target[v]] = factor[v] · old[v]; walking the cycle
                // backwards needs only one saved amplitude.
                let last = cyc.len() - 1;
                let saved = *p.0.add(base | cyc[last].0);
                for i in (1..=last).rev() {
                    *p.0.add(base | cyc[i].0) = cyc[i - 1].1 * *p.0.add(base | cyc[i - 1].0);
                }
                *p.0.add(base | cyc[0].0) = cyc[last].1 * saved;
            }
        }
    });
}

/// A gate precompiled for in-cache application to a gathered block:
/// control masks and matrix entries are resolved once at fusion time so
/// the per-group loops do no trigonometry, dispatch, or allocation.
#[derive(Clone, Debug)]
pub(crate) enum LocalOp {
    /// `diag(d0, d1)` on `tbit`, gated on all bits of `cmask`.
    Diag {
        cmask: usize,
        tbit: usize,
        d0: C64,
        d1: C64,
    },
    /// X on `tbit`, gated on `cmask`.
    Flip { cmask: usize, tbit: usize },
    /// Dense 2×2 on `tbit`, gated on `cmask`.
    Rot { cmask: usize, tbit: usize, m: Mat2 },
    /// Swap of `abit`/`bbit`, gated on `cmask`.
    Swap {
        cmask: usize,
        abit: usize,
        bbit: usize,
    },
}

impl LocalOp {
    /// Compiles a (local-index) gate into its block form.
    pub(crate) fn from_gate(gate: &Gate) -> LocalOp {
        let cmask = |controls: &[usize]| controls.iter().fold(0usize, |m, &c| m | (1usize << c));
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } => {
                let cmask = cmask(controls);
                let tbit = 1usize << *target;
                match op.structure() {
                    GateStructure::Diagonal(d0, d1) => LocalOp::Diag {
                        cmask,
                        tbit,
                        d0,
                        d1,
                    },
                    GateStructure::PermutationX => LocalOp::Flip { cmask, tbit },
                    GateStructure::General(m) => LocalOp::Rot { cmask, tbit, m },
                }
            }
            Gate::Swap { a, b, controls } => LocalOp::Swap {
                cmask: cmask(controls),
                abit: 1usize << *a,
                bbit: 1usize << *b,
            },
        }
    }

    /// Applies the op to a gathered block (`buf.len() = 2^k`).
    ///
    /// The index space decomposes into contiguous runs of `2^p`
    /// elements, where `p` is the lowest bit the op's masks constrain
    /// (controls *and* targets — every mask bit is constant within such
    /// a run). Runs of at least [`simd::LANES`] go through the SIMD
    /// slice primitives — including *controlled* ops, which PR 5 left on
    /// the scalar per-entry loop: a control on a high local bit merely
    /// deselects whole runs, it does not break them up. Ops whose lowest
    /// constrained bit sits under the vector width keep the scalar
    /// per-entry loops.
    pub(crate) fn apply(&self, buf: &mut [C64]) {
        match *self {
            LocalOp::Diag {
                cmask,
                tbit,
                d0,
                d1,
            } => {
                let lowest = (cmask | tbit) & (cmask | tbit).wrapping_neg();
                if lowest >= simd::LANES {
                    let run = lowest;
                    let mut base = 0;
                    while base < buf.len() {
                        if base & cmask == cmask {
                            let f = if base & tbit != 0 { d1 } else { d0 };
                            if f != C64::ONE {
                                simd::scale_slice(&mut buf[base..base + run], f);
                            }
                        }
                        base += run;
                    }
                    return;
                }
                for (i, z) in buf.iter_mut().enumerate() {
                    if i & cmask == cmask {
                        *z *= if i & tbit != 0 { d1 } else { d0 };
                    }
                }
            }
            LocalOp::Flip { cmask, tbit } => {
                let lowest = (cmask | tbit) & (cmask | tbit).wrapping_neg();
                if lowest >= simd::LANES {
                    let run = lowest;
                    let mut base = 0;
                    while base < buf.len() {
                        if base & cmask == cmask && base & tbit == 0 {
                            // Both runs are run-aligned and fully inside
                            // the buffer; tbit ≥ run keeps them disjoint.
                            let (lo_half, hi_half) = buf.split_at_mut(base + tbit);
                            simd::swap_slices(&mut lo_half[base..base + run], &mut hi_half[..run]);
                        }
                        base += run;
                    }
                    return;
                }
                for i in 0..buf.len() {
                    if i & cmask == cmask && i & tbit == 0 {
                        buf.swap(i, i | tbit);
                    }
                }
            }
            LocalOp::Rot { cmask, tbit, m } => {
                let lowest = (cmask | tbit) & (cmask | tbit).wrapping_neg();
                if lowest >= simd::LANES {
                    let run = lowest;
                    let mut base = 0;
                    while base < buf.len() {
                        if base & cmask == cmask && base & tbit == 0 {
                            let (lo_half, hi_half) = buf.split_at_mut(base + tbit);
                            simd::butterfly_slices(
                                &mut lo_half[base..base + run],
                                &mut hi_half[..run],
                                &m,
                            );
                        }
                        base += run;
                    }
                    return;
                }
                for i in 0..buf.len() {
                    if i & cmask == cmask && i & tbit == 0 {
                        let x = buf[i];
                        let y = buf[i | tbit];
                        buf[i] = m[0][0] * x + m[0][1] * y;
                        buf[i | tbit] = m[1][0] * x + m[1][1] * y;
                    }
                }
            }
            LocalOp::Swap { cmask, abit, bbit } => {
                let mask = cmask | abit | bbit;
                let lowest = mask & mask.wrapping_neg();
                if lowest >= simd::LANES {
                    let run = lowest;
                    let mut base = 0;
                    while base < buf.len() {
                        if base & cmask == cmask && base & abit != 0 && base & bbit == 0 {
                            let j = (base & !abit) | bbit;
                            let (x, y) = (base.min(j), base.max(j));
                            // |base − j| = |abit − bbit| ≥ run: disjoint.
                            let (lo_half, hi_half) = buf.split_at_mut(y);
                            simd::swap_slices(&mut lo_half[x..x + run], &mut hi_half[..run]);
                        }
                        base += run;
                    }
                    return;
                }
                for i in 0..buf.len() {
                    if i & cmask == cmask && i & abit != 0 && i & bbit == 0 {
                        buf.swap(i, (i & !abit) | bbit);
                    }
                }
            }
        }
    }

    /// Batched twin of [`LocalOp::apply`]: `buf` holds `2^k` local
    /// amplitudes for `batch` ensemble members in batch-major interleaved
    /// layout — local index `v` of member `j` lives at `v·batch + j`, so
    /// every local index is a contiguous run of `batch` elements. The op
    /// acts on whole runs, which keeps the arithmetic on the SIMD slice
    /// primitives at **any** local bit position (the per-state fast paths
    /// above need `tbit ≥ LANES`; here the run is the batch itself).
    pub(crate) fn apply_batch(&self, buf: &mut [C64], batch: usize) {
        debug_assert!(batch > 0 && buf.len() % batch == 0);
        let dim = buf.len() / batch;
        match *self {
            LocalOp::Diag {
                cmask,
                tbit,
                d0,
                d1,
            } => {
                for v in 0..dim {
                    if v & cmask == cmask {
                        let f = if v & tbit != 0 { d1 } else { d0 };
                        if f != C64::ONE {
                            simd::scale_slice(&mut buf[v * batch..(v + 1) * batch], f);
                        }
                    }
                }
            }
            LocalOp::Flip { cmask, tbit } => {
                for v in 0..dim {
                    if v & cmask == cmask && v & tbit == 0 {
                        let (lo, hi) = run_pair_mut(buf, v, v | tbit, batch);
                        simd::swap_slices(lo, hi);
                    }
                }
            }
            LocalOp::Rot { cmask, tbit, m } => {
                for v in 0..dim {
                    if v & cmask == cmask && v & tbit == 0 {
                        let (lo, hi) = run_pair_mut(buf, v, v | tbit, batch);
                        simd::butterfly_slices(lo, hi, &m);
                    }
                }
            }
            LocalOp::Swap { cmask, abit, bbit } => {
                for v in 0..dim {
                    if v & cmask == cmask && v & abit != 0 && v & bbit == 0 {
                        let (a, b) = run_pair_mut(buf, v, (v & !abit) | bbit, batch);
                        simd::swap_slices(a, b);
                    }
                }
            }
        }
    }
}

/// Two disjoint batch-length runs (`i·batch..` and `j·batch..`, `i ≠ j`)
/// of one interleaved buffer, in either index order.
#[inline(always)]
pub(crate) fn run_pair_mut(
    buf: &mut [C64],
    i: usize,
    j: usize,
    batch: usize,
) -> (&mut [C64], &mut [C64]) {
    debug_assert!(i != j);
    let (a, b) = (i.min(j), i.max(j));
    let (lo, hi) = buf.split_at_mut(b * batch);
    let lo_run = &mut lo[a * batch..(a + 1) * batch];
    let hi_run = &mut hi[..batch];
    if i < j {
        (lo_run, hi_run)
    } else {
        (hi_run, lo_run)
    }
}

/// Applies a fused block by gathering each group into a stack buffer,
/// running the block's precompiled ops on it in cache, and scattering the
/// result back — one memory sweep for the whole gate run, with exactly the
/// same per-amplitude arithmetic as unfused execution. As in
/// [`apply_fused_with`], the gather/scatter moves contiguous
/// `2^run_bits`-amplitude runs (one per *high* block qubit combination)
/// rather than `2^k` strided single elements.
pub(crate) fn apply_fused_local(
    state: &mut [C64],
    qubits: &[usize],
    ops: &[LocalOp],
    par_threshold: usize,
) {
    let n_bits = log2_len(state) as usize;
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    let run_bits = qubits
        .iter()
        .enumerate()
        .take_while(|&(i, &q)| q == i)
        .count();
    let run = 1usize << run_bits;
    let hi_offs: Vec<usize> = (0..dim >> run_bits)
        .map(|w| scatter_index(w, &qubits[run_bits..]))
        .collect();
    let count = 1usize << (n_bits - qubits.len());
    if state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..count).into_par_iter().for_each(|g| {
            let p = ptr;
            let base = expand_index(g, qubits);
            let mut buf = [C64::ZERO; MAX_FUSED_DIM];
            // SAFETY: distinct groups own disjoint state indices (see
            // `for_each_group`), and every run `base + off .. + run` stays
            // confined to this group's qubit-bit offsets.
            unsafe {
                for (w, &off) in hi_offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        p.0.add(base + off),
                        buf.as_mut_ptr().add(w * run),
                        run,
                    );
                }
                for op in ops {
                    op.apply(&mut buf[..dim]);
                }
                for (w, &off) in hi_offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        buf.as_ptr().add(w * run),
                        p.0.add(base + off),
                        run,
                    );
                }
            }
        });
    } else {
        let mut buf = [C64::ZERO; MAX_FUSED_DIM];
        for g in 0..count {
            let base = expand_index(g, qubits);
            simd::gather_runs(state, base, &hi_offs, run, &mut buf[..dim]);
            for op in ops {
                op.apply(&mut buf[..dim]);
            }
            simd::scatter_runs(&buf[..dim], state, base, &hi_offs, run);
        }
    }
}

/// Applies one [`Gate`] to a raw state slice, dispatching on structure.
pub fn apply_gate_slice(state: &mut [C64], gate: &Gate) {
    apply_gate_slice_with(state, gate, PAR_THRESHOLD)
}

/// [`apply_gate_slice`] with an explicit parallelism threshold.
pub fn apply_gate_slice_with(state: &mut [C64], gate: &Gate, par_threshold: usize) {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => match op.structure() {
            GateStructure::Diagonal(d0, d1) => {
                apply_diagonal_with(state, *target, controls, d0, d1, par_threshold)
            }
            GateStructure::PermutationX => {
                apply_perm_x_with(state, *target, controls, par_threshold)
            }
            GateStructure::General(m) => {
                apply_general_with(state, *target, controls, &m, par_threshold)
            }
        },
        Gate::Swap { a, b, controls } => apply_swap_with(state, *a, *b, controls, par_threshold),
    }
}

/// Number of state-vector entries a gate's kernel writes, as a function of
/// structure — the quantity behind the paper's Eq. 6 memory-traffic model.
/// (A controlled phase on n qubits writes `2^{n−2}` entries: a quarter.)
///
/// This counts **unfused** gate-by-gate application. Fused blocks write a
/// different (usually much smaller total) number of entries; use
/// [`fused_touched_entries`] / `FusedCircuit::touched_entries` so the
/// emulate-vs-simulate crossover heuristics stay honest under fusion.
pub fn touched_entries(n_qubits: usize, gate: &Gate) -> usize {
    match gate {
        Gate::Unary { op, controls, .. } => {
            let free = n_qubits - 1 - controls.len();
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    if d0 == C64::ONE && d1 == C64::ONE {
                        0
                    } else if d0 == C64::ONE {
                        1usize << free
                    } else {
                        2usize << free
                    }
                }
                _ => 2usize << free,
            }
        }
        Gate::Swap { controls, .. } => 2usize << (n_qubits - 2 - controls.len()),
    }
}

/// Entries one fused-block pass writes: `touched_local` entries in each of
/// the `2^{n−k}` groups. `touched_local` is the size of the block's local
/// write set — `2^k` for a general/dense block, the non-unit factor count
/// for a diagonal block, the moved-cycle support for a permutation block.
/// This is the fused-block extension of [`touched_entries`]: a block of
/// `g` gates pays this **once**, where unfused execution pays the per-gate
/// sum — the memory-traffic gap `docs/PERFORMANCE.md` quantifies.
pub fn fused_touched_entries(n_qubits: usize, block_qubits: usize, touched_local: usize) -> usize {
    assert!(block_qubits <= n_qubits, "block wider than the state");
    debug_assert!(touched_local <= 1usize << block_qubits);
    touched_local << (n_qubits - block_qubits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateOp;
    use qcemu_linalg::{c64, max_abs_diff, norm2, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Independent semantic oracle: applies a gate by explicit scatter of
    /// each basis amplitude. O(2^n) per gate, used only for validation.
    fn oracle_apply(state: &[C64], gate: &Gate) -> Vec<C64> {
        let n = state.len();
        let mut out = vec![C64::ZERO; n];
        for (j, &amp) in state.iter().enumerate() {
            match gate {
                Gate::Unary {
                    op,
                    target,
                    controls,
                } => {
                    let ctrl_ok = controls.iter().all(|&c| (j >> c) & 1 == 1);
                    if !ctrl_ok {
                        out[j] += amp;
                        continue;
                    }
                    let m = op.matrix();
                    let b = (j >> target) & 1;
                    let tbit = 1usize << target;
                    out[j & !tbit] += m[0][b] * amp;
                    out[j | tbit] += m[1][b] * amp;
                }
                Gate::Swap { a, b, controls } => {
                    let ctrl_ok = controls.iter().all(|&c| (j >> c) & 1 == 1);
                    if !ctrl_ok {
                        out[j] += amp;
                        continue;
                    }
                    let ba = (j >> a) & 1;
                    let bb = (j >> b) & 1;
                    let mut t = j & !((1usize << a) | (1usize << b));
                    t |= bb << a;
                    t |= ba << b;
                    out[t] += amp;
                }
            }
        }
        out
    }

    fn check_gate(n_qubits: usize, gate: Gate, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_state(1 << n_qubits, &mut rng);
        let mut fast = input.clone();
        apply_gate_slice(&mut fast, &gate);
        let slow = oracle_apply(&input, &gate);
        assert!(
            max_abs_diff(&fast, &slow) < 1e-12,
            "kernel mismatch for {gate:?} on {n_qubits} qubits: {}",
            max_abs_diff(&fast, &slow)
        );
        assert!(
            (norm2(&fast) - 1.0).abs() < 1e-10,
            "norm broken by {gate:?}"
        );
    }

    #[test]
    fn expand_index_inserts_zero_bits() {
        // positions [1, 3]: k bits fill positions 0, 2, 4, ...
        assert_eq!(expand_index(0b000, &[1, 3]), 0b00000);
        assert_eq!(expand_index(0b001, &[1, 3]), 0b00001);
        assert_eq!(expand_index(0b010, &[1, 3]), 0b00100);
        assert_eq!(expand_index(0b011, &[1, 3]), 0b00101);
        assert_eq!(expand_index(0b100, &[1, 3]), 0b10000);
    }

    #[test]
    fn expand_index_is_injective_and_avoids_positions() {
        let positions = [0usize, 2, 5];
        let mut seen = std::collections::HashSet::new();
        for k in 0..64 {
            let x = expand_index(k, &positions);
            for &p in &positions {
                assert_eq!((x >> p) & 1, 0, "bit {p} must be clear in {x:#b}");
            }
            assert!(seen.insert(x), "duplicate expansion {x}");
        }
    }

    #[test]
    fn single_qubit_gates_match_oracle() {
        for (i, op) in [
            GateOp::X,
            GateOp::Y,
            GateOp::Z,
            GateOp::H,
            GateOp::S,
            GateOp::T,
            GateOp::Rx(0.37),
            GateOp::Ry(-0.9),
            GateOp::Rz(1.1),
            GateOp::Phase(2.2),
        ]
        .into_iter()
        .enumerate()
        {
            for target in [0usize, 2, 4] {
                check_gate(5, Gate::unary(op.clone(), target), 100 + i as u64);
            }
        }
    }

    #[test]
    fn controlled_gates_match_oracle() {
        check_gate(5, Gate::cnot(0, 4), 200);
        check_gate(5, Gate::cnot(4, 0), 201);
        check_gate(5, Gate::cz(2, 3), 202);
        check_gate(5, Gate::cphase(1, 3, 0.77), 203);
        check_gate(5, Gate::controlled(GateOp::H, 3, 1), 204);
        check_gate(5, Gate::controlled(GateOp::Rz(0.5), 0, 2), 205);
    }

    #[test]
    fn multi_controlled_gates_match_oracle() {
        check_gate(6, Gate::toffoli(0, 1, 2), 300);
        check_gate(6, Gate::toffoli(5, 3, 0), 301);
        check_gate(6, Gate::mcx(vec![0, 2, 4], 5), 302);
        check_gate(
            6,
            Gate::Unary {
                op: GateOp::Phase(0.3),
                target: 1,
                controls: vec![0, 3, 5],
            },
            303,
        );
    }

    #[test]
    fn swap_gates_match_oracle() {
        check_gate(5, Gate::swap(0, 4), 400);
        check_gate(5, Gate::swap(2, 1), 401);
        check_gate(
            5,
            Gate::Swap {
                a: 0,
                b: 3,
                controls: vec![2],
            },
            402,
        );
    }

    #[test]
    fn large_state_parallel_path_matches_oracle() {
        // Above PAR_THRESHOLD so the rayon branches execute.
        let n_qubits = 16;
        let mut rng = StdRng::seed_from_u64(500);
        let input = random_state(1 << n_qubits, &mut rng);
        for gate in [
            Gate::h(15),
            Gate::h(0),
            Gate::cphase(3, 14, 0.9),
            Gate::cnot(15, 1),
            Gate::swap(0, 15),
            Gate::rz(7, 0.123),
        ] {
            let mut fast = input.clone();
            apply_gate_slice(&mut fast, &gate);
            let slow = oracle_apply(&input, &gate);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-12,
                "parallel kernel mismatch for {gate:?}"
            );
        }
    }

    #[test]
    fn double_x_is_identity() {
        let mut rng = StdRng::seed_from_u64(501);
        let input = random_state(64, &mut rng);
        let mut s = input.clone();
        apply_perm_x(&mut s, 3, &[]);
        apply_perm_x(&mut s, 3, &[]);
        assert!(max_abs_diff(&s, &input) < 1e-15);
    }

    #[test]
    fn phase_kernel_touches_only_one_half() {
        // Phase gate on |0⟩-basis state must be a no-op.
        let mut s = vec![C64::ZERO; 8];
        s[0] = C64::ONE; // |000⟩
        apply_diagonal(&mut s, 1, &[], C64::ONE, C64::cis(0.4));
        assert!(s[0].approx_eq(C64::ONE, 1e-15));
        // On |010⟩ it must apply the phase.
        let mut s = vec![C64::ZERO; 8];
        s[2] = C64::ONE;
        apply_diagonal(&mut s, 1, &[], C64::ONE, C64::cis(0.4));
        assert!(s[2].approx_eq(C64::cis(0.4), 1e-15));
    }

    #[test]
    fn identity_diagonal_is_noop() {
        let mut rng = StdRng::seed_from_u64(502);
        let input = random_state(32, &mut rng);
        let mut s = input.clone();
        apply_diagonal(&mut s, 2, &[], C64::ONE, C64::ONE);
        assert_eq!(
            max_abs_diff(&s, &input),
            0.0,
            "identity must not even perturb rounding"
        );
    }

    #[test]
    fn touched_entries_model() {
        let n = 10;
        let full = 1usize << n;
        // Hadamard: everything.
        assert_eq!(touched_entries(n, &Gate::h(0)), full);
        // Plain phase: half.
        assert_eq!(touched_entries(n, &Gate::phase(0, 0.1)), full / 2);
        // Controlled phase: a quarter (paper §3.2).
        assert_eq!(touched_entries(n, &Gate::cphase(0, 1, 0.1)), full / 4);
        // CNOT: half (pairs restricted by one control).
        assert_eq!(touched_entries(n, &Gate::cnot(0, 1)), full / 2);
        // Rz: both halves (d0 ≠ 1).
        assert_eq!(touched_entries(n, &Gate::rz(0, 0.1)), full);
        // Toffoli: a quarter.
        assert_eq!(touched_entries(n, &Gate::toffoli(0, 1, 2)), full / 4);
        // SWAP: half.
        assert_eq!(touched_entries(n, &Gate::swap(0, 1)), full / 2);
    }

    #[test]
    fn scatter_index_places_bits_on_positions() {
        let qubits = [1usize, 3, 4];
        let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
        for v in 0..8 {
            let x = scatter_index(v, &qubits);
            for (j, &q) in qubits.iter().enumerate() {
                assert_eq!((x >> q) & 1, (v >> j) & 1, "v={v}, q={q}");
            }
            // scatter hits only the listed positions…
            assert_eq!(x & !mask, 0);
            // …which are exactly the positions expand_index leaves clear.
            assert_eq!(expand_index(v, &qubits) & mask, 0);
        }
    }

    #[test]
    fn apply_fused_matches_gate_application() {
        // Fuse H(1)·CNOT(1→3)·T(3) into one dense block on qubits {1, 3}
        // by building the 4×4 matrix column by column with the gate
        // kernels themselves, then compare against gate-by-gate.
        let gates = [
            Gate::h(1),
            Gate::cnot(1, 3),
            Gate::t(3),
            Gate::swap(1, 3),
            Gate::cphase(3, 1, 0.37),
        ];
        let local: Vec<Gate> = [
            Gate::h(0),
            Gate::cnot(0, 1),
            Gate::t(1),
            Gate::swap(0, 1),
            Gate::cphase(1, 0, 0.37),
        ]
        .to_vec();
        let mut m = CMatrix::zeros(4, 4);
        for v in 0..4 {
            let mut col = vec![C64::ZERO; 4];
            col[v] = C64::ONE;
            for g in &local {
                apply_gate_slice(&mut col, g);
            }
            for r in 0..4 {
                m[(r, v)] = col[r];
            }
        }

        let mut rng = StdRng::seed_from_u64(600);
        let input = random_state(1 << 5, &mut rng);
        let mut fused = input.clone();
        apply_fused(&mut fused, &[1, 3], &m);
        let mut plain = input;
        for g in &gates {
            apply_gate_slice(&mut plain, g);
        }
        assert!(max_abs_diff(&fused, &plain) < 1e-12);
    }

    #[test]
    fn apply_fused_diagonal_matches_gates_and_skips_identity() {
        // diag factors of CZ(0,1)·T(0) on qubits {0, 1}.
        let t = C64::cis(std::f64::consts::FRAC_PI_4);
        let factors = [C64::ONE, t, C64::ONE, t * c64(-1.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(601);
        let input = random_state(1 << 4, &mut rng);
        let mut fused = input.clone();
        apply_fused_diagonal(&mut fused, &[0, 1], &factors);
        let mut plain = input;
        apply_gate_slice(&mut plain, &Gate::cz(0, 1));
        apply_gate_slice(&mut plain, &Gate::t(0));
        assert!(max_abs_diff(&fused, &plain) < 1e-14);

        // All-identity factors must leave the state bitwise untouched.
        let before = fused.clone();
        apply_fused_diagonal(&mut fused, &[0, 1], &[C64::ONE; 4]);
        assert_eq!(max_abs_diff(&fused, &before), 0.0);

        // Accounting: 2 of the 4 local entries (|01⟩, |11⟩) are non-unit,
        // so the block writes half of a 4-qubit state.
        assert_eq!(fused_touched_entries(4, 2, 2), 8);
    }

    #[test]
    fn apply_fused_permutation_matches_gates() {
        // CNOT(0→1) then CNOT(0→2) as one monomial block on {0, 1, 2}:
        // target[v] flips bits 1 and 2 when bit 0 is set.
        let mut target = [0usize; 8];
        for (v, slot) in target.iter_mut().enumerate() {
            *slot = if v & 1 != 0 { v ^ 0b110 } else { v };
        }
        let factor = [C64::ONE; 8];
        let mut rng = StdRng::seed_from_u64(602);
        let input = random_state(1 << 4, &mut rng);
        let mut fused = input.clone();
        apply_fused_permutation(&mut fused, &[0, 1, 2], &target, &factor);
        let mut plain = input;
        apply_gate_slice(&mut plain, &Gate::cnot(0, 1));
        apply_gate_slice(&mut plain, &Gate::cnot(0, 2));
        assert_eq!(max_abs_diff(&fused, &plain), 0.0, "pure data movement");
    }

    #[test]
    fn apply_fused_permutation_with_phases() {
        // X(0)·S(0) on qubit {0}: |0⟩ → i|1⟩? Track: X then S gives
        // column 0 → e_1 with factor i, column 1 → e_0 with factor 1.
        let target = [1usize, 0];
        let factor = [C64::I, C64::ONE];
        let mut rng = StdRng::seed_from_u64(603);
        let input = random_state(8, &mut rng);
        let mut fused = input.clone();
        apply_fused_permutation(&mut fused, &[0], &target, &factor);
        let mut plain = input;
        apply_gate_slice(&mut plain, &Gate::x(0));
        apply_gate_slice(&mut plain, &Gate::s(0));
        assert!(max_abs_diff(&fused, &plain) < 1e-15);
    }

    #[test]
    fn local_ops_reproduce_each_gate_kernel() {
        let mut rng = StdRng::seed_from_u64(604);
        let gates = [
            Gate::h(1),
            Gate::x(2),
            Gate::rz(0, 0.7),
            Gate::cphase(0, 2, -0.4),
            Gate::cnot(2, 0),
            Gate::swap(0, 1),
            Gate::toffoli(0, 1, 2),
            Gate::Swap {
                a: 1,
                b: 2,
                controls: vec![0],
            },
        ];
        for gate in gates {
            let input = random_state(8, &mut rng);
            let mut via_local = input.clone();
            LocalOp::from_gate(&gate).apply(&mut via_local);
            let mut via_kernel = input;
            apply_gate_slice(&mut via_kernel, &gate);
            assert!(
                max_abs_diff(&via_local, &via_kernel) < 1e-15,
                "LocalOp mismatch for {gate:?}"
            );
        }
    }

    #[test]
    fn fused_kernels_parallel_path_matches_serial() {
        // Above PAR_THRESHOLD so the rayon branch of for_each_group runs.
        let n_qubits = 16;
        let mut rng = StdRng::seed_from_u64(605);
        let input = random_state(1 << n_qubits, &mut rng);
        let local = [Gate::h(0), Gate::cnot(0, 1), Gate::rz(1, 0.3)];
        let mut m = CMatrix::zeros(4, 4);
        for v in 0..4 {
            let mut col = vec![C64::ZERO; 4];
            col[v] = C64::ONE;
            for g in &local {
                apply_gate_slice(&mut col, g);
            }
            for r in 0..4 {
                m[(r, v)] = col[r];
            }
        }
        let mut fused = input.clone();
        apply_fused(&mut fused, &[3, 14], &m);
        let mut plain = input;
        let remapped = [Gate::h(3), Gate::cnot(3, 14), Gate::rz(14, 0.3)];
        for g in &remapped {
            apply_gate_slice(&mut plain, g);
        }
        assert!(max_abs_diff(&fused, &plain) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn fused_qubits_must_be_sorted() {
        let mut state = vec![C64::ZERO; 8];
        apply_fused_diagonal(&mut state, &[2, 0], &[C64::I; 4]);
    }

    #[test]
    fn touched_entries_matches_instrumented_count() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 8;
        let mut state = vec![c64(1.0, 0.0); 1 << n]; // unnormalised, fine
        let counter = AtomicUsize::new(0);
        // Controlled phase via for_each_one.
        for_each_one(&mut state, 3, &[5], |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            touched_entries(n, &Gate::cphase(5, 3, 0.1))
        );
        // General pair kernel writes 2 per pair.
        let counter = AtomicUsize::new(0);
        for_each_pair(&mut state, 2, &[0, 6], |_, _| {
            counter.fetch_add(2, Ordering::Relaxed);
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            touched_entries(n, &Gate::toffoli(0, 6, 2))
        );
    }
}

//! Quantum circuits: ordered gate sequences with structural queries.

use crate::gate::{Gate, GateOp};

/// An ordered list of gates on a fixed number of qubits.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Empty circuit on `n_qubits`.
    pub fn new(n_qubits: usize) -> Circuit {
        Circuit {
            n_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits the circuit addresses.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The gates in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total gate count `G` (the quantity in the paper's QPE analysis).
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Appends a gate after validating it.
    ///
    /// Panics on an invalid gate; use [`Circuit::try_push`] where a
    /// malformed gate must be a recoverable error (e.g. when the gate
    /// was decoded from untrusted input).
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate)
            .unwrap_or_else(|e| panic!("invalid gate: {e}"));
    }

    /// Appends a gate, returning the validation error instead of
    /// panicking when the gate does not fit this circuit.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), String> {
        gate.validate(self.n_qubits)?;
        self.gates.push(gate);
        Ok(())
    }

    /// Appends all gates of another circuit (qubit counts must agree or the
    /// other circuit must be smaller).
    pub fn extend(&mut self, other: &Circuit) {
        assert!(
            other.n_qubits <= self.n_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit one",
            self.n_qubits,
            other.n_qubits
        );
        self.gates.extend(other.gates.iter().cloned());
    }

    /// Total state-vector entries written by one unfused, gate-by-gate
    /// execution on an `n_qubits` state (`n_qubits` may exceed the
    /// circuit's own width, e.g. when ancillas are appended above it) —
    /// the per-gate sum of [`crate::kernels::touched_entries`], and the
    /// unfused counterpart of
    /// [`FusedCircuit::touched_entries`](crate::fusion::FusedCircuit::touched_entries).
    /// This is the memory-traffic estimate the execution planner's cost
    /// model consumes: at ≥20 qubits gate application is memory-bound, so
    /// predicted runtime is proportional to entries written, not flops.
    pub fn touched_entries(&self, n_qubits: usize) -> usize {
        assert!(n_qubits >= self.n_qubits, "state narrower than the circuit");
        self.gates
            .iter()
            .map(|g| crate::kernels::touched_entries(n_qubits, g))
            .sum()
    }

    /// Fuses this circuit under `policy` with the greedy window clamped to
    /// `max_block_qubits` — the entry point for executors whose blocks
    /// must fit inside a sub-register, e.g. the distributed simulator,
    /// where a non-diagonal block can only execute communication-free if
    /// all of its qubits fit among the `n_local` node-local slots.
    pub fn fuse_within(
        &self,
        policy: &crate::fusion::FusionPolicy,
        max_block_qubits: usize,
    ) -> crate::fusion::FusedCircuit {
        crate::fusion::fuse_circuit(self, &policy.clamped(max_block_qubits))
    }

    // --- fluent builder helpers -----------------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::h(q));
        self
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::x(q));
        self
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::y(q));
        self
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::z(q));
        self
    }
    /// Rz(θ) on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::rz(q, theta));
        self
    }
    /// Rx(θ) on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::rx(q, theta));
        self
    }
    /// Ry(θ) on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::ry(q, theta));
        self
    }
    /// Phase(θ) on `q`.
    pub fn phase(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::phase(q, theta));
        self
    }
    /// CNOT.
    pub fn cnot(&mut self, c: usize, t: usize) -> &mut Self {
        self.push(Gate::cnot(c, t));
        self
    }
    /// Controlled phase (paper's CR gate).
    pub fn cphase(&mut self, c: usize, t: usize, theta: f64) -> &mut Self {
        self.push(Gate::cphase(c, t, theta));
        self
    }
    /// Toffoli.
    pub fn toffoli(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.push(Gate::toffoli(c1, c2, t));
        self
    }
    /// SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::swap(a, b));
        self
    }

    // --- structural transforms ------------------------------------------

    /// The inverse circuit: gates reversed and daggered. Running a circuit
    /// in reverse is the uncomputation step of reversible arithmetic
    /// (paper §3, Bennett \[10\]).
    pub fn inverse(&self) -> Circuit {
        Circuit {
            n_qubits: self.n_qubits,
            gates: self.gates.iter().rev().map(Gate::dagger).collect(),
        }
    }

    /// The circuit with every gate given an extra control qubit — the
    /// controlled-U construction QPE applies (paper §3.3, footnote 3).
    pub fn controlled_by(&self, control: usize) -> Circuit {
        let gates = self.gates.iter().map(|g| g.add_control(control)).collect();
        Circuit {
            n_qubits: self.n_qubits.max(control + 1),
            gates,
        }
    }

    /// Remaps every qubit index through `f` (register relocation).
    pub fn remap_qubits(&self, n_qubits: usize, f: impl Fn(usize) -> usize) -> Circuit {
        let map_gate = |g: &Gate| -> Gate {
            match g {
                Gate::Unary {
                    op,
                    target,
                    controls,
                } => Gate::Unary {
                    op: op.clone(),
                    target: f(*target),
                    controls: controls.iter().map(|&c| f(c)).collect(),
                },
                Gate::Swap { a, b, controls } => Gate::Swap {
                    a: f(*a),
                    b: f(*b),
                    controls: controls.iter().map(|&c| f(c)).collect(),
                },
            }
        };
        let mut out = Circuit::new(n_qubits);
        for g in &self.gates {
            out.push(map_gate(g));
        }
        out
    }

    /// Circuit depth under the standard greedy layering (gates sharing a
    /// qubit cannot share a layer).
    pub fn depth(&self) -> usize {
        let mut layer_of_qubit = vec![0usize; self.n_qubits];
        let mut depth = 0usize;
        for g in &self.gates {
            let qs = g.qubits();
            let layer = qs.iter().map(|&q| layer_of_qubit[q]).max().unwrap_or(0) + 1;
            for q in qs {
                layer_of_qubit[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Gate census: (diagonal, permutation/general pairs, swaps) — used by
    /// the communication model to count exchange-triggering gates.
    pub fn census(&self) -> CircuitCensus {
        let mut census = CircuitCensus::default();
        for g in &self.gates {
            match g {
                Gate::Unary { op, controls, .. } => {
                    if op.is_diagonal() {
                        census.diagonal += 1;
                    } else if matches!(op, GateOp::X) {
                        census.permutation += 1;
                    } else {
                        census.general += 1;
                    }
                    if !controls.is_empty() {
                        census.controlled += 1;
                    }
                }
                Gate::Swap { controls, .. } => {
                    census.swap += 1;
                    if !controls.is_empty() {
                        census.controlled += 1;
                    }
                }
            }
        }
        census
    }
}

/// Gate counts by structural class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitCensus {
    /// Gates with diagonal action (Z, S, T, Rz, Phase, …).
    pub diagonal: usize,
    /// X gates (pure permutations).
    pub permutation: usize,
    /// Dense 2×2 gates (H, Rx, Ry, U…).
    pub general: usize,
    /// SWAP gates.
    pub swap: usize,
    /// Gates with at least one control (subset of the above).
    pub controlled: usize,
}

impl CircuitCensus {
    /// Total gates.
    pub fn total(&self) -> usize {
        self.diagonal + self.permutation + self.general + self.swap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cphase(1, 2, 0.5).rz(2, 0.1).swap(0, 2);
        assert_eq!(c.gate_count(), 5);
        let census = c.census();
        assert_eq!(census.general, 1); // H
        assert_eq!(census.permutation, 1); // CNOT's X op
        assert_eq!(census.diagonal, 2); // cphase, rz
        assert_eq!(census.swap, 1);
        assert_eq!(census.controlled, 2); // cnot, cphase
        assert_eq!(census.total(), 5);
    }

    #[test]
    fn try_push_rejects_invalid_gates_without_panicking() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::x(5)).is_err());
        assert!(c.try_push(Gate::cnot(0, 0)).is_err());
        assert_eq!(c.gate_count(), 0, "rejected gates are not appended");
        c.try_push(Gate::x(1)).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .rz(1, 0.7)
            .cphase(0, 2, 1.1)
            .x(2)
            .swap(1, 2);
        let mut sv = StateVector::zero_state(3);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        let expect = StateVector::zero_state(3);
        assert!(sv.max_diff_up_to_phase(&expect) < 1e-12);
    }

    #[test]
    fn inverse_reverses_order() {
        let mut c = Circuit::new(2);
        c.h(0).s(0);
        let inv = c.inverse();
        // First gate of the inverse is S†.
        assert_eq!(inv.gates()[0], Gate::unary(GateOp::Sdg, 0));
        assert_eq!(inv.gates()[1], Gate::h(0));
    }

    #[test]
    fn controlled_by_adds_one_control_everywhere() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let cc = c.controlled_by(2);
        assert_eq!(cc.n_qubits(), 3);
        for g in cc.gates() {
            assert!(g.num_controls() >= 1);
        }
        // Control |0⟩ must make the whole thing an identity.
        let mut sv = StateVector::basis_state(3, 0b000);
        sv.apply_circuit(&cc);
        assert_eq!(sv.probability(0), 1.0);
        // Control |1⟩ runs the circuit: H then CNOT on qubits 0, 1.
        let mut sv = StateVector::basis_state(3, 0b100);
        sv.apply_circuit(&cc);
        assert!((sv.probability(0b100) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b111) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn remap_relocates_registers() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let shifted = c.remap_qubits(4, |q| q + 2);
        let mut sv = StateVector::zero_state(4);
        sv.apply_circuit(&shifted);
        // Bell pair on qubits 2, 3.
        assert!((sv.probability(0b0000) - 0.5).abs() < 1e-12);
        assert!((sv.probability(0b1100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depth_layering() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // one layer
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1); // second layer
        assert_eq!(c.depth(), 2);
        c.h(2); // still second layer (qubit 2 free)
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // third layer
        assert_eq!(c.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid gate")]
    fn push_validates() {
        let mut c = Circuit::new(2);
        c.push(Gate::cnot(0, 3));
    }

    #[test]
    fn extend_smaller_circuit() {
        let mut small = Circuit::new(2);
        small.h(0);
        let mut big = Circuit::new(4);
        big.extend(&small);
        assert_eq!(big.gate_count(), 1);
    }

    use crate::gate::GateOp;

    impl Circuit {
        fn s(&mut self, q: usize) -> &mut Self {
            self.push(Gate::unary(GateOp::S, q));
            self
        }
    }
}

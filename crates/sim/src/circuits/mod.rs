//! Generators for the benchmark circuits used throughout the paper:
//! QFT (§3.2, Figs. 3–5), the entangling operation (Fig. 6), and the
//! transverse-field Ising Trotter step (Table 2).

pub mod entangle;
pub mod qft;
pub mod tfim;

pub use entangle::entangle_circuit;
pub use qft::{inverse_qft_circuit, qft_circuit, qft_circuit_no_swap, qft_gate_count};
pub use tfim::{tfim_gate_count, tfim_trotter_step, TfimParams};

//! Transverse-field Ising model (TFIM) Trotter-step circuits.
//!
//! Table 2 of the paper benchmarks QPE on "the time evolution of a
//! one-dimensional transverse field Ising model" with `G = 4n − 3` gates
//! for `n` qubits (n = 8 → 29 gates, …, n = 14 → 53). A first-order Trotter
//! step of `H = −J Σ Z_i Z_{i+1} − h Σ X_i` on an open chain is exactly
//! that: `n` Rx rotations plus `n−1` ZZ interactions, each ZZ compiled as
//! CNOT–Rz–CNOT (3 gates): `n + 3(n−1) = 4n − 3`.

use crate::circuit::Circuit;

/// Parameters of the TFIM evolution operator.
#[derive(Clone, Copy, Debug)]
pub struct TfimParams {
    /// Ising coupling J.
    pub coupling: f64,
    /// Transverse field h.
    pub field: f64,
    /// Trotter time step Δt.
    pub dt: f64,
}

impl Default for TfimParams {
    fn default() -> Self {
        TfimParams {
            coupling: 1.0,
            field: 0.7,
            dt: 0.1,
        }
    }
}

/// One first-order Trotter step `e^{-i H_X Δt} e^{-i H_ZZ Δt}` of the TFIM
/// on an open chain of `n` qubits. Gate count: `4n − 3`.
pub fn tfim_trotter_step(n: usize, p: TfimParams) -> Circuit {
    assert!(n >= 2, "TFIM chain needs at least 2 sites");
    let mut c = Circuit::new(n);
    // Transverse field: Rx(2 h Δt) on every site.
    for q in 0..n {
        c.rx(q, 2.0 * p.field * p.dt);
    }
    // Ising bonds: exp(i J Δt Z_i Z_{i+1}) = CNOT · Rz(−2 J Δt) · CNOT.
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
        c.rz(q + 1, -2.0 * p.coupling * p.dt);
        c.cnot(q, q + 1);
    }
    c
}

/// The paper's Table 2 gate-count model `G = 4n − 3`.
pub fn tfim_gate_count(n: usize) -> usize {
    4 * n - 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qcemu_linalg::C64;

    #[test]
    fn gate_count_matches_table2() {
        // Paper Table 2 row "Number of gates G": 29, 33, …, 53 for n = 8..14.
        let expected = [
            (8, 29),
            (9, 33),
            (10, 37),
            (11, 41),
            (12, 45),
            (13, 49),
            (14, 53),
        ];
        for (n, g) in expected {
            assert_eq!(tfim_trotter_step(n, TfimParams::default()).gate_count(), g);
            assert_eq!(tfim_gate_count(n), g);
        }
    }

    #[test]
    fn circuit_is_unitary_norm_preserving() {
        let c = tfim_trotter_step(5, TfimParams::default());
        let mut sv = StateVector::uniform_superposition(5);
        sv.apply_circuit(&c);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_undoes_step() {
        let c = tfim_trotter_step(4, TfimParams::default());
        let mut sv = StateVector::basis_state(4, 0b1010);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        assert!(sv.max_diff_up_to_phase(&StateVector::basis_state(4, 0b1010)) < 1e-12);
    }

    #[test]
    fn zero_coupling_zero_field_is_identity() {
        let p = TfimParams {
            coupling: 0.0,
            field: 0.0,
            dt: 0.3,
        };
        let c = tfim_trotter_step(3, p);
        let mut sv = StateVector::uniform_superposition(3);
        let orig = sv.clone();
        sv.apply_circuit(&c);
        assert!(sv.max_diff_up_to_phase(&orig) < 1e-12);
    }

    #[test]
    fn zz_term_adds_phase_to_antialigned_sites() {
        // With field = 0 the step is diagonal: basis states only acquire
        // phases, so probabilities are untouched.
        let p = TfimParams {
            coupling: 0.8,
            field: 0.0,
            dt: 0.25,
        };
        let c = tfim_trotter_step(3, p);
        for k in 0..8 {
            let mut sv = StateVector::basis_state(3, k);
            sv.apply_circuit(&c);
            assert!(
                (sv.probability(k) - 1.0).abs() < 1e-12,
                "diagonal evolution must keep basis state {k}"
            );
        }
        // And the phases differ between aligned and anti-aligned bonds.
        let phase_of = |k: usize| {
            let mut sv = StateVector::basis_state(3, k);
            sv.apply_circuit(&c);
            sv.amplitudes()[k].arg()
        };
        // |000⟩ (both bonds aligned) vs |010⟩ (both bonds anti-aligned).
        assert!((phase_of(0b000) - phase_of(0b010)).abs() > 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_site() {
        let _ = tfim_trotter_step(1, TfimParams::default());
    }

    #[test]
    fn first_gate_is_rx_last_is_cnot() {
        let c = tfim_trotter_step(3, TfimParams::default());
        // Shape check so the G = 4n−3 structure is the documented one.
        use crate::gate::{Gate, GateOp};
        assert!(matches!(
            &c.gates()[0],
            Gate::Unary {
                op: GateOp::Rx(_),
                ..
            }
        ));
        assert!(matches!(
            &c.gates()[c.gate_count() - 1],
            Gate::Unary { op: GateOp::X, controls, .. } if controls.len() == 1
        ));
        let _ = C64::ZERO; // keep import used
    }
}

//! The "entangling operation" benchmark circuit of paper §4.5 (Fig. 6):
//! a Hadamard on the first qubit followed by CNOTs onto every other qubit,
//! all conditioned on the first — producing the n-qubit GHZ state from |0⟩.

use crate::circuit::Circuit;

/// `H(0)` then `CNOT(0 → k)` for `k = 1..n`.
pub fn entangle_circuit(n: usize) -> Circuit {
    assert!(n >= 1, "need at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for k in 1..n {
        c.cnot(0, k);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;

    #[test]
    fn produces_ghz_state() {
        for n in 1..=8 {
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&entangle_circuit(n));
            let dim = 1usize << n;
            assert!((sv.probability(0) - 0.5).abs() < 1e-12, "n = {n}");
            assert!((sv.probability(dim - 1) - 0.5).abs() < 1e-12, "n = {n}");
            for k in 1..dim - 1 {
                assert!(sv.probability(k) < 1e-15, "n = {n}, k = {k}");
            }
        }
    }

    #[test]
    fn gate_count_is_n() {
        assert_eq!(entangle_circuit(22).gate_count(), 22);
    }

    #[test]
    fn applied_twice_returns_to_plus_like_state() {
        // The circuit is its own inverse (H and CNOT are involutions and
        // they commute appropriately in reverse order only) — verify via
        // explicit inverse instead.
        let c = entangle_circuit(5);
        let mut sv = StateVector::zero_state(5);
        sv.apply_circuit(&c);
        sv.apply_circuit(&c.inverse());
        assert!((sv.probability(0) - 1.0).abs() < 1e-12);
    }
}

//! Gate-level quantum Fourier transform circuits (paper §3.2).
//!
//! The QFT on `n` qubits is `n` Hadamards plus `n(n−1)/2` controlled phase
//! shifts (plus ⌊n/2⌋ SWAPs for bit order) — the O(n²) circuit whose
//! simulation the emulator replaces with a single FFT.
//!
//! Conventions: qubit `k` is bit `k` of the register value (little-endian).
//! `qft_circuit` implements exactly paper Eq. (4):
//! `α_l ↦ 2^{-n/2} Σ_k α_k e^{2πi k l / 2^n}`, verified against the FFT in
//! the test suite.

use crate::circuit::Circuit;
use std::f64::consts::PI;

/// Full QFT circuit on qubits `0..n` including the final SWAP network.
pub fn qft_circuit(n: usize) -> Circuit {
    let mut c = qft_circuit_no_swap(n);
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// QFT without the final SWAPs: output in bit-reversed order. This is the
/// variant algorithms use when they absorb the reversal into later indexing
/// (e.g. Shor implementations).
pub fn qft_circuit_no_swap(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    // Process from the most significant qubit downwards.
    for t in (0..n).rev() {
        c.h(t);
        // Qubit t−d contributes a phase rotation of π/2^d on target t.
        for d in 1..=t {
            c.cphase(t - d, t, PI / (1u64 << d) as f64);
        }
    }
    c
}

/// Inverse QFT (with SWAPs).
pub fn inverse_qft_circuit(n: usize) -> Circuit {
    qft_circuit(n).inverse()
}

/// Gate count of the QFT circuit: `n` H + `n(n−1)/2` CR + `⌊n/2⌋` SWAP.
pub fn qft_gate_count(n: usize) -> usize {
    n + n * (n - 1) / 2 + n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::StateVector;
    use qcemu_fft::{inverse_qft_convention, qft_convention};
    use qcemu_linalg::{max_abs_diff, random_state, C64};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gate_count_formula() {
        for n in 1..10 {
            assert_eq!(qft_circuit(n).gate_count(), qft_gate_count(n), "n = {n}");
        }
    }

    #[test]
    fn qft_circuit_matches_fft_on_basis_states() {
        for n in 1..=6 {
            for k in 0..(1usize << n) {
                let mut sv = StateVector::basis_state(n, k);
                sv.apply_circuit(&qft_circuit(n));

                let mut expect = vec![C64::ZERO; 1 << n];
                expect[k] = C64::ONE;
                qft_convention(&mut expect);

                assert!(
                    max_abs_diff(sv.amplitudes(), &expect) < 1e-10,
                    "n = {n}, k = {k}"
                );
            }
        }
    }

    #[test]
    fn qft_circuit_matches_fft_on_random_states() {
        let mut rng = StdRng::seed_from_u64(80);
        for n in 2..=8 {
            let input = random_state(1 << n, &mut rng);
            let mut sv = StateVector::from_amplitudes(input.clone());
            sv.apply_circuit(&qft_circuit(n));
            let mut expect = input;
            qft_convention(&mut expect);
            assert!(
                max_abs_diff(sv.amplitudes(), &expect) < 1e-9,
                "n = {n}: {}",
                max_abs_diff(sv.amplitudes(), &expect)
            );
        }
    }

    #[test]
    fn inverse_qft_matches_inverse_fft() {
        let mut rng = StdRng::seed_from_u64(81);
        let n = 6;
        let input = random_state(1 << n, &mut rng);
        let mut sv = StateVector::from_amplitudes(input.clone());
        sv.apply_circuit(&inverse_qft_circuit(n));
        let mut expect = input;
        inverse_qft_convention(&mut expect);
        assert!(max_abs_diff(sv.amplitudes(), &expect) < 1e-9);
    }

    #[test]
    fn qft_then_inverse_is_identity() {
        let mut rng = StdRng::seed_from_u64(82);
        let n = 7;
        let input = random_state(1 << n, &mut rng);
        let mut sv = StateVector::from_amplitudes(input.clone());
        sv.apply_circuit(&qft_circuit(n));
        sv.apply_circuit(&inverse_qft_circuit(n));
        assert!(max_abs_diff(sv.amplitudes(), &input) < 1e-9);
    }

    #[test]
    fn no_swap_variant_is_bit_reversed() {
        let n = 4;
        let mut rng = StdRng::seed_from_u64(83);
        let input = random_state(1 << n, &mut rng);
        let mut plain = StateVector::from_amplitudes(input.clone());
        plain.apply_circuit(&qft_circuit(n));
        let mut ns = StateVector::from_amplitudes(input);
        ns.apply_circuit(&qft_circuit_no_swap(n));
        // Relate by bit reversal of the index.
        let rev = |i: usize| {
            let mut r = 0usize;
            for b in 0..n {
                r |= ((i >> b) & 1) << (n - 1 - b);
            }
            r
        };
        for i in 0..(1usize << n) {
            assert!(
                plain.amplitudes()[i].approx_eq(ns.amplitudes()[rev(i)], 1e-10),
                "i = {i}"
            );
        }
    }

    #[test]
    fn qft_preserves_norm() {
        let mut sv = StateVector::basis_state(5, 17);
        sv.apply_circuit(&qft_circuit(5));
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }
}

//! Gate fusion: merging runs of adjacent gates into k-qubit blocks that
//! are applied in **one cache-blocked sweep** of the state vector.
//!
//! The paper's §4.5 kernels already specialise *single* gates to their
//! structure; this module adds the next optimisation used by
//! qHiPSTER-class engines: a run of g gates whose qubit sets fit inside a
//! window of `max_fused_qubits` qubits is collapsed into a single
//! [`FusedGate`], and the whole block is applied with one pass over the
//! 2ⁿ amplitudes instead of g passes. At ≥20 qubits the state no longer
//! fits in cache, so gate application is memory-bound and runtime is
//! proportional to *sweeps*, not flops — fusing is then close to a g× win
//! on the fused portion (see `docs/PERFORMANCE.md` for the traffic model
//! and measured numbers).
//!
//! Structure awareness survives fusion: each block's composed matrix is
//! classified the same way single gates are —
//!
//! * **diagonal** blocks (runs of Z/S/T/Rz/phase gates) touch only the
//!   amplitudes whose factor differs from 1;
//! * **permutation** blocks (runs of X/CNOT/SWAP, possibly with phases)
//!   move amplitudes along cycles with no arithmetic;
//! * **general** blocks gather each 2^k group into an L1-resident buffer,
//!   replay the block's precompiled gates on it, and scatter once — the
//!   same flops as unfused execution, paid against one memory sweep.
//!
//! # Examples
//!
//! ```
//! use qcemu_sim::{qft_circuit, FusionPolicy, SimConfig, StateVector};
//!
//! let circuit = qft_circuit(6);
//! let mut fused = StateVector::zero_state(6);
//! fused.run(&circuit, &SimConfig::fused(4));
//!
//! let mut plain = StateVector::zero_state(6);
//! plain.apply_circuit(&circuit);
//! assert!(fused.max_diff_up_to_phase(&plain) < 1e-12);
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::kernels::{
    apply_fused_diagonal_with, apply_fused_local, apply_fused_permutation_with, apply_fused_with,
    apply_gate_slice_with, fused_touched_entries, touched_entries, LocalOp, MAX_FUSED_QUBITS,
    PAR_THRESHOLD,
};
use crate::mps::MpsPolicy;
use crate::segment::SegmentPolicy;
use qcemu_linalg::{simd, CMatrix, C64};

/// Default fusion window: 4 qubits (16-amplitude groups) balances sweep
/// reduction against gather/scatter overhead on current cache hierarchies;
/// see `docs/PERFORMANCE.md` for how to pick a different value.
pub const DEFAULT_MAX_FUSED_QUBITS: usize = 4;

/// How (and whether) a circuit is fused before execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FusionPolicy {
    /// Gate-by-gate application through the structural kernels — the
    /// paper-faithful baseline, and bitwise identical to
    /// [`StateVector::apply_circuit`](crate::StateVector::apply_circuit).
    #[default]
    Disabled,
    /// Greedily merge consecutive gates while their combined qubit set
    /// stays within `max_fused_qubits` (clamped to
    /// [`MAX_FUSED_QUBITS`]).
    Greedy {
        /// Widest qubit set a fused block may span.
        max_fused_qubits: usize,
    },
}

impl FusionPolicy {
    /// Greedy fusion at the default window width.
    pub fn greedy() -> FusionPolicy {
        FusionPolicy::Greedy {
            max_fused_qubits: DEFAULT_MAX_FUSED_QUBITS,
        }
    }

    /// This policy with any greedy window clamped to `max_block_qubits`
    /// (floored at 1); `Disabled` stays `Disabled`.
    pub fn clamped(self, max_block_qubits: usize) -> FusionPolicy {
        match self {
            FusionPolicy::Disabled => FusionPolicy::Disabled,
            FusionPolicy::Greedy { max_fused_qubits } => FusionPolicy::Greedy {
                max_fused_qubits: max_fused_qubits.min(max_block_qubits).max(1),
            },
        }
    }
}

/// State-vector execution configuration, threaded through
/// [`StateVector::run`](crate::StateVector::run) and the `qcemu-core`
/// executors so emulation shortcuts and fused simulation compose.
///
/// The default is fusion **disabled**: opt in with [`SimConfig::fused`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Gate-fusion policy for gate-level circuit execution.
    pub fusion: FusionPolicy,
    /// Cache-blocked segmentation policy, layered above fusion: when
    /// enabled, runs of block-compatible gates execute as one blocked
    /// pass and only the leftover runs go through `fusion` (see
    /// [`crate::segment`]).
    pub segments: SegmentPolicy,
    /// State size (in amplitudes) from which kernels parallelise —
    /// defaults to [`PAR_THRESHOLD`]. Overridable so calibration
    /// harnesses can sweep the handoff point on the host instead of
    /// trusting the hard-coded constant; respected by the per-gate *and*
    /// fused drivers.
    pub par_threshold: usize,
    /// Compressed (MPS) execution policy: whether the planner may (or
    /// must) run gate-level ops in bond-truncated matrix-product form,
    /// and at which χ cap (see [`crate::mps`]).
    pub mps: MpsPolicy,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            fusion: FusionPolicy::default(),
            segments: SegmentPolicy::default(),
            par_threshold: PAR_THRESHOLD,
            mps: MpsPolicy::default(),
        }
    }
}

impl SimConfig {
    /// Gate-by-gate execution (the default).
    pub fn unfused() -> SimConfig {
        SimConfig::default()
    }

    /// Greedy fusion with blocks up to `max_fused_qubits` wide.
    pub fn fused(max_fused_qubits: usize) -> SimConfig {
        SimConfig {
            fusion: FusionPolicy::Greedy { max_fused_qubits },
            ..SimConfig::default()
        }
    }

    /// Cache-blocked segment execution at the default L2-sized block,
    /// with greedy fusion for the runs that fall out of segments — the
    /// configuration `qcemu-core`'s `SimulateSegmented` planner steps
    /// lower to.
    pub fn segmented() -> SimConfig {
        SimConfig {
            fusion: FusionPolicy::greedy(),
            segments: SegmentPolicy::blocked(),
            ..SimConfig::default()
        }
    }

    /// Compressed MPS execution at bond cap `max_bond` for every
    /// gate-level op — the configuration `qcemu-core`'s `SimulateMps`
    /// planner steps price and a fixed-backend MPS simulator uses.
    pub fn mps(max_bond: usize) -> SimConfig {
        SimConfig {
            mps: MpsPolicy::Forced {
                max_bond: max_bond.max(1),
            },
            ..SimConfig::default()
        }
    }

    /// This configuration with a different parallelism threshold.
    pub fn with_par_threshold(mut self, par_threshold: usize) -> SimConfig {
        self.par_threshold = par_threshold.max(1);
        self
    }

    /// This configuration with a different MPS policy.
    pub fn with_mps(mut self, mps: MpsPolicy) -> SimConfig {
        self.mps = mps;
        self
    }
}

/// Structural class of a fused block, mirroring the per-gate trichotomy
/// of [`GateStructure`](crate::GateStructure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusedStructure {
    /// The composed matrix is diagonal: applied by scaling only the
    /// non-unit entries.
    Diagonal,
    /// One non-zero per column (permutation with phases): applied by
    /// moving amplitudes along cycles.
    Permutation,
    /// Applied by gather → replay the block's gates in cache → scatter.
    General,
    /// Applied by gather → dense 2^k×2^k mat-vec → scatter (chosen when
    /// the block holds at least 2^k gates, where one mat-vec is cheaper
    /// than replaying them).
    Dense,
}

/// Application strategy plus its precomputed data.
#[derive(Clone, Debug)]
enum BlockKind {
    Diagonal {
        factors: Vec<C64>,
    },
    Permutation {
        target: Vec<usize>,
        factor: Vec<C64>,
    },
    General,
    Dense,
}

/// A run of gates fused into one k-qubit block.
///
/// `qubits` is the ascending union of the member gates' qubit sets
/// (controls included); `matrix` is the composed `2^k × 2^k` unitary in
/// the local little-endian convention (bit `j` of a local index is global
/// qubit `qubits[j]`).
#[derive(Clone, Debug)]
pub struct FusedGate {
    qubits: Vec<usize>,
    matrix: CMatrix,
    local_ops: Vec<LocalOp>,
    kind: BlockKind,
    gate_count: usize,
}

impl FusedGate {
    /// Fuses `gates` (global indices) over the ascending qubit union
    /// `qubits`. Panics if a gate uses a qubit outside `qubits` or the
    /// union exceeds [`MAX_FUSED_QUBITS`].
    pub(crate) fn from_gates(qubits: Vec<usize>, gates: &[Gate]) -> FusedGate {
        assert!(
            !qubits.is_empty() && qubits.len() <= MAX_FUSED_QUBITS,
            "fused block must span 1..={MAX_FUSED_QUBITS} qubits"
        );
        debug_assert!(qubits.windows(2).all(|w| w[0] < w[1]));
        let k = qubits.len();
        let dim = 1usize << k;
        let local = |q: usize| {
            qubits
                .binary_search(&q)
                .expect("gate qubit outside the fused block")
        };
        let local_ops: Vec<LocalOp> = gates
            .iter()
            .map(|g| LocalOp::from_gate(&remap_gate(g, &local)))
            .collect();

        // Composed dense unitary: replay the block on every basis column.
        let mut matrix = CMatrix::zeros(dim, dim);
        for v in 0..dim {
            let mut col = vec![C64::ZERO; dim];
            col[v] = C64::ONE;
            for op in &local_ops {
                op.apply(&mut col);
            }
            for (r, &e) in col.iter().enumerate() {
                matrix[(r, v)] = e;
            }
        }

        let kind = classify(&matrix, dim, gates.len());
        FusedGate {
            qubits,
            matrix,
            local_ops,
            kind,
            gate_count: gates.len(),
        }
    }

    /// The block's (ascending) global qubit indices.
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The composed `2^k × 2^k` unitary of the block, local little-endian.
    pub fn matrix(&self) -> &CMatrix {
        &self.matrix
    }

    /// Number of original gates fused into this block.
    pub fn gate_count(&self) -> usize {
        self.gate_count
    }

    /// Structural class driving the block's application strategy.
    pub fn structure(&self) -> FusedStructure {
        match self.kind {
            BlockKind::Diagonal { .. } => FusedStructure::Diagonal,
            BlockKind::Permutation { .. } => FusedStructure::Permutation,
            BlockKind::General => FusedStructure::General,
            BlockKind::Dense => FusedStructure::Dense,
        }
    }

    /// Applies the block to a raw state slice in one blocked pass,
    /// dispatching on [`FusedGate::structure`].
    pub fn apply_slice(&self, state: &mut [C64]) {
        self.apply_slice_with(state, PAR_THRESHOLD)
    }

    /// [`FusedGate::apply_slice`] with an explicit parallelism threshold
    /// (see [`SimConfig::par_threshold`]).
    pub fn apply_slice_with(&self, state: &mut [C64], par_threshold: usize) {
        match &self.kind {
            BlockKind::Diagonal { factors } => {
                apply_fused_diagonal_with(state, &self.qubits, factors, par_threshold)
            }
            BlockKind::Permutation { target, factor } => {
                apply_fused_permutation_with(state, &self.qubits, target, factor, par_threshold)
            }
            BlockKind::General => {
                apply_fused_local(state, &self.qubits, &self.local_ops, par_threshold)
            }
            BlockKind::Dense => apply_fused_with(state, &self.qubits, &self.matrix, par_threshold),
        }
    }

    /// Applies the block to **one gathered group buffer** of `2^k`
    /// amplitudes, where local bit `j` of the buffer index is block qubit
    /// `qubits[j]`. This is the block's action with the state-sweep
    /// factored out: callers that own their own gather/scatter loop — the
    /// distributed executor applying blocks to node-local slices at
    /// remapped (possibly non-ascending) physical positions — drive this
    /// per group instead of [`FusedGate::apply_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 2^k`.
    pub fn apply_buffer(&self, buf: &mut [C64]) {
        let dim = 1usize << self.qubits.len();
        assert_eq!(buf.len(), dim, "group buffer must hold 2^k amplitudes");
        match &self.kind {
            BlockKind::Diagonal { factors } => {
                for (z, &f) in buf.iter_mut().zip(factors.iter()) {
                    *z *= f;
                }
            }
            BlockKind::Permutation { target, factor } => {
                // Stack scratch: callers invoke this once per amplitude
                // group, so a heap Vec here would allocate in the hot
                // loop (dim ≤ 2^MAX_FUSED_QUBITS is guaranteed above).
                let mut old = [C64::ZERO; 1 << MAX_FUSED_QUBITS];
                old[..dim].copy_from_slice(buf);
                for (v, (&t, &f)) in target.iter().zip(factor.iter()).enumerate() {
                    buf[t] = f * old[v];
                }
            }
            BlockKind::General => {
                for op in &self.local_ops {
                    op.apply(buf);
                }
            }
            BlockKind::Dense => {
                let mut out = [C64::ZERO; 1 << MAX_FUSED_QUBITS];
                for (r, slot) in out[..dim].iter_mut().enumerate() {
                    *slot = simd::cdot(self.matrix.row(r), buf);
                }
                buf.copy_from_slice(&out[..dim]);
            }
        }
    }

    /// Applies the block to every member of a batch-major interleaved
    /// buffer (amplitude `i` of member `j` at `state[i·batch + j]`, see
    /// [`crate::batch`]) in one blocked pass, dispatching on structure
    /// like [`FusedGate::apply_slice_with`]:
    ///
    /// * diagonal blocks scale only the non-unit batch runs;
    /// * permutation blocks rotate batch runs along the cycles in place;
    /// * dense blocks gather each group and run a batch-major mat-mat
    ///   product against the composed unitary, so a block fused from
    ///   thousands of gates costs one `2^k × 2^k` GEMM per group
    ///   regardless of its original depth;
    /// * general blocks (fewer gates than `2^k`) gather and replay the
    ///   precompiled ops batched — cheaper than the GEMM at their depth.
    pub fn apply_batched_with(&self, state: &mut [C64], batch: usize, par_threshold: usize) {
        match &self.kind {
            BlockKind::Diagonal { factors } => crate::batch::apply_fused_diagonal_batch(
                state,
                batch,
                &self.qubits,
                factors,
                par_threshold,
            ),
            BlockKind::Permutation { target, factor } => {
                crate::batch::apply_fused_permutation_batch(
                    state,
                    batch,
                    &self.qubits,
                    target,
                    factor,
                    par_threshold,
                )
            }
            BlockKind::Dense => crate::batch::apply_fused_dense_batch(
                state,
                batch,
                &self.qubits,
                &self.matrix,
                par_threshold,
            ),
            BlockKind::General => crate::batch::apply_fused_local_batch(
                state,
                batch,
                &self.qubits,
                &self.local_ops,
                par_threshold,
            ),
        }
    }

    /// [`FusedGate::apply_batched_with`] at the default threshold.
    pub fn apply_batched(&self, state: &mut [C64], batch: usize) {
        self.apply_batched_with(state, batch, PAR_THRESHOLD)
    }

    /// Batched twin of [`FusedGate::apply_buffer`]: one gathered group of
    /// `2^k` amplitudes for `batch` members, interleaved batch-major
    /// (local index `v` of member `j` at `buf[v·batch + j]`). Permutation
    /// blocks rotate the runs in place (no scratch — the buffer size is
    /// `2^k·batch`, too large for the stack copy `apply_buffer` uses);
    /// dense blocks run the batch-major mat-mat product against the
    /// composed unitary and general blocks replay their ops, as in
    /// [`FusedGate::apply_batched_with`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != 2^k · batch`.
    pub fn apply_buffer_batch(&self, buf: &mut [C64], batch: usize) {
        let dim = 1usize << self.qubits.len();
        assert_eq!(
            buf.len(),
            dim * batch,
            "group buffer must hold 2^k·batch amplitudes"
        );
        match &self.kind {
            BlockKind::Diagonal { factors } => {
                for (v, &f) in factors.iter().enumerate() {
                    if f != C64::ONE {
                        simd::scale_slice(&mut buf[v * batch..(v + 1) * batch], f);
                    }
                }
            }
            BlockKind::Permutation { target, factor } => {
                // In-place cycle walk (dim ≤ 64, so a u64 bitmask tracks
                // visited indices): rotate the cycle's runs with pairwise
                // swaps, then apply the phases to the moved runs.
                let mut seen = 0u64;
                let mut cyc = [0usize; 1 << MAX_FUSED_QUBITS];
                for start in 0..dim {
                    if seen >> start & 1 == 1 {
                        continue;
                    }
                    let mut len = 0;
                    let mut v = start;
                    loop {
                        seen |= 1 << v;
                        cyc[len] = v;
                        len += 1;
                        v = target[v];
                        if v == start {
                            break;
                        }
                    }
                    if len == 1 {
                        if factor[start] != C64::ONE {
                            simd::scale_slice(
                                &mut buf[start * batch..(start + 1) * batch],
                                factor[start],
                            );
                        }
                        continue;
                    }
                    for i in (1..len).rev() {
                        let (a, b) = crate::kernels::run_pair_mut(buf, cyc[i], cyc[i - 1], batch);
                        simd::swap_slices(a, b);
                    }
                    // new[target[v]] = factor[v]·old[v]: run(cyc[i]) now
                    // holds old cyc[i−1], run(cyc[0]) holds the old last.
                    for i in (1..len).rev() {
                        let f = factor[cyc[i - 1]];
                        if f != C64::ONE {
                            simd::scale_slice(&mut buf[cyc[i] * batch..(cyc[i] + 1) * batch], f);
                        }
                    }
                    let f = factor[cyc[len - 1]];
                    if f != C64::ONE {
                        simd::scale_slice(&mut buf[cyc[0] * batch..(cyc[0] + 1) * batch], f);
                    }
                }
            }
            BlockKind::Dense => {
                let gathered = buf.to_vec();
                crate::batch::dense_mat_runs(&self.matrix, dim, &gathered, buf, batch);
            }
            BlockKind::General => {
                for op in &self.local_ops {
                    op.apply_batch(buf, batch);
                }
            }
        }
    }

    /// The block's `2^k` diagonal factors, if it classified as diagonal.
    /// Diagonal blocks commute with the basis, which is what lets the
    /// distributed executor apply them on *global* qubits with zero
    /// communication: each rank indexes the factors with its own fixed
    /// global bits.
    pub fn diagonal_factors(&self) -> Option<&[C64]> {
        match &self.kind {
            BlockKind::Diagonal { factors } => Some(factors),
            _ => None,
        }
    }

    /// State-vector entries one application of this block writes on an
    /// `n_qubits` state — the fused-aware counterpart of
    /// [`touched_entries`].
    pub fn touched_entries(&self, n_qubits: usize) -> usize {
        let k = self.qubits.len();
        let local = match &self.kind {
            BlockKind::Diagonal { factors } => factors.iter().filter(|&&f| f != C64::ONE).count(),
            BlockKind::Permutation { target, factor } => target
                .iter()
                .enumerate()
                .filter(|&(v, &t)| t != v || factor[v] != C64::ONE)
                .count(),
            BlockKind::General | BlockKind::Dense => 1usize << k,
        };
        fused_touched_entries(n_qubits, k, local)
    }
}

/// Remaps a gate's qubit indices through `f`.
fn remap_gate(gate: &Gate, f: &impl Fn(usize) -> usize) -> Gate {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => Gate::Unary {
            op: op.clone(),
            target: f(*target),
            controls: controls.iter().map(|&c| f(c)).collect(),
        },
        Gate::Swap { a, b, controls } => Gate::Swap {
            a: f(*a),
            b: f(*b),
            controls: controls.iter().map(|&c| f(c)).collect(),
        },
    }
}

/// Classifies a composed block matrix. Diagonal/permutation detection uses
/// exact zero tests: diagonal and permutation gates produce exact zeros
/// under composition, while general gates leave numerically non-zero dust
/// that correctly demotes the block to the general path.
fn classify(matrix: &CMatrix, dim: usize, gate_count: usize) -> BlockKind {
    let mut target = vec![0usize; dim];
    let mut factor = vec![C64::ZERO; dim];
    let mut monomial = true;
    'cols: for v in 0..dim {
        let mut nz: Option<(usize, C64)> = None;
        for r in 0..dim {
            let e = matrix[(r, v)];
            if e != C64::ZERO {
                if nz.is_some() {
                    monomial = false;
                    break 'cols;
                }
                nz = Some((r, e));
            }
        }
        // A unitary column cannot be all zero.
        let (r, e) = nz.expect("zero column in a fused unitary");
        target[v] = r;
        factor[v] = e;
    }
    if monomial {
        if target.iter().enumerate().all(|(v, &t)| t == v) {
            return BlockKind::Diagonal { factors: factor };
        }
        return BlockKind::Permutation { target, factor };
    }
    if gate_count >= dim {
        // Enough gates that one dense mat-vec (2^k multiplies per entry)
        // beats replaying them (≥1 multiply per entry per gate).
        BlockKind::Dense
    } else {
        BlockKind::General
    }
}

/// One executable step of a fused circuit.
#[derive(Clone, Debug)]
pub enum FusedOp {
    /// A gate kept on the single-gate structural fast path (lone gates,
    /// and gates whose qubit set alone exceeds the fusion window — e.g.
    /// multi-controlled gates, which the per-gate kernels handle in
    /// geometrically shrinking index space).
    Gate(Gate),
    /// A fused block applied in one blocked pass.
    Block(FusedGate),
}

impl FusedOp {
    /// Entries one application writes on an `n_qubits` state.
    pub fn touched_entries(&self, n_qubits: usize) -> usize {
        match self {
            FusedOp::Gate(g) => touched_entries(n_qubits, g),
            FusedOp::Block(b) => b.touched_entries(n_qubits),
        }
    }
}

/// A circuit after fusion: an ordered list of [`FusedOp`]s.
#[derive(Clone, Debug)]
pub struct FusedCircuit {
    n_qubits: usize,
    ops: Vec<FusedOp>,
}

impl FusedCircuit {
    /// Number of qubits the circuit addresses.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The fused ops in application order.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Applies every op to a raw state slice.
    pub fn apply_slice(&self, state: &mut [C64]) {
        self.apply_slice_with(state, PAR_THRESHOLD)
    }

    /// [`FusedCircuit::apply_slice`] with an explicit parallelism
    /// threshold (see [`SimConfig::par_threshold`]).
    pub fn apply_slice_with(&self, state: &mut [C64], par_threshold: usize) {
        for op in &self.ops {
            match op {
                FusedOp::Gate(g) => apply_gate_slice_with(state, g, par_threshold),
                FusedOp::Block(b) => b.apply_slice_with(state, par_threshold),
            }
        }
    }

    /// Applies every op to all members of a batch-major interleaved
    /// buffer (see [`crate::batch`]): single gates go through the batched
    /// structural kernels, blocks through
    /// [`FusedGate::apply_batched_with`]. Fusion cost was paid once; this
    /// pass pays one sweep per op for the whole ensemble.
    pub fn apply_batched_with(&self, state: &mut [C64], batch: usize, par_threshold: usize) {
        for op in &self.ops {
            match op {
                FusedOp::Gate(g) => crate::batch::apply_gate_batch(state, batch, g, par_threshold),
                FusedOp::Block(b) => b.apply_batched_with(state, batch, par_threshold),
            }
        }
    }

    /// [`FusedCircuit::apply_batched_with`] at the default threshold.
    pub fn apply_batched(&self, state: &mut [C64], batch: usize) {
        self.apply_batched_with(state, batch, PAR_THRESHOLD)
    }

    /// Total state-vector entries written by one execution on an
    /// `n_qubits` state — the memory-traffic estimate the crossover
    /// heuristics consume (`QpeTimings::with_fused_apply`).
    pub fn touched_entries(&self, n_qubits: usize) -> usize {
        self.ops.iter().map(|op| op.touched_entries(n_qubits)).sum()
    }

    /// Summary counts for reporting (see the `fusion_ablation` bench).
    pub fn census(&self) -> FusionCensus {
        let mut census = FusionCensus::default();
        for op in &self.ops {
            match op {
                FusedOp::Gate(_) => census.singles += 1,
                FusedOp::Block(b) => {
                    census.blocks += 1;
                    census.fused_gates += b.gate_count();
                    census.max_block_qubits = census.max_block_qubits.max(b.qubits().len());
                    match b.structure() {
                        FusedStructure::Diagonal => census.diagonal_blocks += 1,
                        FusedStructure::Permutation => census.permutation_blocks += 1,
                        FusedStructure::General => census.general_blocks += 1,
                        FusedStructure::Dense => census.dense_blocks += 1,
                    }
                }
            }
        }
        census
    }
}

/// Block/op counts of a [`FusedCircuit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionCensus {
    /// Gates left on the single-gate fast path.
    pub singles: usize,
    /// Fused blocks of ≥2 gates.
    pub blocks: usize,
    /// Gates absorbed into blocks.
    pub fused_gates: usize,
    /// Blocks applied as diagonals.
    pub diagonal_blocks: usize,
    /// Blocks applied as permutations.
    pub permutation_blocks: usize,
    /// Blocks applied by in-cache gate replay.
    pub general_blocks: usize,
    /// Blocks applied by dense mat-vec.
    pub dense_blocks: usize,
    /// Widest block produced.
    pub max_block_qubits: usize,
}

impl FusionCensus {
    /// Total executable ops (sweeps) after fusion.
    pub fn total_ops(&self) -> usize {
        self.singles + self.blocks
    }
}

/// Fuses a circuit under `policy`.
///
/// The greedy pass walks the gate list once, extending the current block
/// while the union of qubit sets stays within the window, flushing it
/// otherwise. Blocks that end up with a single gate degrade back to the
/// per-gate structural kernels, so fusion never loses the paper's §4.5
/// fast paths.
pub fn fuse_circuit(circuit: &Circuit, policy: &FusionPolicy) -> FusedCircuit {
    fuse_circuit_with_barriers(circuit, policy, |_| false)
}

/// Fuses like [`fuse_circuit`], but gates matching `barrier` are never
/// absorbed into blocks — they flush any pending run and stay standalone
/// [`FusedOp::Gate`]s. The distributed executor uses this to keep
/// uncontrolled SWAPs out of blocks: standalone, they execute as free
/// qubit-map relabels, while inside a block they would force the block's
/// qubits local (communication the relabel avoids entirely).
pub fn fuse_circuit_with_barriers(
    circuit: &Circuit,
    policy: &FusionPolicy,
    barrier: impl Fn(&Gate) -> bool,
) -> FusedCircuit {
    let ops = match *policy {
        FusionPolicy::Disabled => circuit.gates().iter().cloned().map(FusedOp::Gate).collect(),
        FusionPolicy::Greedy { max_fused_qubits } => greedy_fuse(
            circuit,
            max_fused_qubits.clamp(1, MAX_FUSED_QUBITS),
            &barrier,
        ),
    };
    FusedCircuit {
        n_qubits: circuit.n_qubits(),
        ops,
    }
}

/// Flushes the pending run into `ops` (single gates skip block overhead).
fn flush(ops: &mut Vec<FusedOp>, pending: &mut Vec<Gate>, pending_qubits: &mut Vec<usize>) {
    match pending.len() {
        0 => {}
        1 => ops.push(FusedOp::Gate(pending.pop().unwrap())),
        _ => ops.push(FusedOp::Block(FusedGate::from_gates(
            std::mem::take(pending_qubits),
            pending,
        ))),
    }
    pending.clear();
    pending_qubits.clear();
}

fn greedy_fuse(circuit: &Circuit, kmax: usize, barrier: &impl Fn(&Gate) -> bool) -> Vec<FusedOp> {
    let mut ops = Vec::new();
    let mut pending: Vec<Gate> = Vec::new();
    let mut pending_qubits: Vec<usize> = Vec::new(); // ascending
    for gate in circuit.gates() {
        if barrier(gate) {
            flush(&mut ops, &mut pending, &mut pending_qubits);
            ops.push(FusedOp::Gate(gate.clone()));
            continue;
        }
        let mut gq = gate.qubits();
        gq.sort_unstable();
        let union = merge_sorted(&pending_qubits, &gq);
        if !pending.is_empty() && union.len() <= kmax {
            pending_qubits = union;
            pending.push(gate.clone());
        } else {
            flush(&mut ops, &mut pending, &mut pending_qubits);
            if gq.len() <= kmax {
                pending_qubits = gq;
                pending.push(gate.clone());
            } else {
                // Wider than the window on its own (e.g. many controls):
                // stays on the per-gate kernel fast path.
                ops.push(FusedOp::Gate(gate.clone()));
            }
        }
    }
    flush(&mut ops, &mut pending, &mut pending_qubits);
    ops
}

/// Union of two ascending, duplicate-free index lists.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

impl Circuit {
    /// Fuses this circuit under `policy` — see [`fuse_circuit`].
    pub fn fuse(&self, policy: &FusionPolicy) -> FusedCircuit {
        fuse_circuit(self, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::entangle::entangle_circuit;
    use crate::circuits::qft::qft_circuit;
    use crate::kernels::apply_gate_slice;
    use crate::statevector::StateVector;
    use qcemu_linalg::{max_abs_diff, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_fused_equals_unfused(circuit: &Circuit, kmax: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_state(1usize << circuit.n_qubits(), &mut rng);
        let mut plain = input.clone();
        for g in circuit.gates() {
            apply_gate_slice(&mut plain, g);
        }
        let fused = fuse_circuit(
            circuit,
            &FusionPolicy::Greedy {
                max_fused_qubits: kmax,
            },
        );
        let mut blocked = input;
        fused.apply_slice(&mut blocked);
        assert!(
            max_abs_diff(&plain, &blocked) < 1e-12,
            "fused(k={kmax}) diverges on {} gates: {}",
            circuit.gate_count(),
            max_abs_diff(&plain, &blocked)
        );
    }

    #[test]
    fn qft_fused_matches_unfused_at_every_window() {
        let c = qft_circuit(8);
        for kmax in 1..=MAX_FUSED_QUBITS {
            check_fused_equals_unfused(&c, kmax, 700 + kmax as u64);
        }
    }

    #[test]
    fn entangle_fused_matches_unfused_at_every_window() {
        let c = entangle_circuit(9);
        for kmax in 1..=MAX_FUSED_QUBITS {
            check_fused_equals_unfused(&c, kmax, 710 + kmax as u64);
        }
    }

    #[test]
    fn mixed_gate_zoo_fuses_correctly() {
        let mut c = Circuit::new(6);
        c.h(0)
            .cnot(0, 1)
            .toffoli(0, 1, 2)
            .swap(2, 3)
            .rz(3, 0.4)
            .cphase(3, 4, -0.7)
            .x(5)
            .phase(5, 1.1)
            .ry(4, 0.2)
            .cnot(5, 0);
        c.push(Gate::Swap {
            a: 1,
            b: 2,
            controls: vec![0],
        });
        for kmax in 1..=MAX_FUSED_QUBITS {
            check_fused_equals_unfused(&c, kmax, 720 + kmax as u64);
        }
    }

    #[test]
    fn disabled_policy_keeps_every_gate_single() {
        let c = qft_circuit(5);
        let fused = fuse_circuit(&c, &FusionPolicy::Disabled);
        assert_eq!(fused.ops().len(), c.gate_count());
        assert!(fused.ops().iter().all(|op| matches!(op, FusedOp::Gate(_))));
    }

    #[test]
    fn blocks_respect_the_window() {
        let c = qft_circuit(10);
        for kmax in 2..=MAX_FUSED_QUBITS {
            let fused = c.fuse(&FusionPolicy::Greedy {
                max_fused_qubits: kmax,
            });
            for op in fused.ops() {
                if let FusedOp::Block(b) = op {
                    assert!(b.qubits().len() <= kmax);
                    assert!(b.gate_count() >= 2);
                    assert!(b.matrix().is_unitary(1e-10));
                }
            }
            let census = fused.census();
            assert!(census.blocks > 0);
            assert!(census.max_block_qubits <= kmax);
            assert_eq!(census.singles + census.fused_gates, c.gate_count());
        }
    }

    #[test]
    fn oversized_gates_stay_on_the_fast_path() {
        let mut c = Circuit::new(6);
        c.push(Gate::mcx(vec![0, 1, 2, 3], 4)); // 5 qubits > window of 3
        c.h(5);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 3,
        });
        assert_eq!(fused.ops().len(), 2);
        assert!(matches!(fused.ops()[0], FusedOp::Gate(_)));
        check_fused_equals_unfused(&c, 3, 730);
    }

    #[test]
    fn block_structure_classification() {
        // A run of diagonal gates → diagonal block.
        let mut c = Circuit::new(4);
        c.cphase(0, 1, 0.3).rz(1, 0.2);
        c.push(Gate::cz(0, 2));
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 4,
        });
        assert_eq!(fused.ops().len(), 1);
        if let FusedOp::Block(b) = &fused.ops()[0] {
            assert_eq!(b.structure(), FusedStructure::Diagonal);
        } else {
            panic!("expected one block");
        }

        // A run of CNOT/SWAP → permutation block.
        let mut c = Circuit::new(4);
        c.cnot(0, 1).cnot(0, 2).swap(1, 2);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 4,
        });
        if let FusedOp::Block(b) = &fused.ops()[0] {
            assert_eq!(b.structure(), FusedStructure::Permutation);
        } else {
            panic!("expected one block");
        }

        // An H in the run → general block.
        let mut c = Circuit::new(4);
        c.h(0).cnot(0, 1).rz(1, 0.5);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 4,
        });
        if let FusedOp::Block(b) = &fused.ops()[0] {
            assert_eq!(b.structure(), FusedStructure::General);
        } else {
            panic!("expected one block");
        }

        // Many general gates on a narrow window → dense block.
        let mut c = Circuit::new(2);
        for _ in 0..3 {
            c.h(0).ry(1, 0.1);
        }
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 2,
        });
        if let FusedOp::Block(b) = &fused.ops()[0] {
            assert_eq!(b.structure(), FusedStructure::Dense);
            assert_eq!(b.gate_count(), 6);
        } else {
            panic!("expected one block");
        }
        check_fused_equals_unfused(&c, 2, 731);
    }

    #[test]
    fn apply_buffer_matches_apply_slice_per_group() {
        // For a block on qubits 0..k of a 2^k state, one "group" is the
        // whole state: apply_buffer must reproduce apply_slice for every
        // structural class (diagonal, permutation, general, dense).
        let blocks: Vec<Circuit> = vec![
            {
                let mut c = Circuit::new(3);
                c.cphase(0, 1, 0.3).rz(2, 0.4);
                c.push(Gate::cz(0, 2));
                c
            },
            {
                let mut c = Circuit::new(3);
                c.cnot(0, 1).swap(1, 2).x(0);
                c
            },
            {
                let mut c = Circuit::new(3);
                c.h(0).cnot(0, 1).rz(2, 0.7);
                c
            },
            {
                let mut c = Circuit::new(2);
                for _ in 0..3 {
                    c.h(0).ry(1, 0.2);
                }
                c
            },
        ];
        for (i, c) in blocks.iter().enumerate() {
            let fused = c.fuse(&FusionPolicy::Greedy {
                max_fused_qubits: c.n_qubits(),
            });
            assert_eq!(fused.ops().len(), 1);
            let FusedOp::Block(b) = &fused.ops()[0] else {
                panic!("expected a block");
            };
            let mut rng = StdRng::seed_from_u64(760 + i as u64);
            let input = random_state(1usize << c.n_qubits(), &mut rng);
            let mut via_buffer = input.clone();
            b.apply_buffer(&mut via_buffer);
            let mut via_slice = input;
            b.apply_slice(&mut via_slice);
            assert!(
                max_abs_diff(&via_buffer, &via_slice) < 1e-13,
                "block {i}: buffer/slice mismatch"
            );
        }
    }

    #[test]
    fn diagonal_factors_exposed_only_for_diagonal_blocks() {
        let mut c = Circuit::new(3);
        c.cphase(0, 1, 0.3).rz(2, 0.4);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 3,
        });
        let FusedOp::Block(b) = &fused.ops()[0] else {
            panic!("expected a block");
        };
        let factors = b.diagonal_factors().expect("diagonal block");
        assert_eq!(factors.len(), 8);

        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 2,
        });
        let FusedOp::Block(b) = &fused.ops()[0] else {
            panic!("expected a block");
        };
        assert!(b.diagonal_factors().is_none());
    }

    #[test]
    fn fuse_within_clamps_the_window() {
        let c = qft_circuit(8);
        let fused = c.fuse_within(&FusionPolicy::greedy(), 2);
        assert!(fused.census().max_block_qubits <= 2);
        // Disabled stays disabled.
        let fused = c.fuse_within(&FusionPolicy::Disabled, 2);
        assert!(fused.ops().iter().all(|op| matches!(op, FusedOp::Gate(_))));
    }

    #[test]
    fn touched_entries_accounting() {
        let n = 10;
        let full = 1usize << n;

        // Diagonal block of two controlled phases sharing qubit 2: the
        // composed diagonal is non-unit on local patterns with bit(2)=1
        // and (bit(0)=1 or bit(1)=1): 3 of 8 patterns → 3/8 of the state.
        let mut c = Circuit::new(n);
        c.cphase(0, 2, 0.3).cphase(1, 2, 0.4);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 3,
        });
        assert_eq!(fused.touched_entries(n), 3 * full / 8);
        // Unfused: two quarter-touches.
        let unfused = c.fuse(&FusionPolicy::Disabled);
        assert_eq!(unfused.touched_entries(n), full / 2);

        // Permutation block: two CNOTs sharing control 0 move only the
        // control-on half.
        let mut c = Circuit::new(n);
        c.cnot(0, 1).cnot(0, 2);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 3,
        });
        assert_eq!(fused.touched_entries(n), full / 2);
        assert_eq!(
            c.fuse(&FusionPolicy::Disabled).touched_entries(n),
            full // two half-touches
        );

        // General block: one full sweep however many gates it holds.
        let mut c = Circuit::new(n);
        c.h(0).cnot(0, 1).h(1).cnot(1, 2);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 3,
        });
        assert_eq!(fused.ops().len(), 1);
        assert_eq!(fused.touched_entries(n), full);
    }

    #[test]
    fn fused_traffic_beats_unfused_on_the_benchmark_circuits() {
        // The quantity the fusion_ablation bench measures in time, checked
        // here in the traffic model: one fused sweep per block vs one
        // (partial) sweep per gate.
        for n in [12, 16] {
            for circuit in [qft_circuit(n), entangle_circuit(n)] {
                let unfused = circuit.fuse(&FusionPolicy::Disabled).touched_entries(n);
                for kmax in [4, 5] {
                    let fused = circuit
                        .fuse(&FusionPolicy::Greedy {
                            max_fused_qubits: kmax,
                        })
                        .touched_entries(n);
                    assert!(
                        fused < unfused,
                        "fusion(k={kmax}) should cut traffic on {n} qubits: {fused} vs {unfused}"
                    );
                }
            }
        }
    }

    #[test]
    fn statevector_run_honours_the_config() {
        let c = qft_circuit(7);
        let mut plain = StateVector::uniform_superposition(7);
        plain.apply_circuit(&c);
        // Disabled config is bitwise identical to apply_circuit.
        let mut unfused = StateVector::uniform_superposition(7);
        unfused.run(&c, &SimConfig::unfused());
        assert_eq!(max_abs_diff(plain.amplitudes(), unfused.amplitudes()), 0.0);
        // Fused config agrees to rounding.
        for k in 2..=5 {
            let mut fused = StateVector::uniform_superposition(7);
            fused.run(&c, &SimConfig::fused(k));
            assert!(max_abs_diff(plain.amplitudes(), fused.amplitudes()) < 1e-12);
        }
    }

    #[test]
    fn window_is_clamped_to_kernel_limit() {
        let c = qft_circuit(9);
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 64,
        });
        assert!(fused.census().max_block_qubits <= MAX_FUSED_QUBITS);
        check_fused_equals_unfused(&c, 64, 740);
    }

    #[test]
    fn merge_sorted_unions() {
        assert_eq!(merge_sorted(&[0, 2, 5], &[2, 3]), vec![0, 2, 3, 5]);
        assert_eq!(merge_sorted(&[], &[1]), vec![1]);
        assert_eq!(merge_sorted(&[4], &[]), vec![4]);
    }
}

//! The n-qubit wave function: a vector of 2ⁿ complex amplitudes
//! (paper §2, Eq. 1), with gate application and norm management.

use crate::circuit::Circuit;
use crate::fusion::{fuse_circuit, FusedCircuit, FusionPolicy, SimConfig};
use crate::gate::Gate;
use crate::kernels::apply_gate_slice;
use crate::mps::{MpsPolicy, MpsState, MPS_EXACT_TOL};
use crate::segment::{segment_circuit, SegmentPolicy};
use qcemu_linalg::{inner, norm2, C64};

/// State vector of an `n`-qubit register, little-endian: qubit `k` is bit
/// `k` of the basis index.
#[derive(Clone, Debug, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// `|00…0⟩` on `n_qubits` qubits.
    pub fn zero_state(n_qubits: usize) -> StateVector {
        assert!(n_qubits < usize::BITS as usize, "too many qubits");
        let mut amps = vec![C64::ZERO; 1usize << n_qubits];
        amps[0] = C64::ONE;
        StateVector { n_qubits, amps }
    }

    /// The computational basis state `|index⟩`.
    pub fn basis_state(n_qubits: usize, index: usize) -> StateVector {
        let mut sv = StateVector::zero_state(n_qubits);
        assert!(index < sv.amps.len(), "basis index out of range");
        sv.amps[0] = C64::ZERO;
        sv.amps[index] = C64::ONE;
        sv
    }

    /// Uniform superposition `H^{⊗n}|0⟩` (all amplitudes `2^{-n/2}`).
    pub fn uniform_superposition(n_qubits: usize) -> StateVector {
        let dim = 1usize << n_qubits;
        let a = C64::from_real(1.0 / (dim as f64).sqrt());
        StateVector {
            n_qubits,
            amps: vec![a; dim],
        }
    }

    /// Wraps raw amplitudes (length must be a power of two). Does **not**
    /// normalise; use [`StateVector::normalize`] if needed.
    pub fn from_amplitudes(amps: Vec<C64>) -> StateVector {
        assert!(
            amps.len().is_power_of_two() && !amps.is_empty(),
            "amplitude count must be a power of two"
        );
        StateVector {
            n_qubits: amps.len().trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitudes, read-only.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Amplitudes, mutable (emulation shortcuts write here directly).
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut Vec<C64> {
        &mut self.amps
    }

    /// Consumes the state, returning the raw amplitude vector.
    pub fn into_amplitudes(self) -> Vec<C64> {
        self.amps
    }

    /// `‖ψ‖₂` — should be 1 for a physical state.
    pub fn norm(&self) -> f64 {
        norm2(&self.amps)
    }

    /// Rescales to unit norm.
    pub fn normalize(&mut self) {
        qcemu_linalg::normalize(&mut self.amps);
    }

    /// Measurement probability of basis state `index` (`|α_i|²`).
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        inner(&self.amps, &other.amps)
    }

    /// `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies one gate (validated against this state's qubit count).
    ///
    /// Panics on an invalid gate; use [`StateVector::try_apply`] where a
    /// malformed gate must be a recoverable error (e.g. at a service
    /// boundary handling untrusted input).
    pub fn apply(&mut self, gate: &Gate) {
        self.try_apply(gate)
            .unwrap_or_else(|e| panic!("invalid gate: {e}"));
    }

    /// Applies one gate, returning the validation error instead of
    /// panicking when the gate does not fit this state.
    pub fn try_apply(&mut self, gate: &Gate) -> Result<(), String> {
        gate.validate(self.n_qubits)?;
        apply_gate_slice(&mut self.amps, gate);
        Ok(())
    }

    /// Applies every gate of a circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit needs {} qubits, state has {}",
            circuit.n_qubits(),
            self.n_qubits
        );
        for gate in circuit.gates() {
            apply_gate_slice(&mut self.amps, gate);
        }
    }

    /// Runs a circuit under an execution configuration: gate-by-gate when
    /// fusion is disabled (bitwise identical to
    /// [`StateVector::apply_circuit`]), fused blocked sweeps otherwise —
    /// see [`crate::fusion`] for the policy and the performance model.
    /// With [`SegmentPolicy::Blocked`] the circuit is first partitioned
    /// into cache-blocked segments (see [`crate::segment`]); the fusion
    /// policy then governs only the runs that fall out of segments.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcemu_sim::{entangle_circuit, SimConfig, StateVector};
    ///
    /// let mut sv = StateVector::zero_state(4);
    /// sv.run(&entangle_circuit(4), &SimConfig::fused(3));
    /// // GHZ state: weight only on |0000⟩ and |1111⟩.
    /// assert!((sv.probability(0) - 0.5).abs() < 1e-12);
    /// assert!((sv.probability(0b1111) - 0.5).abs() < 1e-12);
    /// ```
    pub fn run(&mut self, circuit: &Circuit, config: &SimConfig) {
        // A forced compressed run is attempted first and audited: if the
        // bond cap forced any truncation, the attempt is discarded and
        // the circuit re-runs through the exact dense paths below — a
        // mispredicted cap costs time, never correctness.
        if let MpsPolicy::Forced { max_bond } = config.mps {
            let mut mps = MpsState::from_statevector(self, max_bond);
            mps.run(circuit);
            if mps.truncation_error() <= MPS_EXACT_TOL {
                *self = mps.to_statevector();
                return;
            }
        }
        if let SegmentPolicy::Blocked { block_bits } = config.segments {
            assert!(
                circuit.n_qubits() <= self.n_qubits,
                "circuit needs {} qubits, state has {}",
                circuit.n_qubits(),
                self.n_qubits
            );
            let seg = segment_circuit(circuit, block_bits, &config.fusion);
            seg.apply_slice_with(&mut self.amps, config.par_threshold);
            return;
        }
        match config.fusion {
            FusionPolicy::Disabled => {
                assert!(
                    circuit.n_qubits() <= self.n_qubits,
                    "circuit needs {} qubits, state has {}",
                    circuit.n_qubits(),
                    self.n_qubits
                );
                for gate in circuit.gates() {
                    crate::kernels::apply_gate_slice_with(
                        &mut self.amps,
                        gate,
                        config.par_threshold,
                    );
                }
            }
            FusionPolicy::Greedy { .. } => {
                let fused = fuse_circuit(circuit, &config.fusion);
                assert!(
                    fused.n_qubits() <= self.n_qubits,
                    "fused circuit needs {} qubits, state has {}",
                    fused.n_qubits(),
                    self.n_qubits
                );
                fused.apply_slice_with(&mut self.amps, config.par_threshold);
            }
        }
    }

    /// Applies an already-fused circuit (reuse the [`FusedCircuit`] when
    /// running the same circuit many times — fusion cost is paid once).
    pub fn apply_fused_circuit(&mut self, fused: &FusedCircuit) {
        assert!(
            fused.n_qubits() <= self.n_qubits,
            "fused circuit needs {} qubits, state has {}",
            fused.n_qubits(),
            self.n_qubits
        );
        fused.apply_slice(&mut self.amps);
    }

    /// Tensor product `self ⊗ other`; `other`'s qubits become the *high*
    /// bits of the combined index.
    pub fn tensor(&self, other: &StateVector) -> StateVector {
        let mut amps = vec![C64::ZERO; self.dim() * other.dim()];
        for (j, &b) in other.amps.iter().enumerate() {
            if b == C64::ZERO {
                continue;
            }
            let base = j * self.dim();
            for (i, &a) in self.amps.iter().enumerate() {
                amps[base + i] = a * b;
            }
        }
        StateVector {
            n_qubits: self.n_qubits + other.n_qubits,
            amps,
        }
    }

    /// Value of the register formed by `bits` (LSB first) in basis index `i`.
    pub fn register_value(index: usize, bits: &[usize]) -> usize {
        let mut v = 0usize;
        for (j, &b) in bits.iter().enumerate() {
            v |= ((index >> b) & 1) << j;
        }
        v
    }

    /// Marginal probability distribution of a register: sums `|α_i|²` over
    /// all basis states grouped by the register's value.
    pub fn register_distribution(&self, bits: &[usize]) -> Vec<f64> {
        let m = bits.len();
        let mut dist = vec![0.0f64; 1usize << m];
        for (i, amp) in self.amps.iter().enumerate() {
            let p = amp.norm_sqr();
            if p > 0.0 {
                dist[Self::register_value(i, bits)] += p;
            }
        }
        dist
    }

    /// Maximum amplitude difference to another state, ignoring global phase.
    pub fn max_diff_up_to_phase(&self, other: &StateVector) -> f64 {
        qcemu_linalg::max_abs_diff_up_to_phase(&self.amps, &other.amps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateOp;
    use qcemu_linalg::c64;

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.dim(), 8);
        assert_eq!(sv.amplitudes()[0], C64::ONE);
        assert!((sv.norm() - 1.0).abs() < 1e-15);
        assert_eq!(sv.probability(0), 1.0);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let sv = StateVector::basis_state(3, 5);
        assert_eq!(sv.amplitudes()[5], C64::ONE);
        assert_eq!(sv.probability(0), 0.0);
    }

    #[test]
    fn uniform_superposition_probabilities() {
        let sv = StateVector::uniform_superposition(4);
        for i in 0..16 {
            assert!((sv.probability(i) - 1.0 / 16.0).abs() < 1e-15);
        }
    }

    #[test]
    fn hadamard_on_zero_gives_plus_state() {
        let mut sv = StateVector::zero_state(1);
        sv.apply(&Gate::h(0));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitudes()[0].approx_eq(c64(s, 0.0), 1e-15));
        assert!(sv.amplitudes()[1].approx_eq(c64(s, 0.0), 1e-15));
    }

    #[test]
    fn bell_state_construction() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::h(0));
        sv.apply(&Gate::cnot(0, 1));
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!(sv.amplitudes()[0].approx_eq(c64(s, 0.0), 1e-15));
        assert!(sv.amplitudes()[3].approx_eq(c64(s, 0.0), 1e-15));
        assert!(sv.amplitudes()[1].abs() < 1e-15);
        assert!(sv.amplitudes()[2].abs() < 1e-15);
    }

    #[test]
    fn x_gate_flips_basis_state() {
        let mut sv = StateVector::zero_state(3);
        sv.apply(&Gate::x(1));
        assert_eq!(sv.probability(0b010), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid gate")]
    fn out_of_range_gate_panics() {
        let mut sv = StateVector::zero_state(2);
        sv.apply(&Gate::x(5));
    }

    #[test]
    fn try_apply_rejects_invalid_gates_without_panicking() {
        let mut sv = StateVector::zero_state(2);
        assert!(sv.try_apply(&Gate::x(5)).is_err());
        // The state is untouched and still usable afterwards.
        assert_eq!(sv.probability(0), 1.0);
        sv.try_apply(&Gate::x(1)).unwrap();
        assert_eq!(sv.probability(0b10), 1.0);
    }

    #[test]
    fn tensor_product_order() {
        // |1⟩ ⊗ |0⟩ (other = high bits): index = 0b0·dim + 1 = 1.
        let a = StateVector::basis_state(1, 1);
        let b = StateVector::basis_state(1, 0);
        let t = a.tensor(&b);
        assert_eq!(t.n_qubits(), 2);
        assert_eq!(t.probability(0b01), 1.0);
        // |0⟩ ⊗ |1⟩: high bit set.
        let t2 = b.tensor(&a);
        assert_eq!(t2.probability(0b10), 1.0);
    }

    #[test]
    fn register_value_extraction() {
        // index 0b1011, bits [0, 2, 3]: values 1, 0, 1 → 0b101 = 5.
        assert_eq!(StateVector::register_value(0b1011, &[0, 2, 3]), 0b101);
        assert_eq!(StateVector::register_value(0b1011, &[1]), 1);
    }

    #[test]
    fn register_distribution_sums_to_one() {
        let mut sv = StateVector::zero_state(4);
        sv.apply(&Gate::h(0));
        sv.apply(&Gate::h(2));
        let d = sv.register_distribution(&[0, 2]);
        assert_eq!(d.len(), 4);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for p in d {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn fidelity_and_phase_insensitive_distance() {
        let mut a = StateVector::zero_state(2);
        a.apply(&Gate::h(0));
        let mut b = a.clone();
        // Apply a global phase via Rz trickery on an untouched qubit? No —
        // multiply amplitudes directly.
        for z in b.amplitudes_mut().iter_mut() {
            *z *= C64::cis(0.9);
        }
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        assert!(a.max_diff_up_to_phase(&b) < 1e-12);
    }

    #[test]
    fn apply_circuit_runs_all_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cnot(0, 1));
        let mut sv = StateVector::zero_state(2);
        sv.apply_circuit(&c);
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn custom_unitary_gate() {
        // A π/8-ish arbitrary unitary, applied then undone.
        let th = 0.3f64;
        let m = [
            [c64(th.cos(), 0.0), c64(-th.sin(), 0.0)],
            [c64(th.sin(), 0.0), c64(th.cos(), 0.0)],
        ];
        let g = Gate::unary(GateOp::U(m), 1);
        let mut sv = StateVector::uniform_superposition(3);
        let orig = sv.clone();
        sv.apply(&g);
        sv.apply(&g.dagger());
        assert!(sv.max_diff_up_to_phase(&orig) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_checks_length() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE; 3]);
    }
}

//! Batched state vectors: N ensemble members advanced through one plan.
//!
//! Production emulation traffic is ensembles — parameter sweeps, shot
//! batches, many users on one circuit shape — and the per-gate kernels are
//! bandwidth-bound, so the batch axis is a throughput lever the single-state
//! drivers cannot reach:
//!
//! * **Layout**: [`BatchStateVector`] stores amplitude `i` of member `j` at
//!   `amps[i·batch + j]` (batch-major per amplitude). Every amplitude index
//!   is a *contiguous run of `batch` complex numbers*, so the SIMD slice
//!   primitives ([`simd::butterfly_slices`], [`simd::scale_slice`]) apply at
//!   **every** qubit position: a gate on qubit 0, which the per-state run
//!   drivers must execute scalar (run length 1), vectorises across the
//!   batch dimension whenever `batch ≥ simd::LANES`. Ragged batch sizes are
//!   fine — the primitives handle arbitrary slice lengths with a scalar
//!   tail.
//! * **Amortisation**: one pair enumeration, one rayon dispatch, and one
//!   fused-block precompute serve all members, so the per-gate fixed costs
//!   (thread handoff, cycle decomposition, gather bookkeeping) are paid
//!   once per gate instead of once per gate per member.
//!
//! Parallelism follows [`SimConfig::par_threshold`] like the per-state
//! kernels, but counts the whole ensemble: a batch of 8 small states
//! crosses the threshold 8× earlier than one of its members would alone.
//!
//! The drivers below mirror `crate::kernels` one-to-one (pair / one-bit /
//! swap enumeration with controls folded into the index space); the fused
//! batched appliers mirror the blocked kernels. *Dense* blocks run a
//! batch-major mat-mat product against the composed block unitary
//! (`out[r·batch+j] = Σ_c M[r,c]·in[c·batch+j]`), so a block fused from
//! thousands of gates costs one `2^k × 2^k` GEMM per group regardless of
//! its original depth; *general* blocks (fewer gates than `2^k`) replay
//! their precompiled `LocalOp`s on the gathered runs instead.
//!
//! Equivalence with N independent sequential runs (≤1e-12, every gate
//! class × fusion policy × SIMD/scalar × ragged batch sizes) is pinned by
//! the `batch_equivalence` suite at the workspace root.

use crate::circuit::Circuit;
use crate::fusion::{fuse_circuit, FusedCircuit, FusionPolicy, SimConfig};
use crate::gate::{Gate, GateStructure, Mat2};
use crate::kernels::{
    check_fused_qubits, control_layout, expand_index, parallel_ok, scatter_index, LocalOp,
    StatePtr, PAR_THRESHOLD,
};
use crate::segment::SegmentPolicy;
use crate::statevector::StateVector;
use qcemu_linalg::{simd, CMatrix, C64};
use rayon::prelude::*;

/// Index-tile width for the interleave/de-interleave transposes. A tile of
/// 512 amplitudes × 16 bytes is 8 KiB per member — small enough that the
/// batch-major side of the transpose (`512 · batch` entries) stays L1/L2
/// resident across the member loop, so every strided cache line is touched
/// once instead of once per member.
const TRANSPOSE_TILE: usize = 512;

/// Zero-filled amplitude buffer straight from the allocator
/// (`alloc_zeroed`): multi-megabyte batch buffers arrive as lazily-mapped
/// kernel zero pages instead of paying an eager store sweep — the cost of
/// zeroing moves into the first kernel pass (a page fault per 4 KiB)
/// rather than a full extra write of the buffer up front.
fn zeroed_amps(len: usize) -> Vec<C64> {
    if len == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<C64>(len).expect("batch buffer too large");
    // SAFETY: the allocation uses exactly the layout `Vec<C64>` frees
    // with, and the all-zero bit pattern is a valid C64 (0.0 + 0.0i).
    unsafe {
        let p = std::alloc::alloc_zeroed(layout) as *mut C64;
        if p.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(p, len, len)
    }
}

/// An ensemble of `batch` state vectors over the same `n_qubits` qubits,
/// stored batch-major per amplitude: amplitude `i` of member `j` lives at
/// `amps[i·batch + j]`. See the module docs for why this layout
/// vectorises where per-state execution cannot.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchStateVector {
    n_qubits: usize,
    batch: usize,
    amps: Vec<C64>,
}

impl BatchStateVector {
    /// `batch` copies of `|00…0⟩` on `n_qubits` qubits.
    pub fn zero_state(n_qubits: usize, batch: usize) -> BatchStateVector {
        assert!(batch > 0, "batch must be non-empty");
        assert!(n_qubits < usize::BITS as usize, "too many qubits");
        let dim = 1usize << n_qubits;
        let mut amps = zeroed_amps(dim * batch);
        amps[..batch].fill(C64::ONE);
        BatchStateVector {
            n_qubits,
            batch,
            amps,
        }
    }

    /// `batch` copies of one state.
    pub fn broadcast(state: &StateVector, batch: usize) -> BatchStateVector {
        assert!(batch > 0, "batch must be non-empty");
        let mut amps = zeroed_amps(state.dim() * batch);
        for (i, &a) in state.amplitudes().iter().enumerate() {
            amps[i * batch..(i + 1) * batch].fill(a);
        }
        BatchStateVector {
            n_qubits: state.n_qubits(),
            batch,
            amps,
        }
    }

    /// Interleaves independent states (all on the same qubit count) into
    /// one batch.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or qubit counts disagree.
    pub fn from_states(states: &[StateVector]) -> BatchStateVector {
        assert!(!states.is_empty(), "batch must be non-empty");
        let n_qubits = states[0].n_qubits();
        assert!(
            states.iter().all(|s| s.n_qubits() == n_qubits),
            "batch members must have the same qubit count"
        );
        let batch = states.len();
        let dim = 1usize << n_qubits;
        let mut amps = zeroed_amps(dim * batch);
        // Tiled interleave: all members fill one index tile before moving
        // on, so each destination cache line is completed while hot
        // instead of being revisited once per member a megabyte later.
        for t0 in (0..dim).step_by(TRANSPOSE_TILE) {
            let t1 = (t0 + TRANSPOSE_TILE).min(dim);
            for (j, s) in states.iter().enumerate() {
                let src = &s.amplitudes()[t0..t1];
                for (k, &a) in src.iter().enumerate() {
                    amps[(t0 + k) * batch + j] = a;
                }
            }
        }
        BatchStateVector {
            n_qubits,
            batch,
            amps,
        }
    }

    /// Number of qubits per member.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of ensemble members.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Per-member dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// The raw interleaved amplitudes (`dim·batch` entries, member `j`'s
    /// amplitude `i` at `i·batch + j`).
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The raw interleaved amplitudes, mutable.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Amplitude `i` of member `j`.
    #[inline]
    pub fn amplitude(&self, i: usize, j: usize) -> C64 {
        self.amps[i * self.batch + j]
    }

    /// Extracts member `j` as an independent [`StateVector`] (strided
    /// copy; amplitude order is preserved exactly, so samplers and norms
    /// on the extraction match the member bit-for-bit).
    pub fn member(&self, j: usize) -> StateVector {
        assert!(j < self.batch, "member index out of range");
        let dim = self.dim();
        let mut amps = Vec::with_capacity(dim);
        for i in 0..dim {
            amps.push(self.amps[i * self.batch + j]);
        }
        StateVector::from_amplitudes(amps)
    }

    /// Overwrites member `j` with `state` (strided scatter).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts disagree or `j` is out of range.
    pub fn set_member(&mut self, j: usize, state: &StateVector) {
        assert!(j < self.batch, "member index out of range");
        assert_eq!(
            state.n_qubits(),
            self.n_qubits,
            "member qubit count mismatch"
        );
        for (i, &a) in state.amplitudes().iter().enumerate() {
            self.amps[i * self.batch + j] = a;
        }
    }

    /// De-interleaves the batch into independent states (tiled, like
    /// [`BatchStateVector::from_states`] — every batch cache line is
    /// drained into all members while hot, so bulk extraction costs one
    /// streaming pass rather than `batch` strided ones).
    pub fn to_states(&self) -> Vec<StateVector> {
        let dim = self.dim();
        let mut out: Vec<Vec<C64>> = (0..self.batch).map(|_| zeroed_amps(dim)).collect();
        for t0 in (0..dim).step_by(TRANSPOSE_TILE) {
            let t1 = (t0 + TRANSPOSE_TILE).min(dim);
            for (j, dst) in out.iter_mut().enumerate() {
                for (k, d) in dst[t0..t1].iter_mut().enumerate() {
                    *d = self.amps[(t0 + k) * self.batch + j];
                }
            }
        }
        out.into_iter().map(StateVector::from_amplitudes).collect()
    }

    /// De-interleaves the batch into independent states.
    pub fn into_states(self) -> Vec<StateVector> {
        self.to_states()
    }

    /// Applies one gate to every member (validated against the qubit
    /// count).
    ///
    /// Panics on an invalid gate; use [`BatchStateVector::try_apply`]
    /// where a malformed gate must be a recoverable error.
    pub fn apply(&mut self, gate: &Gate) {
        self.try_apply(gate)
            .unwrap_or_else(|e| panic!("invalid gate: {e}"));
    }

    /// Applies one gate to every member, returning the validation error
    /// instead of panicking when the gate does not fit this batch.
    pub fn try_apply(&mut self, gate: &Gate) -> Result<(), String> {
        gate.validate(self.n_qubits)?;
        apply_gate_batch(&mut self.amps, self.batch, gate, PAR_THRESHOLD);
        Ok(())
    }

    /// Runs a circuit on every member under an execution configuration —
    /// the batched twin of [`StateVector::run`]: gate-by-gate through the
    /// batched structural kernels when fusion is disabled, fused blocked
    /// sweeps otherwise, cache-blocked segments first when
    /// [`SegmentPolicy::Blocked`] is set (see [`crate::segment`]). Fusion,
    /// segmentation, and every other per-gate precompute are paid once
    /// for the whole ensemble.
    pub fn run(&mut self, circuit: &Circuit, config: &SimConfig) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit needs {} qubits, state has {}",
            circuit.n_qubits(),
            self.n_qubits
        );
        if let SegmentPolicy::Blocked { block_bits } = config.segments {
            let seg = crate::segment::segment_circuit(circuit, block_bits, &config.fusion);
            seg.apply_batched_with(&mut self.amps, self.batch, config.par_threshold);
            return;
        }
        match config.fusion {
            FusionPolicy::Disabled => {
                for gate in circuit.gates() {
                    apply_gate_batch(&mut self.amps, self.batch, gate, config.par_threshold);
                }
            }
            FusionPolicy::Greedy { .. } => {
                let fused = fuse_circuit(circuit, &config.fusion);
                fused.apply_batched_with(&mut self.amps, self.batch, config.par_threshold);
            }
        }
    }

    /// Applies an already-fused circuit to every member (fusion cost is
    /// paid by the caller, once).
    pub fn apply_fused_circuit(&mut self, fused: &FusedCircuit) {
        assert!(
            fused.n_qubits() <= self.n_qubits,
            "fused circuit needs {} qubits, state has {}",
            fused.n_qubits(),
            self.n_qubits
        );
        fused.apply_batched_with(&mut self.amps, self.batch, PAR_THRESHOLD);
    }

    /// `‖ψ_j‖₂` of member `j`.
    pub fn member_norm(&self, j: usize) -> f64 {
        assert!(j < self.batch, "member index out of range");
        let mut acc = 0.0f64;
        for i in 0..self.dim() {
            acc += self.amps[i * self.batch + j].norm_sqr();
        }
        acc.sqrt()
    }

    /// Largest amplitude difference between member `j` and `other`.
    pub fn member_max_diff(&self, j: usize, other: &StateVector) -> f64 {
        assert_eq!(other.n_qubits(), self.n_qubits, "qubit count mismatch");
        other
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(i, &a)| (self.amplitude(i, j) - a).abs())
            .fold(0.0f64, f64::max)
    }
}

/// Per-member qubit count of an interleaved buffer, validating the layout.
#[inline]
fn batch_bits(len: usize, batch: usize) -> usize {
    assert!(batch > 0 && len % batch == 0, "buffer not a whole batch");
    let dim = len / batch;
    assert!(dim.is_power_of_two(), "per-member length must be 2^n");
    dim.trailing_zeros() as usize
}

// --- batched pair / one-bit / swap drivers --------------------------------
//
// Mirrors of the `kernels` enumeration: controls fold into the compressed
// index space, `expand_index` is injective, and each compressed index now
// owns a contiguous run of `batch` elements per amplitude — so every driver
// hands out whole runs and there is no scalar fallback tier.

/// Runs `f(lo_run, hi_run)` over the batch runs of every amplitude pair
/// selected by (`target`, `controls`), on an interleaved buffer.
fn for_each_pair_batch<F>(
    state: &mut [C64],
    batch: usize,
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) where
    F: Fn(&mut [C64], &mut [C64]) + Sync + Send,
{
    let n_bits = batch_bits(state.len(), batch);
    let (positions, cmask) = control_layout(&[target], controls);
    debug_assert!(positions.len() <= n_bits);
    let count = 1usize << (n_bits - positions.len());
    let tbit = 1usize << target;
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |k: usize| {
        let i0 = expand_index(k, &positions) | cmask;
        // SAFETY: `expand_index` is injective in k and leaves the target
        // bit clear, so the runs at i0·batch and (i0|tbit)·batch are
        // pairwise disjoint across the loop and in bounds by construction.
        unsafe {
            let p = ptr;
            let lo = std::slice::from_raw_parts_mut(p.0.add(i0 * batch), batch);
            let hi = std::slice::from_raw_parts_mut(p.0.add((i0 | tbit) * batch), batch);
            f(lo, hi);
        }
    };
    if parallel_ok(count.saturating_mul(batch), par_threshold) && count > 1 {
        (0..count).into_par_iter().for_each(body);
    } else {
        (0..count).for_each(body);
    }
}

/// Runs `f(run)` over the batch runs of every amplitude whose target bit
/// is 1 and whose control bits are all 1.
fn for_each_one_batch<F>(
    state: &mut [C64],
    batch: usize,
    target: usize,
    controls: &[usize],
    par_threshold: usize,
    f: F,
) where
    F: Fn(&mut [C64]) + Sync + Send,
{
    let n_bits = batch_bits(state.len(), batch);
    let (positions, cmask) = control_layout(&[target], controls);
    let count = 1usize << (n_bits - positions.len());
    let tbit = 1usize << target;
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |k: usize| {
        let i = expand_index(k, &positions) | cmask | tbit;
        // SAFETY: injective expansion ⇒ disjoint runs (see module doc).
        unsafe {
            let p = ptr;
            f(std::slice::from_raw_parts_mut(p.0.add(i * batch), batch));
        }
    };
    if parallel_ok(count.saturating_mul(batch), par_threshold) && count > 1 {
        (0..count).into_par_iter().for_each(body);
    } else {
        (0..count).for_each(body);
    }
}

/// General (controlled) single-qubit unitary on every member: one
/// butterfly per pair run, vectorised across the batch dimension at any
/// qubit position.
pub fn apply_general_batch(
    state: &mut [C64],
    batch: usize,
    target: usize,
    controls: &[usize],
    m: &Mat2,
    par_threshold: usize,
) {
    let m = *m;
    for_each_pair_batch(
        state,
        batch,
        target,
        controls,
        par_threshold,
        move |lo, hi| simd::butterfly_slices(lo, hi, &m),
    );
}

/// Diagonal (controlled) gate `diag(d0, d1)` on every member; `d0 = 1`
/// keeps the quarter-touch access pattern of the per-state kernel.
pub fn apply_diagonal_batch(
    state: &mut [C64],
    batch: usize,
    target: usize,
    controls: &[usize],
    d0: C64,
    d1: C64,
    par_threshold: usize,
) {
    if d0 == C64::ONE {
        if d1 == C64::ONE {
            return; // identity
        }
        for_each_one_batch(state, batch, target, controls, par_threshold, move |xs| {
            simd::scale_slice(xs, d1)
        });
    } else {
        for_each_pair_batch(
            state,
            batch,
            target,
            controls,
            par_threshold,
            move |lo, hi| {
                simd::scale_slice(lo, d0);
                simd::scale_slice(hi, d1);
            },
        );
    }
}

/// (Controlled) X on every member: swaps pair runs, no arithmetic.
pub fn apply_perm_x_batch(
    state: &mut [C64],
    batch: usize,
    target: usize,
    controls: &[usize],
    par_threshold: usize,
) {
    for_each_pair_batch(state, batch, target, controls, par_threshold, |lo, hi| {
        simd::swap_slices(lo, hi)
    });
}

/// (Controlled) SWAP of qubits `qa`/`qb` on every member.
pub fn apply_swap_batch(
    state: &mut [C64],
    batch: usize,
    qa: usize,
    qb: usize,
    controls: &[usize],
    par_threshold: usize,
) {
    let n_bits = batch_bits(state.len(), batch);
    let (positions, cmask) = control_layout(&[qa, qb], controls);
    let count = 1usize << (n_bits - positions.len());
    let abit = 1usize << qa;
    let bbit = 1usize << qb;
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |k: usize| {
        let base = expand_index(k, &positions) | cmask;
        // SAFETY: injective expansion and a ≠ b ⇒ the two runs are
        // disjoint from each other and across k, in bounds by construction.
        unsafe {
            let p = ptr;
            let lo = std::slice::from_raw_parts_mut(p.0.add((base | abit) * batch), batch);
            let hi = std::slice::from_raw_parts_mut(p.0.add((base | bbit) * batch), batch);
            simd::swap_slices(lo, hi);
        }
    };
    if parallel_ok(count.saturating_mul(batch), par_threshold) && count > 1 {
        (0..count).into_par_iter().for_each(body);
    } else {
        (0..count).for_each(body);
    }
}

/// Applies one [`Gate`] to every member of an interleaved buffer,
/// dispatching on structure — the batched twin of
/// [`crate::kernels::apply_gate_slice_with`].
pub fn apply_gate_batch(state: &mut [C64], batch: usize, gate: &Gate, par_threshold: usize) {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => match op.structure() {
            GateStructure::Diagonal(d0, d1) => {
                apply_diagonal_batch(state, batch, *target, controls, d0, d1, par_threshold)
            }
            GateStructure::PermutationX => {
                apply_perm_x_batch(state, batch, *target, controls, par_threshold)
            }
            GateStructure::General(m) => {
                apply_general_batch(state, batch, *target, controls, &m, par_threshold)
            }
        },
        Gate::Swap { a, b, controls } => {
            apply_swap_batch(state, batch, *a, *b, controls, par_threshold)
        }
    }
}

// --- batched fused (blocked) kernels --------------------------------------

/// Group enumeration over an interleaved buffer: `f(ptr, base)` runs for
/// every group base (amplitude index with the block's qubit bits clear).
/// Parallelism counts the whole ensemble buffer against the threshold.
fn for_each_group_batch<F>(
    state: &mut [C64],
    batch: usize,
    qubits: &[usize],
    par_threshold: usize,
    f: F,
) where
    F: Fn(StatePtr, usize) + Sync + Send,
{
    let n_bits = batch_bits(state.len(), batch);
    check_fused_qubits(n_bits, qubits);
    let count = 1usize << (n_bits - qubits.len());
    let ptr = StatePtr(state.as_mut_ptr());
    if state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1 {
        // SAFETY: injective group expansion; `f` only touches runs at
        // `(base | off)·batch` with `off` confined to the block's qubit
        // bits, so distinct groups own disjoint buffer ranges.
        (0..count)
            .into_par_iter()
            .for_each(|g| f(ptr, expand_index(g, qubits)));
    } else {
        for g in 0..count {
            f(ptr, expand_index(g, qubits));
        }
    }
}

/// Fused **diagonal** block on every member: scales only the batch runs
/// whose local factor differs from 1 — the batched twin of
/// [`crate::kernels::apply_fused_diagonal_with`].
pub fn apply_fused_diagonal_batch(
    state: &mut [C64],
    batch: usize,
    qubits: &[usize],
    factors: &[C64],
    par_threshold: usize,
) {
    let dim = 1usize << qubits.len();
    assert_eq!(factors.len(), dim, "diagonal block needs 2^k factors");
    let touched: Vec<(usize, C64)> = factors
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f != C64::ONE)
        .map(|(v, &f)| (scatter_index(v, qubits), f))
        .collect();
    if touched.is_empty() {
        return; // identity block
    }
    for_each_group_batch(state, batch, qubits, par_threshold, |p, base| {
        // SAFETY: disjoint groups as in `for_each_group_batch`.
        unsafe {
            for &(off, f) in &touched {
                let run = std::slice::from_raw_parts_mut(p.0.add((base | off) * batch), batch);
                simd::scale_slice(run, f);
            }
        }
    });
}

/// Fused **monomial** (permutation-with-phases) block on every member.
///
/// The per-state kernel walks each cycle backwards with one saved
/// amplitude; a saved *run* would need per-group scratch, so the batched
/// walk instead rotates the runs in place with `cycle_len − 1` pairwise
/// run swaps and then applies the phase factors in a second pass over the
/// moved runs — still allocation-free in the group loop.
pub fn apply_fused_permutation_batch(
    state: &mut [C64],
    batch: usize,
    qubits: &[usize],
    target: &[usize],
    factor: &[C64],
    par_threshold: usize,
) {
    let dim = 1usize << qubits.len();
    assert_eq!(target.len(), dim, "permutation block needs 2^k targets");
    assert_eq!(factor.len(), dim, "permutation block needs 2^k factors");

    // Cycle decomposition over the non-identity support, precomputed once
    // for the whole ensemble (same scheme as the per-state kernel).
    let mut cycles: Vec<Vec<(usize, C64)>> = Vec::new();
    let mut seen = vec![false; dim];
    for start in 0..dim {
        if seen[start] {
            continue;
        }
        let mut cyc = Vec::new();
        let mut v = start;
        loop {
            seen[v] = true;
            cyc.push(v);
            v = target[v];
            assert!(v < dim, "permutation target {v} out of range");
            if v == start {
                break;
            }
            assert!(!seen[v], "targets do not form a permutation");
        }
        if cyc.len() == 1 && factor[start] == C64::ONE {
            continue; // untouched fixed point
        }
        cycles.push(
            cyc.into_iter()
                .map(|v| (scatter_index(v, qubits), factor[v]))
                .collect(),
        );
    }
    if cycles.is_empty() {
        return; // identity block
    }

    for_each_group_batch(state, batch, qubits, par_threshold, |p, base| {
        // SAFETY: disjoint groups; within a group all runs live at
        // `(base | off)·batch` with distinct offsets along each cycle.
        unsafe {
            for cyc in &cycles {
                let run = |off: usize| {
                    std::slice::from_raw_parts_mut(p.0.add((base | off) * batch), batch)
                };
                let last = cyc.len() - 1;
                // Rotate: after the backwards swaps, run(cyc[i]) holds the
                // old run(cyc[i−1]) for i ≥ 1 and run(cyc[0]) the old last.
                for i in (1..=last).rev() {
                    simd::swap_slices(run(cyc[i].0), run(cyc[i - 1].0));
                }
                // Phases: new[target[v]] = factor[v]·old[v].
                for i in (1..=last).rev() {
                    let f = cyc[i - 1].1;
                    if f != C64::ONE {
                        simd::scale_slice(run(cyc[i].0), f);
                    }
                }
                if cyc[last].1 != C64::ONE {
                    simd::scale_slice(run(cyc[0].0), cyc[last].1);
                }
            }
        }
    });
}

/// Fused general/dense block on every member: gathers each group's
/// `2^k` batch runs into a worker-local scratch buffer, replays the
/// block's precompiled `LocalOp`s on it (batched, in cache), and
/// scatters back. Workers allocate their `2^k·batch` scratch **once**
/// and sweep a contiguous range of groups, so the hot loop is
/// allocation-free.
pub(crate) fn apply_fused_local_batch(
    state: &mut [C64],
    batch: usize,
    qubits: &[usize],
    ops: &[LocalOp],
    par_threshold: usize,
) {
    let n_bits = batch_bits(state.len(), batch);
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    let offs: Vec<usize> = (0..dim).map(|v| scatter_index(v, qubits)).collect();
    let count = 1usize << (n_bits - qubits.len());
    let parallel = state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1;
    let workers = if parallel {
        rayon::current_num_threads().min(count)
    } else {
        1
    };
    let chunk = count.div_ceil(workers);
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |w: usize| {
        let mut scratch = vec![C64::ZERO; dim * batch];
        for g in (w * chunk)..((w + 1) * chunk).min(count) {
            let base = expand_index(g, qubits);
            // SAFETY: disjoint groups (injective expansion, offsets
            // confined to the block's qubit bits); scratch is worker-local.
            unsafe {
                let p = ptr;
                for (v, &off) in offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        p.0.add((base | off) * batch) as *const C64,
                        scratch.as_mut_ptr().add(v * batch),
                        batch,
                    );
                }
                for op in ops {
                    op.apply_batch(&mut scratch, batch);
                }
                for (v, &off) in offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        scratch.as_ptr().add(v * batch),
                        p.0.add((base | off) * batch),
                        batch,
                    );
                }
            }
        }
    };
    if parallel {
        (0..workers).into_par_iter().for_each(body);
    } else {
        body(0);
    }
}

/// Fused **dense** block on every member: gathers each group's `2^k`
/// batch runs and multiplies them through the block's composed unitary
/// batch-major — `out[r·batch+j] = Σ_c M[r,c]·in[c·batch+j]`, a
/// `(2^k × 2^k) × (2^k × batch)` mat-mat product whose inner loop runs
/// along the contiguous batch axis. This is the batched twin of the
/// per-state dense mat-vec: cost per group is `4^k·batch` multiply-adds
/// *independent of the block's original gate depth*, where replaying the
/// `LocalOp` list (as [`apply_fused_local_batch`] does) scales with every
/// fused gate. Zero matrix entries are skipped, so block-sparse unitaries
/// (e.g. controlled sub-blocks) pay only their live columns. Workers
/// allocate gather + accumulator scratch once and sweep contiguous group
/// ranges, keeping the hot loop allocation-free.
pub(crate) fn apply_fused_dense_batch(
    state: &mut [C64],
    batch: usize,
    qubits: &[usize],
    matrix: &CMatrix,
    par_threshold: usize,
) {
    let n_bits = batch_bits(state.len(), batch);
    check_fused_qubits(n_bits, qubits);
    let dim = 1usize << qubits.len();
    assert_eq!(matrix.nrows(), dim, "dense block needs a 2^k x 2^k unitary");
    let offs: Vec<usize> = (0..dim).map(|v| scatter_index(v, qubits)).collect();
    let count = 1usize << (n_bits - qubits.len());
    let parallel = state.len() >= par_threshold && count > 1 && rayon::current_num_threads() > 1;
    let workers = if parallel {
        rayon::current_num_threads().min(count)
    } else {
        1
    };
    let chunk = count.div_ceil(workers);
    let ptr = StatePtr(state.as_mut_ptr());
    let body = |w: usize| {
        let mut gathered = vec![C64::ZERO; dim * batch];
        let mut out = vec![C64::ZERO; dim * batch];
        for g in (w * chunk)..((w + 1) * chunk).min(count) {
            let base = expand_index(g, qubits);
            // SAFETY: disjoint groups (injective expansion, offsets
            // confined to the block's qubit bits); scratch is worker-local.
            unsafe {
                let p = ptr;
                for (v, &off) in offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        p.0.add((base | off) * batch) as *const C64,
                        gathered.as_mut_ptr().add(v * batch),
                        batch,
                    );
                }
                dense_mat_runs(matrix, dim, &gathered, &mut out, batch);
                for (v, &off) in offs.iter().enumerate() {
                    std::ptr::copy_nonoverlapping(
                        out.as_ptr().add(v * batch),
                        p.0.add((base | off) * batch),
                        batch,
                    );
                }
            }
        }
    };
    if parallel {
        (0..workers).into_par_iter().for_each(body);
    } else {
        body(0);
    }
}

/// The batch-major mat-mat core shared by [`apply_fused_dense_batch`] and
/// [`crate::fusion::FusedGate::apply_buffer_batch`]:
/// `out[r·batch+j] = Σ_c M[r,c]·input[c·batch+j]`. Accumulates column by
/// column (axpy along the contiguous batch runs, auto-vectorised),
/// skipping zero entries.
pub(crate) fn dense_mat_runs(
    matrix: &CMatrix,
    dim: usize,
    input: &[C64],
    out: &mut [C64],
    batch: usize,
) {
    out.fill(C64::ZERO);
    for col in 0..dim {
        let src = &input[col * batch..(col + 1) * batch];
        for row in 0..dim {
            let m = matrix[(row, col)];
            if m == C64::ZERO {
                continue;
            }
            let dst = &mut out[row * batch..(row + 1) * batch];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += m * s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::qft::qft_circuit;
    use crate::gate::GateOp;
    use qcemu_linalg::random_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_members(n_qubits: usize, batch: usize, seed: u64) -> Vec<StateVector> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch)
            .map(|_| StateVector::from_amplitudes(random_state(1 << n_qubits, &mut rng)))
            .collect()
    }

    fn max_member_diff(bsv: &BatchStateVector, members: &[StateVector]) -> f64 {
        members
            .iter()
            .enumerate()
            .map(|(j, s)| bsv.member_max_diff(j, s))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn try_apply_rejects_invalid_gates_without_panicking() {
        let mut bsv = BatchStateVector::zero_state(2, 3);
        assert!(bsv.try_apply(&Gate::x(5)).is_err());
        // Every member is untouched and the batch still works.
        for j in 0..3 {
            assert_eq!(bsv.member(j).probability(0), 1.0);
        }
        bsv.try_apply(&Gate::x(0)).unwrap();
        for j in 0..3 {
            assert_eq!(bsv.member(j).probability(1), 1.0);
        }
    }

    #[test]
    fn roundtrip_preserves_members() {
        let members = random_members(4, 5, 10);
        let bsv = BatchStateVector::from_states(&members);
        assert_eq!(bsv.batch(), 5);
        assert_eq!(bsv.dim(), 16);
        for (j, s) in members.iter().enumerate() {
            assert_eq!(&bsv.member(j), s);
        }
        let back = bsv.into_states();
        assert_eq!(back, members);
    }

    #[test]
    fn zero_state_and_broadcast_layouts() {
        let z = BatchStateVector::zero_state(3, 4);
        for j in 0..4 {
            assert_eq!(z.amplitude(0, j), C64::ONE);
            assert!((z.member_norm(j) - 1.0).abs() < 1e-15);
        }
        let mut sv = StateVector::zero_state(3);
        sv.apply(&Gate::h(1));
        let b = BatchStateVector::broadcast(&sv, 3);
        for j in 0..3 {
            assert_eq!(b.member(j), sv);
        }
    }

    #[test]
    fn every_gate_class_matches_sequential_members() {
        let gates = [
            Gate::h(0),
            Gate::h(3),
            Gate::x(2),
            Gate::rz(0, 0.7),
            Gate::phase(1, -0.3),
            Gate::cphase(0, 3, 0.4),
            Gate::cnot(3, 0),
            Gate::cnot(0, 2),
            Gate::swap(1, 3),
            Gate::toffoli(0, 1, 2),
            Gate::controlled(GateOp::Ry(0.9), 2, 0),
            Gate::Swap {
                a: 0,
                b: 2,
                controls: vec![3],
            },
        ];
        for batch in [1usize, 3, 4, 5, 17] {
            let members = random_members(4, batch, 20 + batch as u64);
            let mut bsv = BatchStateVector::from_states(&members);
            let mut seq = members;
            for gate in &gates {
                bsv.apply(gate);
                for s in seq.iter_mut() {
                    s.apply(gate);
                }
            }
            assert!(
                max_member_diff(&bsv, &seq) < 1e-12,
                "batched ≠ sequential at batch {batch}"
            );
        }
    }

    #[test]
    fn run_matches_sequential_fused_and_unfused() {
        let circuit = qft_circuit(5);
        for config in [
            SimConfig::unfused(),
            SimConfig::fused(3),
            SimConfig::fused(4),
        ] {
            for batch in [1usize, 4, 7] {
                let members = random_members(5, batch, 40 + batch as u64);
                let mut bsv = BatchStateVector::from_states(&members);
                bsv.run(&circuit, &config);
                let mut seq = members;
                for s in seq.iter_mut() {
                    s.run(&circuit, &config);
                }
                assert!(
                    max_member_diff(&bsv, &seq) < 1e-12,
                    "batched run ≠ sequential for {config:?} at batch {batch}"
                );
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Threshold of 1 forces every driver through the rayon branch.
        let circuit = qft_circuit(6);
        let members = random_members(6, 4, 50);
        let mut par = BatchStateVector::from_states(&members);
        par.run(&circuit, &SimConfig::fused(4).with_par_threshold(1));
        let mut ser = BatchStateVector::from_states(&members);
        ser.run(
            &circuit,
            &SimConfig::fused(4).with_par_threshold(usize::MAX),
        );
        let diff = par
            .amplitudes()
            .iter()
            .zip(ser.amplitudes())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-13, "parallel/serial batched paths diverge");
    }

    #[test]
    fn set_member_overwrites_one_lane() {
        let members = random_members(3, 3, 60);
        let mut bsv = BatchStateVector::from_states(&members);
        let replacement = StateVector::basis_state(3, 5);
        bsv.set_member(1, &replacement);
        assert_eq!(bsv.member(0), members[0]);
        assert_eq!(bsv.member(1), replacement);
        assert_eq!(bsv.member(2), members[2]);
    }
}

//! Decomposition of multi-controlled gates into one- and two-qubit gates.
//!
//! Paper §2: "most experimental implementations of quantum computers are
//! only capable of performing operations on one or two qubits … most
//! quantum algorithms are decomposed into one- and two-qubit gates". The
//! paper's simulator therefore chews through Toffoli *networks* at the
//! {1-qubit, CNOT} level; this module provides that lowering so the
//! Fig. 1/Fig. 2 baselines simulate what a hardware-targeting compiler
//! would actually emit.
//!
//! Constructions (all ancilla-free):
//! * multi-controlled **diagonal** gates (`Z`, `S`, `T`, `Phase`, `Rz`):
//!   the parity-network identity
//!   `c₁∧…∧c_k = 2^{1−k} Σ_{∅≠S} (−1)^{|S|+1} ⊕_S c` turns `C^k·diag(1,e^{iθ})`
//!   into `2^k − 1` parity terms, each a CNOT-in / `Phase(±θ/2^{k−1})` /
//!   CNOT-out block;
//! * multi-controlled **X**: conjugate by Hadamard on the target and reuse
//!   the diagonal network (`C^kX = H·C^kZ·H`);
//! * multi-controlled **general** 2×2 `U`: the Barenco recursion
//!   `C^kU = CV(c_k) · C^{k−1}X · CV†(c_k) · C^{k−1}X · C^{k−1}V` with
//!   `V = √U` (principal square root via 2×2 eigendecomposition);
//! * (controlled) **SWAP**: three (controlled) CNOTs, then recurse.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateOp, GateStructure, Mat2};
use qcemu_linalg::C64;

/// Principal square root of a 2×2 unitary via closed-form
/// eigendecomposition. `V·V = U` up to rounding.
pub fn mat2_sqrt(u: &Mat2) -> Mat2 {
    let a = u[0][0];
    let b = u[0][1];
    let c = u[1][0];
    let d = u[1][1];
    let tr = a + d;
    let det = a * d - b * c;
    let disc = (tr * tr - det.scale(4.0)).sqrt();
    let l1 = (tr + disc).scale(0.5);
    let l2 = (tr - disc).scale(0.5);
    let s1 = l1.sqrt();
    let s2 = l2.sqrt();
    if (l1 - l2).abs() < 1e-12 {
        // U = λI (the only normal case with equal eigenvalues and b=c≈0)
        // or defective — for unitary U equal eigenvalues ⇒ U = λI.
        return [[s1, C64::ZERO], [C64::ZERO, s1]];
    }
    // sqrt(U) = (U + s1·s2·I) / (s1 + s2): its eigenvalues are
    // (λᵢ + s1·s2)/(s1 + s2) = sᵢ. The denominator cannot vanish for
    // distinct eigenvalues (s1 = −s2 would force λ1 = λ2).
    let sqrt_det = s1 * s2;
    let denom = s1 + s2;
    let apply = |z: C64, diag: bool| {
        let num = if diag { z + sqrt_det } else { z };
        num / denom
    };
    [
        [apply(a, true), apply(b, false)],
        [apply(c, false), apply(d, true)],
    ]
}

/// Emits the parity network realising `exp(iθ·(w₁∧…∧w_k))` over the wire
/// set `wires` (all treated symmetrically) into `out`, using only CNOT and
/// single-qubit `Phase` gates.
fn emit_parity_phase_network(out: &mut Vec<Gate>, wires: &[usize], theta: f64) {
    let k = wires.len();
    debug_assert!(k >= 1);
    let base = theta / (1u64 << (k - 1)) as f64;
    // Iterate nonempty subsets; representative = highest wire in subset.
    for subset in 1usize..(1 << k) {
        let sign = if subset.count_ones() % 2 == 1 {
            1.0
        } else {
            -1.0
        };
        let members: Vec<usize> = (0..k).filter(|j| subset >> j & 1 == 1).collect();
        let rep = wires[*members.last().unwrap()];
        // Fold parities into the representative.
        for &j in &members[..members.len() - 1] {
            out.push(Gate::cnot(wires[j], rep));
        }
        out.push(Gate::phase(rep, sign * base));
        for &j in members[..members.len() - 1].iter().rev() {
            out.push(Gate::cnot(wires[j], rep));
        }
    }
}

/// Decomposes one gate into gates with at most one control (i.e. one- and
/// two-qubit gates). Gates already in that form pass through unchanged.
pub fn decompose_gate(gate: &Gate) -> Vec<Gate> {
    let mut out = Vec::new();
    decompose_into(gate, &mut out);
    out
}

fn decompose_into(gate: &Gate, out: &mut Vec<Gate>) {
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } if controls.len() <= 1 => {
            out.push(Gate::Unary {
                op: op.clone(),
                target: *target,
                controls: controls.clone(),
            });
        }
        Gate::Unary {
            op,
            target,
            controls,
        } => {
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    // diag(d0, d1) = d0·diag(1, d1/d0); the relative phase
                    // triggers only when all controls AND the target are 1 →
                    // the parity network over controls ∪ {target}. The d0
                    // global factor on the controlled subspace is itself a
                    // controlled phase over the controls only.
                    let rel = (d1 / d0).arg();
                    let mut wires = controls.clone();
                    wires.push(*target);
                    emit_parity_phase_network(out, &wires, rel);
                    let g0 = d0.arg();
                    if g0.abs() > 1e-15 {
                        // Phase d0 applied when all *controls* are 1
                        // (irrespective of the target bit).
                        emit_parity_phase_network(out, controls, g0);
                    }
                }
                GateStructure::PermutationX => {
                    // C^kX = H_t · C^kZ · H_t with Z's parity network.
                    out.push(Gate::h(*target));
                    let mut wires = controls.clone();
                    wires.push(*target);
                    emit_parity_phase_network(out, &wires, std::f64::consts::PI);
                    out.push(Gate::h(*target));
                }
                GateStructure::General(m) => {
                    // Barenco recursion with V = sqrt(U).
                    let v = mat2_sqrt(&m);
                    let vd = crate::gate::mat2_dagger(&v);
                    let (head, last) = controls.split_at(controls.len() - 1);
                    let ck = last[0];
                    // CV(ck → t)
                    decompose_into(&Gate::controlled(GateOp::U(v), ck, *target), out);
                    // C^{k-1}X(head → ck)
                    decompose_into(
                        &Gate::Unary {
                            op: GateOp::X,
                            target: ck,
                            controls: head.to_vec(),
                        },
                        out,
                    );
                    // CV†(ck → t)
                    decompose_into(&Gate::controlled(GateOp::U(vd), ck, *target), out);
                    // C^{k-1}X(head → ck)
                    decompose_into(
                        &Gate::Unary {
                            op: GateOp::X,
                            target: ck,
                            controls: head.to_vec(),
                        },
                        out,
                    );
                    // C^{k-1}V(head → t)
                    decompose_into(
                        &Gate::Unary {
                            op: GateOp::U(v),
                            target: *target,
                            controls: head.to_vec(),
                        },
                        out,
                    );
                }
            }
        }
        Gate::Swap { a, b, controls } => {
            if controls.is_empty() {
                out.push(Gate::cnot(*a, *b));
                out.push(Gate::cnot(*b, *a));
                out.push(Gate::cnot(*a, *b));
            } else {
                let mk = |c: usize, t: usize| {
                    let mut ctl = controls.clone();
                    ctl.push(c);
                    Gate::Unary {
                        op: GateOp::X,
                        target: t,
                        controls: ctl,
                    }
                };
                decompose_into(&mk(*a, *b), out);
                decompose_into(&mk(*b, *a), out);
                decompose_into(&mk(*a, *b), out);
            }
        }
    }
}

/// Decomposes a whole circuit into one- and two-qubit gates.
pub fn decompose_circuit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    let mut buf = Vec::new();
    for g in circuit.gates() {
        buf.clear();
        decompose_into(g, &mut buf);
        for dg in buf.drain(..) {
            out.push(dg);
        }
    }
    out
}

/// `true` when every gate touches at most two qubits (one control max).
pub fn is_elementary(circuit: &Circuit) -> bool {
    circuit.gates().iter().all(|g| match g {
        Gate::Unary { controls, .. } => controls.len() <= 1,
        Gate::Swap { .. } => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{mat2_is_unitary, mat2_mul};
    use crate::statevector::StateVector;
    use qcemu_linalg::c64;
    use qcemu_linalg::random_state;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_equivalent(gate: Gate, n: usize, seed: u64, tol: f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_state(1 << n, &mut rng);
        let mut direct = StateVector::from_amplitudes(input.clone());
        direct.apply(&gate);
        let mut lowered = StateVector::from_amplitudes(input);
        for g in decompose_gate(&gate) {
            assert!(g.num_controls() <= 1, "not elementary: {g:?}");
            assert!(!matches!(g, Gate::Swap { .. }), "swap left: {g:?}");
            lowered.apply(&g);
        }
        assert!(
            direct.max_diff_up_to_phase(&lowered) < tol,
            "decomposition of {gate:?} diverges: {}",
            direct.max_diff_up_to_phase(&lowered)
        );
    }

    #[test]
    fn sqrt_of_standard_unitaries() {
        for op in [
            GateOp::X,
            GateOp::H,
            GateOp::Y,
            GateOp::Rx(0.7),
            GateOp::Ry(-1.2),
            GateOp::Rz(0.4),
            GateOp::Phase(1.1),
        ] {
            let u = op.matrix();
            let v = mat2_sqrt(&u);
            assert!(mat2_is_unitary(&v, 1e-9), "sqrt not unitary for {op:?}");
            let vv = mat2_mul(&v, &v);
            for r in 0..2 {
                for c in 0..2 {
                    assert!(
                        (vv[r][c] - u[r][c]).abs() < 1e-9,
                        "V² ≠ U for {op:?}: {vv:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sqrt_of_identity_scalar() {
        let i2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];
        let v = mat2_sqrt(&i2);
        assert!((v[0][0] - C64::ONE).abs() < 1e-12);
        let mi = [[c64(-1.0, 0.0), C64::ZERO], [C64::ZERO, c64(-1.0, 0.0)]];
        let v = mat2_sqrt(&mi);
        let vv = mat2_mul(&v, &v);
        assert!((vv[0][0] - c64(-1.0, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn toffoli_decomposes_correctly() {
        check_equivalent(Gate::toffoli(0, 1, 2), 3, 900, 1e-9);
        check_equivalent(Gate::toffoli(2, 0, 1), 3, 901, 1e-9);
    }

    #[test]
    fn three_controlled_x_decomposes() {
        check_equivalent(Gate::mcx(vec![0, 1, 2], 3), 4, 902, 1e-9);
        check_equivalent(Gate::mcx(vec![3, 1, 0], 2), 4, 903, 1e-9);
    }

    #[test]
    fn four_controlled_x_decomposes() {
        check_equivalent(Gate::mcx(vec![0, 1, 2, 3], 4), 5, 904, 1e-8);
    }

    #[test]
    fn multi_controlled_diagonals_decompose() {
        check_equivalent(
            Gate::Unary {
                op: GateOp::Phase(0.83),
                target: 2,
                controls: vec![0, 1],
            },
            3,
            905,
            1e-9,
        );
        check_equivalent(
            Gate::Unary {
                op: GateOp::Rz(1.21),
                target: 0,
                controls: vec![1, 2, 3],
            },
            4,
            906,
            1e-9,
        );
        check_equivalent(
            Gate::Unary {
                op: GateOp::Z,
                target: 1,
                controls: vec![0, 2],
            },
            3,
            907,
            1e-9,
        );
    }

    #[test]
    fn multi_controlled_general_gates_decompose() {
        check_equivalent(
            Gate::Unary {
                op: GateOp::H,
                target: 0,
                controls: vec![1, 2],
            },
            3,
            908,
            1e-9,
        );
        check_equivalent(
            Gate::Unary {
                op: GateOp::Rx(0.55),
                target: 3,
                controls: vec![0, 1, 2],
            },
            4,
            909,
            1e-8,
        );
    }

    #[test]
    fn controlled_swap_decomposes() {
        check_equivalent(
            Gate::Swap {
                a: 0,
                b: 2,
                controls: vec![1],
            },
            3,
            910,
            1e-9,
        );
        check_equivalent(Gate::swap(1, 3), 4, 911, 1e-12);
    }

    #[test]
    fn single_and_two_qubit_gates_pass_through() {
        let g = Gate::cnot(0, 1);
        assert_eq!(decompose_gate(&g), vec![g.clone()]);
        let h = Gate::h(2);
        assert_eq!(decompose_gate(&h), vec![h.clone()]);
    }

    #[test]
    fn full_circuit_decomposition_is_elementary_and_equivalent() {
        // The real deal: a multiplier circuit (Toffoli-heavy with 3-control
        // gates from the controlled adders).
        let mc = qcemu_revarith_test_multiplier();
        let lowered = decompose_circuit(&mc);
        assert!(is_elementary(&lowered));
        assert!(
            lowered.gate_count() > mc.gate_count(),
            "lowering must expand"
        );
        let mut rng = StdRng::seed_from_u64(912);
        let input = random_state(1 << mc.n_qubits(), &mut rng);
        let mut a = StateVector::from_amplitudes(input.clone());
        a.apply_circuit(&mc);
        let mut b = StateVector::from_amplitudes(input);
        b.apply_circuit(&lowered);
        assert!(
            a.max_diff_up_to_phase(&b) < 1e-8,
            "lowered multiplier diverges: {}",
            a.max_diff_up_to_phase(&b)
        );
    }

    /// A small Toffoli-network stand-in (a controlled-adder-like block) so
    /// this crate's tests do not depend on qcemu-revarith (which depends on
    /// us). Mirrors the gate mix the arithmetic circuits produce.
    fn qcemu_revarith_test_multiplier() -> Circuit {
        let mut c = Circuit::new(6);
        c.cnot(0, 3).toffoli(0, 1, 4);
        c.push(Gate::mcx(vec![0, 1, 2], 5));
        c.push(Gate::Unary {
            op: GateOp::X,
            target: 3,
            controls: vec![2, 4],
        });
        c.toffoli(4, 5, 0).cnot(5, 1);
        c.push(Gate::mcx(vec![1, 3, 5], 2));
        c
    }

    #[test]
    fn gate_count_of_toffoli_lowering_is_paper_plausible() {
        // The parity-network Toffoli costs 2 H + (2³−1) phase blocks; the
        // standard textbook count is ~15 gates — ours lands in 10–30,
        // the right order for "simulation pays ~10× per Toffoli".
        let g = decompose_gate(&Gate::toffoli(0, 1, 2));
        assert!(
            (10..=30).contains(&g.len()),
            "Toffoli lowered to {} gates",
            g.len()
        );
    }
}

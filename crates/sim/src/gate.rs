//! Quantum gates: the standard set of paper Table 1 plus arbitrary
//! single-qubit unitaries, all with any number of control qubits.
//!
//! A gate is a single-qubit operation (or a SWAP) plus a control list; the
//! simulator exploits the *structure* of the operation — diagonal,
//! permutation, or general — to pick a specialised kernel (paper §2: "a
//! simulator can apply various low-level optimization strategies […]
//! including optimizing away multiplications by ones and zeros").

use qcemu_linalg::{c64, C64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};

/// A 2×2 complex matrix in row-major nested-array form.
pub type Mat2 = [[C64; 2]; 2];

/// Multiplies two 2×2 complex matrices.
pub fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// Conjugate transpose of a 2×2 matrix.
pub fn mat2_dagger(m: &Mat2) -> Mat2 {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// Checks `m† m ≈ I` within `tol`.
pub fn mat2_is_unitary(m: &Mat2, tol: f64) -> bool {
    let p = mat2_mul(&mat2_dagger(m), m);
    (p[0][0] - C64::ONE).abs() <= tol
        && p[0][1].abs() <= tol
        && p[1][0].abs() <= tol
        && (p[1][1] - C64::ONE).abs() <= tol
}

/// The single-qubit operation part of a gate.
#[derive(Clone, Debug, PartialEq)]
pub enum GateOp {
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// S = diag(1, i).
    S,
    /// S† = diag(1, −i).
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T† = diag(1, e^{−iπ/4}).
    Tdg,
    /// Rotation about X: `e^{-iθX/2}`.
    Rx(f64),
    /// Rotation about Y: `e^{-iθY/2}`.
    Ry(f64),
    /// Rotation about Z: `diag(e^{-iθ/2}, e^{iθ/2})` (paper Table 1).
    Rz(f64),
    /// Phase shift `diag(1, e^{iθ})` — the paper's conditional phase-shift
    /// matrix when given one control.
    Phase(f64),
    /// Arbitrary single-qubit unitary.
    U(Mat2),
}

impl GateOp {
    /// The 2×2 matrix of this operation.
    pub fn matrix(&self) -> Mat2 {
        let o = C64::ZERO;
        let l = C64::ONE;
        match self {
            GateOp::X => [[o, l], [l, o]],
            GateOp::Y => [[o, c64(0.0, -1.0)], [c64(0.0, 1.0), o]],
            GateOp::Z => [[l, o], [o, c64(-1.0, 0.0)]],
            GateOp::H => [
                [c64(FRAC_1_SQRT_2, 0.0), c64(FRAC_1_SQRT_2, 0.0)],
                [c64(FRAC_1_SQRT_2, 0.0), c64(-FRAC_1_SQRT_2, 0.0)],
            ],
            GateOp::S => [[l, o], [o, C64::I]],
            GateOp::Sdg => [[l, o], [o, c64(0.0, -1.0)]],
            GateOp::T => [[l, o], [o, C64::cis(FRAC_PI_4)]],
            GateOp::Tdg => [[l, o], [o, C64::cis(-FRAC_PI_4)]],
            GateOp::Rx(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[c64(c, 0.0), c64(0.0, -s)], [c64(0.0, -s), c64(c, 0.0)]]
            }
            GateOp::Ry(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                [[c64(c, 0.0), c64(-s, 0.0)], [c64(s, 0.0), c64(c, 0.0)]]
            }
            GateOp::Rz(t) => [[C64::cis(-t / 2.0), o], [o, C64::cis(t / 2.0)]],
            GateOp::Phase(t) => [[l, o], [o, C64::cis(*t)]],
            GateOp::U(m) => *m,
        }
    }

    /// The inverse (adjoint) operation, staying in the named-gate family
    /// where possible so structure classification is preserved.
    pub fn dagger(&self) -> GateOp {
        match self {
            GateOp::X => GateOp::X,
            GateOp::Y => GateOp::Y,
            GateOp::Z => GateOp::Z,
            GateOp::H => GateOp::H,
            GateOp::S => GateOp::Sdg,
            GateOp::Sdg => GateOp::S,
            GateOp::T => GateOp::Tdg,
            GateOp::Tdg => GateOp::T,
            GateOp::Rx(t) => GateOp::Rx(-t),
            GateOp::Ry(t) => GateOp::Ry(-t),
            GateOp::Rz(t) => GateOp::Rz(-t),
            GateOp::Phase(t) => GateOp::Phase(-t),
            GateOp::U(m) => GateOp::U(mat2_dagger(m)),
        }
    }

    /// Structure classification driving kernel dispatch.
    pub fn structure(&self) -> GateStructure {
        match self {
            GateOp::X => GateStructure::PermutationX,
            GateOp::Z => GateStructure::Diagonal(C64::ONE, c64(-1.0, 0.0)),
            GateOp::S => GateStructure::Diagonal(C64::ONE, C64::I),
            GateOp::Sdg => GateStructure::Diagonal(C64::ONE, c64(0.0, -1.0)),
            GateOp::T => GateStructure::Diagonal(C64::ONE, C64::cis(FRAC_PI_4)),
            GateOp::Tdg => GateStructure::Diagonal(C64::ONE, C64::cis(-FRAC_PI_4)),
            GateOp::Rz(t) => GateStructure::Diagonal(C64::cis(-t / 2.0), C64::cis(t / 2.0)),
            GateOp::Phase(t) => GateStructure::Diagonal(C64::ONE, C64::cis(*t)),
            GateOp::U(m) => {
                // Detect structure in user-supplied matrices too.
                let tol = 0.0; // exact zeros only: conservative and cheap
                if m[0][1].abs() == tol && m[1][0].abs() == tol {
                    GateStructure::Diagonal(m[0][0], m[1][1])
                } else {
                    GateStructure::General(*m)
                }
            }
            other => GateStructure::General(other.matrix()),
        }
    }

    /// `true` if the operation matrix is diagonal.
    pub fn is_diagonal(&self) -> bool {
        matches!(self.structure(), GateStructure::Diagonal(_, _))
    }
}

/// Structural class of a single-qubit operation, used to choose a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum GateStructure {
    /// `diag(d0, d1)`: no amplitude mixing → no communication when
    /// distributed, and only scaling (or nothing, when `d0 = 1`) locally.
    Diagonal(C64, C64),
    /// The X permutation: pure amplitude swap, no arithmetic.
    PermutationX,
    /// Dense 2×2: full butterfly per pair.
    General(Mat2),
}

/// A gate: an operation applied to `target`, conditioned on every qubit in
/// `controls` being |1⟩ — or a (controlled) SWAP of two qubits.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Controlled single-qubit operation.
    Unary {
        /// The 2×2 operation.
        op: GateOp,
        /// Target qubit index (little-endian: qubit k is bit k).
        target: usize,
        /// Control qubits (must all be |1⟩), any number including zero.
        controls: Vec<usize>,
    },
    /// Controlled SWAP of qubits `a` and `b`.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
        /// Control qubits.
        controls: Vec<usize>,
    },
}

impl Gate {
    /// Uncontrolled single-qubit gate.
    pub fn unary(op: GateOp, target: usize) -> Gate {
        Gate::Unary {
            op,
            target,
            controls: Vec::new(),
        }
    }

    /// Singly-controlled gate.
    pub fn controlled(op: GateOp, control: usize, target: usize) -> Gate {
        Gate::Unary {
            op,
            target,
            controls: vec![control],
        }
    }

    /// Pauli-X.
    pub fn x(target: usize) -> Gate {
        Gate::unary(GateOp::X, target)
    }
    /// Pauli-Y.
    pub fn y(target: usize) -> Gate {
        Gate::unary(GateOp::Y, target)
    }
    /// Pauli-Z.
    pub fn z(target: usize) -> Gate {
        Gate::unary(GateOp::Z, target)
    }
    /// Hadamard.
    pub fn h(target: usize) -> Gate {
        Gate::unary(GateOp::H, target)
    }
    /// S gate.
    pub fn s(target: usize) -> Gate {
        Gate::unary(GateOp::S, target)
    }
    /// T gate.
    pub fn t(target: usize) -> Gate {
        Gate::unary(GateOp::T, target)
    }
    /// Z rotation by `theta`.
    pub fn rz(target: usize, theta: f64) -> Gate {
        Gate::unary(GateOp::Rz(theta), target)
    }
    /// X rotation by `theta`.
    pub fn rx(target: usize, theta: f64) -> Gate {
        Gate::unary(GateOp::Rx(theta), target)
    }
    /// Y rotation by `theta`.
    pub fn ry(target: usize, theta: f64) -> Gate {
        Gate::unary(GateOp::Ry(theta), target)
    }
    /// Phase shift `diag(1, e^{iθ})`.
    pub fn phase(target: usize, theta: f64) -> Gate {
        Gate::unary(GateOp::Phase(theta), target)
    }
    /// CNOT.
    pub fn cnot(control: usize, target: usize) -> Gate {
        Gate::controlled(GateOp::X, control, target)
    }
    /// Controlled-Z.
    pub fn cz(control: usize, target: usize) -> Gate {
        Gate::controlled(GateOp::Z, control, target)
    }
    /// The paper's conditional phase shift CR(θ) (Table 1).
    pub fn cphase(control: usize, target: usize, theta: f64) -> Gate {
        Gate::controlled(GateOp::Phase(theta), control, target)
    }
    /// Toffoli (CCNOT).
    pub fn toffoli(c1: usize, c2: usize, target: usize) -> Gate {
        Gate::Unary {
            op: GateOp::X,
            target,
            controls: vec![c1, c2],
        }
    }
    /// Multi-controlled X.
    pub fn mcx(controls: Vec<usize>, target: usize) -> Gate {
        Gate::Unary {
            op: GateOp::X,
            target,
            controls,
        }
    }
    /// SWAP.
    pub fn swap(a: usize, b: usize) -> Gate {
        Gate::Swap {
            a,
            b,
            controls: Vec::new(),
        }
    }

    /// Target/participating qubits plus controls, for validation and depth
    /// computation.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::Unary {
                target, controls, ..
            } => {
                let mut v = controls.clone();
                v.push(*target);
                v
            }
            Gate::Swap { a, b, controls } => {
                let mut v = controls.clone();
                v.push(*a);
                v.push(*b);
                v
            }
        }
    }

    /// The inverse gate.
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::Unary {
                op,
                target,
                controls,
            } => Gate::Unary {
                op: op.dagger(),
                target: *target,
                controls: controls.clone(),
            },
            s @ Gate::Swap { .. } => s.clone(), // SWAP is self-inverse
        }
    }

    /// Adds an extra control qubit, turning G into controlled-G. This is how
    /// circuits are lifted to the controlled-U form QPE needs.
    pub fn add_control(&self, control: usize) -> Gate {
        let mut g = self.clone();
        match &mut g {
            Gate::Unary { controls, .. } | Gate::Swap { controls, .. } => {
                controls.push(control);
            }
        }
        g
    }

    /// Number of control qubits.
    pub fn num_controls(&self) -> usize {
        match self {
            Gate::Unary { controls, .. } | Gate::Swap { controls, .. } => controls.len(),
        }
    }

    /// `true` if this gate's action is diagonal in the computational basis
    /// (hence needs no communication when the state is distributed —
    /// the key specialisation of paper §4.5).
    pub fn is_diagonal_action(&self) -> bool {
        match self {
            Gate::Unary { op, .. } => op.is_diagonal(),
            Gate::Swap { .. } => false,
        }
    }

    /// Validates qubit indices against a machine of `n_qubits` qubits:
    /// indices in range and no qubit used twice by the same gate.
    pub fn validate(&self, n_qubits: usize) -> Result<(), String> {
        let qs = self.qubits();
        for &q in &qs {
            if q >= n_qubits {
                return Err(format!("gate touches qubit {q} but machine has {n_qubits}"));
            }
        }
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != qs.len() {
            return Err(format!("gate uses a qubit more than once: {qs:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matrices_are_unitary() {
        let ops = [
            GateOp::X,
            GateOp::Y,
            GateOp::Z,
            GateOp::H,
            GateOp::S,
            GateOp::Sdg,
            GateOp::T,
            GateOp::Tdg,
            GateOp::Rx(0.3),
            GateOp::Ry(-1.2),
            GateOp::Rz(2.5),
            GateOp::Phase(0.7),
        ];
        for op in ops {
            assert!(mat2_is_unitary(&op.matrix(), 1e-12), "{op:?} not unitary");
        }
    }

    #[test]
    fn not_matrix_matches_paper_eq2() {
        let m = GateOp::X.matrix();
        assert_eq!(m[0][0], C64::ZERO);
        assert_eq!(m[0][1], C64::ONE);
        assert_eq!(m[1][0], C64::ONE);
        assert_eq!(m[1][1], C64::ZERO);
    }

    #[test]
    fn dagger_times_op_is_identity() {
        let ops = [
            GateOp::H,
            GateOp::S,
            GateOp::T,
            GateOp::Rx(0.9),
            GateOp::Rz(-0.4),
            GateOp::Phase(1.3),
            GateOp::Y,
        ];
        for op in ops {
            let p = mat2_mul(&op.dagger().matrix(), &op.matrix());
            assert!((p[0][0] - C64::ONE).abs() < 1e-12, "{op:?}");
            assert!(p[0][1].abs() < 1e-12 && p[1][0].abs() < 1e-12, "{op:?}");
            assert!((p[1][1] - C64::ONE).abs() < 1e-12, "{op:?}");
        }
    }

    #[test]
    fn s_squared_is_z_and_t_squared_is_s() {
        let s2 = mat2_mul(&GateOp::S.matrix(), &GateOp::S.matrix());
        let z = GateOp::Z.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((s2[r][c] - z[r][c]).abs() < 1e-12);
            }
        }
        let t2 = mat2_mul(&GateOp::T.matrix(), &GateOp::T.matrix());
        let s = GateOp::S.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!((t2[r][c] - s[r][c]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn structure_classification() {
        assert_eq!(GateOp::X.structure(), GateStructure::PermutationX);
        assert!(matches!(
            GateOp::Rz(0.1).structure(),
            GateStructure::Diagonal(_, _)
        ));
        assert!(matches!(
            GateOp::Phase(0.1).structure(),
            GateStructure::Diagonal(_, _)
        ));
        assert!(matches!(GateOp::H.structure(), GateStructure::General(_)));
        assert!(matches!(
            GateOp::Rx(0.2).structure(),
            GateStructure::General(_)
        ));
        // User-supplied diagonal matrix is detected.
        let d = GateOp::U([[C64::I, C64::ZERO], [C64::ZERO, C64::ONE]]);
        assert!(d.is_diagonal());
    }

    #[test]
    fn diagonal_structure_values_match_matrix() {
        for op in [
            GateOp::Z,
            GateOp::S,
            GateOp::T,
            GateOp::Rz(0.77),
            GateOp::Phase(-0.3),
        ] {
            if let GateStructure::Diagonal(d0, d1) = op.structure() {
                let m = op.matrix();
                assert!(d0.approx_eq(m[0][0], 1e-15), "{op:?}");
                assert!(d1.approx_eq(m[1][1], 1e-15), "{op:?}");
            } else {
                panic!("{op:?} should be diagonal");
            }
        }
    }

    #[test]
    fn gate_constructors_and_qubits() {
        let g = Gate::toffoli(0, 1, 2);
        assert_eq!(g.num_controls(), 2);
        let mut q = g.qubits();
        q.sort_unstable();
        assert_eq!(q, vec![0, 1, 2]);

        let s = Gate::swap(3, 5);
        assert_eq!(s.qubits(), vec![3, 5]);
    }

    #[test]
    fn add_control_stacks() {
        let g = Gate::cnot(0, 1).add_control(2);
        assert_eq!(g.num_controls(), 2);
        if let Gate::Unary { op, .. } = &g {
            assert_eq!(*op, GateOp::X);
        } else {
            panic!("expected unary");
        }
    }

    #[test]
    fn validate_catches_out_of_range_and_overlap() {
        assert!(Gate::cnot(0, 1).validate(2).is_ok());
        assert!(Gate::cnot(0, 2).validate(2).is_err());
        assert!(Gate::cnot(1, 1).validate(2).is_err());
        assert!(Gate::swap(0, 0).validate(2).is_err());
        assert!(Gate::toffoli(0, 1, 0).validate(3).is_err());
    }

    #[test]
    fn diagonal_action_detection_for_communication_avoidance() {
        assert!(Gate::cphase(0, 1, 0.5).is_diagonal_action());
        assert!(Gate::rz(0, 0.5).is_diagonal_action());
        assert!(Gate::cz(0, 1).is_diagonal_action());
        assert!(!Gate::h(0).is_diagonal_action());
        assert!(!Gate::cnot(0, 1).is_diagonal_action());
        assert!(!Gate::swap(0, 1).is_diagonal_action());
    }

    #[test]
    fn swap_dagger_is_itself() {
        let s = Gate::swap(1, 2);
        assert_eq!(s.dagger(), s);
    }
}

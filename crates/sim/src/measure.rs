//! Measurement: sampling, collapse, and the full-distribution access that
//! gives emulators their §3.4 advantage.
//!
//! A physical quantum computer measuring `n` qubits gets `n` classical bits
//! per run and must repeat the circuit to estimate statistics. A simulator
//! holds all 2ⁿ amplitudes, so an emulator exposes the *exact* distribution
//! and expectation values in a single pass — this module provides both the
//! honest shot-sampling interface and the exact one.

use crate::batch::BatchStateVector;
use crate::statevector::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a basis state index from `|α_i|² / ‖ψ‖²` **without** collapsing.
///
/// The draw is scaled by the summed `norm_sqr`, so a slightly (or grossly)
/// unnormalized state still samples from the exact relative distribution —
/// previously `r ∈ [0, 1)` was compared against an unscaled running sum,
/// biasing samples toward the `amps.len() - 1` fallback whenever
/// `‖ψ‖² < 1`. On any state with at least one non-zero amplitude, a
/// zero-amplitude basis state is never returned: the strict `r < acc`
/// test cannot fire on an entry that adds nothing to `acc`, and the
/// numerical-slack fallback lands on the last *non-zero* entry. (A null
/// state — all amplitudes zero — is not a quantum state; both samplers
/// then fall back to `amps.len() − 1`.)
pub fn sample_once(sv: &StateVector, rng: &mut impl Rng) -> usize {
    let amps = sv.amplitudes();
    let total: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
    let r: f64 = rng.gen::<f64>() * total;
    let mut acc = 0.0;
    let mut last_nonzero = amps.len() - 1;
    for (i, a) in amps.iter().enumerate() {
        let p = a.norm_sqr();
        if p > 0.0 {
            last_nonzero = i;
        }
        acc += p;
        if r < acc {
            return i;
        }
    }
    last_nonzero // numerical slack: r ≈ ‖ψ‖²
}

/// Draws `shots` independent samples (the quantum computer's workflow).
/// Uses a cumulative table + binary search: O(2ⁿ + shots·n).
///
/// The lookup uses "first index with `cdf > r`" (partition-point)
/// semantics: duplicate CDF entries — the plateau a zero-probability basis
/// state produces — can never be selected, even on an exact hit `r ==
/// cdf[i]`, where a plain `binary_search` may return an arbitrary index
/// inside the plateau. The null-state caveat of [`sample_once`] applies.
pub fn sample_shots(sv: &StateVector, shots: usize, rng: &mut impl Rng) -> Vec<usize> {
    let amps = sv.amplitudes();
    let mut cdf = Vec::with_capacity(amps.len());
    let mut acc = 0.0;
    let mut last_nonzero = amps.len() - 1;
    for (i, a) in amps.iter().enumerate() {
        let p = a.norm_sqr();
        if p > 0.0 {
            last_nonzero = i;
        }
        acc += p;
        cdf.push(acc);
    }
    let total = acc;
    (0..shots)
        .map(|_| {
            let r: f64 = rng.gen::<f64>() * total;
            cdf.partition_point(|&p| p <= r).min(last_nonzero)
        })
        .collect()
}

/// Histogram of `shots` samples over the full basis.
pub fn sample_histogram(sv: &StateVector, shots: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut hist = vec![0usize; sv.dim()];
    for s in sample_shots(sv, shots, rng) {
        hist[s] += 1;
    }
    hist
}

/// Draws `shots` samples from **every** member of a batch, each member
/// with its own deterministic RNG stream seeded `base_seed + j`.
///
/// Member extraction preserves amplitude order exactly, so the result for
/// member `j` is bit-identical to
/// `sample_shots(&batch.member(j), shots, &mut StdRng::seed_from_u64(base_seed + j))`
/// — ensembles sample reproducibly and independently of how (batched or
/// sequentially) the states were produced.
pub fn sample_shots_batch(
    batch: &BatchStateVector,
    shots: usize,
    base_seed: u64,
) -> Vec<Vec<usize>> {
    (0..batch.batch())
        .map(|j| {
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(j as u64));
            sample_shots(&batch.member(j), shots, &mut rng)
        })
        .collect()
}

/// Per-member histograms of `shots` samples over the full basis, with the
/// per-member seeding scheme of [`sample_shots_batch`].
pub fn sample_histogram_batch(
    batch: &BatchStateVector,
    shots: usize,
    base_seed: u64,
) -> Vec<Vec<usize>> {
    (0..batch.batch())
        .map(|j| {
            let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(j as u64));
            sample_histogram(&batch.member(j), shots, &mut rng)
        })
        .collect()
}

/// Projective measurement of **all** qubits: samples an outcome and
/// collapses the state onto it.
pub fn measure_all(sv: &mut StateVector, rng: &mut impl Rng) -> usize {
    let outcome = sample_once(sv, rng);
    let amps = sv.amplitudes_mut();
    for (i, a) in amps.iter_mut().enumerate() {
        *a = if i == outcome {
            qcemu_linalg::C64::ONE
        } else {
            qcemu_linalg::C64::ZERO
        };
    }
    outcome
}

/// Probability that qubit `q` reads 1.
pub fn prob_qubit_one(sv: &StateVector, q: usize) -> f64 {
    assert!(q < sv.n_qubits(), "qubit out of range");
    let bit = 1usize << q;
    sv.amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & bit != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Projective measurement of one qubit: samples 0/1, collapses, renormalises.
///
/// Like [`sample_once`], the draw is scaled by the total `‖ψ‖²`, so the
/// outcome odds are exact on unnormalized states (and the collapsed state
/// comes out normalised either way).
pub fn measure_qubit(sv: &mut StateVector, q: usize, rng: &mut impl Rng) -> bool {
    let p1 = prob_qubit_one(sv, q);
    let total: f64 = sv.amplitudes().iter().map(|a| a.norm_sqr()).sum();
    let outcome = rng.gen::<f64>() * total < p1;
    let keep_bit = if outcome { 1usize } else { 0usize };
    let bit = 1usize << q;
    let renorm = 1.0 / if outcome { p1 } else { total - p1 }.sqrt();
    for (i, a) in sv.amplitudes_mut().iter_mut().enumerate() {
        if ((i & bit != 0) as usize) == keep_bit {
            *a = a.scale(renorm);
        } else {
            *a = qcemu_linalg::C64::ZERO;
        }
    }
    outcome
}

/// Exact expectation value `⟨Z_q⟩ = P(0) − P(1)` — the §3.4 shortcut: one
/// pass over the amplitudes instead of many shots.
pub fn expectation_z(sv: &StateVector, q: usize) -> f64 {
    1.0 - 2.0 * prob_qubit_one(sv, q)
}

/// Exact expectation of a tensor product of Pauli-Zs:
/// `⟨Z_{q1} Z_{q2} …⟩ = Σ_i (−1)^{popcount(i & mask)} |α_i|²`.
pub fn expectation_z_string(sv: &StateVector, qubits: &[usize]) -> f64 {
    let mask = qubits.iter().fold(0usize, |m, &q| {
        assert!(q < sv.n_qubits(), "qubit out of range");
        m | (1usize << q)
    });
    sv.amplitudes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let sign = if (i & mask).count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            sign * a.norm_sqr()
        })
        .sum()
}

/// Estimates `⟨Z_q⟩` from `shots` samples — the cost an actual quantum
/// computer (or a shot-faithful simulator) pays. Provided so benchmarks can
/// quantify the §3.4 speedup (= number of shots).
pub fn expectation_z_sampled(sv: &StateVector, q: usize, shots: usize, rng: &mut impl Rng) -> f64 {
    let bit = 1usize << q;
    let ones = sample_shots(sv, shots, rng)
        .into_iter()
        .filter(|i| i & bit != 0)
        .count();
    1.0 - 2.0 * ones as f64 / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_basis_state_is_deterministic() {
        let sv = StateVector::basis_state(4, 11);
        let mut rng = StdRng::seed_from_u64(90);
        for _ in 0..20 {
            assert_eq!(sample_once(&sv, &mut rng), 11);
        }
        assert!(sample_shots(&sv, 50, &mut rng).iter().all(|&s| s == 11));
    }

    #[test]
    fn uniform_sampling_covers_basis() {
        let sv = StateVector::uniform_superposition(3);
        let mut rng = StdRng::seed_from_u64(91);
        let hist = sample_histogram(&sv, 8000, &mut rng);
        for (i, &count) in hist.iter().enumerate() {
            let freq = count as f64 / 8000.0;
            assert!(
                (freq - 0.125).abs() < 0.03,
                "index {i} frequency {freq} too far from 1/8"
            );
        }
    }

    #[test]
    fn samplers_are_exact_on_unnormalized_states() {
        use qcemu_linalg::{c64, C64};
        // 0.5·(0.6|01⟩ + 0.8|11⟩): ‖ψ‖² = 0.25, exact relative distribution
        // P(1) = 0.36, P(3) = 0.64. Before the total-norm fix, sample_once
        // drew r ∈ [0, 1) against the unscaled running sum and fell through
        // to the `amps.len() - 1` fallback ~75% of the time.
        let sv =
            StateVector::from_amplitudes(vec![C64::ZERO, c64(0.3, 0.0), C64::ZERO, c64(0.0, 0.4)]);
        let shots = 20_000;
        let mut rng = StdRng::seed_from_u64(96);
        let mut hist_once = [0usize; 4];
        for _ in 0..shots {
            hist_once[sample_once(&sv, &mut rng)] += 1;
        }
        let mut hist_shots = [0usize; 4];
        for s in sample_shots(&sv, shots, &mut rng) {
            hist_shots[s] += 1;
        }
        for hist in [hist_once, hist_shots] {
            assert_eq!(hist[0], 0, "zero-amplitude state sampled");
            assert_eq!(hist[2], 0, "zero-amplitude state sampled");
            let f1 = hist[1] as f64 / shots as f64;
            let f3 = hist[3] as f64 / shots as f64;
            assert!((f1 - 0.36).abs() < 0.02, "P(1) ≈ 0.36, got {f1}");
            assert!((f3 - 0.64).abs() < 0.02, "P(3) ≈ 0.64, got {f3}");
        }
    }

    #[test]
    fn zero_probability_plateaus_are_never_sampled() {
        use qcemu_linalg::{c64, C64};
        // Long zero plateaus around sparse support, on an unnormalized
        // state: every sample must land on the support, never inside a
        // duplicate-CDF plateau (the exact-hit failure mode of plain
        // binary_search) and never on the trailing zeros via the fallback.
        let mut amps = vec![C64::ZERO; 32];
        amps[5] = c64(1.5, 0.0);
        amps[17] = c64(0.0, -2.0);
        let sv = StateVector::from_amplitudes(amps);
        let mut rng = StdRng::seed_from_u64(97);
        for s in sample_shots(&sv, 5_000, &mut rng) {
            assert!(s == 5 || s == 17, "sampled zero-probability state {s}");
        }
        for _ in 0..2_000 {
            let s = sample_once(&sv, &mut rng);
            assert!(s == 5 || s == 17, "sampled zero-probability state {s}");
        }
    }

    #[test]
    fn measure_all_inherits_total_norm_scaling() {
        use qcemu_linalg::{c64, C64};
        // measure_all samples via sample_once: on an unnormalized state it
        // must still collapse onto support states with the right odds.
        let mut rng = StdRng::seed_from_u64(98);
        let mut ones = 0usize;
        let trials = 4_000;
        for _ in 0..trials {
            let mut sv = StateVector::from_amplitudes(vec![
                c64(0.2, 0.0),
                c64(0.0, 0.1),
                C64::ZERO,
                C64::ZERO,
            ]);
            let outcome = measure_all(&mut sv, &mut rng);
            assert!(outcome < 2, "collapsed onto zero-probability state");
            ones += outcome;
        }
        // P(1) = 0.01/0.05 = 0.2.
        let f = ones as f64 / trials as f64;
        assert!((f - 0.2).abs() < 0.03, "P(1) ≈ 0.2, got {f}");
    }

    #[test]
    fn measure_qubit_is_exact_on_unnormalized_states() {
        use qcemu_linalg::c64;
        // 0.5·(0.6|0⟩ + 0.8|1⟩): P(1) must be 0.64, not the unscaled 0.16.
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 4_000;
        let mut ones = 0usize;
        for _ in 0..trials {
            let mut sv = StateVector::from_amplitudes(vec![c64(0.3, 0.0), c64(0.0, 0.4)]);
            if measure_qubit(&mut sv, 0, &mut rng) {
                ones += 1;
            }
            assert!((sv.norm() - 1.0).abs() < 1e-12, "collapse must renormalise");
        }
        let f = ones as f64 / trials as f64;
        assert!((f - 0.64).abs() < 0.03, "P(1) ≈ 0.64, got {f}");
    }

    #[test]
    fn measure_all_collapses() {
        let mut sv = StateVector::uniform_superposition(4);
        let mut rng = StdRng::seed_from_u64(92);
        let outcome = measure_all(&mut sv, &mut rng);
        assert_eq!(sv.probability(outcome), 1.0);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_qubit_collapses_consistently() {
        let mut rng = StdRng::seed_from_u64(93);
        for _ in 0..10 {
            let mut sv = StateVector::zero_state(2);
            let mut c = Circuit::new(2);
            c.h(0).cnot(0, 1); // Bell pair: qubits correlated
            sv.apply_circuit(&c);
            let b0 = measure_qubit(&mut sv, 0, &mut rng);
            let b1 = measure_qubit(&mut sv, 1, &mut rng);
            assert_eq!(b0, b1, "Bell pair must give correlated outcomes");
            assert!((sv.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prob_qubit_one_on_plus_state() {
        let mut sv = StateVector::zero_state(1);
        sv.apply(&crate::gate::Gate::h(0));
        assert!((prob_qubit_one(&sv, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_z_exact_values() {
        let sv = StateVector::zero_state(2);
        assert!((expectation_z(&sv, 0) - 1.0).abs() < 1e-12);
        let sv1 = StateVector::basis_state(2, 0b01);
        assert!((expectation_z(&sv1, 0) + 1.0).abs() < 1e-12);
        assert!((expectation_z(&sv1, 1) - 1.0).abs() < 1e-12);
        let plus = StateVector::uniform_superposition(1);
        assert!(expectation_z(&plus, 0).abs() < 1e-12);
    }

    #[test]
    fn zz_string_on_bell_state_is_one() {
        let mut sv = StateVector::zero_state(2);
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        sv.apply_circuit(&c);
        // Bell state: perfectly correlated Zs.
        assert!((expectation_z_string(&sv, &[0, 1]) - 1.0).abs() < 1e-12);
        // Single-qubit expectations vanish.
        assert!(expectation_z(&sv, 0).abs() < 1e-12);
        assert!(expectation_z(&sv, 1).abs() < 1e-12);
    }

    #[test]
    fn empty_z_string_is_identity_expectation() {
        let sv = StateVector::uniform_superposition(3);
        assert!((expectation_z_string(&sv, &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_expectation_converges_to_exact() {
        let mut sv = StateVector::zero_state(3);
        sv.apply(&crate::gate::Gate::ry(1, 1.1));
        let exact = expectation_z(&sv, 1);
        let mut rng = StdRng::seed_from_u64(94);
        let approx = expectation_z_sampled(&sv, 1, 20_000, &mut rng);
        assert!(
            (exact - approx).abs() < 0.03,
            "sampled {approx} vs exact {exact}"
        );
    }

    #[test]
    fn register_distribution_matches_sampling() {
        let mut sv = StateVector::zero_state(3);
        sv.apply(&crate::gate::Gate::h(0));
        sv.apply(&crate::gate::Gate::h(2));
        let dist = sv.register_distribution(&[0, 2]);
        let mut rng = StdRng::seed_from_u64(95);
        let samples = sample_shots(&sv, 10_000, &mut rng);
        let mut hist = vec![0usize; 4];
        for s in samples {
            hist[StateVector::register_value(s, &[0, 2])] += 1;
        }
        for v in 0..4 {
            let freq = hist[v] as f64 / 10_000.0;
            assert!((freq - dist[v]).abs() < 0.03, "v = {v}");
        }
    }
}

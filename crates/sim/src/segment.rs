//! Cache-blocked **segment sweeps**: applying a whole run of compatible
//! gates to one cache-resident block of amplitudes before moving on.
//!
//! Fusion (see [`crate::fusion`]) already collapses a run of gates on a
//! small qubit *window* into one sweep. This pass attacks the orthogonal
//! axis: a run of gates that individually touch the **whole** state (a
//! QFT layer, say) still costs one full-state sweep each, even fused,
//! because their combined qubit set exceeds any fusion window. Segment
//! sweeps partition the state into contiguous blocks of `2^b` amplitudes
//! (`b` = block bits, sized so a block sits in L2) and observe that for a
//! large class of gates the block is *closed*: the gate maps each block
//! into itself, possibly scaled. Such a run of `d` gates is then executed
//! as **one** pass — load a block, replay all `d` gates against it in
//! cache, store it — turning `d` full-state traversals into one.
//!
//! A gate is block-compatible at block size `2^b` when
//!
//! * its target(s) and at least the *low* controls sit below bit `b`
//!   (the gate permutes/rotates amplitudes within each block; controls at
//!   or above `b` merely switch whole blocks on or off, since every index
//!   of a block shares the high bits), or
//! * it is **diagonal with the target at or above `b`**: within a block
//!   the target bit is constant, so the gate degenerates to a per-block
//!   scalar factor (times a low-control mask when it has low controls).
//!
//! Everything else — an X/H/SWAP moving amplitudes across a block
//! boundary — flushes the current segment and runs through the ordinary
//! (fused) sweep path. Scalar factors of a block commute with all linear
//! ops, so they accumulate across the whole segment and are applied once.
//!
//! # Examples
//!
//! ```
//! use qcemu_sim::{qft_circuit, SimConfig, StateVector};
//!
//! let circuit = qft_circuit(6);
//! let mut segmented = StateVector::zero_state(6);
//! segmented.run(&circuit, &SimConfig::segmented());
//!
//! let mut plain = StateVector::zero_state(6);
//! plain.apply_circuit(&circuit);
//! assert!(segmented.max_diff_up_to_phase(&plain) < 1e-12);
//! ```

use crate::circuit::Circuit;
use crate::fusion::{fuse_circuit, FusedCircuit, FusionPolicy};
use crate::gate::{Gate, GateStructure};
use crate::kernels::{LocalOp, StatePtr, PAR_THRESHOLD};
use qcemu_linalg::{simd, C64};
use rayon::prelude::*;

/// Default block size: `2^14` amplitudes = 256 KiB of complex doubles,
/// half a typical per-core L2 — big enough that the per-block mask checks
/// amortise, small enough that a block plus the streaming write-back stays
/// cache-resident. See `docs/PERFORMANCE.md` for the sweep of this knob.
pub const DEFAULT_BLOCK_BITS: usize = 14;

/// Whether (and how) circuits are partitioned into cache-blocked segments
/// before execution. Layered *above* fusion: gates that fall out of
/// segments (block-incompatible runs) still go through the configured
/// [`FusionPolicy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SegmentPolicy {
    /// No segmentation — execution is driven by the fusion policy alone.
    #[default]
    Disabled,
    /// Partition into segments and drive compatible runs with the
    /// cache-blocked kernel at `2^block_bits` amplitudes per block.
    Blocked {
        /// log2 of the block size in amplitudes (clamped to the state
        /// width at compile time).
        block_bits: usize,
    },
}

impl SegmentPolicy {
    /// Blocked segmentation at the default L2-sized block.
    pub fn blocked() -> SegmentPolicy {
        SegmentPolicy::Blocked {
            block_bits: DEFAULT_BLOCK_BITS,
        }
    }
}

/// What a compatible gate does to one active block.
#[derive(Clone, Debug)]
enum SegAction {
    /// Replay a precompiled local op against the block's amplitudes
    /// (gates whose targets sit below the block boundary).
    Local(LocalOp),
    /// Multiply the whole block by a scalar (diagonal gates whose target
    /// is at or above the boundary and that carry no low controls).
    /// Factors accumulate across the segment and are applied once.
    Scale(C64),
}

/// One gate compiled against the block partition: an activity mask over
/// the block's high bits plus the in-block action.
#[derive(Clone, Debug)]
struct SegOp {
    /// High bits (≥ block_bits) that must be **1** in the block's base
    /// index for the op to act (high controls, and the target bit of the
    /// `d1` branch of a high diagonal).
    high_ones: usize,
    /// High bits that must be **0** (the target bit of the `d0` branch of
    /// a high diagonal).
    high_zeros: usize,
    action: SegAction,
}

impl SegOp {
    #[inline(always)]
    fn active(&self, base: usize) -> bool {
        base & self.high_ones == self.high_ones && base & self.high_zeros == 0
    }
}

/// One executable step of a segmented circuit.
#[derive(Clone, Debug)]
enum SegStep {
    /// A run of block-compatible gates: one blocked pass over the state.
    Blocked(Vec<SegOp>),
    /// A run of incompatible gates: ordinary (fused) full-state sweeps.
    Sweep(FusedCircuit),
}

/// A circuit partitioned into cache-blocked segments and sweep runs.
///
/// Built by [`segment_circuit`]; executed via
/// [`SegmentedCircuit::apply_slice_with`] (or transparently through
/// [`StateVector::run`](crate::StateVector::run) with
/// [`SimConfig::segmented`](crate::SimConfig::segmented)).
#[derive(Clone, Debug)]
pub struct SegmentedCircuit {
    n_qubits: usize,
    block_bits: usize,
    steps: Vec<SegStep>,
}

/// Compiles `gate` against a `2^bb`-amplitude block partition, or `None`
/// when the gate moves amplitudes across block boundaries. A compatible
/// gate may expand to up to two [`SegOp`]s (the two branches of a high
/// diagonal) or zero (an identity diagonal).
fn compile_gate(gate: &Gate, bb: usize) -> Option<Vec<SegOp>> {
    let mask = |bits: &[usize]| bits.iter().fold(0usize, |m, &b| m | (1usize << b));
    match gate {
        Gate::Unary {
            op,
            target,
            controls,
        } => {
            let (low_c, high_c): (Vec<usize>, Vec<usize>) =
                controls.iter().copied().partition(|&c| c < bb);
            let high_ones = mask(&high_c);
            if *target < bb {
                // In-block gate: low controls stay in the local op, high
                // controls become the block activity mask.
                let local = Gate::Unary {
                    op: op.clone(),
                    target: *target,
                    controls: low_c,
                };
                return Some(vec![SegOp {
                    high_ones,
                    high_zeros: 0,
                    action: SegAction::Local(LocalOp::from_gate(&local)),
                }]);
            }
            match op.structure() {
                GateStructure::Diagonal(d0, d1) => {
                    // The target bit is constant within a block: the gate
                    // splits into (up to) two per-block scalings, one per
                    // target-bit value.
                    let tmask = 1usize << *target;
                    let mut ops = Vec::new();
                    for (factor, ones, zeros) in
                        [(d1, high_ones | tmask, 0), (d0, high_ones, tmask)]
                    {
                        if factor == C64::ONE {
                            continue;
                        }
                        let action = if low_c.is_empty() {
                            SegAction::Scale(factor)
                        } else {
                            // Scale only the entries with all low controls
                            // set: a phase-type diagonal whose "target" is
                            // the lowest low-control bit.
                            let lmask = mask(&low_c);
                            let tbit = lmask & lmask.wrapping_neg();
                            SegAction::Local(LocalOp::Diag {
                                cmask: lmask & !tbit,
                                tbit,
                                d0: C64::ONE,
                                d1: factor,
                            })
                        };
                        ops.push(SegOp {
                            high_ones: ones,
                            high_zeros: zeros,
                            action,
                        });
                    }
                    Some(ops)
                }
                // X/H on a high qubit pairs amplitudes across blocks.
                _ => None,
            }
        }
        Gate::Swap { a, b, controls } => {
            if *a >= bb || *b >= bb {
                return None;
            }
            let (low_c, high_c): (Vec<usize>, Vec<usize>) =
                controls.iter().copied().partition(|&c| c < bb);
            let local = Gate::Swap {
                a: *a,
                b: *b,
                controls: low_c,
            };
            Some(vec![SegOp {
                high_ones: mask(&high_c),
                high_zeros: 0,
                action: SegAction::Local(LocalOp::from_gate(&local)),
            }])
        }
    }
}

/// Partitions `circuit` into cache-blocked segments at `2^block_bits`
/// amplitudes per block (clamped to the state width), compiling maximal
/// runs of block-compatible gates into blocked steps and everything else
/// into ordinary sweeps fused under `fusion`.
///
/// Gate order is preserved exactly; a compatible run of a **single** gate
/// is demoted back to the sweep path (one blocked pass of one gate saves
/// nothing and forfeits the per-gate kernels' partial-touch fast paths).
pub fn segment_circuit(
    circuit: &Circuit,
    block_bits: usize,
    fusion: &FusionPolicy,
) -> SegmentedCircuit {
    let n = circuit.n_qubits();
    let bb = block_bits.max(1).min(n);
    let gates = circuit.gates();

    // Pass 1: classify, form maximal same-kind runs, then demote lone
    // compatible gates into their neighbouring sweep runs.
    let mut runs: Vec<(usize, usize, bool)> = Vec::new(); // [start, end), blocked
    for (i, gate) in gates.iter().enumerate() {
        let blocked = compile_gate(gate, bb).is_some();
        match runs.last_mut() {
            Some((_, end, b)) if *b == blocked => *end = i + 1,
            _ => runs.push((i, i + 1, blocked)),
        }
    }
    let mut merged: Vec<(usize, usize, bool)> = Vec::new();
    for (s, e, blocked) in runs {
        let blocked = blocked && e - s > 1;
        match merged.last_mut() {
            Some((_, end, b)) if *b == blocked => *end = e,
            _ => merged.push((s, e, blocked)),
        }
    }

    // Pass 2: compile each run.
    let mut steps = Vec::new();
    for (s, e, blocked) in merged {
        if blocked {
            let ops: Vec<SegOp> = gates[s..e]
                .iter()
                .flat_map(|g| compile_gate(g, bb).expect("run was classified compatible"))
                .collect();
            steps.push(SegStep::Blocked(ops));
        } else {
            let mut sub = Circuit::new(n);
            for g in &gates[s..e] {
                sub.push(g.clone());
            }
            steps.push(SegStep::Sweep(fuse_circuit(&sub, fusion)));
        }
    }

    SegmentedCircuit {
        n_qubits: n,
        block_bits: bb,
        steps,
    }
}

/// Applies one blocked segment to a single state: each `2^block_bits`
/// chunk is loaded once, every active op replayed against it in cache,
/// accumulated scalar factors applied, and the chunk written back.
fn run_blocked(state: &mut [C64], block_bits: usize, ops: &[SegOp], par_threshold: usize) {
    let bsize = 1usize << block_bits;
    debug_assert!(state.len() % bsize == 0);
    let nblocks = state.len() / bsize;
    if state.len() >= par_threshold && nblocks > 1 && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|blk| {
            let p = ptr;
            // SAFETY: blocks are disjoint contiguous chunks of `state`.
            let block = unsafe { std::slice::from_raw_parts_mut(p.0.add(blk * bsize), bsize) };
            apply_block(block, blk * bsize, ops);
        });
    } else {
        for (blk, block) in state.chunks_mut(bsize).enumerate() {
            apply_block(block, blk * bsize, ops);
        }
    }
}

/// Replays a segment against one block whose first amplitude has global
/// index `base`. Scalar factors commute with every linear op, so they
/// accumulate and are applied in a single fused scaling at the end.
fn apply_block(block: &mut [C64], base: usize, ops: &[SegOp]) {
    let mut acc = C64::ONE;
    for op in ops {
        if !op.active(base) {
            continue;
        }
        match &op.action {
            SegAction::Scale(f) => acc *= *f,
            SegAction::Local(l) => l.apply(block),
        }
    }
    if acc != C64::ONE {
        simd::scale_slice(block, acc);
    }
}

/// Batch-major twin of [`run_blocked`]: member `j`'s amplitude `i` lives
/// at `state[i·batch + j]` (see [`crate::batch`]), so one block is the
/// contiguous region `state[base·batch .. (base + 2^b)·batch]`.
fn run_blocked_batch(
    state: &mut [C64],
    batch: usize,
    block_bits: usize,
    ops: &[SegOp],
    par_threshold: usize,
) {
    let region = (1usize << block_bits) * batch;
    debug_assert!(state.len() % region == 0);
    let nblocks = state.len() / region;
    let bsize = 1usize << block_bits;
    if state.len() >= par_threshold && nblocks > 1 && rayon::current_num_threads() > 1 {
        let ptr = StatePtr(state.as_mut_ptr());
        (0..nblocks).into_par_iter().for_each(|blk| {
            let p = ptr;
            // SAFETY: regions are disjoint contiguous chunks of `state`.
            let block = unsafe { std::slice::from_raw_parts_mut(p.0.add(blk * region), region) };
            apply_block_batch(block, blk * bsize, batch, ops);
        });
    } else {
        for (blk, block) in state.chunks_mut(region).enumerate() {
            apply_block_batch(block, blk * bsize, batch, ops);
        }
    }
}

/// [`apply_block`] for a batch-major region (`2^b` local amplitudes ×
/// `batch` members).
fn apply_block_batch(block: &mut [C64], base: usize, batch: usize, ops: &[SegOp]) {
    let mut acc = C64::ONE;
    for op in ops {
        if !op.active(base) {
            continue;
        }
        match &op.action {
            SegAction::Scale(f) => acc *= *f,
            SegAction::Local(l) => l.apply_batch(block, batch),
        }
    }
    if acc != C64::ONE {
        simd::scale_slice(block, acc);
    }
}

impl SegmentedCircuit {
    /// Number of qubits the circuit addresses.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// log2 of the block size the circuit was compiled for. Execution
    /// uses this value verbatim — the activity masks are only correct at
    /// the block size they were compiled against.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Number of cache-blocked segments.
    pub fn blocked_segments(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, SegStep::Blocked(_)))
            .count()
    }

    /// Number of ordinary sweep runs between blocked segments.
    pub fn sweep_segments(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, SegStep::Sweep(_)))
            .count()
    }

    /// Total compiled ops across all blocked segments.
    pub fn blocked_ops(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                SegStep::Blocked(ops) => ops.len(),
                SegStep::Sweep(_) => 0,
            })
            .sum()
    }

    /// Applies the segmented circuit to a raw state slice. The state may
    /// be wider than the circuit (extra high qubits are untouched — the
    /// activity masks never test them), but never narrower.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` is not a power of two at least
    /// `2^n_qubits`.
    pub fn apply_slice(&self, state: &mut [C64]) {
        self.apply_slice_with(state, PAR_THRESHOLD)
    }

    /// [`SegmentedCircuit::apply_slice`] with an explicit parallelism
    /// threshold (see [`SimConfig::par_threshold`](crate::SimConfig)).
    pub fn apply_slice_with(&self, state: &mut [C64], par_threshold: usize) {
        assert!(
            state.len().is_power_of_two() && state.len() >= 1usize << self.n_qubits,
            "segmented circuit compiled for {} qubits, state holds {} amplitudes",
            self.n_qubits,
            state.len()
        );
        for step in &self.steps {
            match step {
                SegStep::Blocked(ops) => run_blocked(state, self.block_bits, ops, par_threshold),
                SegStep::Sweep(fc) => fc.apply_slice_with(state, par_threshold),
            }
        }
    }

    /// Applies the segmented circuit to every member of a batch-major
    /// interleaved buffer (see [`crate::batch`]): blocked segments run on
    /// contiguous `2^b·batch` regions, sweep runs go through the batched
    /// fused kernels.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `state.len()` is not a multiple of
    /// `batch`, or the per-member width is below `2^n_qubits`.
    pub fn apply_batched_with(&self, state: &mut [C64], batch: usize, par_threshold: usize) {
        assert!(batch > 0, "batch must be non-empty");
        assert!(
            state.len() % batch == 0
                && (state.len() / batch).is_power_of_two()
                && state.len() / batch >= 1usize << self.n_qubits,
            "segmented circuit compiled for {} qubits × batch {batch}, buffer holds {}",
            self.n_qubits,
            state.len()
        );
        for step in &self.steps {
            match step {
                SegStep::Blocked(ops) => {
                    run_blocked_batch(state, batch, self.block_bits, ops, par_threshold)
                }
                SegStep::Sweep(fc) => fc.apply_batched_with(state, batch, par_threshold),
            }
        }
    }

    /// State-vector entries streamed from memory by one execution on an
    /// `n_qubits` state: one full pass per blocked segment plus the fused
    /// traffic of each sweep run — the quantity the calibrated cost
    /// model's `entry_rate` term prices.
    pub fn streamed_entries(&self, n_qubits: usize) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                SegStep::Blocked(_) => 1usize << n_qubits,
                SegStep::Sweep(fc) => fc.touched_entries(n_qubits),
            })
            .sum()
    }

    /// Entries processed **in cache** by the blocked segments: each local
    /// op touches its block once per active block (`2^n` scaled down by
    /// the op's activity-mask bits); accumulated scalar factors cost one
    /// fused scaling and are not counted per op. Priced by the cost
    /// model's `cache_rate` term.
    pub fn incache_entries(&self, n_qubits: usize) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                SegStep::Blocked(ops) => ops
                    .iter()
                    .map(|op| match op.action {
                        SegAction::Local(_) => {
                            (1usize << n_qubits)
                                >> (op.high_ones | op.high_zeros).count_ones() as usize
                        }
                        SegAction::Scale(_) => 0,
                    })
                    .sum(),
                SegStep::Sweep(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::entangle::entangle_circuit;
    use crate::circuits::qft::qft_circuit;
    use crate::kernels::apply_gate_slice;
    use qcemu_linalg::{max_abs_diff, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_segmented_equals_unfused(circuit: &Circuit, block_bits: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = random_state(1usize << circuit.n_qubits(), &mut rng);
        let mut plain = input.clone();
        for g in circuit.gates() {
            apply_gate_slice(&mut plain, g);
        }
        for fusion in [FusionPolicy::Disabled, FusionPolicy::greedy()] {
            let seg = segment_circuit(circuit, block_bits, &fusion);
            let mut blocked = input.clone();
            seg.apply_slice(&mut blocked);
            assert!(
                max_abs_diff(&plain, &blocked) < 1e-12,
                "segmented(b={block_bits}, {fusion:?}) diverges on {} gates: {}",
                circuit.gate_count(),
                max_abs_diff(&plain, &blocked)
            );
        }
    }

    #[test]
    fn qft_segmented_matches_unfused_at_every_block_size() {
        let c = qft_circuit(8);
        for bb in [1, 2, 3, 5, 8, 14] {
            check_segmented_equals_unfused(&c, bb, 800 + bb as u64);
        }
    }

    #[test]
    fn entangle_segmented_matches_unfused() {
        let c = entangle_circuit(9);
        for bb in [2, 4, 9] {
            check_segmented_equals_unfused(&c, bb, 810 + bb as u64);
        }
    }

    #[test]
    fn mixed_zoo_segmented_matches_unfused() {
        let mut c = Circuit::new(7);
        c.h(0)
            .cnot(0, 6)
            .toffoli(5, 1, 2)
            .swap(2, 3)
            .rz(6, 0.4)
            .cphase(6, 4, -0.7)
            .x(5)
            .phase(5, 1.1)
            .ry(4, 0.2)
            .cnot(5, 0)
            .cphase(1, 6, 0.9);
        c.push(Gate::Swap {
            a: 1,
            b: 2,
            controls: vec![6],
        });
        for bb in [1, 2, 3, 4, 7] {
            check_segmented_equals_unfused(&c, bb, 820 + bb as u64);
        }
    }

    #[test]
    fn high_diagonals_and_high_controls_stay_blocked() {
        // Every gate here is block-compatible at bb = 3: low targets with
        // high controls, and high-target diagonals.
        let mut c = Circuit::new(6);
        c.cphase(5, 1, 0.3) // high control, low target
            .rz(5, 0.4) // high-target diagonal, both branches
            .phase(4, 0.2) // high-target phase, d1 branch only
            .cphase(0, 5, 0.7) // low control, high target → low-masked Diag
            .h(2); // plain low gate
        let seg = segment_circuit(&c, 3, &FusionPolicy::Disabled);
        assert_eq!(seg.blocked_segments(), 1);
        assert_eq!(seg.sweep_segments(), 0);
        // rz expands to 2 ops, the rest to 1 each.
        assert_eq!(seg.blocked_ops(), 6);
        check_segmented_equals_unfused(&c, 3, 830);
    }

    #[test]
    fn high_x_flushes_to_a_sweep() {
        let mut c = Circuit::new(6);
        c.h(0).h(1).x(5).h(2).h(0);
        let seg = segment_circuit(&c, 3, &FusionPolicy::Disabled);
        assert_eq!(seg.blocked_segments(), 2);
        assert_eq!(seg.sweep_segments(), 1);
        check_segmented_equals_unfused(&c, 3, 831);
    }

    #[test]
    fn lone_compatible_gates_demote_to_the_sweep_path() {
        // h(0) is compatible but alone between incompatible runs: the
        // whole circuit must collapse into a single sweep.
        let mut c = Circuit::new(6);
        c.h(5).h(0).h(5);
        let seg = segment_circuit(&c, 3, &FusionPolicy::Disabled);
        assert_eq!(seg.blocked_segments(), 0);
        assert_eq!(seg.sweep_segments(), 1);
        check_segmented_equals_unfused(&c, 3, 832);
    }

    #[test]
    fn whole_state_block_compiles_everything_blocked() {
        // bb ≥ n: every gate is in-block; one blocked segment.
        let c = qft_circuit(6);
        let seg = segment_circuit(&c, 14, &FusionPolicy::Disabled);
        assert_eq!(seg.block_bits(), 6);
        assert_eq!(seg.blocked_segments(), 1);
        assert_eq!(seg.sweep_segments(), 0);
        check_segmented_equals_unfused(&c, 14, 833);
    }

    #[test]
    fn segmented_traffic_beats_per_gate_on_the_qft() {
        // The whole point: the QFT's controlled phases all become blocked
        // ops, so streamed traffic collapses to ~#segments sweeps.
        let n = 12;
        let c = qft_circuit(n);
        let seg = segment_circuit(&c, 8, &FusionPolicy::greedy());
        let unfused = c.touched_entries(n);
        assert!(
            seg.streamed_entries(n) < unfused / 2,
            "streamed {} vs unfused {}",
            seg.streamed_entries(n),
            unfused
        );
        assert!(seg.incache_entries(n) > 0);
    }

    #[test]
    fn incache_accounting_discounts_masked_ops() {
        // cphase(5, 1) at bb = 3: one local op active on half the blocks.
        let mut c = Circuit::new(6);
        c.cphase(5, 1, 0.3).cphase(4, 0, 0.2);
        let seg = segment_circuit(&c, 3, &FusionPolicy::Disabled);
        assert_eq!(seg.incache_entries(6), (1 << 5) + (1 << 5));
        // Pure scale ops (high-target phases, no low controls) count 0.
        let mut c = Circuit::new(6);
        c.phase(5, 0.3).phase(4, 0.2);
        let seg = segment_circuit(&c, 3, &FusionPolicy::Disabled);
        assert_eq!(seg.incache_entries(6), 0);
        assert_eq!(seg.streamed_entries(6), 1 << 6);
        check_segmented_equals_unfused(&c, 3, 834);
    }

    #[test]
    fn segmented_batch_matches_sequential() {
        let mut c = Circuit::new(5);
        c.h(0).cnot(0, 1).cphase(4, 1, 0.5).rz(4, 0.3).x(4).h(2);
        let seg = segment_circuit(&c, 2, &FusionPolicy::greedy());
        let batch = 3;
        let mut rng = StdRng::seed_from_u64(840);
        let members: Vec<Vec<C64>> = (0..batch).map(|_| random_state(1 << 5, &mut rng)).collect();
        // Interleave batch-major.
        let mut inter = vec![C64::ZERO; (1 << 5) * batch];
        for (j, m) in members.iter().enumerate() {
            for (i, &z) in m.iter().enumerate() {
                inter[i * batch + j] = z;
            }
        }
        seg.apply_batched_with(&mut inter, batch, PAR_THRESHOLD);
        for (j, m) in members.iter().enumerate() {
            let mut expect = m.clone();
            seg.apply_slice(&mut expect);
            for (i, &e) in expect.iter().enumerate() {
                assert!(
                    (inter[i * batch + j] - e).abs() < 1e-12,
                    "member {j} diverges at {i}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "compiled for")]
    fn apply_slice_rejects_wrong_width() {
        let c = qft_circuit(4);
        let seg = segment_circuit(&c, 2, &FusionPolicy::Disabled);
        let mut state = vec![C64::ZERO; 8];
        seg.apply_slice(&mut state);
    }
}

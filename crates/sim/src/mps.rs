//! Bond-dimension-truncated matrix-product-state simulation — the
//! compressed backend that breaks the 2ⁿ wall for low-entanglement
//! circuits.
//!
//! Every dense backend in this workspace pays Θ(2ⁿ) memory and traffic
//! per sweep. An MPS factors the wave function into one rank-3 tensor
//! per qubit, `ψ(q₀…q_{n−1}) = A₀[q₀]·A₁[q₁]···A_{n−1}[q_{n−1}]`, whose
//! inner ("bond") dimensions χ grow only with the entanglement the
//! circuit actually creates. A single-qubit gate is a local contraction
//! (O(χ²)); a two-qubit gate on adjacent sites contracts the two tensors
//! into a 4χ²-entry block, applies the 4×4 gate, and splits it back by
//! SVD (O(χ³)), truncating the bond to `max_bond` and accumulating the
//! discarded weight into an auditable [`MpsState::truncation_error`].
//! Non-adjacent pairs are routed through SWAP chains; gates with two or
//! more controls lower through [`decompose_gate`] first.
//!
//! The state is kept in *mixed-canonical form*: sites left of the
//! orthogonality `center` satisfy the left isometry condition, sites
//! right of it the right one, so the local SVD truncation at the center
//! is the globally optimal rank-χ approximation. Unitary single-qubit
//! gates preserve canonicality and need no center movement; two-site
//! updates move the center with trim-only SVDs (never truncating).
//!
//! `GHZ`, line-QAOA, and banded-QFT circuits hold χ ∈ O(1)…O(poly) and
//! run at n = 40+ in milliseconds where a dense state vector would need
//! 16 TiB. The planner prices this χ-law via [`estimate_mps_cost`] and
//! routes low-entanglement ops here (`Backend::SimulateMps`), falling
//! back to dense when the predicted χ blows past `max_bond`.

use crate::circuit::Circuit;
use crate::decompose::decompose_gate;
use crate::gate::{Gate, GateOp, GateStructure};
use crate::statevector::StateVector;
use qcemu_linalg::{gemm, svd, CMatrix, Svd, C64};
use rand::Rng;

/// Default bond-dimension cap: χ = 64 stores a 40-qubit low-entanglement
/// state in ~5 MB and keeps every ≤12-qubit state *exact* (2^⌊12/2⌋ = 64),
/// which is what lets the hybrid planner route small-n ops here without a
/// correctness risk.
pub const DEFAULT_MAX_BOND: usize = 64;

/// Accumulated truncation error at or below this threshold certifies an
/// *exact* compressed run: forced truncations contribute at least
/// (REL_TRIM·σ_max)² of relative weight each, so anything smaller is
/// numerical-noise trimming. Execution paths that attempt a compressed
/// run audit against this and fall back to dense sweeps when exceeded.
pub const MPS_EXACT_TOL: f64 = 1e-24;

/// Singular values at or below this fraction of σ_max are numerical noise
/// and are trimmed without counting toward the truncation error.
const REL_TRIM: f64 = 1e-14;

/// A wave function in matrix-product form with bond dimensions capped at
/// `max_bond`. Site `i` carries qubit `i` (little-endian, matching
/// [`StateVector`]) as a `(χᵢ × 2 × χᵢ₊₁)` tensor stored row-major with
/// index `(l·2 + q)·χᵢ₊₁ + r`.
#[derive(Clone, Debug)]
pub struct MpsState {
    n: usize,
    sites: Vec<Vec<C64>>,
    /// `n + 1` bond dimensions; `bonds[0] = bonds[n] = 1`.
    bonds: Vec<usize>,
    /// Orthogonality center: sites `< center` are left-canonical, sites
    /// `> center` right-canonical.
    center: usize,
    max_bond: usize,
    trunc_error: f64,
}

impl MpsState {
    /// `|0…0⟩` as a product state (all bonds = 1).
    pub fn zero_state(n: usize, max_bond: usize) -> MpsState {
        MpsState::basis_state(n, 0, max_bond)
    }

    /// Computational basis state `|index⟩` as a product state.
    pub fn basis_state(n: usize, index: usize, max_bond: usize) -> MpsState {
        assert!(n >= 1, "MPS needs at least one site");
        assert!(max_bond >= 1, "max_bond must be at least 1");
        assert!(index < (1usize << n.min(63)), "basis index out of range");
        let sites = (0..n)
            .map(|q| {
                let bit = (index >> q) & 1;
                let mut t = vec![C64::ZERO; 2];
                t[bit] = C64::ONE;
                t
            })
            .collect();
        MpsState {
            n,
            sites,
            bonds: vec![1; n + 1],
            center: 0,
            max_bond,
            trunc_error: 0.0,
        }
    }

    /// Factors a dense state into MPS form by a sweep of SVD splits.
    /// Bonds are capped at `max_bond`; any weight that cap discards is
    /// recorded in [`truncation_error`](Self::truncation_error), so an
    /// exact import reads back as `truncation_error() == 0`.
    pub fn from_statevector(sv: &StateVector, max_bond: usize) -> MpsState {
        let n = sv.n_qubits().max(1);
        let mut mps = MpsState::zero_state(n, max_bond);
        if sv.n_qubits() == 0 {
            return mps;
        }
        let mut trunc = 0.0;
        // `carry` is ψ reshaped as a (χ × 2^{n-site}) matrix whose column
        // index has the current qubit as its least-significant bit.
        let mut carry: Vec<C64> = sv.amplitudes().to_vec();
        let mut chi = 1usize;
        for site in 0..n - 1 {
            let rest = 1usize << (n - site - 1);
            let m = CMatrix::from_fn(chi * 2, rest, |row, col| {
                let (l, p) = (row / 2, row % 2);
                carry[l * (2 * rest) + p + 2 * col]
            });
            let (u, sw, k) = split_truncate(&m, max_bond, &mut trunc);
            mps.sites[site] = u.into_vec(); // (χ·2 × k) row-major == (χ,2,k)
            mps.bonds[site + 1] = k;
            carry = sw.into_vec();
            chi = k;
        }
        let mut last = vec![C64::ZERO; chi * 2];
        for l in 0..chi {
            last[l * 2] = carry[l * 2];
            last[l * 2 + 1] = carry[l * 2 + 1];
        }
        mps.sites[n - 1] = last;
        mps.center = n - 1;
        mps.trunc_error = trunc;
        mps
    }

    /// Number of qubits (sites).
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The configured bond-dimension cap.
    pub fn max_bond(&self) -> usize {
        self.max_bond
    }

    /// Current bond dimensions (`n + 1` entries, outer bonds = 1).
    pub fn bond_dims(&self) -> &[usize] {
        &self.bonds
    }

    /// Largest current bond dimension.
    pub fn peak_bond(&self) -> usize {
        self.bonds.iter().copied().max().unwrap_or(1)
    }

    /// Accumulated *relative* weight discarded by bond-cap truncations
    /// (Σ of discarded-σ² / total-σ² over every truncating split). Zero
    /// means the run was exact up to floating-point rounding; the planner
    /// uses this to audit compressed execution and trigger dense
    /// fallback.
    pub fn truncation_error(&self) -> f64 {
        self.trunc_error
    }

    /// `‖ψ‖²` by environment contraction (no densification).
    pub fn norm_sqr(&self) -> f64 {
        let mut env = vec![C64::ONE]; // 1×1
        let mut chi = 1usize;
        for i in 0..self.n {
            let dr = self.bonds[i + 1];
            env = advance_left_env(&env, chi, &self.sites[i], dr);
            chi = dr;
        }
        env[0].re.max(0.0)
    }

    /// Applies one gate, lowering multi-controlled forms as needed.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } if controls.is_empty() => self.apply_one_site(*target, op),
            Gate::Unary {
                op,
                target,
                controls,
            } if controls.len() == 1 => {
                let (c, t) = (controls[0], *target);
                let g = op.matrix();
                let (a, b) = (c.min(t), c.max(t));
                // Build the 4×4 in the (low site, high site) basis
                // b₂ = p + 2q: controlled-G with the control on either leg.
                let u4 = controlled_two_site(&g, c > t);
                self.apply_two_qubit(a, b, &u4);
            }
            Gate::Swap { a, b, controls } if controls.is_empty() => {
                self.apply_two_qubit((*a).min(*b), (*a).max(*b), &swap4());
            }
            other => {
                for g in decompose_gate(other) {
                    self.apply_gate(&g);
                }
            }
        }
    }

    /// Runs a whole circuit.
    pub fn run(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.n_qubits(),
            self.n,
            "circuit width does not match MPS"
        );
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Densifies to a full state vector (guarded: 2ⁿ amplitudes).
    pub fn to_statevector(&self) -> StateVector {
        assert!(
            self.n <= 30,
            "to_statevector would allocate 2^{} amps",
            self.n
        );
        // partial[idx · χ + r] = Σ over qubits 0..site of the open-bond
        // partial contraction; idx holds the already-contracted bits.
        let mut chi = self.bonds[1];
        let mut partial = self.sites[0].clone(); // (2 × χ₁)
        for site in 1..self.n {
            let dr = self.bonds[site + 1];
            let a = &self.sites[site];
            let half = 1usize << site;
            let mut next = vec![C64::ZERO; half * 2 * dr];
            for idx in 0..half {
                for (l, &pl) in partial[idx * chi..(idx + 1) * chi].iter().enumerate() {
                    if pl == C64::ZERO {
                        continue;
                    }
                    for q in 0..2 {
                        let dst = (idx | (q << site)) * dr;
                        let src = (l * 2 + q) * dr;
                        for r in 0..dr {
                            next[dst + r] += pl * a[src + r];
                        }
                    }
                }
            }
            partial = next;
            chi = dr;
        }
        StateVector::from_amplitudes(partial)
    }

    /// Draws `shots` basis-state samples **without densifying**, by
    /// conditional bit descent from the most significant qubit: one
    /// uniform draw per shot (mirroring [`crate::measure::sample_shots`]'s
    /// draw pattern), then n conditional-marginal contractions of O(χ²).
    pub fn sample_shots(&self, shots: usize, rng: &mut impl Rng) -> Vec<usize> {
        // Left environments L_i[l,l'] = Σ_{prefix} u_l ū_{l'} for prefixes
        // over qubits < i; O(n·χ³) once, reused by every shot.
        let mut envs: Vec<Vec<C64>> = Vec::with_capacity(self.n + 1);
        envs.push(vec![C64::ONE]);
        for i in 0..self.n {
            let e = advance_left_env(&envs[i], self.bonds[i], &self.sites[i], self.bonds[i + 1]);
            envs.push(e);
        }
        let total = envs[self.n][0].re.max(0.0);
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * total;
                self.descend(r, &envs)
            })
            .collect()
    }

    /// One conditional-descent sample: walk qubits n−1 → 0, at each site
    /// comparing the draw against the cumulative mass of the `bit = 0`
    /// branch — the hierarchical equivalent of the dense CDF scan.
    fn descend(&self, r: f64, envs: &[Vec<C64>]) -> usize {
        let mut idx = 0usize;
        let mut base = 0.0;
        let mut w = vec![C64::ONE]; // suffix vector, starts 1×1
        for i in (0..self.n).rev() {
            let (dl, dr) = (self.bonds[i], self.bonds[i + 1]);
            let a = &self.sites[i];
            let mut v = [vec![C64::ZERO; dl], vec![C64::ZERO; dl]];
            let mut mass = [0.0f64; 2];
            for b in 0..2 {
                for l in 0..dl {
                    let mut acc = C64::ZERO;
                    for (m, &wm) in w.iter().enumerate().take(dr) {
                        acc += a[(l * 2 + b) * dr + m] * wm;
                    }
                    v[b][l] = acc;
                }
                // mass = Σ_{l,l'} L[l,l'] v_l v̄_{l'}  (real, ≥ 0 up to FP)
                let env = &envs[i];
                let mut p = C64::ZERO;
                for l in 0..dl {
                    for lp in 0..dl {
                        p += env[l * dl + lp] * v[b][l] * v[b][lp].conj();
                    }
                }
                mass[b] = p.re.max(0.0);
            }
            let bit = if mass[0] > 0.0 && r < base + mass[0] {
                0
            } else if mass[1] > 0.0 {
                1
            } else {
                usize::from(mass[0] <= 0.0)
            };
            if bit == 1 {
                base += mass[0];
                idx |= 1 << i;
            }
            w = std::mem::take(&mut v[bit]);
        }
        idx
    }

    // ---- gate application internals ----

    /// Single-site gate: local contraction, O(χ²); diagonal and X fast
    /// paths avoid the 2×2 mix entirely. Unitarity preserves the
    /// canonical structure, so no center movement is needed.
    fn apply_one_site(&mut self, t: usize, op: &GateOp) {
        assert!(t < self.n, "target {t} out of range");
        let dr = self.bonds[t + 1];
        let site = &mut self.sites[t];
        match op.structure() {
            GateStructure::Diagonal(d0, d1) => {
                for l in 0..self.bonds[t] {
                    for r in 0..dr {
                        site[(l * 2) * dr + r] = site[(l * 2) * dr + r] * d0;
                        site[(l * 2 + 1) * dr + r] = site[(l * 2 + 1) * dr + r] * d1;
                    }
                }
            }
            GateStructure::PermutationX => {
                for l in 0..self.bonds[t] {
                    for r in 0..dr {
                        site.swap((l * 2) * dr + r, (l * 2 + 1) * dr + r);
                    }
                }
            }
            GateStructure::General(m) => {
                for l in 0..self.bonds[t] {
                    for r in 0..dr {
                        let v0 = site[(l * 2) * dr + r];
                        let v1 = site[(l * 2 + 1) * dr + r];
                        site[(l * 2) * dr + r] = m[0][0] * v0 + m[0][1] * v1;
                        site[(l * 2 + 1) * dr + r] = m[1][0] * v0 + m[1][1] * v1;
                    }
                }
            }
        }
    }

    /// Two-qubit gate on arbitrary `a < b`: route `b` next to `a` with a
    /// SWAP chain, apply the 4×4 on the adjacent pair, route back.
    fn apply_two_qubit(&mut self, a: usize, b: usize, u4: &[[C64; 4]; 4]) {
        assert!(a < b && b < self.n, "bad qubit pair ({a}, {b})");
        for j in ((a + 1)..b).rev() {
            self.apply_two_site(j, &swap4());
        }
        self.apply_two_site(a, u4);
        for j in (a + 1)..b {
            self.apply_two_site(j, &swap4());
        }
    }

    /// Adjacent two-site gate on (i, i+1): contract θ, apply the 4×4,
    /// split by SVD, truncate the new bond to `max_bond`.
    fn apply_two_site(&mut self, i: usize, u4: &[[C64; 4]; 4]) {
        self.move_center_into(i);
        let (dl, dm, dr) = (self.bonds[i], self.bonds[i + 1], self.bonds[i + 2]);
        let (ai, aj) = (&self.sites[i], &self.sites[i + 1]);
        // θ[l, b₂, r] with b₂ = p + 2q (p on site i), then the gate.
        let mut theta = vec![C64::ZERO; dl * 4 * dr];
        for l in 0..dl {
            for p in 0..2 {
                for m in 0..dm {
                    let x = ai[(l * 2 + p) * dm + m];
                    if x == C64::ZERO {
                        continue;
                    }
                    for q in 0..2 {
                        let dst = (l * 4 + p + 2 * q) * dr;
                        let src = (m * 2 + q) * dr;
                        for r in 0..dr {
                            theta[dst + r] += x * aj[src + r];
                        }
                    }
                }
            }
        }
        let mut rotated = vec![C64::ZERO; dl * 4 * dr];
        for l in 0..dl {
            for bp in 0..4 {
                let dst = (l * 4 + bp) * dr;
                for b in 0..4 {
                    let g = u4[bp][b];
                    if g == C64::ZERO {
                        continue;
                    }
                    let src = (l * 4 + b) * dr;
                    for r in 0..dr {
                        rotated[dst + r] += g * theta[src + r];
                    }
                }
            }
        }
        // Reshape to (2χ_l × 2χ_r) and split.
        let m = CMatrix::from_fn(dl * 2, 2 * dr, |row, col| {
            let (l, p) = (row / 2, row % 2);
            let (q, r) = (col / dr, col % dr);
            rotated[(l * 4 + p + 2 * q) * dr + r]
        });
        let (u, sw, k) = split_truncate(&m, self.max_bond, &mut self.trunc_error);
        self.sites[i] = u.into_vec();
        let swv = sw.into_vec(); // (k × 2χ_r): columns are (q, r)
        let mut right = vec![C64::ZERO; k * 2 * dr];
        for (kk, row) in swv.chunks_exact(2 * dr).enumerate() {
            for q in 0..2 {
                right[(kk * 2 + q) * dr..(kk * 2 + q + 1) * dr]
                    .copy_from_slice(&row[q * dr..(q + 1) * dr]);
            }
        }
        self.sites[i + 1] = right;
        self.bonds[i + 1] = k;
        self.center = i + 1;
    }

    /// Moves the orthogonality center into `{i, i+1}`.
    fn move_center_into(&mut self, i: usize) {
        while self.center < i {
            self.move_center_right();
        }
        while self.center > i + 1 {
            self.move_center_left();
        }
    }

    /// Center i → i+1: split site i as a (2χ_l × χ_r) matrix, keep the
    /// isometry, absorb S·Vᴴ into the right neighbour. Trim-only (no cap).
    fn move_center_right(&mut self) {
        let i = self.center;
        let (dl, dr) = (self.bonds[i], self.bonds[i + 1]);
        let m = CMatrix::from_fn(dl * 2, dr, |row, col| self.sites[i][row * dr + col]);
        let mut sink = 0.0;
        let (u, sw, k) = split_truncate(&m, usize::MAX, &mut sink);
        self.sites[i] = u.into_vec();
        let carry = sw; // (k × χ_r)
        let dr2 = self.bonds[i + 2];
        let old = &self.sites[i + 1];
        let mut next = vec![C64::ZERO; k * 2 * dr2];
        for kk in 0..k {
            for (mm, &c) in carry.row(kk).iter().enumerate() {
                if c == C64::ZERO {
                    continue;
                }
                for q in 0..2 {
                    let dst = (kk * 2 + q) * dr2;
                    let src = (mm * 2 + q) * dr2;
                    for r in 0..dr2 {
                        next[dst + r] += c * old[src + r];
                    }
                }
            }
        }
        self.sites[i + 1] = next;
        self.bonds[i + 1] = k;
        self.center = i + 1;
    }

    /// Center i → i−1, mirror of [`move_center_right`](Self::move_center_right).
    fn move_center_left(&mut self) {
        let i = self.center;
        let (dl, dr) = (self.bonds[i], self.bonds[i + 1]);
        let m = CMatrix::from_fn(dl, 2 * dr, |row, col| {
            let (p, r) = (col / dr, col % dr);
            self.sites[i][(row * 2 + p) * dr + r]
        });
        let mut sink = 0.0;
        // Adjoint split: keep the right isometry (Vᴴ), absorb U·S left.
        let f = fast_svd(&m);
        let k = kept_rank(&f.s, usize::MAX, &mut sink);
        let mut site = vec![C64::ZERO; k * 2 * dr];
        for kk in 0..k {
            for col in 0..2 * dr {
                let (p, r) = (col / dr, col % dr);
                site[(kk * 2 + p) * dr + r] = f.vt[(kk, col)];
            }
        }
        self.sites[i] = site;
        let dl0 = self.bonds[i - 1];
        let old = &self.sites[i - 1];
        let mut prev = vec![C64::ZERO; dl0 * 2 * k];
        for l in 0..dl0 {
            for p in 0..2 {
                let src = (l * 2 + p) * dl;
                let dst = (l * 2 + p) * k;
                for kk in 0..k {
                    let mut acc = C64::ZERO;
                    for mm in 0..dl {
                        acc += old[src + mm] * f.u[(mm, kk)].scale(f.s[kk]);
                    }
                    prev[dst + kk] = acc;
                }
            }
        }
        self.sites[i - 1] = prev;
        self.bonds[i] = k;
        self.center = i - 1;
    }
}

/// Advances a left environment across one site:
/// `L'[r,r'] = Σ_{q,l,l'} L[l,l'] A[l,q,r] Ā[l',q,r']`.
fn advance_left_env(env: &[C64], dl: usize, site: &[C64], dr: usize) -> Vec<C64> {
    // Two-step contraction, O(χ³): B[l', q, r] = Σ_l L[l,l'] ... done as
    // B[(l'·2+q)·dr + r] = Σ_l env[l·dl + l'] · A[(l·2+q)·dr + r].
    let mut b = vec![C64::ZERO; dl * 2 * dr];
    for l in 0..dl {
        for lp in 0..dl {
            let e = env[l * dl + lp];
            if e == C64::ZERO {
                continue;
            }
            for q in 0..2 {
                let src = (l * 2 + q) * dr;
                let dst = (lp * 2 + q) * dr;
                for r in 0..dr {
                    b[dst + r] += e * site[src + r];
                }
            }
        }
    }
    let mut out = vec![C64::ZERO; dr * dr];
    for lp in 0..dl {
        for q in 0..2 {
            let row = &b[(lp * 2 + q) * dr..(lp * 2 + q + 1) * dr];
            let arow = &site[(lp * 2 + q) * dr..(lp * 2 + q + 1) * dr];
            for (r, &br) in row.iter().enumerate() {
                if br == C64::ZERO {
                    continue;
                }
                for (rp, &ar) in arow.iter().enumerate() {
                    out[r * dr + rp] += br * ar.conj();
                }
            }
        }
    }
    out
}

/// The SWAP gate as a 4×4 in the `b₂ = p + 2q` two-site basis.
fn swap4() -> [[C64; 4]; 4] {
    let mut u = [[C64::ZERO; 4]; 4];
    u[0][0] = C64::ONE;
    u[1][2] = C64::ONE;
    u[2][1] = C64::ONE;
    u[3][3] = C64::ONE;
    u
}

/// Controlled-G as a 4×4 two-site matrix. `control_high` says whether the
/// control sits on the high site (bit q) or the low site (bit p).
fn controlled_two_site(g: &crate::gate::Mat2, control_high: bool) -> [[C64; 4]; 4] {
    let mut u = [[C64::ZERO; 4]; 4];
    for p in 0..2 {
        for q in 0..2 {
            let b = p + 2 * q;
            let (ctrl, tgt) = if control_high { (q, p) } else { (p, q) };
            if ctrl == 0 {
                u[b][b] = C64::ONE;
            } else {
                for tp in 0..2 {
                    let bp = if control_high { tp + 2 * q } else { p + 2 * tp };
                    u[bp][b] = g[tp][tgt];
                }
            }
        }
    }
    u
}

/// Rank kept after trimming numerical noise and applying the bond cap;
/// the cap's *forced* discarded weight (relative to total) accumulates
/// into `trunc_error`.
fn kept_rank(s: &[f64], max_bond: usize, trunc_error: &mut f64) -> usize {
    let smax = s.first().copied().unwrap_or(0.0);
    let k0 = s
        .iter()
        .take_while(|&&v| v > smax * REL_TRIM && v > 0.0)
        .count()
        .max(1);
    let k = k0.min(max_bond);
    if k < k0 {
        let total2: f64 = s.iter().map(|v| v * v).sum();
        let forced2: f64 = s[k..k0].iter().map(|v| v * v).sum();
        if total2 > 0.0 {
            *trunc_error += forced2 / total2;
        }
    }
    k
}

/// SVD-splits `m` into an isometry `U` (m.nrows × k) and the weighted
/// remainder `S·Vᴴ` (k × m.ncols), truncating to `max_bond` and keeping
/// the norm by rescaling the retained weights after a forced truncation.
fn split_truncate(
    m: &CMatrix,
    max_bond: usize,
    trunc_error: &mut f64,
) -> (CMatrix, CMatrix, usize) {
    let f = fast_svd(m);
    let before = *trunc_error;
    let k = kept_rank(&f.s, max_bond, trunc_error);
    let forced = *trunc_error > before;
    let scale = if forced {
        let total2: f64 = f.s.iter().map(|v| v * v).sum();
        let kept2: f64 = f.s[..k].iter().map(|v| v * v).sum();
        if kept2 > 0.0 {
            (total2 / kept2).sqrt()
        } else {
            1.0
        }
    } else {
        1.0
    };
    let u = CMatrix::from_fn(m.nrows(), k, |r, c| f.u[(r, c)]);
    let sw = CMatrix::from_fn(k, m.ncols(), |r, c| f.vt[(r, c)].scale(f.s[r] * scale));
    (u, sw, k)
}

/// SVD with a Gram-matrix fast path for very wide inputs (the
/// `from_statevector` reshapes): `G = M·Mᴴ` is tiny, its eigenbasis gives
/// `U`, and `S·Vᴴ = Uᴴ·M` exactly — one O(r²·c) pass instead of many
/// Jacobi sweeps. Singular *values* from √λ lose half the digits near the
/// noise floor, but they only steer trim decisions; the factors used to
/// rebuild the state (`U`, `Uᴴ·M`) are exact projections.
fn fast_svd(m: &CMatrix) -> Svd {
    let (r, c) = (m.nrows(), m.ncols());
    if c > 2 * r && c > 64 {
        let g = gemm(m, &m.adjoint());
        let eg = svd(&g);
        let s: Vec<f64> = eg.s.iter().map(|l| l.max(0.0).sqrt()).collect();
        let vt = gemm(&eg.u.adjoint(), m); // rows have norm σᵢ (unnormalised)
        let smax = s.first().copied().unwrap_or(0.0);
        let vt = CMatrix::from_fn(r, c, |i, j| {
            if s[i] > smax * REL_TRIM {
                vt[(i, j)].scale(1.0 / s[i])
            } else {
                C64::ZERO
            }
        });
        Svd { u: eg.u, s, vt }
    } else {
        svd(m)
    }
}

// ---- planner-facing χ-law cost estimate ----

/// Bond-growth policy for the compressed backend, carried on
/// [`SimConfig`](crate::SimConfig).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpsPolicy {
    /// Never consider MPS execution.
    Disabled,
    /// Offer MPS to the hybrid planner as a per-op candidate, priced by
    /// [`estimate_mps_cost`] and only chosen when the predicted χ stays
    /// within `max_bond` (the default, with [`DEFAULT_MAX_BOND`]).
    Auto {
        /// Bond-dimension cap for compressed execution.
        max_bond: usize,
    },
    /// Force gate-level simulation steps onto the MPS backend.
    Forced {
        /// Bond-dimension cap for compressed execution.
        max_bond: usize,
    },
}

impl Default for MpsPolicy {
    fn default() -> MpsPolicy {
        MpsPolicy::Auto {
            max_bond: DEFAULT_MAX_BOND,
        }
    }
}

impl MpsPolicy {
    /// The bond cap, if MPS execution is allowed at all.
    pub fn max_bond(&self) -> Option<usize> {
        match self {
            MpsPolicy::Disabled => None,
            MpsPolicy::Auto { max_bond } | MpsPolicy::Forced { max_bond } => Some(*max_bond),
        }
    }
}

/// Structural entanglement-growth estimate for running `circuit` from a
/// product state under bond cap `max_bond`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpsCostEstimate {
    /// χ-law work units (≈ flops): Σ over two-site applies of
    /// `(2χ_l)(2χ_r)·min(2χ_l, 2χ_r)` + contraction terms, plus O(χ²)
    /// per single-site gate. Divide by `CostModel::mps_rate` for seconds.
    pub units: f64,
    /// Peak bond dimension reached (after capping).
    pub chi_peak: usize,
    /// `false` when some update would have exceeded `max_bond`, i.e. the
    /// run would truncate and results are no longer exact.
    pub exact: bool,
    /// Number of two-site applications, SWAP routing included.
    pub two_site_applies: usize,
}

/// Walks the circuit tracking a per-bond χ upper bound: each two-site
/// gate multiplies the crossed bond by its operator Schmidt rank, clamped
/// by the neighbouring bonds, the 2^k physical cap, and `max_bond`.
/// Assumes a product-state input (the interpreter's densify boundary
/// re-establishes this; an entangled import is caught at run time by the
/// truncation-error audit instead).
pub fn estimate_mps_cost(circuit: &Circuit, max_bond: usize) -> MpsCostEstimate {
    let n = circuit.n_qubits();
    let mut bonds = vec![1usize; n + 1];
    let mut est = MpsCostEstimate {
        units: 0.0,
        chi_peak: 1,
        exact: true,
        two_site_applies: 0,
    };
    if n == 0 {
        return est;
    }
    let phys_cap = |j: usize| -> usize {
        let e = j.min(n - j).min(60);
        1usize << e
    };
    // SVD + contraction work for one two-site apply at sites (i, i+1).
    let unit_cost = |bonds: &[usize], i: usize| -> f64 {
        let (cl, cm, cr) = (bonds[i], bonds[i + 1], bonds[i + 2]);
        let (a, b) = (2 * cl, 2 * cr);
        (a * b * a.min(b)) as f64 + (4 * cl * cm * cr) as f64
    };
    // A (possibly long-range) two-qubit gate of operator Schmidt rank
    // `rank` on qubits (a, b). The SWAP round-trip is unitary, so the
    // *net* bond growth is bounded per crossed cut by `rank` — much
    // tighter than compounding the rank-4 bound of each literal SWAP,
    // which would predict exponential blow-up the execution never pays.
    let apply =
        |bonds: &mut Vec<usize>, est: &mut MpsCostEstimate, a: usize, b: usize, rank: usize| {
            let (a, b) = (a.min(b), a.max(b));
            for j in (a + 1)..=b {
                let grown = (rank * bonds[j])
                    .min(2 * bonds[j - 1])
                    .min(2 * bonds[j + 1])
                    .min(phys_cap(j));
                if grown > max_bond {
                    est.exact = false;
                }
                bonds[j] = grown.min(max_bond);
                est.chi_peak = est.chi_peak.max(bonds[j]);
            }
            // Work: the routing SWAPs (twice per intermediate cut) plus the
            // adjacent apply, all charged at post-growth χ.
            for j in (a + 1)..b {
                est.units += 2.0 * unit_cost(bonds, j);
                est.two_site_applies += 2;
            }
            est.units += unit_cost(bonds, a);
            est.two_site_applies += 1;
        };
    let mut walk = |gates: &[Gate]| {
        for g in gates {
            match g {
                Gate::Unary {
                    op,
                    target,
                    controls,
                } if controls.is_empty() => {
                    est.units += match op.structure() {
                        GateStructure::General(_) => 8.0,
                        _ => 2.0,
                    } * (bonds[*target] * bonds[*target + 1]) as f64;
                }
                Gate::Unary {
                    target, controls, ..
                } if controls.len() == 1 => {
                    // Controlled-G = |0⟩⟨0|⊗I + |1⟩⟨1|⊗G: operator Schmidt rank 2.
                    apply(&mut bonds, &mut est, controls[0], *target, 2);
                }
                Gate::Swap { a, b, controls } if controls.is_empty() => {
                    apply(&mut bonds, &mut est, *a, *b, 4);
                }
                other => {
                    for g in decompose_gate(other) {
                        match &g {
                            Gate::Unary {
                                op,
                                target,
                                controls,
                            } if controls.is_empty() => {
                                est.units += match op.structure() {
                                    GateStructure::General(_) => 8.0,
                                    _ => 2.0,
                                } * (bonds[*target] * bonds[*target + 1]) as f64;
                            }
                            Gate::Unary {
                                target, controls, ..
                            } if controls.len() == 1 => {
                                apply(&mut bonds, &mut est, controls[0], *target, 2);
                            }
                            Gate::Swap { a, b, .. } => {
                                apply(&mut bonds, &mut est, *a, *b, 4);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    };
    walk(circuit.gates());
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::{entangle_circuit, qft_circuit};
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diff(mps: &MpsState, sv: &StateVector) -> f64 {
        mps.to_statevector().max_diff_up_to_phase(sv)
    }

    #[test]
    fn ghz_matches_dense() {
        for n in [2, 3, 6, 10] {
            let c = entangle_circuit(n);
            let mut mps = MpsState::zero_state(n, 16);
            mps.run(&c);
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&c);
            assert!(diff(&mps, &sv) < 1e-12, "n = {n}");
            assert_eq!(mps.truncation_error(), 0.0);
            assert!(
                mps.peak_bond() <= 2,
                "GHZ needs χ = 2, got {:?}",
                mps.bond_dims()
            );
        }
    }

    #[test]
    fn qft_matches_dense_with_ample_bond() {
        for n in [2, 3, 5, 8] {
            let c = qft_circuit(n);
            let mut mps = MpsState::zero_state(n, 1 << n);
            mps.run(&c);
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&c);
            assert!(diff(&mps, &sv) < 1e-10, "n = {n}: {}", diff(&mps, &sv));
            assert_eq!(mps.truncation_error(), 0.0);
        }
    }

    #[test]
    fn non_adjacent_and_multi_control_gates_match_dense() {
        let n = 6;
        let mut c = Circuit::new(n);
        c.push(Gate::h(0));
        c.push(Gate::h(3));
        c.push(Gate::cnot(0, 5));
        c.push(Gate::cphase(4, 1, 0.7));
        c.push(Gate::swap(0, 4));
        c.push(Gate::toffoli(0, 3, 5));
        c.push(Gate::mcx(vec![1, 2, 4], 0));
        c.push(Gate::ry(2, 1.1));
        let mut mps = MpsState::zero_state(n, 64);
        mps.run(&c);
        let mut sv = StateVector::zero_state(n);
        sv.apply_circuit(&c);
        assert!(diff(&mps, &sv) < 1e-10, "{}", diff(&mps, &sv));
        assert_eq!(mps.truncation_error(), 0.0);
    }

    #[test]
    fn statevector_round_trip() {
        let mut rng = StdRng::seed_from_u64(0x315);
        for n in [1, 2, 4, 7] {
            let amps = qcemu_linalg::random_state(1 << n, &mut rng);
            let sv = StateVector::from_amplitudes(amps);
            let mps = MpsState::from_statevector(&sv, 1 << n);
            assert_eq!(mps.truncation_error(), 0.0, "ample bond must be exact");
            let d = qcemu_linalg::max_abs_diff(mps.to_statevector().amplitudes(), sv.amplitudes());
            assert!(d < 1e-12, "n = {n}: {d}");
            assert!((mps.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_is_recorded_and_norm_kept() {
        // A deep random-ish entangler at χ = 2 must truncate.
        let n = 8;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.push(Gate::h(q));
        }
        for layer in 0..4 {
            for q in 0..n - 1 {
                c.push(Gate::cphase(q, q + 1, 0.3 + 0.1 * layer as f64));
                c.push(Gate::ry(q, 0.4 + 0.2 * q as f64));
            }
        }
        let mut mps = MpsState::zero_state(n, 2);
        mps.run(&c);
        assert!(mps.truncation_error() > 0.0);
        assert!(
            (mps.norm_sqr() - 1.0).abs() < 1e-9,
            "renormalised after truncation"
        );
        assert!(mps.peak_bond() <= 2);
    }

    #[test]
    fn sampling_matches_densified_reference() {
        let n = 5;
        let c = qft_circuit(n);
        let mut mps = MpsState::zero_state(n, 64);
        mps.run(&c);
        let dense = mps.to_statevector();
        let a = mps.sample_shots(200, &mut StdRng::seed_from_u64(99));
        let b = crate::measure::sample_shots(&dense, 200, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_tracks_ghz_chain_and_qft() {
        // Chain-structured GHZ: H(0) then nearest-neighbour CNOTs — the
        // structural bound matches the true χ = 2 exactly. (The *star*
        // `entangle_circuit` re-crosses cut 1 with every CNOT, which a
        // structural estimate must conservatively over-bound.)
        let n = 12;
        let mut chain = Circuit::new(n);
        chain.push(Gate::h(0));
        for q in 0..n - 1 {
            chain.push(Gate::cnot(q, q + 1));
        }
        let ghz = estimate_mps_cost(&chain, 64);
        assert!(ghz.exact);
        assert!(
            ghz.chi_peak <= 2,
            "chain GHZ χ bound is 2, got {}",
            ghz.chi_peak
        );
        let qft = estimate_mps_cost(&qft_circuit(20), 8);
        assert!(!qft.exact, "QFT(20) must blow past χ = 8");
        assert_eq!(qft.chi_peak, 8);
        assert!(qft.units > ghz.units);
    }

    #[test]
    fn basis_state_setup() {
        let mps = MpsState::basis_state(4, 0b1010, 4);
        let sv = mps.to_statevector();
        for (i, a) in sv.amplitudes().iter().enumerate() {
            let want = if i == 0b1010 { 1.0 } else { 0.0 };
            assert!((a.abs() - want).abs() < 1e-15);
        }
    }
}

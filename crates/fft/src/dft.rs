//! Reference O(N²) discrete Fourier transform used to validate the FFTs.

use crate::plan::{Direction, Normalization};
use qcemu_linalg::C64;

/// Direct evaluation of `X_k = scale · Σ_j x_j e^{∓2πi jk/N}`.
pub fn dft_reference(input: &[C64], dir: Direction, norm: Normalization) -> Vec<C64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let scale = norm.factor(n);
    let base = sign * std::f64::consts::TAU / n as f64;
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = C64::ZERO;
        for (j, x) in input.iter().enumerate() {
            // Reduce j*k mod n before the trig call to keep the angle small.
            let idx = (j * k) % n;
            acc += *x * C64::cis(base * idx as f64);
        }
        out.push(acc.scale(scale));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_linalg::{c64, max_abs_diff};

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![C64::ZERO; 4];
        x[0] = C64::ONE;
        let y = dft_reference(&x, Direction::Forward, Normalization::None);
        for z in y {
            assert!(z.approx_eq(C64::ONE, 1e-12));
        }
    }

    #[test]
    fn dft_size_two_hand_check() {
        let x = vec![c64(1.0, 0.0), c64(2.0, 0.0)];
        let y = dft_reference(&x, Direction::Forward, Normalization::None);
        assert!(y[0].approx_eq(c64(3.0, 0.0), 1e-12));
        assert!(y[1].approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn forward_then_inverse_identity() {
        let x = vec![
            c64(1.0, 2.0),
            c64(-0.5, 0.25),
            c64(0.0, -1.0),
            c64(3.0, 0.0),
        ];
        let y = dft_reference(&x, Direction::Forward, Normalization::None);
        let z = dft_reference(&y, Direction::Inverse, Normalization::Full);
        assert!(max_abs_diff(&x, &z) < 1e-12);
    }

    #[test]
    fn works_on_non_power_of_two() {
        // The reference DFT supports any length (unlike the radix-2 FFT),
        // which is handy for spot checks.
        let x = vec![C64::ONE; 6];
        let y = dft_reference(&x, Direction::Forward, Normalization::None);
        assert!(y[0].approx_eq(c64(6.0, 0.0), 1e-12));
        for z in &y[1..] {
            assert!(z.abs() < 1e-12);
        }
    }
}

//! Bailey four-step FFT (the distributed-FFT algorithm skeleton).
//!
//! The paper's Eq. (5) models the distributed 1-D FFT as local work plus
//! **three all-to-all transpositions** — this is exactly the four-step
//! decomposition [Bailey 1990]: view the length-N input as an N1×N2 matrix,
//! then
//!
//! 1. transpose,
//! 2. N2 independent FFTs of length N1 (now rows),
//! 3. twiddle by `e^{∓2πi j2·k1/N}` and transpose back,
//! 4. N1 independent FFTs of length N2, and a final transpose.
//!
//! On a cluster each transpose is an all-to-all; here the same code runs
//! with rayon over rows, and `qcemu-cluster` re-uses the identical step
//! structure with real message passing.

use crate::plan::{Direction, FftPlan, Normalization};
use crate::radix2::fft_inplace;
use qcemu_linalg::C64;
use rayon::prelude::*;

/// Out-of-place matrix transpose of a row-major `rows × cols` buffer.
pub fn transpose(input: &[C64], rows: usize, cols: usize) -> Vec<C64> {
    assert_eq!(input.len(), rows * cols, "transpose: bad dimensions");
    let mut out = vec![C64::ZERO; input.len()];
    const B: usize = 64;
    // Blocked to keep both streams cache-resident; serial is fine — the
    // cluster crate replaces this with an all-to-all anyway.
    for rb in (0..rows).step_by(B) {
        for cb in (0..cols).step_by(B) {
            for r in rb..(rb + B).min(rows) {
                for c in cb..(cb + B).min(cols) {
                    out[c * rows + r] = input[r * cols + c];
                }
            }
        }
    }
    out
}

/// Four-step FFT of `data` (length `n1 * n2`, both powers of two).
///
/// Produces bit-exact-compatible output with [`fft_inplace`] up to floating
/// point rounding: the result is the DFT of the input in natural order.
pub fn fft_four_step(
    data: &mut Vec<C64>,
    n1: usize,
    n2: usize,
    dir: Direction,
    norm: Normalization,
) {
    let n = n1 * n2;
    assert_eq!(data.len(), n, "fft_four_step: data length mismatch");
    assert!(n1.is_power_of_two() && n2.is_power_of_two());
    if n <= 1 {
        return;
    }

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let plan1 = FftPlan::new(n1);
    let plan2 = FftPlan::new(n2);

    // Step 0 (transpose #1): columns of the N1×N2 view become rows.
    let mut t = transpose(data, n1, n2); // now N2 rows of length N1

    // Step 1: N2 FFTs of length N1 (over the original j1 index).
    t.par_chunks_mut(n1)
        .for_each(|row| fft_inplace(&plan1, row, dir, Normalization::None));

    // Step 2: twiddle t[j2][k1] *= e^{sign·2πi·j2·k1/N}.
    let base = sign * std::f64::consts::TAU / n as f64;
    t.par_chunks_mut(n1).enumerate().for_each(|(j2, row)| {
        for (k1, z) in row.iter_mut().enumerate() {
            *z *= C64::cis(base * (j2 * k1) as f64);
        }
    });

    // Step 3 (transpose #2): back to N1 rows of length N2.
    let mut u = transpose(&t, n2, n1);

    // Step 4: N1 FFTs of length N2 (over the original j2 index).
    u.par_chunks_mut(n2)
        .for_each(|row| fft_inplace(&plan2, row, dir, Normalization::None));

    // Step 5 (transpose #3): element [k1][k2] holds X[k2·N1 + k1]; transposing
    // to an N2×N1 layout puts X in natural order when flattened.
    let mut out = transpose(&u, n1, n2);

    let factor = norm.factor(n);
    if factor != 1.0 {
        out.par_iter_mut().for_each(|z| *z *= factor);
    }
    *data = out;
}

/// Splits `n = 2^k` into the most square `(n1, n2)` pair, matching how the
/// distributed FFT splits across `P` nodes × local size.
pub fn square_split(n: usize) -> (usize, usize) {
    assert!(n.is_power_of_two());
    let k = n.trailing_zeros();
    let k1 = k / 2;
    (1usize << k1, 1usize << (k - k1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::fft;
    use qcemu_linalg::{max_abs_diff, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transpose_roundtrip() {
        let mut rng = StdRng::seed_from_u64(60);
        let v = random_state(6 * 10, &mut rng);
        let t = transpose(&v, 6, 10);
        let tt = transpose(&t, 10, 6);
        assert!(max_abs_diff(&v, &tt) < 1e-15);
    }

    #[test]
    fn transpose_indexing() {
        // 2x3 matrix [[0,1,2],[3,4,5]] → 3x2 [[0,3],[1,4],[2,5]]
        let v: Vec<C64> = (0..6).map(|k| qcemu_linalg::c64(k as f64, 0.0)).collect();
        let t = transpose(&v, 2, 3);
        let expect: Vec<f64> = vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0];
        for (z, e) in t.iter().zip(expect.iter()) {
            assert_eq!(z.re, *e);
        }
    }

    #[test]
    fn four_step_matches_radix2_square_split() {
        let mut rng = StdRng::seed_from_u64(61);
        for log2n in [2usize, 4, 6, 8, 10] {
            let n = 1 << log2n;
            let (n1, n2) = square_split(n);
            let input = random_state(n, &mut rng);
            let mut four = input.clone();
            fft_four_step(&mut four, n1, n2, Direction::Forward, Normalization::None);
            let mut two = input.clone();
            fft(&mut two, Direction::Forward, Normalization::None);
            assert!(
                max_abs_diff(&four, &two) < 1e-9 * n as f64,
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn four_step_matches_radix2_skewed_splits() {
        let mut rng = StdRng::seed_from_u64(62);
        let n = 256;
        let input = random_state(n, &mut rng);
        for (n1, n2) in [(2, 128), (4, 64), (64, 4), (128, 2), (1, 256), (256, 1)] {
            let mut four = input.clone();
            fft_four_step(&mut four, n1, n2, Direction::Forward, Normalization::None);
            let mut two = input.clone();
            fft(&mut two, Direction::Forward, Normalization::None);
            assert!(
                max_abs_diff(&four, &two) < 1e-9,
                "mismatch at split ({n1},{n2})"
            );
        }
    }

    #[test]
    fn four_step_inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(63);
        let n = 1024;
        let (n1, n2) = square_split(n);
        let input = random_state(n, &mut rng);
        let mut data = input.clone();
        fft_four_step(&mut data, n1, n2, Direction::Inverse, Normalization::Sqrt);
        fft_four_step(&mut data, n1, n2, Direction::Forward, Normalization::Sqrt);
        assert!(max_abs_diff(&data, &input) < 1e-10);
    }

    #[test]
    fn square_split_balances() {
        assert_eq!(square_split(16), (4, 4));
        assert_eq!(square_split(32), (4, 8));
        assert_eq!(square_split(2), (1, 2));
        assert_eq!(square_split(1), (1, 1));
    }
}

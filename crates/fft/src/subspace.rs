//! Fourier transforms on a *subset* of qubits of a state vector.
//!
//! The emulator replaces a QFT circuit acting on an m-qubit register inside
//! an n-qubit machine with a batched FFT over the 2^m-dimensional subspace,
//! repeated for every assignment of the other n−m qubits. When the register
//! occupies the low qubits the batches are contiguous and transform in
//! place; otherwise the state is permuted so they are, transformed, and
//! permuted back (two passes, both safe and parallel).

use crate::plan::{Direction, FftPlan, Normalization};
use crate::radix2::fft_inplace;
use qcemu_linalg::C64;
use rayon::prelude::*;

/// Extracts the bits of `x` at positions `bits` (LSB first) into a compact
/// integer: result bit `j` = bit `bits[j]` of `x`.
#[inline]
pub fn gather_bits(x: usize, bits: &[usize]) -> usize {
    let mut v = 0usize;
    for (j, &b) in bits.iter().enumerate() {
        v |= ((x >> b) & 1) << j;
    }
    v
}

/// Inverse of [`gather_bits`]: spreads the low bits of `v` to positions
/// `bits`.
#[inline]
pub fn scatter_bits(v: usize, bits: &[usize]) -> usize {
    let mut x = 0usize;
    for (j, &b) in bits.iter().enumerate() {
        x |= ((v >> j) & 1) << b;
    }
    x
}

/// Applies a length-2^m FFT along the register formed by `bits` (LSB first)
/// of an n-qubit state vector, independently for every assignment of the
/// remaining qubits.
///
/// `state.len()` must be `2^n_qubits`; `bits` must be distinct and within
/// range.
pub fn fft_subspace(
    state: &mut Vec<C64>,
    n_qubits: usize,
    bits: &[usize],
    dir: Direction,
    norm: Normalization,
) {
    let n = state.len();
    assert_eq!(n, 1usize << n_qubits, "state length must be 2^n_qubits");
    let m = bits.len();
    assert!(m >= 1, "empty register");
    let mut seen = vec![false; n_qubits];
    for &b in bits {
        assert!(b < n_qubits, "register bit {b} out of range");
        assert!(!seen[b], "duplicate register bit {b}");
        seen[b] = true;
    }

    let dim = 1usize << m;
    let plan = FftPlan::new(dim);

    // Fast path: register is exactly the low qubits in order — every batch
    // is a contiguous chunk.
    let contiguous_low = bits.iter().enumerate().all(|(j, &b)| b == j);
    if contiguous_low {
        state
            .par_chunks_mut(dim)
            .for_each(|chunk| fft_inplace(&plan, chunk, dir, norm));
        return;
    }

    // General path: permute so the register becomes the low qubits,
    // batch-transform, permute back.
    let comp: Vec<usize> = (0..n_qubits).filter(|q| !bits.contains(q)).collect();

    // Forward permutation: dst[(c << m) | v] = src[scatter(v, bits) | scatter(c, comp)].
    let src = std::mem::replace(state, Vec::new());
    let mut permuted: Vec<C64> = (0..n)
        .into_par_iter()
        .map(|d| {
            let v = d & (dim - 1);
            let c = d >> m;
            src[scatter_bits(v, bits) | scatter_bits(c, &comp)]
        })
        .collect();

    permuted
        .par_chunks_mut(dim)
        .for_each(|chunk| fft_inplace(&plan, chunk, dir, norm));

    // Inverse permutation back to the original bit layout.
    let out: Vec<C64> = (0..n)
        .into_par_iter()
        .map(|d| {
            let v = gather_bits(d, bits);
            let c = gather_bits(d, &comp);
            permuted[(c << m) | v]
        })
        .collect();
    *state = out;
}

/// QFT (paper Eq. 4 convention: positive exponent, 1/√N) on the given
/// register of a larger state.
pub fn qft_subspace(state: &mut Vec<C64>, n_qubits: usize, bits: &[usize]) {
    fft_subspace(
        state,
        n_qubits,
        bits,
        Direction::Inverse,
        Normalization::Sqrt,
    );
}

/// Inverse QFT on the given register of a larger state.
pub fn inverse_qft_subspace(state: &mut Vec<C64>, n_qubits: usize, bits: &[usize]) {
    fft_subspace(
        state,
        n_qubits,
        bits,
        Direction::Forward,
        Normalization::Sqrt,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::qft_convention;
    use qcemu_linalg::{max_abs_diff, norm2, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gather_scatter_roundtrip() {
        let bits = [1, 3, 4];
        for v in 0..8 {
            let x = scatter_bits(v, &bits);
            assert_eq!(gather_bits(x, &bits), v);
        }
        assert_eq!(scatter_bits(0b101, &bits), (1 << 1) | (1 << 4));
    }

    #[test]
    fn full_register_low_bits_matches_plain_fft() {
        let mut rng = StdRng::seed_from_u64(70);
        let n_qubits = 8;
        let input = random_state(1 << n_qubits, &mut rng);
        let bits: Vec<usize> = (0..n_qubits).collect();
        let mut a = input.clone();
        fft_subspace(
            &mut a,
            n_qubits,
            &bits,
            Direction::Inverse,
            Normalization::Sqrt,
        );
        let mut b = input.clone();
        qft_convention(&mut b);
        assert!(max_abs_diff(&a, &b) < 1e-11);
    }

    #[test]
    fn low_subregister_transforms_blocks_independently() {
        let mut rng = StdRng::seed_from_u64(71);
        // 3-qubit register inside 5 qubits → 4 independent blocks of 8.
        let input = random_state(32, &mut rng);
        let mut a = input.clone();
        fft_subspace(
            &mut a,
            5,
            &[0, 1, 2],
            Direction::Inverse,
            Normalization::Sqrt,
        );
        for blk in 0..4 {
            let mut expect: Vec<C64> = input[blk * 8..(blk + 1) * 8].to_vec();
            qft_convention(&mut expect);
            assert!(max_abs_diff(&a[blk * 8..(blk + 1) * 8], &expect) < 1e-11);
        }
    }

    #[test]
    fn high_subregister_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(72);
        // Register on qubits [2, 3] of a 4-qubit state.
        let n_q = 4;
        let bits = [2usize, 3usize];
        let input = random_state(16, &mut rng);
        let mut fast = input.clone();
        fft_subspace(
            &mut fast,
            n_q,
            &bits,
            Direction::Inverse,
            Normalization::Sqrt,
        );

        // Manual: for each assignment of qubits (0,1), do a 4-point QFT over
        // the register value.
        let mut expect = vec![C64::ZERO; 16];
        for c in 0..4usize {
            let mut sub: Vec<C64> = (0..4).map(|v| input[c | (v << 2)]).collect();
            qft_convention(&mut sub);
            for v in 0..4 {
                expect[c | (v << 2)] = sub[v];
            }
        }
        assert!(max_abs_diff(&fast, &expect) < 1e-11);
    }

    #[test]
    fn non_monotonic_bit_order_reverses_register_semantics() {
        let mut rng = StdRng::seed_from_u64(73);
        // bits [1, 0]: qubit 1 is the LSB of the register value.
        let input = random_state(4, &mut rng);
        let mut fast = input.clone();
        fft_subspace(
            &mut fast,
            2,
            &[1, 0],
            Direction::Forward,
            Normalization::None,
        );
        // Register value v = bit1 + 2·bit0 → index map 0→0, 1→2, 2→1, 3→3.
        let reorder = [0usize, 2, 1, 3];
        let gathered: Vec<C64> = reorder.iter().map(|&i| input[i]).collect();
        let spectrum =
            crate::dft::dft_reference(&gathered, Direction::Forward, Normalization::None);
        for (v, &idx) in reorder.iter().enumerate() {
            assert!(
                fast[idx].approx_eq(spectrum[v], 1e-10),
                "v = {v}: {:?} vs {:?}",
                fast[idx],
                spectrum[v]
            );
        }
    }

    #[test]
    fn subspace_qft_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(74);
        let mut state = random_state(64, &mut rng);
        qft_subspace(&mut state, 6, &[1, 3, 5]);
        assert!((norm2(&state) - 1.0).abs() < 1e-11);
    }

    #[test]
    fn qft_then_inverse_is_identity_on_subspace() {
        let mut rng = StdRng::seed_from_u64(75);
        let input = random_state(128, &mut rng);
        let mut state = input.clone();
        qft_subspace(&mut state, 7, &[2, 4, 6]);
        inverse_qft_subspace(&mut state, 7, &[2, 4, 6]);
        assert!(max_abs_diff(&state, &input) < 1e-11);
    }

    #[test]
    #[should_panic(expected = "duplicate register bit")]
    fn rejects_duplicate_bits() {
        let mut state = vec![C64::ONE; 4];
        fft_subspace(
            &mut state,
            2,
            &[0, 0],
            Direction::Forward,
            Normalization::None,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bits() {
        let mut state = vec![C64::ONE; 4];
        fft_subspace(&mut state, 2, &[5], Direction::Forward, Normalization::None);
    }
}

//! In-place iterative radix-2 Cooley–Tukey FFT (decimation in time).
//!
//! Bit-reversal permutation first, then `log₂N` butterfly passes. Large
//! passes are parallelised with rayon: early passes (many small blocks) split
//! over blocks, late passes (few large blocks) split the butterfly range of
//! each block. This mirrors how the paper's node-local FFT saturates memory
//! bandwidth — the transform is memory-bound, which is exactly why the
//! emulated QFT beats the simulated one by `n·FLOPS/B_mem` (paper §4.3).

use crate::plan::{Direction, FftPlan, Normalization};
use qcemu_linalg::{simd, C64};
use rayon::prelude::*;

/// Below this size everything runs serially — thread handoff costs more
/// than the transform.
const PAR_MIN_SIZE: usize = 1 << 14;

/// Transforms `data` in place according to `plan`, `dir`, `norm`.
///
/// Panics if `data.len() != plan.len()`.
pub fn fft_inplace(plan: &FftPlan, data: &mut [C64], dir: Direction, norm: Normalization) {
    assert_eq!(
        data.len(),
        plan.len(),
        "fft_inplace: data length {} does not match plan size {}",
        data.len(),
        plan.len()
    );
    let n = data.len();
    if n <= 1 {
        apply_norm(data, norm.factor(n));
        return;
    }

    bit_reverse_permute(plan, data);

    let parallel = n >= PAR_MIN_SIZE && rayon::current_num_threads() > 1;
    let log2n = plan.log2_len();
    for stage in 1..=log2n {
        let block = 1usize << stage; // butterfly block size
        let half = block >> 1;
        let tw_stride = n >> stage; // stride into the length-N/2 twiddle table
        if !parallel || n / block >= 2 {
            // Many independent blocks: parallelise (or run serially) over them.
            let run = |chunk: &mut [C64]| butterfly_block(chunk, half, tw_stride, plan, dir);
            if parallel && n / block >= 2 {
                data.par_chunks_mut(block).for_each(run);
            } else {
                data.chunks_mut(block).for_each(run);
            }
        } else {
            // Single block spanning the whole buffer: split its butterfly
            // range across threads in contiguous chunks of the two
            // disjoint halves (each chunk vectorises independently).
            let (lo, hi) = data.split_at_mut(half);
            let chunk = half.div_ceil(rayon::current_num_threads().max(1));
            lo.par_chunks_mut(chunk)
                .zip(hi.par_chunks_mut(chunk))
                .enumerate()
                .for_each(|(c, (lo_chunk, hi_chunk))| {
                    simd::fft_butterfly(
                        lo_chunk,
                        hi_chunk,
                        plan.twiddle_table(),
                        c * chunk * tw_stride,
                        tw_stride,
                        dir == Direction::Inverse,
                    );
                });
        }
    }

    apply_norm(data, norm.factor(n));
}

#[inline]
fn butterfly_block(
    chunk: &mut [C64],
    half: usize,
    tw_stride: usize,
    plan: &FftPlan,
    dir: Direction,
) {
    let (lo, hi) = chunk.split_at_mut(half);
    simd::fft_butterfly(
        lo,
        hi,
        plan.twiddle_table(),
        0,
        tw_stride,
        dir == Direction::Inverse,
    );
}

fn bit_reverse_permute(plan: &FftPlan, data: &mut [C64]) {
    let rev = plan.bitrev();
    for i in 0..data.len() {
        let r = rev[i] as usize;
        if r > i {
            data.swap(i, r);
        }
    }
}

fn apply_norm(data: &mut [C64], factor: f64) {
    if factor != 1.0 {
        if data.len() >= PAR_MIN_SIZE && rayon::current_num_threads() > 1 {
            let chunk = data.len().div_ceil(rayon::current_num_threads());
            data.par_chunks_mut(chunk)
                .for_each(|c| simd::scale_slice_real(c, factor));
        } else {
            simd::scale_slice_real(data, factor);
        }
    }
}

/// One-shot convenience: plans internally and transforms a vector.
pub fn fft(data: &mut [C64], dir: Direction, norm: Normalization) {
    let plan = FftPlan::new(data.len());
    fft_inplace(&plan, data, dir, norm);
}

/// The paper's QFT as a vector transform (Eq. 4): positive exponent with
/// `1/√N` scaling. Exactly what the emulator substitutes for the gate-level
/// QFT circuit.
pub fn qft_convention(data: &mut [C64]) {
    fft(data, Direction::Inverse, Normalization::Sqrt);
}

/// Inverse of [`qft_convention`].
pub fn inverse_qft_convention(data: &mut [C64]) {
    fft(data, Direction::Forward, Normalization::Sqrt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_reference;
    use qcemu_linalg::{c64, max_abs_diff, norm2, random_state};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![C64::ZERO; 8];
        data[0] = C64::ONE;
        fft(&mut data, Direction::Forward, Normalization::None);
        for z in &data {
            assert!(z.approx_eq(C64::ONE, 1e-12));
        }
    }

    #[test]
    fn matches_reference_dft() {
        let mut rng = StdRng::seed_from_u64(50);
        for log2n in 0..=10 {
            let n = 1usize << log2n;
            let input = random_state(n, &mut rng);
            let mut fast = input.clone();
            fft(&mut fast, Direction::Forward, Normalization::None);
            let slow = dft_reference(&input, Direction::Forward, Normalization::None);
            assert!(
                max_abs_diff(&fast, &slow) < 1e-9 * n as f64,
                "mismatch at n = {n}"
            );
        }
    }

    #[test]
    fn inverse_matches_reference_dft() {
        let mut rng = StdRng::seed_from_u64(51);
        let n = 128;
        let input = random_state(n, &mut rng);
        let mut fast = input.clone();
        fft(&mut fast, Direction::Inverse, Normalization::Full);
        let slow = dft_reference(&input, Direction::Inverse, Normalization::Full);
        assert!(max_abs_diff(&fast, &slow) < 1e-10);
    }

    #[test]
    fn roundtrip_is_identity() {
        let mut rng = StdRng::seed_from_u64(52);
        let input = random_state(256, &mut rng);
        let mut data = input.clone();
        fft(&mut data, Direction::Forward, Normalization::None);
        fft(&mut data, Direction::Inverse, Normalization::Full);
        assert!(max_abs_diff(&data, &input) < 1e-11);
    }

    #[test]
    fn sqrt_normalization_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut data = random_state(512, &mut rng);
        fft(&mut data, Direction::Forward, Normalization::Sqrt);
        assert!(
            (norm2(&data) - 1.0).abs() < 1e-11,
            "unitary FFT must preserve norm"
        );
    }

    #[test]
    fn qft_convention_roundtrip_and_unitarity() {
        let mut rng = StdRng::seed_from_u64(54);
        let input = random_state(64, &mut rng);
        let mut data = input.clone();
        qft_convention(&mut data);
        assert!((norm2(&data) - 1.0).abs() < 1e-11);
        inverse_qft_convention(&mut data);
        assert!(max_abs_diff(&data, &input) < 1e-11);
    }

    #[test]
    fn qft_of_basis_state_is_fourier_mode() {
        // QFT|k⟩ = 2^{-n/2} Σ_l e^{2πi k l / N} |l⟩
        let n = 32;
        let k = 5;
        let mut data = vec![C64::ZERO; n];
        data[k] = C64::ONE;
        qft_convention(&mut data);
        let scale = 1.0 / (n as f64).sqrt();
        for (l, z) in data.iter().enumerate() {
            let expect = C64::cis(std::f64::consts::TAU * (k * l) as f64 / n as f64).scale(scale);
            assert!(z.approx_eq(expect, 1e-12), "l = {l}");
        }
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(55);
        let a = random_state(64, &mut rng);
        let b = random_state(64, &mut rng);
        let alpha = c64(0.3, -0.4);
        let combined: Vec<C64> = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| alpha * *x + *y)
            .collect();

        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fc = combined.clone();
        fft(&mut fa, Direction::Forward, Normalization::None);
        fft(&mut fb, Direction::Forward, Normalization::None);
        fft(&mut fc, Direction::Forward, Normalization::None);
        let recombined: Vec<C64> = fa
            .iter()
            .zip(fb.iter())
            .map(|(x, y)| alpha * *x + *y)
            .collect();
        assert!(max_abs_diff(&fc, &recombined) < 1e-10);
    }

    #[test]
    fn large_parallel_path_matches_serial_plan() {
        let mut rng = StdRng::seed_from_u64(56);
        let n = 1 << 16; // above PAR_MIN_SIZE → exercises the parallel branches
        let input = random_state(n, &mut rng);
        let mut fast = input.clone();
        fft(&mut fast, Direction::Forward, Normalization::Sqrt);
        // Compare against the same algorithm forced serial by running it in
        // a single-thread pool.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut serial = input.clone();
        pool.install(|| fft(&mut serial, Direction::Forward, Normalization::Sqrt));
        assert!(max_abs_diff(&fast, &serial) < 1e-12);
        assert!((norm2(&fast) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn size_one_and_two() {
        let mut one = vec![c64(0.5, 0.5)];
        fft(&mut one, Direction::Forward, Normalization::None);
        assert!(one[0].approx_eq(c64(0.5, 0.5), 1e-15));

        let mut two = vec![C64::ONE, C64::ZERO];
        fft(&mut two, Direction::Forward, Normalization::None);
        assert!(two[0].approx_eq(C64::ONE, 1e-15));
        assert!(two[1].approx_eq(C64::ONE, 1e-15));
    }

    #[test]
    #[should_panic(expected = "does not match plan size")]
    fn plan_size_mismatch_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![C64::ZERO; 4];
        fft_inplace(&plan, &mut data, Direction::Forward, Normalization::None);
    }

    #[test]
    fn parseval_theorem() {
        let mut rng = StdRng::seed_from_u64(57);
        let input = random_state(128, &mut rng);
        let energy_in: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut out = input.clone();
        fft(&mut out, Direction::Forward, Normalization::None);
        let energy_out: f64 = out.iter().map(|z| z.norm_sqr()).sum();
        assert!((energy_out / 128.0 - energy_in).abs() < 1e-10);
    }
}

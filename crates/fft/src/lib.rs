//! # qcemu-fft
//!
//! From-scratch FFT library backing the QFT emulation shortcut of *High
//! Performance Emulation of Quantum Circuits* (SC 2016, §3.2): instead of
//! simulating the O(n²)-gate QFT circuit on a 2ⁿ state vector, the emulator
//! runs a classical FFT directly on the amplitudes.
//!
//! * [`radix2`] — in-place iterative Cooley–Tukey with precomputed plans and
//!   rayon-parallel passes (the node-local FFT of the paper);
//! * [`fourstep`] — Bailey's four-step decomposition whose three transposes
//!   are the three all-to-alls of the paper's distributed-FFT cost model
//!   (Eq. 5); `qcemu-cluster` re-uses its exact step structure;
//! * [`subspace`] — batched FFT over an arbitrary qubit subset of a larger
//!   state (QFT on one register of a many-register program);
//! * [`dft`] — O(N²) reference transform for validation.
//!
//! Sign/normalisation conventions: the paper's QFT (Eq. 4) is
//! `Direction::Inverse` + `Normalization::Sqrt`; helpers
//! [`qft_convention`]/[`inverse_qft_convention`] encode that so call sites
//! cannot get it wrong.

pub mod dft;
pub mod fourstep;
pub mod plan;
pub mod radix2;
pub mod subspace;

pub use dft::dft_reference;
pub use fourstep::{fft_four_step, square_split, transpose};
pub use plan::{Direction, FftPlan, Normalization};
pub use radix2::{fft, fft_inplace, inverse_qft_convention, qft_convention};
pub use subspace::{fft_subspace, gather_bits, inverse_qft_subspace, qft_subspace, scatter_bits};

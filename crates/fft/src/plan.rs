//! FFT plans: precomputed twiddle factors and bit-reversal tables.
//!
//! A [`FftPlan`] plays the role FFTW/MKL plans play in the paper: all
//! trigonometry is hoisted out of the transform so the butterfly loops touch
//! only memory and multiplies. Plans are cheap to build (O(N)) and reusable.

use qcemu_linalg::C64;

/// Transform direction. `Forward` uses the engineering sign convention
/// `e^{-2πi jk/N}`; `Inverse` uses `e^{+2πi jk/N}`.
///
/// Note the **quantum Fourier transform** of the paper (Eq. 4) has a `+`
/// sign and 1/√N normalisation, i.e. it is `Inverse` + [`Normalization::Sqrt`]
/// in this crate's vocabulary. [`crate::qft_convention`] packages that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Negative exponent, `Σ x_j e^{-2πi jk/N}`.
    Forward,
    /// Positive exponent, `Σ x_j e^{+2πi jk/N}`.
    Inverse,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Inverse,
            Direction::Inverse => Direction::Forward,
        }
    }
}

/// Output scaling applied after the butterflies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Normalization {
    /// No scaling (classical FFT convention for `Forward`).
    None,
    /// Multiply by `1/√N` — makes the transform unitary; this is the QFT
    /// normalisation of paper Eq. 4.
    Sqrt,
    /// Multiply by `1/N` (classical convention for `Inverse`).
    Full,
}

impl Normalization {
    /// The scale factor for a transform of size `n`.
    pub fn factor(self, n: usize) -> f64 {
        match self {
            Normalization::None => 1.0,
            Normalization::Sqrt => 1.0 / (n as f64).sqrt(),
            Normalization::Full => 1.0 / n as f64,
        }
    }
}

/// Precomputed tables for a size-`2^log2n` transform.
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// `twiddles[k] = e^{-2πi k / N}` for `k < N/2` (forward sign; the
    /// inverse transform conjugates on the fly).
    twiddles: Vec<C64>,
    /// Bit-reversal permutation of `0..N`.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for size `n`, which must be a power of two (and
    /// ≤ 2³² entries so the bit-reversal table can use `u32`).
    pub fn new(n: usize) -> FftPlan {
        assert!(
            n.is_power_of_two(),
            "FFT size must be a power of two, got {n}"
        );
        assert!(
            n <= (1usize << 32),
            "FFT size too large for u32 bitrev table"
        );
        let log2n = n.trailing_zeros();
        let half = (n / 2).max(1);
        let mut twiddles = Vec::with_capacity(half);
        let step = -std::f64::consts::TAU / n as f64;
        for k in 0..half {
            twiddles.push(C64::cis(step * k as f64));
        }
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = reverse_bits(i as u32, log2n);
        }
        FftPlan {
            n,
            log2n,
            twiddles,
            bitrev,
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate size-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// log₂ of the transform size.
    #[inline]
    pub fn log2_len(&self) -> u32 {
        self.log2n
    }

    /// The precomputed length-`N/2` twiddle table (forward sign) — the
    /// butterfly passes hand strided views of this to the complex-SIMD
    /// primitives.
    #[inline(always)]
    pub(crate) fn twiddle_table(&self) -> &[C64] {
        &self.twiddles
    }

    /// The bit-reversal table.
    #[inline(always)]
    pub(crate) fn bitrev(&self) -> &[u32] {
        &self.bitrev
    }
}

/// Reverses the lowest `bits` bits of `x`.
#[inline]
pub fn reverse_bits(x: u32, bits: u32) -> u32 {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (32 - bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_bits_basics() {
        assert_eq!(reverse_bits(0b001, 3), 0b100);
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0, 0), 0);
        assert_eq!(reverse_bits(1, 1), 1);
        assert_eq!(reverse_bits(0b1011, 4), 0b1101);
    }

    #[test]
    fn bitrev_is_an_involution() {
        let plan = FftPlan::new(64);
        for i in 0..64u32 {
            let r = plan.bitrev()[i as usize];
            assert_eq!(plan.bitrev()[r as usize], i);
        }
    }

    #[test]
    fn twiddles_are_unit_roots() {
        let plan = FftPlan::new(16);
        for k in 0..8 {
            let t = plan.twiddle_table()[k];
            assert!((t.abs() - 1.0).abs() < 1e-14);
            let expect = C64::cis(-std::f64::consts::TAU * k as f64 / 16.0);
            assert!(t.approx_eq(expect, 1e-14));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    fn normalization_factors() {
        assert_eq!(Normalization::None.factor(256), 1.0);
        assert!((Normalization::Sqrt.factor(256) - 1.0 / 16.0).abs() < 1e-15);
        assert!((Normalization::Full.factor(256) - 1.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Inverse);
        assert_eq!(Direction::Inverse.flip(), Direction::Forward);
    }
}

//! Batched program execution: plan once, run N state vectors.
//!
//! Parameter sweeps and shot ensembles run the *same program structure*
//! many times — same registers, same op sequence, same gate lists — with
//! only closure-carried parameters (rotation angles, classical maps)
//! varying per member. The [`BatchExecutor`] exploits that: it lowers the
//! batch through the [`HybridExecutor`] plan cache **once** per
//! [`structure_hash`](QuantumProgram::structure_hash) (planning,
//! cost-model evaluation, and gate fusion are all paid once per
//! structure, not once per member), then advances all members together
//! through a [`BatchStateVector`].
//!
//! ## Step dispatch
//!
//! Each plan step is classified by what makes it safe to share:
//!
//! * **Batched** — simulated `Gates` steps (gate lists are bit-identical
//!   across members with an equal structure hash, so the plan's cached
//!   fused stream applies to every member), simulated QFT / inverse QFT
//!   steps (the remapped circuit depends only on register layout), and
//!   emulated `Rotation` steps (the pair enumeration and register decode
//!   are structural; each member's angle closure is read in place by
//!   [`crate::classical::apply_controlled_rotation_batch`]). These run in
//!   the batch-major layout of [`qcemu_sim::batch`], which vectorises
//!   across the batch dimension and pays per-gate fixed costs (thread
//!   spawns, fusion, index precomputes) once per ensemble.
//! * **Per-member** — everything else whose semantics can differ per
//!   member: closure-bearing `Classical` and `Phase` ops, QPE, emulated
//!   QFTs, and simulated rotations/maps lowered through `gate_impl`
//!   closures. The batch is de-interleaved **once** (tiled transpose),
//!   each member runs through the ordinary [`PlanInterpreter`] step with
//!   the plan's carried circuit artifacts *stripped* (they were built
//!   from the planning member's closures and must be rebuilt from each
//!   member's own ops), and the ensemble is re-interleaved once.
//!
//! The per-step [`BatchReport`] records which route each step took.

use crate::error::EmuError;
use crate::executor::HybridExecutor;
use crate::planner::{
    extend_with_ancillas, fmt_model_secs, truncate_ancillas, Backend, ExecutionPlan,
    PlanInterpreter, PlanStep,
};
use crate::program::{HighLevelOp, QuantumProgram};
use qcemu_sim::circuits::qft::{inverse_qft_circuit, qft_circuit};
use qcemu_sim::{BatchStateVector, SimConfig, StateVector};
use std::fmt;
use std::time::Instant;

/// Runs a structurally homogeneous ensemble of programs over a
/// [`BatchStateVector`], planning once per structure.
///
/// Members must share qubit count and
/// [`structure_hash`](QuantumProgram::structure_hash); per-member
/// variation flows through the closures the hash deliberately ignores
/// (rotation angle functions, classical map bodies). Rebuilding the
/// member programs between runs does **not** re-plan: the cache is keyed
/// on structure, not instance, so
/// [`plan_cache_misses`](BatchExecutor::plan_cache_misses) stays at one
/// across repeated sweeps of the same shape.
///
/// ## Example
/// ```
/// use qcemu_core::batch::BatchExecutor;
/// use qcemu_core::ProgramBuilder;
/// use qcemu_sim::BatchStateVector;
///
/// let members: Vec<_> = (0..4)
///     .map(|_| {
///         let mut pb = ProgramBuilder::new();
///         let a = pb.register("a", 3);
///         pb.hadamard_all(a);
///         pb.qft(a);
///         pb.build().unwrap()
///     })
///     .collect();
/// let exec = BatchExecutor::new();
/// let initial = BatchStateVector::zero_state(3, members.len());
/// let out = exec.run(&members, initial).unwrap();
/// assert_eq!(out.batch(), 4);
/// assert_eq!(exec.plan_cache_misses(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchExecutor {
    inner: HybridExecutor,
}

impl BatchExecutor {
    /// Batch executor over the default hybrid cost model and fused gate
    /// path.
    pub fn new() -> BatchExecutor {
        BatchExecutor::default()
    }

    /// Batch executor driven by the measured host rates
    /// ([`crate::crossover::CostModel::calibrated`]).
    pub fn calibrated() -> BatchExecutor {
        BatchExecutor {
            inner: HybridExecutor::calibrated(),
        }
    }

    /// Batch executor wrapping an existing [`HybridExecutor`] — sharing
    /// its model, config, **and plan cache**. This is how a serving
    /// worker batches structurally identical in-flight requests without
    /// planning the structure a second time: solo requests run through
    /// the hybrid executor, coalesced ones through this wrapper, and both
    /// read the same [`crate::plancache::SharedPlanCache`].
    pub fn from_hybrid(inner: HybridExecutor) -> BatchExecutor {
        BatchExecutor { inner }
    }

    /// The wrapped [`HybridExecutor`] (model, config, plan cache).
    pub fn hybrid(&self) -> &HybridExecutor {
        &self.inner
    }

    /// Replaces the cost model (resets the plan cache).
    pub fn with_model(self, model: crate::crossover::CostModel) -> BatchExecutor {
        BatchExecutor {
            inner: self.inner.with_model(model),
        }
    }

    /// Replaces the gate-level execution configuration (resets the plan
    /// cache).
    pub fn with_config(self, config: SimConfig) -> BatchExecutor {
        BatchExecutor {
            inner: self.inner.with_config(config),
        }
    }

    /// How many times a batch run had to lower a plan from scratch —
    /// repeated runs of same-structure ensembles keep this at one.
    pub fn plan_cache_misses(&self) -> usize {
        self.inner.plan_cache_misses()
    }

    /// The structure-keyed plan a batch of `program`'s shape would run
    /// (lowering and caching it if absent) — inspect or `{}`-print it to
    /// see the per-op dispatch.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        (*self.inner.plan_structural(program)).clone()
    }

    /// Runs the ensemble and returns the final batched state.
    ///
    /// `members[j]` drives the `j`-th member of `initial`. All members
    /// must share qubit count and structure hash; `initial` must hold
    /// exactly `members.len()` members of that qubit count.
    pub fn run(
        &self,
        members: &[QuantumProgram],
        initial: BatchStateVector,
    ) -> Result<BatchStateVector, EmuError> {
        self.run_with_report(members, initial).map(|(s, _)| s)
    }

    /// Runs the ensemble and additionally returns the per-step audit
    /// report (backend, batched vs per-member route, predicted and
    /// measured cost).
    pub fn run_with_report(
        &self,
        members: &[QuantumProgram],
        initial: BatchStateVector,
    ) -> Result<(BatchStateVector, BatchReport), EmuError> {
        let first = members.first().ok_or_else(|| EmuError::PlanMismatch {
            reason: "batch must contain at least one program".into(),
        })?;
        let n = first.n_qubits();
        for (j, m) in members.iter().enumerate() {
            if m.n_qubits() != n {
                return Err(EmuError::DimensionMismatch {
                    expected: n,
                    got: m.n_qubits(),
                });
            }
            if m.structure_hash() != first.structure_hash() {
                return Err(EmuError::PlanMismatch {
                    reason: format!(
                        "member {j} differs structurally from member 0; \
                         a batch must be structurally homogeneous"
                    ),
                });
            }
        }
        if initial.n_qubits() != n {
            return Err(EmuError::DimensionMismatch {
                expected: n,
                got: initial.n_qubits(),
            });
        }
        if initial.batch() != members.len() {
            return Err(EmuError::DimensionMismatch {
                expected: members.len(),
                got: initial.batch(),
            });
        }

        let plan = self.inner.plan_structural(first);
        let interp = PlanInterpreter::new(self.inner.config);
        let mut state = extend_batch(initial, plan.n_ancilla());
        let mut steps = Vec::with_capacity(plan.steps().len());
        for step in plan.steps() {
            let t0 = Instant::now();
            let batched = self.execute_batch_step(&mut state, members, step, &interp)?;
            steps.push(BatchStepReport {
                op: step.op.clone(),
                backend: step.backend,
                batched,
                predicted_s: step.predicted_s,
                measured_s: t0.elapsed().as_secs_f64(),
            });
        }
        let state = truncate_batch(state, n)?;
        Ok((
            state,
            BatchReport {
                batch: members.len(),
                steps,
            },
        ))
    }

    /// Executes one plan step over the whole batch, returning `true` when
    /// the batched kernels ran it and `false` when it fell back to the
    /// per-member interpreter loop.
    fn execute_batch_step(
        &self,
        state: &mut BatchStateVector,
        members: &[QuantumProgram],
        step: &PlanStep,
        interp: &PlanInterpreter,
    ) -> Result<bool, EmuError> {
        let first = &members[0];
        match &first.ops()[step.op_index] {
            HighLevelOp::Gates(c) if step.backend.is_simulate() => {
                // Gate lists are bit-identical across an equal structure
                // hash, so the planning member's cached fused stream (or
                // raw circuit) is valid for every member.
                if step.backend == Backend::SimulateFused {
                    if let Some(fused) = &step.fused {
                        state.apply_fused_circuit(fused);
                        return Ok(true);
                    }
                }
                state.run(c, &interp.step_config(step.backend));
                Ok(true)
            }
            HighLevelOp::Qft(r) if step.backend.is_simulate() => {
                let bits = first.register(*r).bits();
                let c = qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                state.run(&c, &interp.step_config(step.backend));
                Ok(true)
            }
            HighLevelOp::InverseQft(r) if step.backend.is_simulate() => {
                let bits = first.register(*r).bits();
                let c = inverse_qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                state.run(&c, &interp.step_config(step.backend));
                Ok(true)
            }
            HighLevelOp::Rotation(_) if !step.backend.is_simulate() => {
                // Emulated controlled rotation: the pair enumeration and
                // register decode are structural, only the angle closure
                // varies — the batched kernel sweeps the interleaved
                // layout once, reading each member's own closure, with no
                // de-interleave copies.
                let ops: Vec<&crate::program::RotationOp> = members
                    .iter()
                    .map(|m| match &m.ops()[step.op_index] {
                        HighLevelOp::Rotation(op) => op,
                        _ => unreachable!("structure hash guarantees matching op kinds"),
                    })
                    .collect();
                crate::classical::apply_controlled_rotation_batch(state, first, &ops);
                Ok(true)
            }
            _ => {
                // Closure-bearing (or emulated) step: run each member
                // through the ordinary interpreter with the carried
                // artifacts stripped — they were built from the planning
                // member's closures and must be rebuilt from each
                // member's own op. One tiled de-interleave/re-interleave
                // brackets the loop instead of per-member strided copies.
                let stripped = PlanStep {
                    circuit: None,
                    fused: None,
                    ..step.clone()
                };
                let mut states = state.to_states();
                for (j, sv) in states.iter_mut().enumerate() {
                    let op = &members[j].ops()[step.op_index];
                    interp.execute_step(sv, &members[j], op, &stripped)?;
                }
                *state = BatchStateVector::from_states(&states);
                Ok(false)
            }
        }
    }
}

/// Extends every member with `n_anc` |0⟩ ancilla qubits (no-op at zero).
fn extend_batch(initial: BatchStateVector, n_anc: usize) -> BatchStateVector {
    if n_anc == 0 {
        return initial;
    }
    let extended: Vec<StateVector> = initial
        .into_states()
        .into_iter()
        .map(|s| extend_with_ancillas(s, n_anc))
        .collect();
    BatchStateVector::from_states(&extended)
}

/// Validates and strips ancillas from every member (no-op when the batch
/// is already `n_program` qubits wide).
fn truncate_batch(state: BatchStateVector, n_program: usize) -> Result<BatchStateVector, EmuError> {
    if state.n_qubits() == n_program {
        return Ok(state);
    }
    let truncated: Vec<StateVector> = state
        .into_states()
        .into_iter()
        .map(|s| truncate_ancillas(s, n_program))
        .collect::<Result<_, _>>()?;
    Ok(BatchStateVector::from_states(&truncated))
}

/// Per-step entry of a [`BatchReport`].
#[derive(Clone, Debug)]
pub struct BatchStepReport {
    /// Op label.
    pub op: String,
    /// Backend that ran the op.
    pub backend: Backend,
    /// `true` when the step ran once through the batched kernels,
    /// `false` when it looped over members.
    pub batched: bool,
    /// Model-predicted cost of one member (seconds).
    pub predicted_s: f64,
    /// Measured wall time of the step across the whole batch (seconds).
    pub measured_s: f64,
}

/// Audit trail of one batched execution. Render with `{}` for an aligned
/// table.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Number of ensemble members the run advanced.
    pub batch: usize,
    /// One entry per plan step, in program order.
    pub steps: Vec<BatchStepReport>,
}

impl BatchReport {
    /// Total measured wall time across all steps (whole batch).
    pub fn total_measured_s(&self) -> f64 {
        self.steps.iter().map(|s| s.measured_s).sum()
    }

    /// Total predicted cost of one member across all steps.
    pub fn total_predicted_s(&self) -> f64 {
        self.steps.iter().map(|s| s.predicted_s).sum()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch of {}", self.batch)?;
        writeln!(
            f,
            "{:<26} {:>17} {:>11} {:>12} {:>12}",
            "op", "backend", "route", "pred/member", "measured"
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "{:<26} {:>17} {:>11} {:>12} {:>12}",
                s.op,
                s.backend.to_string(),
                if s.batched { "batched" } else { "per-member" },
                fmt_model_secs(s.predicted_s),
                fmt_model_secs(s.measured_s),
            )?;
        }
        write!(
            f,
            "{:<26} {:>17} {:>11} {:>12} {:>12}",
            "total",
            "",
            "",
            fmt_model_secs(self.total_predicted_s()),
            fmt_model_secs(self.total_measured_s())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::program::{ProgramBuilder, RotationOp};
    use crate::stdops;
    use std::sync::Arc;

    /// One member of a rotation parameter sweep: H⊗m on `x`, then an
    /// `x`-controlled Ry(θ·scale(x)) on the indicator qubit, then a QFT
    /// on `x`. Only the angle closure varies across members — the
    /// structure hash is identical.
    fn sweep_member(m: usize, scale: f64) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", m);
        let ind = pb.register("ind", 1);
        pb.hadamard_all(x);
        pb.rotation(RotationOp {
            name: "sweep".into(),
            x,
            target: ind,
            angle: Arc::new(move |v| scale * (v as f64 + 0.5)),
            gate_impl: None,
        });
        pb.qft(x);
        pb.build().unwrap()
    }

    fn multiplication_member(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.hadamard_all(a);
        pb.hadamard_all(b);
        pb.classical(stdops::multiply(a, b, c, m));
        pb.build().unwrap()
    }

    #[test]
    fn batched_sweep_matches_per_member_hybrid_runs() {
        let scales = [0.11, 0.42, 0.73, 1.04, 1.35];
        let members: Vec<_> = scales.iter().map(|&s| sweep_member(4, s)).collect();
        let n = members[0].n_qubits();
        let exec = BatchExecutor::new();
        let (out, report) = exec
            .run_with_report(&members, BatchStateVector::zero_state(n, members.len()))
            .unwrap();
        assert_eq!(report.steps.len(), members[0].ops().len());
        // Every member agrees with its own solo hybrid run.
        let solo = HybridExecutor::new();
        for (j, member) in members.iter().enumerate() {
            let reference = solo.run(member, StateVector::zero_state(n)).unwrap();
            let diff = out.member_max_diff(j, &reference);
            assert!(diff < 1e-12, "member {j}: {diff}");
        }
        // The gate prelude batched; the emulated rotation runs through the
        // batched in-layout kernel (per-member only when lowered to gates).
        assert!(report.steps.iter().any(|s| s.batched));
        let rot = report
            .steps
            .iter()
            .find(|s| s.op.contains("rotation"))
            .unwrap();
        assert_eq!(rot.batched, !rot.backend.is_simulate());
        // The report renders.
        let table = report.to_string();
        assert!(table.contains("batched"), "{table}");
    }

    #[test]
    fn phase_oracles_fall_back_to_the_per_member_route() {
        // Per-member phase predicates: member k marks value k. The phase
        // op has no batched arm, so it must take the per-member route and
        // still give each member its own closure's semantics.
        let members: Vec<_> = (0..3)
            .map(|k| {
                let mut pb = ProgramBuilder::new();
                let x = pb.register("x", 3);
                pb.hadamard_all(x);
                pb.phase_oracle(stdops::phase_if(
                    "mark-member",
                    vec![x],
                    std::f64::consts::PI,
                    move |v| v[0] == k as u64,
                ));
                pb.build().unwrap()
            })
            .collect();
        let n = members[0].n_qubits();
        let exec = BatchExecutor::new();
        let (out, report) = exec
            .run_with_report(&members, BatchStateVector::zero_state(n, members.len()))
            .unwrap();
        assert!(report
            .steps
            .iter()
            .any(|s| !s.batched && s.op.contains("oracle")));
        assert!(report.to_string().contains("per-member"));
        let solo = HybridExecutor::new();
        for (j, member) in members.iter().enumerate() {
            let reference = solo.run(member, StateVector::zero_state(n)).unwrap();
            assert!(out.member_max_diff(j, &reference) < 1e-12, "member {j}");
        }
    }

    #[test]
    fn batched_classical_map_matches_per_member_runs() {
        // At this size the hybrid plan may pick either route for the
        // multiply — the batch must agree with solo runs regardless.
        let members: Vec<_> = (0..3).map(|_| multiplication_member(2)).collect();
        let n = members[0].n_qubits();
        let out = BatchExecutor::new()
            .run(&members, BatchStateVector::zero_state(n, members.len()))
            .unwrap();
        let solo = HybridExecutor::new();
        for (j, member) in members.iter().enumerate() {
            let reference = solo.run(member, StateVector::zero_state(n)).unwrap();
            assert!(out.member_max_diff(j, &reference) < 1e-12, "member {j}");
        }
    }

    #[test]
    fn repeated_batches_plan_once_per_structure() {
        let exec = BatchExecutor::new();
        assert_eq!(exec.plan_cache_misses(), 0);
        for _ in 0..3 {
            // Fresh instances every round: only the structure repeats.
            let members: Vec<_> = (0..4)
                .map(|k| sweep_member(3, 0.2 * (k + 1) as f64))
                .collect();
            let n = members[0].n_qubits();
            exec.run(&members, BatchStateVector::zero_state(n, members.len()))
                .unwrap();
        }
        assert_eq!(
            exec.plan_cache_misses(),
            1,
            "same structure must not re-plan"
        );
        // A different qubit count is a different structure: miss + evict.
        let members: Vec<_> = (0..2)
            .map(|k| sweep_member(4, 0.3 * (k + 1) as f64))
            .collect();
        let n = members[0].n_qubits();
        exec.run(&members, BatchStateVector::zero_state(n, members.len()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
    }

    #[test]
    fn heterogeneous_batches_are_rejected() {
        let exec = BatchExecutor::new();
        // Empty batch.
        assert!(matches!(
            exec.run(&[], BatchStateVector::zero_state(3, 1)),
            Err(EmuError::PlanMismatch { .. })
        ));
        // Mixed qubit counts.
        let mixed = vec![sweep_member(3, 0.1), sweep_member(4, 0.1)];
        assert!(matches!(
            exec.run(&mixed, BatchStateVector::zero_state(4, 2)),
            Err(EmuError::DimensionMismatch { .. })
        ));
        // Same width, different op structure.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 4);
        pb.qft(a);
        let other = pb.build().unwrap();
        let mixed = vec![sweep_member(3, 0.1), other];
        assert!(matches!(
            exec.run(&mixed, BatchStateVector::zero_state(4, 2)),
            Err(EmuError::PlanMismatch { .. })
        ));
        // Batch width must match the member count.
        let members = vec![sweep_member(3, 0.1), sweep_member(3, 0.2)];
        assert!(matches!(
            exec.run(&members, BatchStateVector::zero_state(4, 3)),
            Err(EmuError::DimensionMismatch { .. })
        ));
        // Initial state width must match the programs.
        assert!(matches!(
            exec.run(&members, BatchStateVector::zero_state(3, 2)),
            Err(EmuError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn unfused_and_calibrated_configs_agree_with_default() {
        let members: Vec<_> = (0..3)
            .map(|k| sweep_member(3, 0.5 + 0.1 * k as f64))
            .collect();
        let n = members[0].n_qubits();
        let initial = BatchStateVector::zero_state(n, members.len());
        let default_out = BatchExecutor::new().run(&members, initial.clone()).unwrap();
        let unfused_out = BatchExecutor::new()
            .with_config(SimConfig::unfused())
            .run(&members, initial.clone())
            .unwrap();
        let calibrated_out = BatchExecutor::calibrated().run(&members, initial).unwrap();
        for j in 0..members.len() {
            let reference = default_out.member(j);
            assert!(unfused_out.member_max_diff(j, &reference) < 1e-12);
            assert!(calibrated_out.member_max_diff(j, &reference) < 1e-12);
        }
    }
}

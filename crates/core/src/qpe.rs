//! Quantum phase estimation: gate-level reference and the two emulation
//! shortcuts of paper §3.3 (repeated squaring and eigendecomposition).
//!
//! All three strategies produce the *same* final state (up to floating
//! point), which the integration tests verify:
//!
//! * **Gate level** — H on the `b` phase qubits, then `2^j` repetitions of
//!   controlled-U for phase qubit `j` (paper Eq. 7), then an inverse QFT on
//!   the phase register. Cost O(G·2^{n+b}).
//! * **Repeated squaring** — build dense `U` once (O(G·2^{2n})), square it
//!   `b−1` times (`zgemm`-style GEMMs), apply each `U^{2^j}` as one
//!   controlled dense operator. Cost O(2^{3n}·b) for the squarings.
//! * **Eigendecomposition** — `zgeev`-style Schur decomposition of `U`;
//!   the post-QPE state is then written down analytically from the
//!   eigenphases via the QPE kernel
//!   `A_x(φ) = 2^{-b} Σ_y e^{2πi y(φ − x/2^b)}`.

use crate::error::EmuError;
use crate::program::QpeOp;
use qcemu_linalg::{eig, powers_of_two, CMatrix, MulAlgorithm, C64};
use qcemu_sim::circuits::qft::inverse_qft_circuit;
use qcemu_sim::{apply_dense_to_register, circuit_to_dense, Circuit, Gate, StateVector};

/// Which QPE execution strategy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpeStrategy {
    /// Full gate-level simulation (the baseline the paper compares
    /// against).
    GateLevel,
    /// Dense-U + repeated squaring emulation.
    RepeatedSquaring,
    /// Dense-U + eigendecomposition emulation.
    Eigendecomposition,
}

/// Applies a QPE op to `state` with the chosen strategy. The phase register
/// must be |0⟩ (validated); the target register may hold any state,
/// entangled with bystander qubits or not.
pub fn apply_qpe(
    state: &mut StateVector,
    op: &QpeOp,
    target_bits: &[usize],
    phase_bits: &[usize],
    strategy: QpeStrategy,
) -> Result<(), EmuError> {
    verify_phase_register_zero(state, phase_bits)?;
    match strategy {
        QpeStrategy::GateLevel => apply_gate_level(state, op, target_bits, phase_bits),
        QpeStrategy::RepeatedSquaring => {
            apply_repeated_squaring(state, op, target_bits, phase_bits)
        }
        QpeStrategy::Eigendecomposition => apply_eigen(state, op, target_bits, phase_bits),
    }
}

fn verify_phase_register_zero(state: &StateVector, phase_bits: &[usize]) -> Result<(), EmuError> {
    const TOL: f64 = 1e-12;
    let pmask: usize = phase_bits.iter().fold(0, |m, &q| m | (1usize << q));
    for (i, amp) in state.amplitudes().iter().enumerate() {
        if amp.norm_sqr() > TOL && i & pmask != 0 {
            return Err(EmuError::TargetNotZero {
                op: "qpe".into(),
                register: "phase".into(),
            });
        }
    }
    Ok(())
}

/// Gate-level QPE (paper's simulation baseline).
fn apply_gate_level(
    state: &mut StateVector,
    op: &QpeOp,
    target_bits: &[usize],
    phase_bits: &[usize],
) -> Result<(), EmuError> {
    let b = phase_bits.len();
    // Remap the unitary onto the target register's physical qubits.
    let remapped = op
        .unitary
        .remap_qubits(state.n_qubits(), |q| target_bits[q]);

    for &p in phase_bits {
        state.apply(&Gate::h(p));
    }
    // Controlled-U^{2^j}: 2^j sequential controlled applications.
    for (j, &p) in phase_bits.iter().enumerate() {
        let controlled = remapped.controlled_by(p);
        let reps = 1usize << j;
        for _ in 0..reps {
            state.apply_circuit(&controlled);
        }
    }
    apply_inverse_qft_on(state, phase_bits);
    let _ = b;
    Ok(())
}

/// Inverse QFT on an arbitrary qubit subset, by remapping the circuit.
fn apply_inverse_qft_on(state: &mut StateVector, bits: &[usize]) {
    let iqft = inverse_qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
    state.apply_circuit(&iqft);
}

/// Builds the dense matrix of the QPE unitary (over the target register's
/// *relative* qubits).
pub fn dense_unitary(op: &QpeOp, target_len: usize) -> Result<CMatrix, EmuError> {
    // Extend the circuit to the full register width (it may address fewer
    // qubits than the register has).
    let mut c = Circuit::new(target_len);
    c.extend(&op.unitary);
    let u = circuit_to_dense(&c);
    if !u.is_unitary(1e-8) {
        return Err(EmuError::BadUnitary {
            reason: "dense operator failed the unitarity check".into(),
        });
    }
    Ok(u)
}

/// Repeated-squaring emulation.
fn apply_repeated_squaring(
    state: &mut StateVector,
    op: &QpeOp,
    target_bits: &[usize],
    phase_bits: &[usize],
) -> Result<(), EmuError> {
    let b = phase_bits.len();
    let u = dense_unitary(op, target_bits.len())?;
    let powers = powers_of_two(&u, b, MulAlgorithm::Gemm);

    for &p in phase_bits {
        state.apply(&Gate::h(p));
    }
    let n = state.n_qubits();
    for (j, &p) in phase_bits.iter().enumerate() {
        apply_dense_to_register(state.amplitudes_mut(), n, target_bits, &powers[j], &[p]);
    }
    // Inverse QFT via the FFT shortcut (we are emulating, after all).
    qcemu_fft::inverse_qft_subspace(state.amplitudes_mut(), n, phase_bits);
    Ok(())
}

/// The QPE amplitude kernel `A_x(φ) = 2^{-b} Σ_{y<2^b} e^{2πi y (φ − x/2^b)}`.
///
/// `φ` is the eigenphase as a fraction of a turn (`λ = e^{2πiφ}`).
pub fn qpe_kernel(phi: f64, x: usize, b: usize) -> C64 {
    let m = 1usize << b;
    let delta = phi - x as f64 / m as f64;
    // Geometric sum; near-resonant branch to avoid 0/0.
    let step = std::f64::consts::TAU * delta;
    let denom = C64::ONE - C64::cis(step);
    if denom.abs() < 1e-12 {
        // δ is (numerically) an integer: all terms are 1 (e^{2πi y k} = 1).
        return C64::from_real(1.0);
    }
    let numer = C64::ONE - C64::cis(step * m as f64);
    (numer / denom).scale(1.0 / m as f64)
}

/// Eigendecomposition emulation: write the exact post-QPE state from the
/// eigenphases. For each coset `r` of the bystander qubits:
/// `ψ_out[r] = Σ_k ⟨u_k|ψ_r⟩ · |u_k⟩ ⊗ Σ_x A_x(φ_k)|x⟩`.
fn apply_eigen(
    state: &mut StateVector,
    op: &QpeOp,
    target_bits: &[usize],
    phase_bits: &[usize],
) -> Result<(), EmuError> {
    let m_bits = target_bits.len();
    let b = phase_bits.len();
    let dim = 1usize << m_bits;
    let pdim = 1usize << b;

    let u = dense_unitary(op, m_bits)?;
    let decomposition = eig(&u).map_err(|e| EmuError::Eigensolver(e.to_string()))?;
    let v = decomposition
        .vectors
        .ok_or_else(|| EmuError::Eigensolver("no eigenvectors".into()))?;
    let phis: Vec<f64> = decomposition
        .values
        .iter()
        .map(|l| {
            let mut phi = l.arg() / std::f64::consts::TAU;
            if phi < 0.0 {
                phi += 1.0;
            }
            phi
        })
        .collect();

    // Caution: for non-normal U the eigenvector matrix is not unitary; U is
    // unitary here (checked in dense_unitary), so V is (numerically).
    let v_dag = v.adjoint();

    // Kernel matrix A[x][k] (pdim × dim).
    let mut kernel = CMatrix::zeros(pdim, dim);
    for x in 0..pdim {
        for (k, &phi) in phis.iter().enumerate() {
            kernel[(x, k)] = qpe_kernel(phi, x, b);
        }
    }

    let n = state.n_qubits();
    let other: Vec<usize> = (0..n)
        .filter(|q| !target_bits.contains(q) && !phase_bits.contains(q))
        .collect();
    let scatter = |v: usize, bits: &[usize]| -> usize {
        let mut x = 0usize;
        for (j, &bq) in bits.iter().enumerate() {
            x |= ((v >> j) & 1) << bq;
        }
        x
    };

    let amps_in = std::mem::take(state.amplitudes_mut());
    let mut amps_out = vec![C64::ZERO; amps_in.len()];

    for c in 0..(1usize << other.len()) {
        let base = scatter(c, &other);
        // Gather ψ_r over the target register (phase register is |0⟩).
        let mut psi = vec![C64::ZERO; dim];
        let mut weight = 0.0;
        for (t, slot) in psi.iter_mut().enumerate() {
            *slot = amps_in[base | scatter(t, target_bits)];
            weight += slot.norm_sqr();
        }
        if weight < 1e-300 {
            continue;
        }
        // d = V† ψ — eigenbasis coefficients.
        let d = v_dag.matvec(&psi);
        // W[t][k] = V[t][k]·d[k]; out[t][x] = Σ_k W[t][k]·kernel[x][k].
        for t in 0..dim {
            for x in 0..pdim {
                let mut acc = C64::ZERO;
                for (k, dk) in d.iter().enumerate() {
                    acc += v[(t, k)] * *dk * kernel[(x, k)];
                }
                if acc != C64::ZERO {
                    amps_out[base | scatter(t, target_bits) | scatter(x, phase_bits)] = acc;
                }
            }
        }
    }
    *state.amplitudes_mut() = amps_out;
    Ok(())
}

/// Exact outcome distribution of a `b`-bit QPE on input `ψ` (over the
/// target register only): `P(x) = Σ_k |⟨u_k|ψ⟩|²·|A_x(φ_k)|²` — the §3.4
/// "no sampling needed" shortcut composed with §3.3.
pub fn qpe_outcome_distribution(
    unitary: &Circuit,
    input: &[C64],
    b: usize,
) -> Result<Vec<f64>, EmuError> {
    let m_bits = unitary.n_qubits().max(1);
    let dim = 1usize << m_bits;
    if input.len() != dim {
        return Err(EmuError::DimensionMismatch {
            expected: m_bits,
            got: input.len().trailing_zeros() as usize,
        });
    }
    let op = QpeOp {
        unitary: unitary.clone(),
        target: crate::program::RegisterId(0),
        phase: crate::program::RegisterId(1),
    };
    let u = dense_unitary(&op, m_bits)?;
    let decomposition = eig(&u).map_err(|e| EmuError::Eigensolver(e.to_string()))?;
    let v = decomposition.vectors.unwrap();
    let d = v.adjoint().matvec(input);
    let pdim = 1usize << b;
    let mut dist = vec![0.0f64; pdim];
    for (k, lambda) in decomposition.values.iter().enumerate() {
        let wk = d[k].norm_sqr();
        if wk < 1e-300 {
            continue;
        }
        let mut phi = lambda.arg() / std::f64::consts::TAU;
        if phi < 0.0 {
            phi += 1.0;
        }
        for (x, slot) in dist.iter_mut().enumerate() {
            *slot += wk * qpe_kernel(phi, x, b).norm_sqr();
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RegisterId;
    use qcemu_sim::circuits::{tfim_trotter_step, TfimParams};

    fn phase_gate_circuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(1);
        c.phase(0, theta);
        c
    }

    fn make_op(unitary: Circuit) -> QpeOp {
        QpeOp {
            unitary,
            target: RegisterId(0),
            phase: RegisterId(1),
        }
    }

    #[test]
    fn kernel_is_exact_for_representable_phases() {
        let b = 4;
        // φ = 5/16 is exactly representable: A_x = δ_{x,5}.
        for x in 0..16usize {
            let a = qpe_kernel(5.0 / 16.0, x, b);
            if x == 5 {
                assert!((a.abs() - 1.0).abs() < 1e-10, "A_5 = {a:?}");
            } else {
                assert!(a.abs() < 1e-10, "A_{x} = {a:?}");
            }
        }
    }

    #[test]
    fn kernel_distribution_sums_to_one() {
        let b = 5;
        for &phi in &[0.1234f64, 0.77, 0.5, 0.03125] {
            let total: f64 = (0..32).map(|x| qpe_kernel(phi, x, b).norm_sqr()).sum();
            assert!((total - 1.0).abs() < 1e-10, "φ = {phi}: total {total}");
        }
    }

    #[test]
    fn all_three_strategies_agree_on_eigenstate_input() {
        // Phase gate: |1⟩ has eigenphase θ. Target = qubit 0 (|1⟩),
        // phase register = 3 qubits.
        let theta = 2.0 * std::f64::consts::PI * (3.0 / 8.0); // exactly representable
        let op = make_op(phase_gate_circuit(theta));
        let target_bits = [0usize];
        let phase_bits = [1usize, 2, 3];

        let mut results = Vec::new();
        for strategy in [
            QpeStrategy::GateLevel,
            QpeStrategy::RepeatedSquaring,
            QpeStrategy::Eigendecomposition,
        ] {
            let mut sv = StateVector::basis_state(4, 0b0001); // target |1⟩
            apply_qpe(&mut sv, &op, &target_bits, &phase_bits, strategy).unwrap();
            results.push(sv);
        }
        // Exact phase ⇒ the phase register reads 3 with certainty.
        for (i, sv) in results.iter().enumerate() {
            let dist = sv.register_distribution(&phase_bits);
            assert!((dist[3] - 1.0).abs() < 1e-8, "strategy {i}: dist {dist:?}");
        }
        // And the full states agree.
        assert!(results[0].max_diff_up_to_phase(&results[1]) < 1e-8);
        assert!(results[0].max_diff_up_to_phase(&results[2]) < 1e-7);
    }

    #[test]
    fn strategies_agree_on_superposed_eigenstates() {
        // H|0⟩ input on a phase gate: mixture of φ = 0 and φ = θ/2π.
        let theta = 2.0 * std::f64::consts::PI * 0.3; // NOT representable in 3 bits
        let op = make_op(phase_gate_circuit(theta));
        let target_bits = [0usize];
        let phase_bits = [1usize, 2, 3];

        let mut states = Vec::new();
        for strategy in [
            QpeStrategy::GateLevel,
            QpeStrategy::RepeatedSquaring,
            QpeStrategy::Eigendecomposition,
        ] {
            let mut sv = StateVector::zero_state(4);
            sv.apply(&Gate::h(0));
            apply_qpe(&mut sv, &op, &target_bits, &phase_bits, strategy).unwrap();
            states.push(sv);
        }
        assert!(
            states[0].max_diff_up_to_phase(&states[1]) < 1e-8,
            "gate vs squaring: {}",
            states[0].max_diff_up_to_phase(&states[1])
        );
        assert!(
            states[0].max_diff_up_to_phase(&states[2]) < 1e-7,
            "gate vs eigen: {}",
            states[0].max_diff_up_to_phase(&states[2])
        );
    }

    #[test]
    fn strategies_agree_on_tfim_operator() {
        // The Table 2 workload at toy size: 2-site TFIM step, 3-bit phase.
        let u = tfim_trotter_step(2, TfimParams::default());
        let op = QpeOp {
            unitary: u,
            target: RegisterId(0),
            phase: RegisterId(1),
        };
        let target_bits = [0usize, 1];
        let phase_bits = [2usize, 3, 4];

        let mut states = Vec::new();
        for strategy in [
            QpeStrategy::GateLevel,
            QpeStrategy::RepeatedSquaring,
            QpeStrategy::Eigendecomposition,
        ] {
            let mut sv = StateVector::zero_state(5);
            sv.apply(&Gate::h(0));
            sv.apply(&Gate::cnot(0, 1));
            apply_qpe(&mut sv, &op, &target_bits, &phase_bits, strategy).unwrap();
            states.push(sv);
        }
        assert!(states[0].max_diff_up_to_phase(&states[1]) < 1e-7);
        assert!(states[0].max_diff_up_to_phase(&states[2]) < 1e-6);
    }

    #[test]
    fn distribution_matches_full_emulation() {
        let theta = 2.0 * std::f64::consts::PI * 0.23;
        let circuit = phase_gate_circuit(theta);
        let b = 4;
        // Input |1⟩ on the target qubit.
        let input = [C64::ZERO, C64::ONE];
        let dist = qpe_outcome_distribution(&circuit, &input, b).unwrap();
        assert_eq!(dist.len(), 16);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);

        // Compare against the state produced by gate-level QPE.
        let op = make_op(circuit);
        let mut sv = StateVector::basis_state(5, 1);
        apply_qpe(&mut sv, &op, &[0], &[1, 2, 3, 4], QpeStrategy::GateLevel).unwrap();
        let ref_dist = sv.register_distribution(&[1, 2, 3, 4]);
        for x in 0..16 {
            assert!(
                (dist[x] - ref_dist[x]).abs() < 1e-8,
                "x = {x}: {} vs {}",
                dist[x],
                ref_dist[x]
            );
        }
        // The mode is the best 4-bit approximation of 0.23: round(0.23·16) = 4.
        let mode = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(mode, 4);
    }

    #[test]
    fn phase_register_must_be_zero() {
        let op = make_op(phase_gate_circuit(0.3));
        let mut sv = StateVector::basis_state(3, 0b010); // phase bit set
        let err = apply_qpe(&mut sv, &op, &[0], &[1, 2], QpeStrategy::GateLevel).unwrap_err();
        assert!(matches!(err, EmuError::TargetNotZero { .. }));
    }

    #[test]
    fn bystander_qubits_survive_qpe() {
        // A bystander qubit in superposition must be untouched and stay
        // unentangled when the target is an eigenstate.
        let theta = 2.0 * std::f64::consts::PI * (1.0 / 4.0);
        let op = make_op(phase_gate_circuit(theta));
        for strategy in [
            QpeStrategy::RepeatedSquaring,
            QpeStrategy::Eigendecomposition,
        ] {
            let mut sv = StateVector::zero_state(4); // q0 target, q1 phase(2)… q3 bystander
            sv.apply(&Gate::x(0));
            sv.apply(&Gate::h(3));
            apply_qpe(&mut sv, &op, &[0], &[1, 2], strategy).unwrap();
            // φ = 1/4 → 2-bit estimate = 1 exactly.
            let dist = sv.register_distribution(&[1, 2]);
            assert!((dist[1] - 1.0).abs() < 1e-8, "{strategy:?}: {dist:?}");
            let bystander = sv.register_distribution(&[3]);
            assert!((bystander[0] - 0.5).abs() < 1e-8, "{strategy:?}");
            assert!((bystander[1] - 0.5).abs() < 1e-8, "{strategy:?}");
        }
    }
}

//! The high-level quantum program IR.
//!
//! The paper's central observation: emulation is possible "if the quantum
//! program is available in a high-level language, where the higher levels
//! of abstractions are easy to identify" (§5). This module is that
//! language: a program is a sequence of [`HighLevelOp`]s over named
//! registers — raw gates, classical functions, QFTs and phase estimations —
//! which either executor ([`crate::executor::GateLevelSimulator`] or
//! [`crate::executor::Emulator`]) can run.

use crate::error::EmuError;
use qcemu_sim::{Circuit, Gate};
use std::fmt;
use std::sync::Arc;

/// Handle to a register within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RegisterId(pub(crate) usize);

/// A named, contiguous qubit register.
#[derive(Clone, Debug)]
pub struct ProgramRegister {
    /// Human-readable name.
    pub name: String,
    /// First qubit.
    pub offset: usize,
    /// Width in qubits.
    pub len: usize,
}

impl ProgramRegister {
    /// Qubit indices, LSB of the value first.
    pub fn bits(&self) -> Vec<usize> {
        (self.offset..self.offset + self.len).collect()
    }

    /// Extracts this register's value from a basis index.
    #[inline]
    pub fn value_of(&self, basis_index: usize) -> u64 {
        ((basis_index >> self.offset) as u64) & self.mask()
    }

    /// Value mask.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.len >= 64 {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }
}

/// How a classical map treats its registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// `f` is a bijection on the joint value space of all listed registers
    /// (e.g. `(a, b, c) ↦ (a, b, c + a·b)`).
    InPlaceBijection,
    /// The last `n_targets` registers must be |0⟩ on input; `f` computes
    /// their values from the earlier registers (e.g. division writing
    /// quotient and remainder). Injectivity is then automatic.
    ZeroInitializedTargets {
        /// How many trailing registers are outputs.
        n_targets: usize,
    },
}

/// A classical function operating on register values.
///
/// `f` receives the current values of `regs` (in order) and overwrites them
/// with the mapped values. The emulator applies it directly to basis-state
/// labels (paper §3.1); the simulator needs `gate_impl`.
#[derive(Clone)]
pub struct ClassicalMap {
    /// Display name (also used in error messages).
    pub name: String,
    /// Registers the map reads/writes.
    pub regs: Vec<RegisterId>,
    /// The function itself.
    pub f: Arc<dyn Fn(&mut [u64]) + Send + Sync>,
    /// Reversibility contract.
    pub kind: MapKind,
    /// Optional reversible gate-level implementation.
    pub gate_impl: Option<GateImpl>,
}

impl fmt::Debug for ClassicalMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassicalMap")
            .field("name", &self.name)
            .field("regs", &self.regs)
            .field("kind", &self.kind)
            .field("has_gate_impl", &self.gate_impl.is_some())
            .finish()
    }
}

/// A reversible gate-level implementation of a classical map.
///
/// The circuit addresses the *program's* qubits at their real positions
/// plus `n_ancilla` work qubits appended above the program space — the
/// "additional work qubits" whose exponential simulation cost the emulator
/// avoids (paper §3.1). Construction is deferred (`build`) because ancilla
/// positions are only known once the whole program is laid out.
#[derive(Clone)]
pub struct GateImpl {
    /// Work qubits beyond the architectural registers; must be |0⟩ before
    /// and after.
    pub n_ancilla: usize,
    /// Builds the circuit over `program.n_qubits() + n_ancilla` qubits;
    /// ancilla `k` is qubit `program.n_qubits() + k`.
    pub build: Arc<dyn Fn(&QuantumProgram) -> Circuit + Send + Sync>,
}

impl fmt::Debug for GateImpl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateImpl")
            .field("n_ancilla", &self.n_ancilla)
            .finish()
    }
}

/// A classical-predicate phase: multiplies the amplitude of every basis
/// state whose register values satisfy `predicate` by `e^{i·phase}` — the
/// diagonal cousin of [`ClassicalMap`] (Grover oracles, marked-state
/// reflections). Emulation is a single conditional scan; simulation needs
/// a gate-level implementation.
#[derive(Clone)]
pub struct PhaseOracle {
    /// Display name.
    pub name: String,
    /// Registers the predicate reads.
    pub regs: Vec<RegisterId>,
    /// The predicate over register values (in `regs` order).
    pub predicate: Arc<dyn Fn(&[u64]) -> bool + Send + Sync>,
    /// Phase angle θ (π = the Grover sign flip).
    pub phase: f64,
    /// Optional gate-level implementation.
    pub gate_impl: Option<GateImpl>,
}

impl fmt::Debug for PhaseOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhaseOracle")
            .field("name", &self.name)
            .field("regs", &self.regs)
            .field("phase", &self.phase)
            .field("has_gate_impl", &self.gate_impl.is_some())
            .finish()
    }
}

/// A register-controlled rotation `|x⟩|t⟩ ↦ |x⟩ Ry(θ(x))|t⟩` — the
/// amplitude-encoding step of quantum Monte Carlo (paper §5's "quantum
/// accelerated Monte Carlo sampling"). The emulator applies one 2×2
/// rotation per basis pair with a classically computed angle; a gate-level
/// compilation needs one multi-controlled rotation per register value (or
/// comparator networks with ancillas) — exponential either way.
#[derive(Clone)]
pub struct RotationOp {
    /// Display name.
    pub name: String,
    /// The control register whose value parameterises the angle.
    pub x: RegisterId,
    /// The rotated register; must be exactly one qubit wide.
    pub target: RegisterId,
    /// The angle function θ(x).
    pub angle: Arc<dyn Fn(u64) -> f64 + Send + Sync>,
    /// Optional gate-level implementation override; when absent the
    /// simulator falls back to the generic per-value multi-controlled-Ry
    /// expansion.
    pub gate_impl: Option<GateImpl>,
}

impl fmt::Debug for RotationOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RotationOp")
            .field("name", &self.name)
            .field("x", &self.x)
            .field("target", &self.target)
            .finish()
    }
}

/// Quantum phase estimation over a target register (paper §3.3).
#[derive(Clone, Debug)]
pub struct QpeOp {
    /// The unitary `U`, as a circuit over the target register's qubits
    /// (indices `0..target.len`, remapped internally).
    pub unitary: Circuit,
    /// The register holding (a superposition of) eigenvectors of `U`.
    pub target: RegisterId,
    /// The `b`-bit output register; must be |0⟩ on input. After the op it
    /// carries the phase estimate: measuring yields `x` with the Fejér-like
    /// QPE distribution around `2^b·θ/2π`.
    pub phase: RegisterId,
}

/// One step of a quantum program.
#[derive(Clone, Debug)]
pub enum HighLevelOp {
    /// Raw gates on absolute program qubits.
    Gates(Circuit),
    /// Classical function on registers (paper §3.1).
    Classical(ClassicalMap),
    /// Classical-predicate phase (diagonal oracle).
    Phase(PhaseOracle),
    /// Register-controlled Ry rotation (amplitude encoding).
    Rotation(RotationOp),
    /// QFT on one register (paper §3.2, Eq. 4 convention).
    Qft(RegisterId),
    /// Inverse QFT on one register.
    InverseQft(RegisterId),
    /// Phase estimation (paper §3.3).
    Qpe(QpeOp),
}

/// A complete program: registers plus an op sequence.
#[derive(Clone, Debug)]
pub struct QuantumProgram {
    registers: Vec<ProgramRegister>,
    n_qubits: usize,
    ops: Vec<HighLevelOp>,
    /// Unique per `ProgramBuilder::build` call (clones share it); lets an
    /// execution plan prove it was lowered from this exact program.
    instance_id: u64,
    /// Lazily computed [`QuantumProgram::structure_hash`], shared by
    /// clones (programs are immutable after `build`, so one walk
    /// suffices for the instance's lifetime).
    structure_hash: Arc<std::sync::OnceLock<u64>>,
}

impl QuantumProgram {
    /// Identity of this program instance: assigned once at build time and
    /// shared by clones. Execution plans record it so a plan cannot be
    /// run against a different program (ops are identified by index, and
    /// plans may carry circuits built from the original's closures).
    pub fn instance_id(&self) -> u64 {
        self.instance_id
    }
    /// Total architectural qubits (ancillas used by gate-level lowering of
    /// classical maps are *not* counted — they exist only on the simulator
    /// path).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Register table.
    pub fn registers(&self) -> &[ProgramRegister] {
        &self.registers
    }

    /// Looks up a register.
    pub fn register(&self, id: RegisterId) -> &ProgramRegister {
        &self.registers[id.0]
    }

    /// The op sequence.
    pub fn ops(&self) -> &[HighLevelOp] {
        &self.ops
    }

    /// Largest ancilla requirement over all gate-level implementations —
    /// the extra qubits (hence the 2^anc memory factor) the simulator pays.
    pub fn max_gate_ancillas(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                HighLevelOp::Classical(cm) => {
                    cm.gate_impl.as_ref().map(|g| g.n_ancilla).unwrap_or(0)
                }
                HighLevelOp::Phase(po) => po.gate_impl.as_ref().map(|g| g.n_ancilla).unwrap_or(0),
                HighLevelOp::Rotation(ro) => {
                    ro.gate_impl.as_ref().map(|g| g.n_ancilla).unwrap_or(0)
                }
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// `true` if every op has a gate-level path.
    pub fn fully_simulable(&self) -> bool {
        self.ops.iter().all(|op| match op {
            HighLevelOp::Classical(cm) => cm.gate_impl.is_some(),
            HighLevelOp::Phase(po) => po.gate_impl.is_some(),
            _ => true,
        })
    }

    /// Hash of the program's *structure*: registers, op sequence, gate
    /// lists (angles by exact bit pattern), op names, map kinds, and
    /// gate-impl ancilla counts. Two programs with different structure
    /// hash differently (up to collisions); closures are opaque and
    /// represented by their op names only.
    ///
    /// This is the plan-cache guard
    /// ([`HybridExecutor`](crate::executor::HybridExecutor)): a cached
    /// [`ExecutionPlan`](crate::planner::ExecutionPlan) is reused only
    /// while both the [`QuantumProgram::instance_id`] (which pins the
    /// closures) and this hash (which pins everything hashable) are
    /// unchanged.
    ///
    /// The walk is paid once per program instance (memoised, shared by
    /// clones) — repeated `run()`s on the cache-hit path cost one atomic
    /// load, not a re-hash of every gate.
    pub fn structure_hash(&self) -> u64 {
        *self
            .structure_hash
            .get_or_init(|| self.compute_structure_hash())
    }

    fn compute_structure_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.n_qubits.hash(&mut h);
        for r in &self.registers {
            r.name.hash(&mut h);
            r.offset.hash(&mut h);
            r.len.hash(&mut h);
        }
        for op in &self.ops {
            std::mem::discriminant(op).hash(&mut h);
            match op {
                HighLevelOp::Gates(c) => hash_circuit(c, &mut h),
                HighLevelOp::Classical(cm) => {
                    cm.name.hash(&mut h);
                    cm.regs.hash(&mut h);
                    std::mem::discriminant(&cm.kind).hash(&mut h);
                    if let MapKind::ZeroInitializedTargets { n_targets } = cm.kind {
                        n_targets.hash(&mut h);
                    }
                    hash_gate_impl(&cm.gate_impl, &mut h);
                }
                HighLevelOp::Phase(po) => {
                    po.name.hash(&mut h);
                    po.regs.hash(&mut h);
                    po.phase.to_bits().hash(&mut h);
                    hash_gate_impl(&po.gate_impl, &mut h);
                }
                HighLevelOp::Rotation(ro) => {
                    ro.name.hash(&mut h);
                    ro.x.hash(&mut h);
                    ro.target.hash(&mut h);
                    hash_gate_impl(&ro.gate_impl, &mut h);
                }
                HighLevelOp::Qft(r) | HighLevelOp::InverseQft(r) => r.hash(&mut h),
                HighLevelOp::Qpe(qpe) => {
                    qpe.target.hash(&mut h);
                    qpe.phase.hash(&mut h);
                    hash_circuit(&qpe.unitary, &mut h);
                }
            }
        }
        h.finish()
    }
}

/// Hashes a circuit gate-by-gate, with rotation angles and custom-unitary
/// entries taken by exact `f64` bit pattern.
fn hash_circuit(c: &Circuit, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash;
    c.n_qubits().hash(h);
    for gate in c.gates() {
        std::mem::discriminant(gate).hash(h);
        match gate {
            Gate::Unary {
                op,
                target,
                controls,
            } => {
                std::mem::discriminant(op).hash(h);
                match op {
                    qcemu_sim::GateOp::Rx(t)
                    | qcemu_sim::GateOp::Ry(t)
                    | qcemu_sim::GateOp::Rz(t)
                    | qcemu_sim::GateOp::Phase(t) => t.to_bits().hash(h),
                    qcemu_sim::GateOp::U(m) => {
                        for row in m {
                            for z in row {
                                z.re.to_bits().hash(h);
                                z.im.to_bits().hash(h);
                            }
                        }
                    }
                    _ => {}
                }
                target.hash(h);
                controls.hash(h);
            }
            Gate::Swap { a, b, controls } => {
                a.hash(h);
                b.hash(h);
                controls.hash(h);
            }
        }
    }
}

/// Hashes a gate impl's observable surface (presence + ancilla count —
/// the builder closure itself is opaque).
fn hash_gate_impl(gi: &Option<GateImpl>, h: &mut impl std::hash::Hasher) {
    use std::hash::Hash;
    match gi {
        None => 0u8.hash(h),
        Some(gi) => {
            1u8.hash(h);
            gi.n_ancilla.hash(h);
        }
    }
}

/// Builder for [`QuantumProgram`]s.
#[derive(Default)]
pub struct ProgramBuilder {
    registers: Vec<ProgramRegister>,
    next_qubit: usize,
    ops: Vec<HighLevelOp>,
}

impl ProgramBuilder {
    /// Empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates a named register of `len` qubits.
    pub fn register(&mut self, name: &str, len: usize) -> RegisterId {
        assert!(len >= 1, "empty register '{name}'");
        let id = RegisterId(self.registers.len());
        self.registers.push(ProgramRegister {
            name: name.to_string(),
            offset: self.next_qubit,
            len,
        });
        self.next_qubit += len;
        id
    }

    /// Current total qubit count.
    pub fn n_qubits(&self) -> usize {
        self.next_qubit
    }

    /// Appends a raw-gate op built through a closure.
    pub fn gates(&mut self, build: impl FnOnce(&mut Circuit)) -> &mut Self {
        let mut c = Circuit::new(self.next_qubit);
        build(&mut c);
        self.ops.push(HighLevelOp::Gates(c));
        self
    }

    /// Hadamard on every qubit of a register (uniform superposition prep).
    pub fn hadamard_all(&mut self, reg: RegisterId) -> &mut Self {
        let bits = self.registers[reg.0].bits();
        self.gates(|c| {
            for q in bits {
                c.push(Gate::h(q));
            }
        })
    }

    /// X gates writing a classical constant into a (|0⟩) register.
    pub fn set_constant(&mut self, reg: RegisterId, value: u64) -> &mut Self {
        let r = self.registers[reg.0].clone();
        self.gates(|c| {
            for j in 0..r.len {
                if (value >> j) & 1 == 1 {
                    c.push(Gate::x(r.offset + j));
                }
            }
        })
    }

    /// Appends a classical map op.
    pub fn classical(&mut self, map: ClassicalMap) -> &mut Self {
        self.ops.push(HighLevelOp::Classical(map));
        self
    }

    /// Appends a phase-oracle op.
    pub fn phase_oracle(&mut self, oracle: PhaseOracle) -> &mut Self {
        self.ops.push(HighLevelOp::Phase(oracle));
        self
    }

    /// Appends a register-controlled rotation op.
    pub fn rotation(&mut self, op: RotationOp) -> &mut Self {
        self.ops.push(HighLevelOp::Rotation(op));
        self
    }

    /// Appends a QFT on `reg`.
    pub fn qft(&mut self, reg: RegisterId) -> &mut Self {
        self.ops.push(HighLevelOp::Qft(reg));
        self
    }

    /// Appends an inverse QFT on `reg`.
    pub fn inverse_qft(&mut self, reg: RegisterId) -> &mut Self {
        self.ops.push(HighLevelOp::InverseQft(reg));
        self
    }

    /// Appends a phase estimation op.
    pub fn qpe(&mut self, op: QpeOp) -> &mut Self {
        self.ops.push(HighLevelOp::Qpe(op));
        self
    }

    /// Appends an arbitrary op.
    pub fn op(&mut self, op: HighLevelOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Finalises the program, validating register/op consistency.
    pub fn build(self) -> Result<QuantumProgram, EmuError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        let program = QuantumProgram {
            registers: self.registers,
            n_qubits: self.next_qubit,
            ops: self.ops,
            instance_id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            structure_hash: Arc::new(std::sync::OnceLock::new()),
        };
        program.validate()?;
        Ok(program)
    }
}

impl QuantumProgram {
    fn validate(&self) -> Result<(), EmuError> {
        let bad = |reason: String| Err(EmuError::BadRegister { reason });
        for op in &self.ops {
            match op {
                HighLevelOp::Gates(c) => {
                    if c.n_qubits() > self.n_qubits {
                        return bad(format!(
                            "gate block addresses {} qubits, program has {}",
                            c.n_qubits(),
                            self.n_qubits
                        ));
                    }
                }
                HighLevelOp::Classical(cm) => {
                    let mut seen = std::collections::HashSet::new();
                    for r in &cm.regs {
                        if r.0 >= self.registers.len() {
                            return bad(format!("op '{}' uses unknown register", cm.name));
                        }
                        if !seen.insert(r.0) {
                            return bad(format!("op '{}' lists a register twice", cm.name));
                        }
                    }
                    if let MapKind::ZeroInitializedTargets { n_targets } = cm.kind {
                        if n_targets == 0 || n_targets > cm.regs.len() {
                            return bad(format!("op '{}': bad target count", cm.name));
                        }
                    }
                    if let Some(gi) = &cm.gate_impl {
                        let circuit = (gi.build)(self);
                        if circuit.n_qubits() > self.n_qubits + gi.n_ancilla {
                            return bad(format!(
                                "op '{}': gate impl addresses {} qubits, max is {}",
                                cm.name,
                                circuit.n_qubits(),
                                self.n_qubits + gi.n_ancilla
                            ));
                        }
                    }
                }
                HighLevelOp::Phase(po) => {
                    for r in &po.regs {
                        if r.0 >= self.registers.len() {
                            return bad(format!("oracle '{}' uses unknown register", po.name));
                        }
                    }
                }
                HighLevelOp::Rotation(ro) => {
                    if ro.x.0 >= self.registers.len() || ro.target.0 >= self.registers.len() {
                        return bad(format!("rotation '{}' uses unknown register", ro.name));
                    }
                    if ro.x == ro.target {
                        return bad(format!("rotation '{}': x and target must differ", ro.name));
                    }
                    if self.register(ro.target).len != 1 {
                        return bad(format!(
                            "rotation '{}': target register must be one qubit",
                            ro.name
                        ));
                    }
                }
                HighLevelOp::Qft(r) | HighLevelOp::InverseQft(r) => {
                    if r.0 >= self.registers.len() {
                        return bad("QFT on unknown register".into());
                    }
                }
                HighLevelOp::Qpe(qpe) => {
                    if qpe.target.0 >= self.registers.len() || qpe.phase.0 >= self.registers.len() {
                        return bad("QPE on unknown register".into());
                    }
                    if qpe.target == qpe.phase {
                        return bad("QPE target and phase registers must differ".into());
                    }
                    let t = self.register(qpe.target);
                    if qpe.unitary.n_qubits() > t.len {
                        return Err(EmuError::BadUnitary {
                            reason: format!(
                                "unitary addresses {} qubits, target register has {}",
                                qpe.unitary.n_qubits(),
                                t.len
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_contiguous_registers() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        let b = pb.register("b", 2);
        assert_eq!(pb.n_qubits(), 5);
        let prog = pb.build().unwrap();
        assert_eq!(prog.register(a).offset, 0);
        assert_eq!(prog.register(b).offset, 3);
        assert_eq!(prog.register(b).bits(), vec![3, 4]);
    }

    #[test]
    fn register_value_extraction() {
        let r = ProgramRegister {
            name: "x".into(),
            offset: 2,
            len: 3,
        };
        assert_eq!(r.value_of(0b10100), 0b101);
        assert_eq!(r.mask(), 0b111);
    }

    #[test]
    fn gates_and_constants() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 4);
        pb.set_constant(a, 0b1010);
        pb.hadamard_all(a);
        let prog = pb.build().unwrap();
        assert_eq!(prog.ops().len(), 2);
        match &prog.ops()[0] {
            HighLevelOp::Gates(c) => assert_eq!(c.gate_count(), 2), // two X gates
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_oversized_gate_block() {
        let mut pb = ProgramBuilder::new();
        let _a = pb.register("a", 2);
        pb.op(HighLevelOp::Gates(Circuit::new(5)));
        assert!(matches!(pb.build(), Err(EmuError::BadRegister { .. })));
    }

    #[test]
    fn validation_rejects_duplicate_map_registers() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        pb.classical(ClassicalMap {
            name: "dup".into(),
            regs: vec![a, a],
            f: Arc::new(|_| {}),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        });
        assert!(pb.build().is_err());
    }

    #[test]
    fn validation_rejects_qpe_register_clash() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        pb.qpe(QpeOp {
            unitary: Circuit::new(2),
            target: a,
            phase: a,
        });
        assert!(pb.build().is_err());
    }

    #[test]
    fn validation_rejects_oversized_unitary() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        let p = pb.register("p", 3);
        pb.qpe(QpeOp {
            unitary: Circuit::new(4), // bigger than target register
            target: a,
            phase: p,
        });
        assert!(matches!(pb.build(), Err(EmuError::BadUnitary { .. })));
    }

    #[test]
    fn ancilla_accounting() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        pb.classical(ClassicalMap {
            name: "withanc".into(),
            regs: vec![a],
            f: Arc::new(|_| {}),
            kind: MapKind::InPlaceBijection,
            gate_impl: Some(GateImpl {
                n_ancilla: 3,
                build: Arc::new(|_| Circuit::new(5)),
            }),
        });
        let prog = pb.build().unwrap();
        assert_eq!(prog.max_gate_ancillas(), 3);
        assert!(prog.fully_simulable());
    }

    #[test]
    fn structure_hash_is_stable_and_discriminating() {
        let build = |theta: f64| {
            let mut pb = ProgramBuilder::new();
            let a = pb.register("a", 3);
            pb.hadamard_all(a);
            pb.gates(|c| {
                c.push(Gate::rz(1, theta));
            });
            pb.qft(a);
            pb.build().unwrap()
        };
        let p1 = build(0.25);
        let p2 = build(0.25);
        let p3 = build(0.75);
        // Deterministic, instance-independent, and clone-stable.
        assert_eq!(p1.structure_hash(), p1.structure_hash());
        assert_eq!(p1.structure_hash(), p1.clone().structure_hash());
        assert_eq!(p1.structure_hash(), p2.structure_hash());
        assert_ne!(p1.instance_id(), p2.instance_id());
        // An angle change (exact bit pattern) changes the hash.
        assert_ne!(p1.structure_hash(), p3.structure_hash());
        // So does an op-sequence change.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.hadamard_all(a);
        let p4 = pb.build().unwrap();
        assert_ne!(p1.structure_hash(), p4.structure_hash());
    }

    #[test]
    fn emulation_only_ops_flagged() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        pb.classical(ClassicalMap {
            name: "oracle".into(),
            regs: vec![a],
            f: Arc::new(|_| {}),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        });
        let prog = pb.build().unwrap();
        assert!(!prog.fully_simulable());
    }
}

//! Program executors: the gate-level simulator and the emulator.
//!
//! Both take a [`QuantumProgram`] and an initial state over the program's
//! architectural qubits and return the final state. The **simulator**
//! lowers every op to elementary gates — including the ancilla-laden
//! reversible circuits of classical maps, paying 2^ancilla extra memory —
//! while the **emulator** executes each high-level op with its classical
//! shortcut (paper §3).

use crate::classical::apply_classical_map;
use crate::error::EmuError;
use crate::program::{HighLevelOp, QuantumProgram};
use crate::qpe::{apply_qpe, QpeStrategy};
use qcemu_fft::{inverse_qft_subspace, qft_subspace};
use qcemu_linalg::C64;
use qcemu_sim::circuits::qft::{inverse_qft_circuit, qft_circuit};
use qcemu_sim::{SimConfig, StateVector};

/// Common interface of both execution back-ends.
pub trait Executor {
    /// Runs the program on an initial state of `program.n_qubits()` qubits.
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError>;

    /// Back-end name (for reports).
    fn name(&self) -> &'static str;
}

/// The gate-level simulator: every op becomes elementary gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateLevelSimulator {
    /// Lower every circuit to one- and two-qubit gates first (paper §2:
    /// hardware-targeting compilers emit {1q, CNOT}; multi-controlled
    /// Toffolis then cost ~10-30 elementary gates each). Off by default —
    /// the multi-control kernels are faster and state-equivalent.
    pub elementary_gates: bool,
    /// State-vector execution configuration (gate-fusion policy). The
    /// default keeps fusion off so this executor stays bitwise identical
    /// to gate-by-gate application; [`GateLevelSimulator::fused`] opts in.
    pub config: SimConfig,
}

impl GateLevelSimulator {
    /// Creates the simulator (native multi-controlled kernels).
    pub fn new() -> GateLevelSimulator {
        GateLevelSimulator::default()
    }

    /// Creates the paper-faithful variant that first decomposes every
    /// circuit into one- and two-qubit gates (the cost model of Figs. 1-2).
    pub fn elementary() -> GateLevelSimulator {
        GateLevelSimulator {
            elementary_gates: true,
            ..GateLevelSimulator::default()
        }
    }

    /// Creates the simulator with greedy gate fusion at the default block
    /// width — circuits are merged into cache-blocked multi-qubit sweeps
    /// (`qcemu_sim::fusion`, `docs/PERFORMANCE.md`).
    pub fn fused() -> GateLevelSimulator {
        GateLevelSimulator::default()
            .with_config(SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS))
    }

    /// Replaces the execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> GateLevelSimulator {
        self.config = config;
        self
    }

    fn lower<'c>(&self, c: &'c qcemu_sim::Circuit) -> std::borrow::Cow<'c, qcemu_sim::Circuit> {
        if self.elementary_gates {
            std::borrow::Cow::Owned(qcemu_sim::decompose_circuit(c))
        } else {
            std::borrow::Cow::Borrowed(c)
        }
    }
}

impl Executor for GateLevelSimulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        if initial.n_qubits() != program.n_qubits() {
            return Err(EmuError::DimensionMismatch {
                expected: program.n_qubits(),
                got: initial.n_qubits(),
            });
        }
        let n = program.n_qubits();
        let n_anc = program.max_gate_ancillas();

        // Extend the state with |0⟩ ancillas above the program space — the
        // memory the paper's Fig. 2 is about: the simulator pays 2^anc ×.
        let mut amps = vec![C64::ZERO; 1usize << (n + n_anc)];
        amps[..1 << n].copy_from_slice(initial.amplitudes());
        let mut state = StateVector::from_amplitudes(amps);

        for op in program.ops() {
            match op {
                HighLevelOp::Gates(c) => state.run(&self.lower(c), &self.config),
                HighLevelOp::Classical(cm) => {
                    let gi =
                        cm.gate_impl
                            .as_ref()
                            .ok_or_else(|| EmuError::NoGateImplementation {
                                op: cm.name.clone(),
                            })?;
                    let circuit = (gi.build)(program);
                    state.run(&self.lower(&circuit), &self.config);
                }
                HighLevelOp::Phase(po) => {
                    let gi =
                        po.gate_impl
                            .as_ref()
                            .ok_or_else(|| EmuError::NoGateImplementation {
                                op: po.name.clone(),
                            })?;
                    let circuit = (gi.build)(program);
                    state.run(&self.lower(&circuit), &self.config);
                }
                HighLevelOp::Rotation(ro) => {
                    // Generic gate path: one multi-controlled Ry per
                    // register value, X-conjugated onto the value pattern —
                    // 2^m multi-controlled rotations (the exponential the
                    // emulator avoids).
                    let circuit = match &ro.gate_impl {
                        Some(gi) => (gi.build)(program),
                        None => rotation_expansion_circuit(program, ro),
                    };
                    state.run(&self.lower(&circuit), &self.config);
                }
                HighLevelOp::Qft(r) => {
                    let bits = program.register(*r).bits();
                    let c = qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                    state.run(&self.lower(&c), &self.config);
                }
                HighLevelOp::InverseQft(r) => {
                    let bits = program.register(*r).bits();
                    let c =
                        inverse_qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                    state.run(&self.lower(&c), &self.config);
                }
                HighLevelOp::Qpe(qpe) => {
                    let target_bits = program.register(qpe.target).bits();
                    let phase_bits = program.register(qpe.phase).bits();
                    apply_qpe(
                        &mut state,
                        qpe,
                        &target_bits,
                        &phase_bits,
                        QpeStrategy::GateLevel,
                    )?;
                }
            }
        }

        // Ancillas must be |0⟩: truncate back to the program space.
        if n_anc > 0 {
            let keep = 1usize << n;
            let leaked: f64 = state.amplitudes()[keep..]
                .iter()
                .map(|z| z.norm_sqr())
                .sum();
            if leaked > 1e-9 {
                return Err(EmuError::AncillaNotClean { leaked });
            }
            let amps = state.into_amplitudes();
            return Ok(StateVector::from_amplitudes(amps[..keep].to_vec()));
        }
        Ok(state)
    }

    fn name(&self) -> &'static str {
        "gate-level simulator"
    }
}

/// Builds the generic per-value expansion of a register-controlled
/// rotation: for each x value, X-conjugate the zero bits and apply a
/// multi-controlled Ry.
fn rotation_expansion_circuit(
    program: &QuantumProgram,
    ro: &crate::program::RotationOp,
) -> qcemu_sim::Circuit {
    use qcemu_sim::{Gate, GateOp};
    let x = program.register(ro.x);
    let target = program.register(ro.target).offset;
    let bits = x.bits();
    let mut c = qcemu_sim::Circuit::new(program.n_qubits());
    for value in 0..(1u64 << x.len) {
        let theta = (ro.angle)(value);
        if theta.abs() < 1e-15 {
            continue;
        }
        for (j, &q) in bits.iter().enumerate() {
            if (value >> j) & 1 == 0 {
                c.push(Gate::x(q));
            }
        }
        c.push(Gate::Unary {
            op: GateOp::Ry(theta),
            target,
            controls: bits.clone(),
        });
        for (j, &q) in bits.iter().enumerate().rev() {
            if (value >> j) & 1 == 0 {
                c.push(Gate::x(q));
            }
        }
    }
    c
}

/// The emulator: each op runs at its mathematical level (paper §3).
#[derive(Clone, Copy, Debug, Default)]
pub struct Emulator {
    /// QPE strategy; `None` = decide per op via the crossover advisor
    /// heuristic (cheap static rule: eigendecomposition for `b > 2n`,
    /// repeated squaring otherwise — see [`crate::crossover`] for the
    /// measured version).
    pub qpe_strategy: Option<QpeStrategy>,
    /// Execution configuration for the gate-level residue
    /// ([`HighLevelOp::Gates`] sequences, which have no shortcut): with
    /// fusion enabled, emulation shortcuts and fused simulation compose —
    /// each op runs at whichever level is cheapest.
    pub config: SimConfig,
}

impl Emulator {
    /// Emulator with automatic QPE strategy selection.
    pub fn new() -> Emulator {
        Emulator::default()
    }

    /// Emulator with a fixed QPE strategy.
    pub fn with_qpe_strategy(strategy: QpeStrategy) -> Emulator {
        Emulator {
            qpe_strategy: Some(strategy),
            ..Emulator::default()
        }
    }

    /// Replaces the gate-level execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> Emulator {
        self.config = config;
        self
    }

    fn choose_qpe_strategy(&self, target_len: usize, phase_len: usize) -> QpeStrategy {
        self.qpe_strategy.unwrap_or({
            // Paper §3.3: eigendecomposition pays off for b ≳ 2n (one-shot
            // O(2^{3n}) versus b GEMMs).
            if phase_len > 2 * target_len {
                QpeStrategy::Eigendecomposition
            } else {
                QpeStrategy::RepeatedSquaring
            }
        })
    }
}

impl Executor for Emulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        if initial.n_qubits() != program.n_qubits() {
            return Err(EmuError::DimensionMismatch {
                expected: program.n_qubits(),
                got: initial.n_qubits(),
            });
        }
        let n = program.n_qubits();
        let mut state = initial;

        for op in program.ops() {
            match op {
                HighLevelOp::Gates(c) => state.run(c, &self.config),
                HighLevelOp::Classical(cm) => apply_classical_map(&mut state, program, cm)?,
                HighLevelOp::Phase(po) => {
                    crate::classical::apply_phase_oracle(&mut state, program, po)
                }
                HighLevelOp::Rotation(ro) => {
                    crate::classical::apply_controlled_rotation(&mut state, program, ro)
                }
                HighLevelOp::Qft(r) => {
                    let bits = program.register(*r).bits();
                    qft_subspace(state.amplitudes_mut(), n, &bits);
                }
                HighLevelOp::InverseQft(r) => {
                    let bits = program.register(*r).bits();
                    inverse_qft_subspace(state.amplitudes_mut(), n, &bits);
                }
                HighLevelOp::Qpe(qpe) => {
                    let target_bits = program.register(qpe.target).bits();
                    let phase_bits = program.register(qpe.phase).bits();
                    let strategy = self.choose_qpe_strategy(target_bits.len(), phase_bits.len());
                    apply_qpe(&mut state, qpe, &target_bits, &phase_bits, strategy)?;
                }
            }
        }
        Ok(state)
    }

    fn name(&self) -> &'static str {
        "emulator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::stdops;

    /// Build-and-run helper: multiplication program of the paper's Fig. 1.
    fn multiplication_program(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.hadamard_all(a);
        pb.hadamard_all(b);
        pb.classical(stdops::multiply(a, b, c, m));
        pb.build().unwrap()
    }

    #[test]
    fn simulator_and_emulator_agree_on_multiplication() {
        let m = 2;
        let prog = multiplication_program(m);
        let initial = StateVector::zero_state(prog.n_qubits());
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(
            sim.max_diff_up_to_phase(&emu) < 1e-10,
            "sim vs emu: {}",
            sim.max_diff_up_to_phase(&emu)
        );
        // Every surviving branch satisfies c = a·b mod 4.
        let all: Vec<usize> = (0..prog.n_qubits()).collect();
        for (idx, p) in emu.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let a = idx & 0b11;
            let b = (idx >> 2) & 0b11;
            let c = (idx >> 4) & 0b11;
            assert_eq!(c, (a * b) % 4, "branch a={a} b={b}");
        }
    }

    #[test]
    fn fused_simulator_matches_unfused_and_emulator() {
        let prog = multiplication_program(2);
        let initial = StateVector::zero_state(prog.n_qubits());
        let unfused = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        for k in 2..=5 {
            let fused = GateLevelSimulator::new()
                .with_config(qcemu_sim::SimConfig::fused(k))
                .run(&prog, initial.clone())
                .unwrap();
            assert!(
                unfused.max_diff_up_to_phase(&fused) < 1e-10,
                "k = {k}: {}",
                unfused.max_diff_up_to_phase(&fused)
            );
        }
        // And the default fused constructor composes with emulation.
        let emu = Emulator::new()
            .with_config(qcemu_sim::SimConfig::fused(4))
            .run(&prog, initial.clone())
            .unwrap();
        let fused = GateLevelSimulator::fused().run(&prog, initial).unwrap();
        assert!(fused.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn qft_paths_agree() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 4);
        pb.set_constant(a, 9);
        pb.qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(4);
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(sim.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn qft_then_inverse_roundtrips_via_both_paths() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        let b = pb.register("b", 2);
        pb.hadamard_all(b);
        pb.set_constant(a, 5);
        pb.qft(a);
        pb.inverse_qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(5);
        for exec in [
            &GateLevelSimulator::new() as &dyn Executor,
            &Emulator::new(),
        ] {
            let out = exec.run(&prog, initial.clone()).unwrap();
            let dist = out.register_distribution(&prog.register(a).bits());
            assert!((dist[5] - 1.0).abs() < 1e-9, "{}: {:?}", exec.name(), dist);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let _a = pb.register("a", 3);
        let prog = pb.build().unwrap();
        let bad = StateVector::zero_state(2);
        assert!(matches!(
            Emulator::new().run(&prog, bad.clone()),
            Err(EmuError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, bad),
            Err(EmuError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn emulation_only_op_fails_on_simulator_but_runs_on_emulator() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(3);
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, initial.clone()),
            Err(EmuError::NoGateImplementation { .. })
        ));
        let out = Emulator::new().run(&prog, initial).unwrap();
        assert_eq!(out.probability(3), 1.0);
    }
}

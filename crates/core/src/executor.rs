//! Program executors: thin front-ends over the execution planner.
//!
//! All three executors lower a [`QuantumProgram`] to an
//! [`ExecutionPlan`] and hand it to the
//! **single** plan interpreter ([`crate::planner::PlanInterpreter`]):
//!
//! * [`GateLevelSimulator`] — a fixed all-gates plan: every op becomes
//!   elementary gates, ancillas and all (the paper's baseline);
//! * [`Emulator`] — a fixed all-shortcuts plan: each op runs at its
//!   mathematical level (paper §3);
//! * [`HybridExecutor`] — a cost-model-driven plan: each op runs on
//!   whichever backend the generalized [`CostModel`] predicts is
//!   cheapest, and [`HybridExecutor::run_with_report`] returns the
//!   per-op audit trail.

use crate::crossover::{CostModel, QpeTimings};
use crate::error::EmuError;
use crate::plancache::SharedPlanCache;
use crate::planner::{
    extend_with_ancillas, plan_emulated, plan_hybrid, plan_simulated, truncate_ancillas,
    ExecutionPlan, PlanInterpreter, PlanReport, PlanStep, StepReport,
};
use crate::program::{HighLevelOp, QuantumProgram};
use crate::qpe::QpeStrategy;
use qcemu_sim::{SimConfig, StateVector};
use std::sync::Arc;
use std::time::Instant;

/// Common interface of the execution back-ends.
pub trait Executor {
    /// Runs the program on an initial state of `program.n_qubits()` qubits.
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError>;

    /// Back-end name (for reports).
    fn name(&self) -> &'static str;
}

/// The gate-level simulator: every op becomes elementary gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateLevelSimulator {
    /// Lower every circuit to one- and two-qubit gates first (paper §2:
    /// hardware-targeting compilers emit {1q, CNOT}; multi-controlled
    /// Toffolis then cost ~10-30 elementary gates each). Off by default —
    /// the multi-control kernels are faster and state-equivalent.
    pub elementary_gates: bool,
    /// State-vector execution configuration (gate-fusion policy). The
    /// default keeps fusion off so this executor stays bitwise identical
    /// to gate-by-gate application; [`GateLevelSimulator::fused`] opts in.
    pub config: SimConfig,
}

impl GateLevelSimulator {
    /// Creates the simulator (native multi-controlled kernels).
    pub fn new() -> GateLevelSimulator {
        GateLevelSimulator::default()
    }

    /// Creates the paper-faithful variant that first decomposes every
    /// circuit into one- and two-qubit gates (the cost model of Figs. 1-2).
    pub fn elementary() -> GateLevelSimulator {
        GateLevelSimulator {
            elementary_gates: true,
            ..GateLevelSimulator::default()
        }
    }

    /// Creates the simulator with greedy gate fusion at the default block
    /// width — circuits are merged into cache-blocked multi-qubit sweeps
    /// (`qcemu_sim::fusion`, `docs/PERFORMANCE.md`).
    pub fn fused() -> GateLevelSimulator {
        GateLevelSimulator::default()
            .with_config(SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS))
    }

    /// Replaces the execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> GateLevelSimulator {
        self.config = config;
        self
    }

    /// The fixed all-gates plan this executor runs.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        plan_simulated(program, &CostModel::default(), &self.config)
    }

    fn interpreter(&self) -> PlanInterpreter {
        PlanInterpreter {
            config: self.config,
            elementary: self.elementary_gates,
        }
    }
}

impl Executor for GateLevelSimulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        self.interpreter()
            .execute(program, &self.plan(program), initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "gate-level simulator"
    }
}

/// The emulator: each op runs at its mathematical level (paper §3).
#[derive(Clone, Copy, Debug, Default)]
pub struct Emulator {
    /// QPE strategy; `None` = decide per op via the crossover advisor:
    /// measured [`QpeTimings`] when provided through
    /// [`Emulator::with_timings`], the cheap static rule otherwise
    /// (eigendecomposition for `b > 2n`, repeated squaring below —
    /// paper §3.3).
    pub qpe_strategy: Option<QpeStrategy>,
    /// Measured (or modelled) QPE primitive timings; when set, automatic
    /// strategy selection routes through
    /// [`QpeTimings::best_strategy`] instead of the static rule — the
    /// Table 2 advisor actually driving execution.
    pub qpe_timings: Option<QpeTimings>,
    /// Execution configuration for the gate-level residue
    /// ([`HighLevelOp`]`::Gates` sequences,
    /// which have no shortcut): with fusion enabled, emulation shortcuts
    /// and fused simulation compose — each op runs at whichever level is
    /// cheapest.
    pub config: SimConfig,
}

impl Emulator {
    /// Emulator with automatic QPE strategy selection.
    pub fn new() -> Emulator {
        Emulator::default()
    }

    /// Emulator with a fixed QPE strategy.
    pub fn with_qpe_strategy(strategy: QpeStrategy) -> Emulator {
        Emulator {
            qpe_strategy: Some(strategy),
            ..Emulator::default()
        }
    }

    /// Routes automatic QPE strategy selection through measured timings
    /// (see [`crate::crossover`]): `best_strategy(b)` replaces the static
    /// `b > 2n` rule. A fixed [`Emulator::with_qpe_strategy`] choice
    /// still wins over both.
    pub fn with_timings(mut self, timings: QpeTimings) -> Emulator {
        self.qpe_timings = Some(timings);
        self
    }

    /// Replaces the gate-level execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> Emulator {
        self.config = config;
        self
    }

    fn choose_qpe_strategy(&self, target_len: usize, phase_len: usize) -> QpeStrategy {
        if let Some(strategy) = self.qpe_strategy {
            return strategy;
        }
        if let Some(timings) = &self.qpe_timings {
            return timings.best_strategy(phase_len as u32);
        }
        // Paper §3.3: eigendecomposition pays off for b ≳ 2n (one-shot
        // O(2^{3n}) versus b GEMMs).
        if phase_len > 2 * target_len {
            QpeStrategy::Eigendecomposition
        } else {
            QpeStrategy::RepeatedSquaring
        }
    }

    /// The fixed all-shortcuts plan this executor runs.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        plan_emulated(program, &CostModel::default(), &self.config, |t, p| {
            self.choose_qpe_strategy(t, p)
        })
    }
}

impl Executor for Emulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        PlanInterpreter::new(self.config)
            .execute(program, &self.plan(program), initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "emulator"
    }
}

/// Per-op hybrid dispatch: plans with the generalized [`CostModel`], then
/// executes each op on whichever backend the model predicts is cheapest —
/// emulation shortcut, FFT, dense QPE path, fused or plain gate-level
/// simulation. [`HybridExecutor::run_with_report`] additionally returns
/// the [`PlanReport`] (per-op backend, predicted vs measured cost) so the
/// dispatch is auditable; the `hybrid_ablation` bench exercises it on a
/// mixed Shor-style workload.
///
/// ## Plan caching
///
/// Planning is not free: the hybrid lowering runs the fusion engine to
/// price the fused candidates, and re-ran on **every** `run()` before
/// this cache existed. The executor memoises plans (which carry the
/// fused circuits) in a [`SharedPlanCache`]: a bounded, LRU-evicted map
/// keyed on the program's
/// [`structure_hash`](QuantumProgram::structure_hash), validated against
/// the model and config that produced each entry. Repeated `run()`s of
/// the same program skip planning and fusion entirely; distinct
/// structures occupy distinct slots up to the capacity bound; swapping
/// the model or config ([`HybridExecutor::with_model`] /
/// [`HybridExecutor::with_config`]) detaches the executor onto a fresh
/// cache. Clones of the executor share the cache, and an external cache
/// can be attached with [`HybridExecutor::with_plan_cache`] so many
/// executors (e.g. a daemon's worker pool) share one — see
/// `qcemu_serve`.
#[derive(Clone, Debug)]
pub struct HybridExecutor {
    /// The cost model driving backend choice.
    pub model: CostModel,
    /// Gate-level configuration for simulated steps; defaults to greedy
    /// fusion at the default window.
    pub config: SimConfig,
    cache: SharedPlanCache,
}

impl Default for HybridExecutor {
    fn default() -> HybridExecutor {
        HybridExecutor {
            model: CostModel::default(),
            config: SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS),
            cache: SharedPlanCache::default(),
        }
    }
}

impl HybridExecutor {
    /// Hybrid executor with the default cost model and fused gate path.
    pub fn new() -> HybridExecutor {
        HybridExecutor::default()
    }

    /// Hybrid executor driven by the **measured** host rates
    /// ([`CostModel::calibrated`]): the first call pays a few tens of
    /// milliseconds of micro-benchmarks, after which per-op dispatch
    /// tracks what this machine (and this build — SIMD on or off)
    /// actually does, not the hand-tuned default ratios.
    pub fn calibrated() -> HybridExecutor {
        HybridExecutor::new().with_model(CostModel::calibrated())
    }

    /// Replaces the cost model (e.g. with measured machine rates).
    /// Detaches onto a fresh plan cache: cached plans are only valid for
    /// the model that produced them, and the old (possibly shared) cache
    /// must not be polluted by a reconfigured clone.
    pub fn with_model(mut self, model: CostModel) -> HybridExecutor {
        self.model = model;
        self.cache = SharedPlanCache::new(self.cache.capacity());
        self
    }

    /// Replaces the gate-level execution configuration (detaches onto a
    /// fresh plan cache).
    pub fn with_config(mut self, config: SimConfig) -> HybridExecutor {
        self.config = config;
        self.cache = SharedPlanCache::new(self.cache.capacity());
        self
    }

    /// Replaces the plan cache with a fresh one bounded at `capacity`
    /// structures (`1` restores the pre-serving single-slot behaviour).
    pub fn with_cache_capacity(mut self, capacity: usize) -> HybridExecutor {
        self.cache = SharedPlanCache::new(capacity);
        self
    }

    /// Attaches an external [`SharedPlanCache`] — the multi-tenant
    /// entry point: every executor holding a handle to the same cache
    /// (across threads, batch executors, serving workers) plans each
    /// structure once.
    pub fn with_plan_cache(mut self, cache: SharedPlanCache) -> HybridExecutor {
        self.cache = cache;
        self
    }

    /// The plan cache this executor reads and populates.
    pub fn plan_cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    /// The cost model driving this executor's planning.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The gate-level execution configuration.
    pub fn sim_config(&self) -> &SimConfig {
        &self.config
    }

    /// The cost-model-driven plan for `program` — inspect (or `{}`-print)
    /// it to see the per-op dispatch before running anything.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        (*self.plan_cached(program)).clone()
    }

    /// The memoised plan for `program`, if the cache currently holds one
    /// that is valid for it (and for this executor's model/config).
    pub fn cached_plan(&self, program: &QuantumProgram) -> Option<Arc<ExecutionPlan>> {
        self.cache.peek(
            program.structure_hash(),
            &self.model,
            &self.config,
            Some(program.instance_id()),
        )
    }

    /// How many times a `run()`/`plan()` had to lower from scratch —
    /// the observable that proves repeated runs hit the cache.
    pub fn plan_cache_misses(&self) -> usize {
        self.cache.misses()
    }

    /// Returns a cached plan valid for `program`'s **structure** — the
    /// batch and serving entry point
    /// ([`crate::batch::BatchExecutor`],
    /// [`HybridExecutor::run_structural`]).
    ///
    /// Unlike [`HybridExecutor::plan`], a cache hit does **not** require
    /// the same `instance_id`: any program with the same
    /// [`structure_hash`](QuantumProgram::structure_hash) (under the same
    /// model and config) reuses the lowering. This is safe only because
    /// the structural runners never execute a carried closure-built
    /// artifact against a different instance — closure-bearing steps are
    /// re-run per program from its own ops, and only structurally
    /// determined gate streams (bit-identical under an equal structure
    /// hash) are applied directly. Misses count toward
    /// [`HybridExecutor::plan_cache_misses`] like any other lowering, and
    /// concurrent misses on one structure collapse to a single lowering
    /// (see [`SharedPlanCache`]).
    pub fn plan_structural(&self, program: &QuantumProgram) -> Arc<ExecutionPlan> {
        self.cache.get_or_plan(
            program.structure_hash(),
            &self.model,
            &self.config,
            None,
            program.instance_id(),
            || plan_hybrid(program, &self.model, &self.config),
        )
    }

    /// Returns the cached plan or lowers (and caches) a fresh one.
    fn plan_cached(&self, program: &QuantumProgram) -> Arc<ExecutionPlan> {
        self.cache.get_or_plan(
            program.structure_hash(),
            &self.model,
            &self.config,
            Some(program.instance_id()),
            program.instance_id(),
            || plan_hybrid(program, &self.model, &self.config),
        )
    }

    /// Runs `program` under the **structure-keyed** plan cache: any
    /// cached plan with the same
    /// [`structure_hash`](QuantumProgram::structure_hash) is reused, even
    /// if it was lowered from a different program instance (a different
    /// request carrying different closure parameters). This is the
    /// serving fast path — N requests with the same shape plan and fuse
    /// once — at the cost of rebuilding closure-derived circuits when the
    /// plan instance differs.
    ///
    /// Steps whose artifacts are structurally determined (raw gate runs:
    /// gate lists are hashed bit-exactly, so an equal structure hash
    /// means bit-identical circuits and fused streams) execute straight
    /// from the cached plan. Closure-bearing steps (classical maps, phase
    /// oracles, rotations lowered through `gate_impl`) have their carried
    /// artifacts stripped and are re-derived from **this** program's own
    /// ops, exactly like the per-member route of
    /// [`crate::batch::BatchExecutor`].
    pub fn run_structural(
        &self,
        program: &QuantumProgram,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        let plan = self.plan_structural(program);
        if plan.planned_from() == program.instance_id() {
            // The plan was lowered from this very instance: the ordinary
            // interpreter path is valid, artifacts included.
            return self.run_plan(program, &plan, initial);
        }
        if initial.n_qubits() != program.n_qubits() {
            return Err(EmuError::DimensionMismatch {
                expected: program.n_qubits(),
                got: initial.n_qubits(),
            });
        }
        let interp = PlanInterpreter::new(self.config);
        let n = program.n_qubits();
        let mut state = extend_with_ancillas(initial, plan.n_ancilla());
        let mut steps = Vec::with_capacity(plan.steps().len());
        for step in plan.steps() {
            let op = &program.ops()[step.op_index];
            let structural = matches!(
                op,
                HighLevelOp::Gates(_)
                    | HighLevelOp::Qft(_)
                    | HighLevelOp::InverseQft(_)
                    | HighLevelOp::Qpe(_)
            );
            let t0 = Instant::now();
            if structural {
                interp.execute_step(&mut state, program, op, step)?;
            } else {
                // Closure-bearing op: the carried circuit/fused stream
                // was built from the planning instance's closures.
                let stripped = PlanStep {
                    circuit: None,
                    fused: None,
                    ..step.clone()
                };
                interp.execute_step(&mut state, program, op, &stripped)?;
            }
            steps.push(StepReport {
                op: step.op.clone(),
                backend: step.backend,
                predicted_s: step.predicted_s,
                measured_s: t0.elapsed().as_secs_f64(),
            });
        }
        let state = truncate_ancillas(state, n)?;
        Ok((state, PlanReport { steps }))
    }

    /// Runs the program and returns the final state together with the
    /// per-op audit report (backend, predicted and measured cost).
    /// Repeated calls with the same program reuse the memoised plan —
    /// planning and fusion are paid once.
    pub fn run_with_report(
        &self,
        program: &QuantumProgram,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        let plan = self.plan_cached(program);
        self.run_plan(program, &plan, initial)
    }

    /// Executes an already-computed plan (e.g. one obtained from
    /// [`HybridExecutor::plan`] for inspection) without re-planning.
    pub fn run_plan(
        &self,
        program: &QuantumProgram,
        plan: &ExecutionPlan,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        PlanInterpreter::new(self.config).execute(program, plan, initial)
    }
}

impl Executor for HybridExecutor {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        self.run_with_report(program, initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::stdops;

    /// Build-and-run helper: multiplication program of the paper's Fig. 1.
    fn multiplication_program(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.hadamard_all(a);
        pb.hadamard_all(b);
        pb.classical(stdops::multiply(a, b, c, m));
        pb.build().unwrap()
    }

    #[test]
    fn simulator_and_emulator_agree_on_multiplication() {
        let m = 2;
        let prog = multiplication_program(m);
        let initial = StateVector::zero_state(prog.n_qubits());
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(
            sim.max_diff_up_to_phase(&emu) < 1e-10,
            "sim vs emu: {}",
            sim.max_diff_up_to_phase(&emu)
        );
        // Every surviving branch satisfies c = a·b mod 4.
        let all: Vec<usize> = (0..prog.n_qubits()).collect();
        for (idx, p) in emu.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let a = idx & 0b11;
            let b = (idx >> 2) & 0b11;
            let c = (idx >> 4) & 0b11;
            assert_eq!(c, (a * b) % 4, "branch a={a} b={b}");
        }
    }

    #[test]
    fn fused_simulator_matches_unfused_and_emulator() {
        let prog = multiplication_program(2);
        let initial = StateVector::zero_state(prog.n_qubits());
        let unfused = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        for k in 2..=5 {
            let fused = GateLevelSimulator::new()
                .with_config(qcemu_sim::SimConfig::fused(k))
                .run(&prog, initial.clone())
                .unwrap();
            assert!(
                unfused.max_diff_up_to_phase(&fused) < 1e-10,
                "k = {k}: {}",
                unfused.max_diff_up_to_phase(&fused)
            );
        }
        // And the default fused constructor composes with emulation.
        let emu = Emulator::new()
            .with_config(qcemu_sim::SimConfig::fused(4))
            .run(&prog, initial.clone())
            .unwrap();
        let fused = GateLevelSimulator::fused().run(&prog, initial).unwrap();
        assert!(fused.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn hybrid_matches_both_legacy_executors() {
        // m = 4 (12 qubits): large enough that the cost model, like the
        // paper, favours the emulated table pass over the Toffoli
        // network; at toy sizes simulation may legitimately win.
        let prog = multiplication_program(4);
        let initial = StateVector::zero_state(prog.n_qubits());
        let emu = Emulator::new().run(&prog, initial.clone()).unwrap();
        let sim = GateLevelSimulator::fused()
            .run(&prog, initial.clone())
            .unwrap();
        let (hyb, report) = HybridExecutor::new()
            .run_with_report(&prog, initial)
            .unwrap();
        assert!(hyb.max_diff_up_to_phase(&emu) < 1e-10);
        assert!(hyb.max_diff_up_to_phase(&sim) < 1e-10);
        // The report audits every op with a finite prediction.
        assert_eq!(report.steps.len(), prog.ops().len());
        assert!(report.steps.iter().all(|s| s.predicted_s.is_finite()));
        assert!(report
            .steps
            .iter()
            .any(|s| s.backend == crate::planner::Backend::EmulateClassical));
    }

    #[test]
    fn repeated_runs_reuse_the_cached_plan() {
        let prog = multiplication_program(3);
        let initial = StateVector::zero_state(prog.n_qubits());
        let exec = HybridExecutor::new();
        assert_eq!(exec.plan_cache_misses(), 0);
        assert!(exec.cached_plan(&prog).is_none());

        let a = exec.run(&prog, initial.clone()).unwrap();
        assert_eq!(exec.plan_cache_misses(), 1);
        let cached = exec.cached_plan(&prog).expect("cache populated by run");

        // Second run: same plan object, no new lowering.
        let b = exec.run(&prog, initial).unwrap();
        assert_eq!(exec.plan_cache_misses(), 1, "second run must not re-plan");
        assert!(Arc::ptr_eq(&cached, &exec.cached_plan(&prog).unwrap()));
        assert!(a.max_diff_up_to_phase(&b) < 1e-15);

        // A different structure occupies its own slot (bounded map, not
        // the old single-slot cache): both stay warm.
        let prog2 = multiplication_program(2);
        exec.run(&prog2, StateVector::zero_state(prog2.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
        assert!(exec.cached_plan(&prog).is_some());
        assert!(exec.cached_plan(&prog2).is_some());

        // Clones share the cache; with_model/with_config detach it.
        let shared = exec.clone();
        assert!(shared.cached_plan(&prog2).is_some());
        let fresh = exec.clone().with_model(CostModel::default());
        assert!(fresh.cached_plan(&prog2).is_none());
        let fresh = exec.clone().with_config(SimConfig::fused(3));
        assert!(fresh.cached_plan(&prog2).is_none());
    }

    #[test]
    fn capacity_one_cache_restores_single_slot_eviction() {
        let exec = HybridExecutor::new().with_cache_capacity(1);
        let prog = multiplication_program(3);
        let prog2 = multiplication_program(2);
        exec.run(&prog, StateVector::zero_state(prog.n_qubits()))
            .unwrap();
        exec.run(&prog2, StateVector::zero_state(prog2.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
        assert!(exec.cached_plan(&prog).is_none(), "evicted by prog2");
        assert!(exec.cached_plan(&prog2).is_some());
        // Re-running the evicted structure re-plans.
        exec.run(&prog, StateVector::zero_state(prog.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 3);
        assert_eq!(exec.plan_cache().evictions(), 2);
    }

    #[test]
    fn executors_attached_to_one_cache_share_lowerings() {
        let cache = crate::plancache::SharedPlanCache::new(8);
        let a = HybridExecutor::new().with_plan_cache(cache.clone());
        let b = HybridExecutor::new().with_plan_cache(cache.clone());
        let prog = multiplication_program(3);
        a.run(&prog, StateVector::zero_state(prog.n_qubits()))
            .unwrap();
        // Same structure, fresh instance, *different executor*: still a hit.
        let prog2 = multiplication_program(3);
        b.run_structural(&prog2, StateVector::zero_state(prog2.n_qubits()))
            .unwrap();
        assert_eq!(cache.misses(), 1, "one lowering across both executors");
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn run_structural_reuses_plans_across_instances_and_matches_solo_runs() {
        use crate::program::RotationOp;
        use std::sync::Arc as StdArc;
        // Same structure, different closure parameters per instance — the
        // serving traffic shape.
        let member = |scale: f64| {
            let mut pb = ProgramBuilder::new();
            let a = pb.register("a", 2);
            let b = pb.register("b", 2);
            let c = pb.register("c", 2);
            let ind = pb.register("ind", 1);
            pb.hadamard_all(a);
            pb.hadamard_all(b);
            pb.classical(stdops::multiply(a, b, c, 2));
            pb.rotation(RotationOp {
                name: "sweep".into(),
                x: a,
                target: ind,
                angle: StdArc::new(move |v| scale * (v as f64 + 0.5)),
                gate_impl: None,
            });
            pb.qft(c);
            pb.build().unwrap()
        };
        let exec = HybridExecutor::new();
        for (i, scale) in [0.3, 0.7, 1.1].iter().enumerate() {
            let prog = member(*scale);
            let initial = StateVector::zero_state(prog.n_qubits());
            let (out, report) = exec.run_structural(&prog, initial.clone()).unwrap();
            // Reference: an isolated executor running this very instance.
            let reference = HybridExecutor::new().run(&prog, initial).unwrap();
            assert!(
                out.max_diff_up_to_phase(&reference) < 1e-12,
                "instance {i}: {}",
                out.max_diff_up_to_phase(&reference)
            );
            assert_eq!(report.steps.len(), prog.ops().len());
        }
        assert_eq!(
            exec.plan_cache_misses(),
            1,
            "three same-structure instances must share one lowering"
        );
    }

    #[test]
    fn plans_and_executors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<QuantumProgram>();
        assert_send_sync::<HybridExecutor>();
        assert_send_sync::<crate::plancache::SharedPlanCache>();
        assert_send_sync::<crate::batch::BatchExecutor>();
    }

    #[test]
    fn cached_plan_is_not_served_to_a_different_program_instance() {
        // A structurally identical rebuild gets a fresh instance_id, so
        // the cache misses (its steps may carry the old instance's
        // closures) — and execution still succeeds.
        let exec = HybridExecutor::new();
        let prog_a = multiplication_program(2);
        exec.run(&prog_a, StateVector::zero_state(prog_a.n_qubits()))
            .unwrap();
        let prog_b = multiplication_program(2);
        assert_eq!(prog_a.structure_hash(), prog_b.structure_hash());
        assert!(exec.cached_plan(&prog_b).is_none());
        exec.run(&prog_b, StateVector::zero_state(prog_b.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
    }

    #[test]
    fn calibrated_executor_still_matches_the_reference_paths() {
        let prog = multiplication_program(3);
        let initial = StateVector::zero_state(prog.n_qubits());
        let reference = Emulator::new().run(&prog, initial.clone()).unwrap();
        let calibrated = HybridExecutor::calibrated().run(&prog, initial).unwrap();
        assert!(reference.max_diff_up_to_phase(&calibrated) < 1e-10);
    }

    #[test]
    fn hybrid_runs_emulation_only_programs() {
        // No gate impl anywhere: the hybrid plan must fall back to
        // emulation instead of failing like the simulator.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let out = HybridExecutor::new()
            .run(&prog, StateVector::zero_state(3))
            .unwrap();
        assert_eq!(out.probability(3), 1.0);
    }

    #[test]
    fn emulator_with_timings_uses_the_advisor() {
        // Timings where simulation is essentially free: the advisor must
        // choose gate-level QPE, overriding the static b > 2n rule.
        let timings = QpeTimings {
            n: 2,
            g: 4,
            t_apply_u: 1e-12,
            t_build_dense: 10.0,
            t_gemm: 10.0,
            t_eig: 10.0,
        };
        let emu = Emulator::new().with_timings(timings);
        assert_eq!(emu.choose_qpe_strategy(2, 6), QpeStrategy::GateLevel);
        // And the opposite machine: gates cost hours, dense paths are free.
        let timings = QpeTimings {
            n: 2,
            g: 4,
            t_apply_u: 10.0,
            t_build_dense: 1e-12,
            t_gemm: 1e-12,
            t_eig: 1e-9,
        };
        let emu = Emulator::new().with_timings(timings);
        assert_ne!(emu.choose_qpe_strategy(2, 3), QpeStrategy::GateLevel);
        // A fixed strategy still wins over timings.
        let emu =
            Emulator::with_qpe_strategy(QpeStrategy::Eigendecomposition).with_timings(timings);
        assert_eq!(
            emu.choose_qpe_strategy(2, 3),
            QpeStrategy::Eigendecomposition
        );
    }

    #[test]
    fn qft_paths_agree() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 4);
        pb.set_constant(a, 9);
        pb.qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(4);
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(sim.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn qft_then_inverse_roundtrips_via_all_paths() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        let b = pb.register("b", 2);
        pb.hadamard_all(b);
        pb.set_constant(a, 5);
        pb.qft(a);
        pb.inverse_qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(5);
        for exec in [
            &GateLevelSimulator::new() as &dyn Executor,
            &Emulator::new(),
            &HybridExecutor::new(),
        ] {
            let out = exec.run(&prog, initial.clone()).unwrap();
            let dist = out.register_distribution(&prog.register(a).bits());
            assert!((dist[5] - 1.0).abs() < 1e-9, "{}: {:?}", exec.name(), dist);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let _a = pb.register("a", 3);
        let prog = pb.build().unwrap();
        let bad = StateVector::zero_state(2);
        assert!(matches!(
            Emulator::new().run(&prog, bad.clone()),
            Err(EmuError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, bad.clone()),
            Err(EmuError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            HybridExecutor::new().run(&prog, bad),
            Err(EmuError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn emulation_only_op_fails_on_simulator_but_runs_on_emulator() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(3);
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, initial.clone()),
            Err(EmuError::NoGateImplementation { .. })
        ));
        let out = Emulator::new().run(&prog, initial).unwrap();
        assert_eq!(out.probability(3), 1.0);
    }
}

//! Program executors: thin front-ends over the execution planner.
//!
//! All three executors lower a [`QuantumProgram`] to an
//! [`ExecutionPlan`] and hand it to the
//! **single** plan interpreter ([`crate::planner::PlanInterpreter`]):
//!
//! * [`GateLevelSimulator`] — a fixed all-gates plan: every op becomes
//!   elementary gates, ancillas and all (the paper's baseline);
//! * [`Emulator`] — a fixed all-shortcuts plan: each op runs at its
//!   mathematical level (paper §3);
//! * [`HybridExecutor`] — a cost-model-driven plan: each op runs on
//!   whichever backend the generalized [`CostModel`] predicts is
//!   cheapest, and [`HybridExecutor::run_with_report`] returns the
//!   per-op audit trail.

use crate::crossover::{CostModel, QpeTimings};
use crate::error::EmuError;
use crate::planner::{
    plan_emulated, plan_hybrid, plan_simulated, ExecutionPlan, PlanInterpreter, PlanReport,
};
use crate::program::QuantumProgram;
use crate::qpe::QpeStrategy;
use qcemu_sim::{SimConfig, StateVector};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Common interface of the execution back-ends.
pub trait Executor {
    /// Runs the program on an initial state of `program.n_qubits()` qubits.
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError>;

    /// Back-end name (for reports).
    fn name(&self) -> &'static str;
}

/// The gate-level simulator: every op becomes elementary gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct GateLevelSimulator {
    /// Lower every circuit to one- and two-qubit gates first (paper §2:
    /// hardware-targeting compilers emit {1q, CNOT}; multi-controlled
    /// Toffolis then cost ~10-30 elementary gates each). Off by default —
    /// the multi-control kernels are faster and state-equivalent.
    pub elementary_gates: bool,
    /// State-vector execution configuration (gate-fusion policy). The
    /// default keeps fusion off so this executor stays bitwise identical
    /// to gate-by-gate application; [`GateLevelSimulator::fused`] opts in.
    pub config: SimConfig,
}

impl GateLevelSimulator {
    /// Creates the simulator (native multi-controlled kernels).
    pub fn new() -> GateLevelSimulator {
        GateLevelSimulator::default()
    }

    /// Creates the paper-faithful variant that first decomposes every
    /// circuit into one- and two-qubit gates (the cost model of Figs. 1-2).
    pub fn elementary() -> GateLevelSimulator {
        GateLevelSimulator {
            elementary_gates: true,
            ..GateLevelSimulator::default()
        }
    }

    /// Creates the simulator with greedy gate fusion at the default block
    /// width — circuits are merged into cache-blocked multi-qubit sweeps
    /// (`qcemu_sim::fusion`, `docs/PERFORMANCE.md`).
    pub fn fused() -> GateLevelSimulator {
        GateLevelSimulator::default()
            .with_config(SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS))
    }

    /// Replaces the execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> GateLevelSimulator {
        self.config = config;
        self
    }

    /// The fixed all-gates plan this executor runs.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        plan_simulated(program, &CostModel::default(), &self.config)
    }

    fn interpreter(&self) -> PlanInterpreter {
        PlanInterpreter {
            config: self.config,
            elementary: self.elementary_gates,
        }
    }
}

impl Executor for GateLevelSimulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        self.interpreter()
            .execute(program, &self.plan(program), initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "gate-level simulator"
    }
}

/// The emulator: each op runs at its mathematical level (paper §3).
#[derive(Clone, Copy, Debug, Default)]
pub struct Emulator {
    /// QPE strategy; `None` = decide per op via the crossover advisor:
    /// measured [`QpeTimings`] when provided through
    /// [`Emulator::with_timings`], the cheap static rule otherwise
    /// (eigendecomposition for `b > 2n`, repeated squaring below —
    /// paper §3.3).
    pub qpe_strategy: Option<QpeStrategy>,
    /// Measured (or modelled) QPE primitive timings; when set, automatic
    /// strategy selection routes through
    /// [`QpeTimings::best_strategy`] instead of the static rule — the
    /// Table 2 advisor actually driving execution.
    pub qpe_timings: Option<QpeTimings>,
    /// Execution configuration for the gate-level residue
    /// ([`HighLevelOp`](crate::program::HighLevelOp)`::Gates` sequences,
    /// which have no shortcut): with fusion enabled, emulation shortcuts
    /// and fused simulation compose — each op runs at whichever level is
    /// cheapest.
    pub config: SimConfig,
}

impl Emulator {
    /// Emulator with automatic QPE strategy selection.
    pub fn new() -> Emulator {
        Emulator::default()
    }

    /// Emulator with a fixed QPE strategy.
    pub fn with_qpe_strategy(strategy: QpeStrategy) -> Emulator {
        Emulator {
            qpe_strategy: Some(strategy),
            ..Emulator::default()
        }
    }

    /// Routes automatic QPE strategy selection through measured timings
    /// (see [`crate::crossover`]): `best_strategy(b)` replaces the static
    /// `b > 2n` rule. A fixed [`Emulator::with_qpe_strategy`] choice
    /// still wins over both.
    pub fn with_timings(mut self, timings: QpeTimings) -> Emulator {
        self.qpe_timings = Some(timings);
        self
    }

    /// Replaces the gate-level execution configuration.
    pub fn with_config(mut self, config: SimConfig) -> Emulator {
        self.config = config;
        self
    }

    fn choose_qpe_strategy(&self, target_len: usize, phase_len: usize) -> QpeStrategy {
        if let Some(strategy) = self.qpe_strategy {
            return strategy;
        }
        if let Some(timings) = &self.qpe_timings {
            return timings.best_strategy(phase_len as u32);
        }
        // Paper §3.3: eigendecomposition pays off for b ≳ 2n (one-shot
        // O(2^{3n}) versus b GEMMs).
        if phase_len > 2 * target_len {
            QpeStrategy::Eigendecomposition
        } else {
            QpeStrategy::RepeatedSquaring
        }
    }

    /// The fixed all-shortcuts plan this executor runs.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        plan_emulated(program, &CostModel::default(), &self.config, |t, p| {
            self.choose_qpe_strategy(t, p)
        })
    }
}

impl Executor for Emulator {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        PlanInterpreter::new(self.config)
            .execute(program, &self.plan(program), initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "emulator"
    }
}

/// Per-op hybrid dispatch: plans with the generalized [`CostModel`], then
/// executes each op on whichever backend the model predicts is cheapest —
/// emulation shortcut, FFT, dense QPE path, fused or plain gate-level
/// simulation. [`HybridExecutor::run_with_report`] additionally returns
/// the [`PlanReport`] (per-op backend, predicted vs measured cost) so the
/// dispatch is auditable; the `hybrid_ablation` bench exercises it on a
/// mixed Shor-style workload.
///
/// ## Plan caching
///
/// Planning is not free: the hybrid lowering runs the fusion engine to
/// price the fused candidates, and re-ran on **every** `run()` before
/// this cache existed. The executor now memoises the last plan (which
/// carries the fused circuits) keyed on the program's
/// [`instance_id`](QuantumProgram::instance_id) *and*
/// [`structure_hash`](QuantumProgram::structure_hash), plus the model and
/// config that produced it; repeated `run()`s of the same program skip
/// planning and fusion entirely, and any change — different program,
/// swapped model, new config — evicts the entry. Clones of the executor
/// share the cache.
#[derive(Clone, Debug)]
pub struct HybridExecutor {
    /// The cost model driving backend choice.
    pub model: CostModel,
    /// Gate-level configuration for simulated steps; defaults to greedy
    /// fusion at the default window.
    pub config: SimConfig,
    cache: Arc<Mutex<Option<CachedPlan>>>,
    plan_misses: Arc<AtomicUsize>,
}

/// One memoised lowering, with everything its validity depends on.
#[derive(Debug)]
struct CachedPlan {
    instance_id: u64,
    structure_hash: u64,
    model: CostModel,
    config: SimConfig,
    plan: Arc<ExecutionPlan>,
}

impl Default for HybridExecutor {
    fn default() -> HybridExecutor {
        HybridExecutor {
            model: CostModel::default(),
            config: SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS),
            cache: Arc::default(),
            plan_misses: Arc::default(),
        }
    }
}

impl HybridExecutor {
    /// Hybrid executor with the default cost model and fused gate path.
    pub fn new() -> HybridExecutor {
        HybridExecutor::default()
    }

    /// Hybrid executor driven by the **measured** host rates
    /// ([`CostModel::calibrated`]): the first call pays a few tens of
    /// milliseconds of micro-benchmarks, after which per-op dispatch
    /// tracks what this machine (and this build — SIMD on or off)
    /// actually does, not the hand-tuned default ratios.
    pub fn calibrated() -> HybridExecutor {
        HybridExecutor::new().with_model(CostModel::calibrated())
    }

    /// Replaces the cost model (e.g. with measured machine rates).
    /// Resets the plan cache: cached plans are only valid for the model
    /// that produced them.
    pub fn with_model(mut self, model: CostModel) -> HybridExecutor {
        self.model = model;
        self.cache = Arc::default();
        self
    }

    /// Replaces the gate-level execution configuration (resets the plan
    /// cache).
    pub fn with_config(mut self, config: SimConfig) -> HybridExecutor {
        self.config = config;
        self.cache = Arc::default();
        self
    }

    /// The cost-model-driven plan for `program` — inspect (or `{}`-print)
    /// it to see the per-op dispatch before running anything.
    pub fn plan(&self, program: &QuantumProgram) -> ExecutionPlan {
        (*self.plan_cached(program)).clone()
    }

    /// The memoised plan for `program`, if the cache currently holds one
    /// that is valid for it (and for this executor's model/config).
    pub fn cached_plan(&self, program: &QuantumProgram) -> Option<Arc<ExecutionPlan>> {
        let guard = self.cache.lock().unwrap();
        guard
            .as_ref()
            .filter(|c| self.cache_valid(c, program, program.structure_hash()))
            .map(|c| Arc::clone(&c.plan))
    }

    /// How many times a `run()`/`plan()` had to lower from scratch —
    /// the observable that proves repeated runs hit the cache.
    pub fn plan_cache_misses(&self) -> usize {
        self.plan_misses.load(Ordering::Relaxed)
    }

    fn cache_valid(&self, c: &CachedPlan, program: &QuantumProgram, hash: u64) -> bool {
        c.instance_id == program.instance_id()
            && c.structure_hash == hash
            && c.model == self.model
            && c.config == self.config
    }

    /// Returns a cached plan valid for `program`'s **structure** — the
    /// batch entry point ([`crate::batch::BatchExecutor`]).
    ///
    /// Unlike [`HybridExecutor::plan`], a cache hit does **not** require
    /// the same `instance_id`: any program with the same
    /// [`structure_hash`](QuantumProgram::structure_hash) (under the same
    /// model and config) reuses the lowering. This is safe only because
    /// the batch runner never executes a carried closure-built artifact
    /// against a different instance — closure-bearing steps are re-run
    /// per member from each member's own ops, and only structurally
    /// determined gate streams (bit-identical under an equal structure
    /// hash) are applied batched. Misses count toward
    /// [`HybridExecutor::plan_cache_misses`] like any other lowering.
    pub(crate) fn plan_structural(&self, program: &QuantumProgram) -> Arc<ExecutionPlan> {
        let hash = program.structure_hash();
        let mut guard = self.cache.lock().unwrap();
        if let Some(c) = guard.as_ref() {
            if c.structure_hash == hash && c.model == self.model && c.config == self.config {
                return Arc::clone(&c.plan);
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(plan_hybrid(program, &self.model, &self.config));
        *guard = Some(CachedPlan {
            instance_id: program.instance_id(),
            structure_hash: hash,
            model: self.model,
            config: self.config,
            plan: Arc::clone(&plan),
        });
        plan
    }

    /// Returns the cached plan or lowers (and caches) a fresh one.
    fn plan_cached(&self, program: &QuantumProgram) -> Arc<ExecutionPlan> {
        let hash = program.structure_hash();
        let mut guard = self.cache.lock().unwrap();
        if let Some(c) = guard.as_ref() {
            if self.cache_valid(c, program, hash) {
                return Arc::clone(&c.plan);
            }
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(plan_hybrid(program, &self.model, &self.config));
        *guard = Some(CachedPlan {
            instance_id: program.instance_id(),
            structure_hash: hash,
            model: self.model,
            config: self.config,
            plan: Arc::clone(&plan),
        });
        plan
    }

    /// Runs the program and returns the final state together with the
    /// per-op audit report (backend, predicted and measured cost).
    /// Repeated calls with the same program reuse the memoised plan —
    /// planning and fusion are paid once.
    pub fn run_with_report(
        &self,
        program: &QuantumProgram,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        let plan = self.plan_cached(program);
        self.run_plan(program, &plan, initial)
    }

    /// Executes an already-computed plan (e.g. one obtained from
    /// [`HybridExecutor::plan`] for inspection) without re-planning.
    pub fn run_plan(
        &self,
        program: &QuantumProgram,
        plan: &ExecutionPlan,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        PlanInterpreter::new(self.config).execute(program, plan, initial)
    }
}

impl Executor for HybridExecutor {
    fn run(&self, program: &QuantumProgram, initial: StateVector) -> Result<StateVector, EmuError> {
        self.run_with_report(program, initial)
            .map(|(state, _)| state)
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::stdops;

    /// Build-and-run helper: multiplication program of the paper's Fig. 1.
    fn multiplication_program(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.hadamard_all(a);
        pb.hadamard_all(b);
        pb.classical(stdops::multiply(a, b, c, m));
        pb.build().unwrap()
    }

    #[test]
    fn simulator_and_emulator_agree_on_multiplication() {
        let m = 2;
        let prog = multiplication_program(m);
        let initial = StateVector::zero_state(prog.n_qubits());
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(
            sim.max_diff_up_to_phase(&emu) < 1e-10,
            "sim vs emu: {}",
            sim.max_diff_up_to_phase(&emu)
        );
        // Every surviving branch satisfies c = a·b mod 4.
        let all: Vec<usize> = (0..prog.n_qubits()).collect();
        for (idx, p) in emu.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let a = idx & 0b11;
            let b = (idx >> 2) & 0b11;
            let c = (idx >> 4) & 0b11;
            assert_eq!(c, (a * b) % 4, "branch a={a} b={b}");
        }
    }

    #[test]
    fn fused_simulator_matches_unfused_and_emulator() {
        let prog = multiplication_program(2);
        let initial = StateVector::zero_state(prog.n_qubits());
        let unfused = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        for k in 2..=5 {
            let fused = GateLevelSimulator::new()
                .with_config(qcemu_sim::SimConfig::fused(k))
                .run(&prog, initial.clone())
                .unwrap();
            assert!(
                unfused.max_diff_up_to_phase(&fused) < 1e-10,
                "k = {k}: {}",
                unfused.max_diff_up_to_phase(&fused)
            );
        }
        // And the default fused constructor composes with emulation.
        let emu = Emulator::new()
            .with_config(qcemu_sim::SimConfig::fused(4))
            .run(&prog, initial.clone())
            .unwrap();
        let fused = GateLevelSimulator::fused().run(&prog, initial).unwrap();
        assert!(fused.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn hybrid_matches_both_legacy_executors() {
        // m = 4 (12 qubits): large enough that the cost model, like the
        // paper, favours the emulated table pass over the Toffoli
        // network; at toy sizes simulation may legitimately win.
        let prog = multiplication_program(4);
        let initial = StateVector::zero_state(prog.n_qubits());
        let emu = Emulator::new().run(&prog, initial.clone()).unwrap();
        let sim = GateLevelSimulator::fused()
            .run(&prog, initial.clone())
            .unwrap();
        let (hyb, report) = HybridExecutor::new()
            .run_with_report(&prog, initial)
            .unwrap();
        assert!(hyb.max_diff_up_to_phase(&emu) < 1e-10);
        assert!(hyb.max_diff_up_to_phase(&sim) < 1e-10);
        // The report audits every op with a finite prediction.
        assert_eq!(report.steps.len(), prog.ops().len());
        assert!(report.steps.iter().all(|s| s.predicted_s.is_finite()));
        assert!(report
            .steps
            .iter()
            .any(|s| s.backend == crate::planner::Backend::EmulateClassical));
    }

    #[test]
    fn repeated_runs_reuse_the_cached_plan() {
        let prog = multiplication_program(3);
        let initial = StateVector::zero_state(prog.n_qubits());
        let exec = HybridExecutor::new();
        assert_eq!(exec.plan_cache_misses(), 0);
        assert!(exec.cached_plan(&prog).is_none());

        let a = exec.run(&prog, initial.clone()).unwrap();
        assert_eq!(exec.plan_cache_misses(), 1);
        let cached = exec.cached_plan(&prog).expect("cache populated by run");

        // Second run: same plan object, no new lowering.
        let b = exec.run(&prog, initial).unwrap();
        assert_eq!(exec.plan_cache_misses(), 1, "second run must not re-plan");
        assert!(Arc::ptr_eq(&cached, &exec.cached_plan(&prog).unwrap()));
        assert!(a.max_diff_up_to_phase(&b) < 1e-15);

        // A different program evicts the entry (single-slot cache).
        let prog2 = multiplication_program(2);
        exec.run(&prog2, StateVector::zero_state(prog2.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
        assert!(exec.cached_plan(&prog).is_none());
        assert!(exec.cached_plan(&prog2).is_some());

        // Clones share the cache; with_model/with_config reset it.
        let shared = exec.clone();
        assert!(shared.cached_plan(&prog2).is_some());
        let fresh = exec.clone().with_model(CostModel::default());
        assert!(fresh.cached_plan(&prog2).is_none());
        let fresh = exec.clone().with_config(SimConfig::fused(3));
        assert!(fresh.cached_plan(&prog2).is_none());
    }

    #[test]
    fn cached_plan_is_not_served_to_a_different_program_instance() {
        // A structurally identical rebuild gets a fresh instance_id, so
        // the cache misses (its steps may carry the old instance's
        // closures) — and execution still succeeds.
        let exec = HybridExecutor::new();
        let prog_a = multiplication_program(2);
        exec.run(&prog_a, StateVector::zero_state(prog_a.n_qubits()))
            .unwrap();
        let prog_b = multiplication_program(2);
        assert_eq!(prog_a.structure_hash(), prog_b.structure_hash());
        assert!(exec.cached_plan(&prog_b).is_none());
        exec.run(&prog_b, StateVector::zero_state(prog_b.n_qubits()))
            .unwrap();
        assert_eq!(exec.plan_cache_misses(), 2);
    }

    #[test]
    fn calibrated_executor_still_matches_the_reference_paths() {
        let prog = multiplication_program(3);
        let initial = StateVector::zero_state(prog.n_qubits());
        let reference = Emulator::new().run(&prog, initial.clone()).unwrap();
        let calibrated = HybridExecutor::calibrated().run(&prog, initial).unwrap();
        assert!(reference.max_diff_up_to_phase(&calibrated) < 1e-10);
    }

    #[test]
    fn hybrid_runs_emulation_only_programs() {
        // No gate impl anywhere: the hybrid plan must fall back to
        // emulation instead of failing like the simulator.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let out = HybridExecutor::new()
            .run(&prog, StateVector::zero_state(3))
            .unwrap();
        assert_eq!(out.probability(3), 1.0);
    }

    #[test]
    fn emulator_with_timings_uses_the_advisor() {
        // Timings where simulation is essentially free: the advisor must
        // choose gate-level QPE, overriding the static b > 2n rule.
        let timings = QpeTimings {
            n: 2,
            g: 4,
            t_apply_u: 1e-12,
            t_build_dense: 10.0,
            t_gemm: 10.0,
            t_eig: 10.0,
        };
        let emu = Emulator::new().with_timings(timings);
        assert_eq!(emu.choose_qpe_strategy(2, 6), QpeStrategy::GateLevel);
        // And the opposite machine: gates cost hours, dense paths are free.
        let timings = QpeTimings {
            n: 2,
            g: 4,
            t_apply_u: 10.0,
            t_build_dense: 1e-12,
            t_gemm: 1e-12,
            t_eig: 1e-9,
        };
        let emu = Emulator::new().with_timings(timings);
        assert_ne!(emu.choose_qpe_strategy(2, 3), QpeStrategy::GateLevel);
        // A fixed strategy still wins over timings.
        let emu =
            Emulator::with_qpe_strategy(QpeStrategy::Eigendecomposition).with_timings(timings);
        assert_eq!(
            emu.choose_qpe_strategy(2, 3),
            QpeStrategy::Eigendecomposition
        );
    }

    #[test]
    fn qft_paths_agree() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 4);
        pb.set_constant(a, 9);
        pb.qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(4);
        let sim = GateLevelSimulator::new()
            .run(&prog, initial.clone())
            .unwrap();
        let emu = Emulator::new().run(&prog, initial).unwrap();
        assert!(sim.max_diff_up_to_phase(&emu) < 1e-10);
    }

    #[test]
    fn qft_then_inverse_roundtrips_via_all_paths() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        let b = pb.register("b", 2);
        pb.hadamard_all(b);
        pb.set_constant(a, 5);
        pb.qft(a);
        pb.inverse_qft(a);
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(5);
        for exec in [
            &GateLevelSimulator::new() as &dyn Executor,
            &Emulator::new(),
            &HybridExecutor::new(),
        ] {
            let out = exec.run(&prog, initial.clone()).unwrap();
            let dist = out.register_distribution(&prog.register(a).bits());
            assert!((dist[5] - 1.0).abs() < 1e-9, "{}: {:?}", exec.name(), dist);
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut pb = ProgramBuilder::new();
        let _a = pb.register("a", 3);
        let prog = pb.build().unwrap();
        let bad = StateVector::zero_state(2);
        assert!(matches!(
            Emulator::new().run(&prog, bad.clone()),
            Err(EmuError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, bad.clone()),
            Err(EmuError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            HybridExecutor::new().run(&prog, bad),
            Err(EmuError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn emulation_only_op_fails_on_simulator_but_runs_on_emulator() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let initial = StateVector::zero_state(3);
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, initial.clone()),
            Err(EmuError::NoGateImplementation { .. })
        ));
        let out = Emulator::new().run(&prog, initial).unwrap();
        assert_eq!(out.probability(3), 1.0);
    }
}

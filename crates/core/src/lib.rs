//! # qcemu-core — the quantum computer emulator
//!
//! The primary contribution of *High Performance Emulation of Quantum
//! Circuits* (Häner, Steiger, Smelyanskiy, Troyer; SC 2016): given a
//! quantum program in a high-level IR, execute its subroutines at the
//! level of their *mathematical description* instead of compiling them to
//! elementary gates —
//!
//! | paper | here |
//! |---|---|
//! | §3.1 classical functions evaluated per basis state | [`classical`], [`stdops`] |
//! | §3.2 QFT as a classical FFT | `HighLevelOp::Qft` via `qcemu-fft` |
//! | §3.3 QPE by repeated squaring / eigendecomposition | [`qpe`] |
//! | §3.4 exact measurement statistics without sampling | [`measurement`] |
//! | §4.4 crossover heuristics (Table 2) | [`crossover`] |
//!
//! The [`executor::GateLevelSimulator`] runs the *same* program through
//! elementary gates (ancillas and all), so every shortcut can be verified
//! for exact state agreement and benchmarked for the paper's speedups.
//!
//! ## Example
//! ```
//! use qcemu_core::{Emulator, Executor, GateLevelSimulator, ProgramBuilder, stdops};
//! use qcemu_sim::StateVector;
//!
//! let mut pb = ProgramBuilder::new();
//! let a = pb.register("a", 3);
//! let b = pb.register("b", 3);
//! let c = pb.register("c", 3);
//! pb.hadamard_all(a);
//! pb.set_constant(b, 5);
//! pb.classical(stdops::multiply(a, b, c, 3));
//! pb.qft(c);
//! let program = pb.build().unwrap();
//!
//! let init = StateVector::zero_state(program.n_qubits());
//! let emulated = Emulator::new().run(&program, init.clone()).unwrap();
//! let simulated = GateLevelSimulator::new().run(&program, init).unwrap();
//! assert!(emulated.max_diff_up_to_phase(&simulated) < 1e-9);
//! ```

pub mod batch;
pub mod calibration;
pub mod classical;
pub mod crossover;
pub mod error;
pub mod executor;
pub mod measurement;
pub mod plancache;
pub mod planner;
pub mod program;
pub mod qpe;
pub mod stdops;

pub use batch::{BatchExecutor, BatchReport, BatchStepReport};
pub use classical::{
    apply_classical_map, apply_controlled_rotation, apply_controlled_rotation_batch,
    apply_phase_oracle,
};
pub use crossover::{CostModel, QpeCostModel, QpeTimings};
pub use error::EmuError;
pub use executor::{Emulator, Executor, GateLevelSimulator, HybridExecutor};
pub use measurement::{
    compare_expectation_z, exact_register_distribution, sampled_register_distribution,
    total_variation, ExpectationComparison,
};
pub use plancache::{SharedPlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use planner::{
    plan_emulated, plan_hybrid, plan_simulated, Backend, ExecutionPlan, PlanInterpreter,
    PlanReport, PlanStep, StepReport,
};
pub use program::{
    ClassicalMap, GateImpl, HighLevelOp, MapKind, PhaseOracle, ProgramBuilder, ProgramRegister,
    QpeOp, QuantumProgram, RegisterId, RotationOp,
};
pub use qpe::{apply_qpe, qpe_kernel, qpe_outcome_distribution, QpeStrategy};

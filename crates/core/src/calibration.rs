//! On-disk persistence for the calibrated cost model.
//!
//! [`CostModel::calibrated`](crate::crossover::CostModel::calibrated)
//! micro-benchmarks every rate on first use — tens of milliseconds that
//! every short-lived process would otherwise pay again. This module
//! caches the measured rates in a small hand-rolled JSON file (std-only,
//! no serde) keyed by a **host fingerprint**, so a cached model is only
//! ever reused on the machine/build combination that measured it:
//!
//! * the schema version (bumped when rates are added or re-defined),
//! * the CPU model name from `/proc/cpuinfo` (absent on non-Linux hosts,
//!   which simply narrows the fingerprint),
//! * the available hardware parallelism,
//! * the active SIMD backend (`qcemu_linalg::simd::backend_name`), which
//!   changes with the `simd` feature and therefore with the kernels'
//!   per-entry arithmetic cost.
//!
//! The cache lives at `$XDG_CACHE_HOME/qcemu/calibration.json` (falling
//! back to `$HOME/.cache/qcemu/calibration.json`). `QCEMU_CALIB_CACHE`
//! overrides the path; setting it to `off`, `0`, or the empty string
//! disables persistence. Every failure mode — unreadable file, schema or
//! fingerprint mismatch, non-finite or non-positive rate — falls back to
//! re-measuring; a stale cache can cost one recalibration, never a wrong
//! model. The fallback is silent by default but **observable**: every
//! rejected (present-but-invalid) cache file bumps [`rejected_loads`],
//! and setting `QCEMU_CALIB_DEBUG` to anything non-empty prints the
//! rejection to stderr — so a cache that never hits (corrupt file,
//! permissions churn, schema drift) shows up instead of silently costing
//! a recalibration per process forever.

use crate::crossover::{CostModel, QpeCostModel};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bumped whenever a rate is added, removed, or re-defined; folded into
/// the fingerprint so older cache files are ignored rather than parsed.
/// v2: added `mps_rate` (compressed-backend contraction rate) and
/// `block_bits` (measured segment block size).
/// v3: added `dispatch_overhead` (persistent-pool per-dispatch cost) and
/// `thread_scale` (measured sweep parallel speedup); the sweep rates are
/// also re-defined — they are now measured with the worker pool warm, so
/// v2 rates silently absorbed spawn cost this schema prices separately.
const SCHEMA_VERSION: u32 = 3;

/// Count of cache files that existed but were rejected (corrupt JSON,
/// fingerprint/schema mismatch, invalid rate). Missing files are clean
/// misses and do not count.
static REJECTED_LOADS: AtomicUsize = AtomicUsize::new(0);

/// How many calibration-cache loads found a file and refused it since
/// process start. A monotonically growing value across runs that should
/// be hitting the cache is the signature of a corrupt or stale file.
pub fn rejected_loads() -> usize {
    REJECTED_LOADS.load(Ordering::Relaxed)
}

/// Records (and, under `QCEMU_CALIB_DEBUG`, reports) a rejected cache
/// file.
fn note_rejected(path: &Path, why: &str) {
    REJECTED_LOADS.fetch_add(1, Ordering::Relaxed);
    let debug = std::env::var("QCEMU_CALIB_DEBUG")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if debug {
        eprintln!(
            "qcemu: calibration cache {} rejected ({why}); re-measuring",
            path.display()
        );
    }
}

/// FNV-1a, good enough for a cache key and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hex digest identifying (schema, CPU, thread count, SIMD backend).
pub(crate) fn host_fingerprint() -> String {
    let cpu = fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .map(str::to_owned)
        })
        .unwrap_or_default();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let backend = qcemu_linalg::simd::backend_name();
    let key = format!("v{SCHEMA_VERSION}|{cpu}|{threads}|{backend}");
    format!("{:016x}", fnv1a(key.as_bytes()))
}

/// Resolved cache file path, or `None` when persistence is disabled
/// (explicitly via `QCEMU_CALIB_CACHE`, or because no home directory is
/// known).
pub(crate) fn cache_path() -> Option<PathBuf> {
    match std::env::var("QCEMU_CALIB_CACHE") {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => {
            let base = std::env::var_os("XDG_CACHE_HOME")
                .map(PathBuf::from)
                .filter(|p| !p.as_os_str().is_empty())
                .or_else(|| std::env::var_os("HOME").map(|h| PathBuf::from(h).join(".cache")))?;
            Some(base.join("qcemu").join("calibration.json"))
        }
    }
}

/// Loads the cached model for this host, if a valid one exists. A file
/// that exists but fails validation is counted via [`rejected_loads`]
/// (and reported under `QCEMU_CALIB_DEBUG`); a missing file is a clean
/// miss.
pub(crate) fn load_cached() -> Option<CostModel> {
    load_checked(&cache_path()?, &host_fingerprint())
}

/// [`load_from`] plus rejection accounting: only a file that is present
/// and invalid counts as rejected.
fn load_checked(path: &Path, fingerprint: &str) -> Option<CostModel> {
    if !path.exists() {
        return None;
    }
    let loaded = load_from(path, fingerprint);
    if loaded.is_none() {
        note_rejected(path, "corrupt, mismatched, or invalid");
    }
    loaded
}

/// Persists `m` for this host. Failures (read-only filesystem, missing
/// home, races) are deliberately ignored: persistence is an optimisation.
pub(crate) fn store_cached(m: &CostModel) {
    if let Some(path) = cache_path() {
        let _ = store_to(&path, &host_fingerprint(), m);
    }
}

/// `"key": value` scanner for the flat single-object JSON we emit.
fn field<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = src.find(&pat)? + pat.len();
    let rest = src[start..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn field_str<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    field(src, key)?
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
}

/// A rate is only accepted if it parses as a finite, strictly positive
/// float — the single invariant the planner's divisions rely on.
fn field_rate(src: &str, key: &str) -> Option<f64> {
    field(src, key)?
        .parse::<f64>()
        .ok()
        .filter(|r| r.is_finite() && *r > 0.0)
}

/// A thread-scaling factor must be a finite speedup ≥ 1 (a serial run
/// cannot beat the pool-engaged rate it is defined against) and ≤ 4096
/// (an absurd core count flags a corrupt file).
fn field_scale(src: &str, key: &str) -> Option<f64> {
    field(src, key)?
        .parse::<f64>()
        .ok()
        .filter(|s| s.is_finite() && (1.0..=4096.0).contains(s))
}

/// A block size is only accepted in the range the segment compiler can
/// actually use (`2^1 ..= 2^30` amplitudes).
fn field_bits(src: &str, key: &str) -> Option<usize> {
    field(src, key)?
        .parse::<usize>()
        .ok()
        .filter(|b| (1..=30).contains(b))
}

fn to_json(fingerprint: &str, m: &CostModel) -> String {
    // `{:?}` on f64 is Rust's shortest round-trip representation.
    format!(
        "{{\n  \"fingerprint\": \"{fingerprint}\",\n  \
         \"entry_rate\": {:?},\n  \
         \"fused_entry_rate\": {:?},\n  \
         \"cache_rate\": {:?},\n  \
         \"table_rate\": {:?},\n  \
         \"fuse_per_gate\": {:?},\n  \
         \"mps_rate\": {:?},\n  \
         \"dispatch_overhead\": {:?},\n  \
         \"thread_scale\": {:?},\n  \
         \"block_bits\": {},\n  \
         \"gate_rate\": {:?},\n  \
         \"build_rate\": {:?},\n  \
         \"gemm_flops\": {:?},\n  \
         \"eig_flops\": {:?}\n}}\n",
        m.entry_rate,
        m.fused_entry_rate,
        m.cache_rate,
        m.table_rate,
        m.fuse_per_gate,
        m.mps_rate,
        m.dispatch_overhead,
        m.thread_scale,
        m.block_bits,
        m.qpe.gate_rate,
        m.qpe.build_rate,
        m.qpe.gemm_flops,
        m.qpe.eig_flops,
    )
}

fn load_from(path: &Path, fingerprint: &str) -> Option<CostModel> {
    let src = fs::read_to_string(path).ok()?;
    if field_str(&src, "fingerprint")? != fingerprint {
        return None;
    }
    Some(CostModel {
        entry_rate: field_rate(&src, "entry_rate")?,
        fused_entry_rate: field_rate(&src, "fused_entry_rate")?,
        cache_rate: field_rate(&src, "cache_rate")?,
        table_rate: field_rate(&src, "table_rate")?,
        fuse_per_gate: field_rate(&src, "fuse_per_gate")?,
        mps_rate: field_rate(&src, "mps_rate")?,
        dispatch_overhead: field_rate(&src, "dispatch_overhead")?,
        thread_scale: field_scale(&src, "thread_scale")?,
        block_bits: field_bits(&src, "block_bits")?,
        qpe: QpeCostModel {
            gate_rate: field_rate(&src, "gate_rate")?,
            build_rate: field_rate(&src, "build_rate")?,
            gemm_flops: field_rate(&src, "gemm_flops")?,
            eig_flops: field_rate(&src, "eig_flops")?,
        },
    })
}

fn store_to(path: &Path, fingerprint: &str, m: &CostModel) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    // Temp-file + rename keeps concurrent readers from ever seeing a
    // half-written model (rename is atomic on the same filesystem).
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, to_json(fingerprint, m))?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fresh per-test file under the workspace target dir — the tests
    /// never touch the real per-user cache location.
    fn test_path(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/calibration-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.json"))
    }

    fn model() -> CostModel {
        CostModel {
            entry_rate: 3.25e8,
            fused_entry_rate: 5.5e8,
            cache_rate: 2.125e9,
            table_rate: 4.75e7,
            fuse_per_gate: 1.5e-6,
            mps_rate: 1.75e8,
            dispatch_overhead: 3.5e-6,
            thread_scale: 2.5,
            block_bits: 13,
            qpe: QpeCostModel {
                gate_rate: 3.25e8,
                build_rate: 4.0e8,
                gemm_flops: 5.0e9,
                eig_flops: 1.0e9,
            },
        }
    }

    #[test]
    fn round_trips_exactly() {
        let path = test_path("round-trip");
        let m = model();
        store_to(&path, "fp-abc", &m).unwrap();
        assert_eq!(load_from(&path, "fp-abc"), Some(m));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_fingerprint_mismatch() {
        let path = test_path("fingerprint-mismatch");
        store_to(&path, "fp-old-host", &model()).unwrap();
        assert_eq!(load_from(&path, "fp-new-host"), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_corrupt_and_invalid_rates() {
        let path = test_path("corrupt");
        fs::write(&path, "not json at all").unwrap();
        assert_eq!(load_from(&path, "fp"), None);

        // A well-formed file with one non-positive rate must be refused
        // outright — a zero rate would divide the planner's costs by 0.
        let bad = to_json("fp", &model()).replace("2125000000.0", "0.0");
        assert!(bad.contains("\"cache_rate\": 0.0"), "edit must hit");
        fs::write(&path, bad).unwrap();
        assert_eq!(load_from(&path, "fp"), None);

        // Missing field: same refusal.
        let missing = to_json("fp", &model()).replace("\"table_rate\"", "\"renamed\"");
        fs::write(&path, missing).unwrap();
        assert_eq!(load_from(&path, "fp"), None);

        // An implausible block size is refused like a bad rate.
        let bad_bits = to_json("fp", &model()).replace("\"block_bits\": 13", "\"block_bits\": 99");
        fs::write(&path, bad_bits).unwrap();
        assert_eq!(load_from(&path, "fp"), None);

        // A thread-scaling factor below 1 contradicts its definition
        // (speedup over a forced single-thread run) and is refused.
        let bad_scale =
            to_json("fp", &model()).replace("\"thread_scale\": 2.5", "\"thread_scale\": 0.5");
        fs::write(&path, bad_scale).unwrap();
        assert_eq!(load_from(&path, "fp"), None);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_counted_as_rejected_but_missing_is_not() {
        let path = test_path("rejection-counter");
        let _ = fs::remove_file(&path);

        // Clean miss: no file, no rejection.
        let before = rejected_loads();
        assert_eq!(load_checked(&path, "fp"), None);
        assert_eq!(rejected_loads(), before, "missing file must not count");

        // Present-but-corrupt: refused AND counted, so the silent
        // re-measure fallback stays observable.
        fs::write(&path, "{ definitely not a calibration file").unwrap();
        assert_eq!(load_checked(&path, "fp"), None);
        assert!(rejected_loads() > before, "corrupt file must be counted");

        // A valid file loads without touching the counter further.
        let mid = rejected_loads();
        store_to(&path, "fp", &model()).unwrap();
        assert_eq!(load_checked(&path, "fp"), Some(model()));
        assert_eq!(rejected_loads(), mid);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_miss() {
        assert_eq!(load_from(&test_path("never-written"), "fp"), None);
    }

    #[test]
    fn fingerprint_is_stable_and_hex() {
        let fp = host_fingerprint();
        assert_eq!(fp.len(), 16);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(fp, host_fingerprint());
    }
}

//! Shared, bounded plan cache: one lowering per circuit structure.
//!
//! The [`HybridExecutor`](crate::executor::HybridExecutor) used to
//! memoise a single plan — enough for "run the same program again", but
//! not for a multi-tenant serving process where many clients submit the
//! same circuit *shape* with different parameters. [`SharedPlanCache`] is
//! the extraction of that cache into a first-class object:
//!
//! * **keyed on [`structure_hash`](crate::program::QuantumProgram::structure_hash)** —
//!   requests that differ only in closure-carried parameters (rotation
//!   angles, classical map bodies) share one lowering, so planning,
//!   cost-model evaluation, and gate fusion are paid once per shape;
//! * **bounded, LRU-evicted** — a long-lived daemon serving thousands of
//!   distinct shapes stays at a fixed memory footprint (each entry
//!   carries fused circuits, which are not small);
//! * **single-flight** — when several threads miss on the same key
//!   simultaneously, exactly one lowers the plan while the rest block on
//!   a condition variable and then share the result. This is what makes
//!   "exactly one plan-cache miss across N concurrent same-structure
//!   requests" a guarantee rather than a race;
//! * **observable** — hit/miss/eviction counters back the daemon's
//!   served statistics and the repo's cache tests.
//!
//! Entries record the [`CostModel`] and [`SimConfig`] that produced them;
//! a lookup under a different model or config is a miss (and the fresh
//! lowering replaces the stale entry — same key, new validity).
//! Clones of a `SharedPlanCache` are handles to the same cache.

use crate::crossover::CostModel;
use crate::planner::ExecutionPlan;
use qcemu_sim::SimConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default number of distinct structures a cache retains.
///
/// Plans carry fused block streams and synthesized gate-impl circuits, so
/// an entry for a wide arithmetic program can reach megabytes; 32 shapes
/// comfortably covers a serving mix while bounding worst-case footprint.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

/// A bounded, structure-keyed, thread-shared cache of
/// [`ExecutionPlan`]s. See the [module docs](self) for semantics.
#[derive(Clone, Debug)]
pub struct SharedPlanCache {
    shared: Arc<CacheShared>,
}

#[derive(Debug)]
struct CacheShared {
    state: Mutex<CacheState>,
    /// Signalled when an in-flight lowering completes (or is abandoned),
    /// waking threads that blocked on the same key.
    done: Condvar,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

#[derive(Debug)]
struct CacheState {
    capacity: usize,
    /// Monotone recency clock; bumped on every touch.
    tick: u64,
    entries: HashMap<u64, CacheEntry>,
    /// Keys currently being lowered by some thread (single-flight latch).
    in_flight: Vec<u64>,
}

#[derive(Debug)]
struct CacheEntry {
    /// `instance_id` of the program the plan was lowered from. Structural
    /// lookups ignore it; instance-strict lookups (the solo executor
    /// path, whose plans may be executed with their carried closure-built
    /// artifacts) require it to match.
    instance_id: u64,
    model: CostModel,
    config: SimConfig,
    plan: Arc<ExecutionPlan>,
    last_used: u64,
}

impl CacheEntry {
    fn valid_for(&self, model: &CostModel, config: &SimConfig) -> bool {
        self.model == *model && self.config == *config
    }
}

/// Removes the in-flight marker and wakes waiters even if the lowering
/// closure panics — otherwise every thread waiting on the key would hang.
struct InFlightGuard<'a> {
    shared: &'a CacheShared,
    key: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.in_flight.retain(|&k| k != self.key);
        drop(state);
        self.shared.done.notify_all();
    }
}

impl Default for SharedPlanCache {
    fn default() -> SharedPlanCache {
        SharedPlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl SharedPlanCache {
    /// Cache retaining up to `capacity` distinct structures (floored at 1).
    pub fn new(capacity: usize) -> SharedPlanCache {
        SharedPlanCache {
            shared: Arc::new(CacheShared {
                state: Mutex::new(CacheState {
                    capacity: capacity.max(1),
                    tick: 0,
                    entries: HashMap::new(),
                    in_flight: Vec::new(),
                }),
                done: Condvar::new(),
                hits: AtomicUsize::new(0),
                misses: AtomicUsize::new(0),
                evictions: AtomicUsize::new(0),
            }),
        }
    }

    /// Maximum number of retained structures.
    pub fn capacity(&self) -> usize {
        self.shared.state.lock().unwrap().capacity
    }

    /// Number of structures currently cached.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to lower a plan from scratch.
    pub fn misses(&self) -> usize {
        self.shared.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced by the capacity bound.
    pub fn evictions(&self) -> usize {
        self.shared.evictions.load(Ordering::Relaxed)
    }

    /// Drops every entry (counters are retained).
    pub fn clear(&self) {
        self.shared.state.lock().unwrap().entries.clear();
    }

    /// The cached plan for `structure_hash` under `model`/`config`, if
    /// present — without counting a hit or a miss, and without waiting on
    /// in-flight lowerings. When `require_instance` is set, the entry
    /// must additionally have been lowered from that program instance.
    pub fn peek(
        &self,
        structure_hash: u64,
        model: &CostModel,
        config: &SimConfig,
        require_instance: Option<u64>,
    ) -> Option<Arc<ExecutionPlan>> {
        let state = self.shared.state.lock().unwrap();
        state
            .entries
            .get(&structure_hash)
            .filter(|e| e.valid_for(model, config))
            .filter(|e| require_instance.is_none_or(|id| e.instance_id == id))
            .map(|e| Arc::clone(&e.plan))
    }

    /// Returns the cached plan for `structure_hash`, lowering it with
    /// `lower` on a miss (single-flight: concurrent misses on the same
    /// key run `lower` exactly once and share the result).
    ///
    /// `require_instance` makes a hit additionally demand that the entry
    /// was lowered from that specific program instance — the solo
    /// executor path, whose plans are executed together with their
    /// carried closure-built artifacts. `planned_instance` is recorded
    /// with the entry when `lower` runs.
    pub fn get_or_plan(
        &self,
        structure_hash: u64,
        model: &CostModel,
        config: &SimConfig,
        require_instance: Option<u64>,
        planned_instance: u64,
        lower: impl FnOnce() -> ExecutionPlan,
    ) -> Arc<ExecutionPlan> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(entry) = state.entries.get_mut(&structure_hash) {
                if entry.valid_for(model, config)
                    && require_instance.is_none_or(|id| entry.instance_id == id)
                {
                    state.tick += 1;
                    let tick = state.tick;
                    let entry = state.entries.get_mut(&structure_hash).unwrap();
                    entry.last_used = tick;
                    let plan = Arc::clone(&entry.plan);
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    return plan;
                }
                // Present but invalid (stale model/config, or a different
                // instance on a strict lookup): fall through and re-plan;
                // the insert below replaces the entry in place.
            }
            if state.in_flight.contains(&structure_hash) {
                // Someone else is lowering this key: wait and re-check.
                state = self.shared.done.wait(state).unwrap();
                continue;
            }
            state.in_flight.push(structure_hash);
            break;
        }
        drop(state);

        let guard = InFlightGuard {
            shared: &self.shared,
            key: structure_hash,
        };
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(lower());
        self.insert_locked(structure_hash, planned_instance, model, config, &plan);
        drop(guard);
        plan
    }

    /// Upserts an entry, evicting the least-recently-used other entry if
    /// the capacity bound is exceeded.
    fn insert_locked(
        &self,
        structure_hash: u64,
        instance_id: u64,
        model: &CostModel,
        config: &SimConfig,
        plan: &Arc<ExecutionPlan>,
    ) {
        let mut state = self.shared.state.lock().unwrap();
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(
            structure_hash,
            CacheEntry {
                instance_id,
                model: *model,
                config: *config,
                plan: Arc::clone(plan),
                last_used: tick,
            },
        );
        while state.entries.len() > state.capacity {
            let victim = state
                .entries
                .iter()
                .filter(|(&k, _)| k != structure_hash)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    state.entries.remove(&k);
                    self.shared.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_hybrid;
    use crate::program::{ProgramBuilder, QuantumProgram};

    fn qft_program(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        pb.hadamard_all(a);
        pb.qft(a);
        pb.build().unwrap()
    }

    fn lower(p: &QuantumProgram) -> ExecutionPlan {
        plan_hybrid(p, &CostModel::default(), &SimConfig::fused(4))
    }

    fn get(cache: &SharedPlanCache, p: &QuantumProgram) -> Arc<ExecutionPlan> {
        cache.get_or_plan(
            p.structure_hash(),
            &CostModel::default(),
            &SimConfig::fused(4),
            None,
            p.instance_id(),
            || lower(p),
        )
    }

    #[test]
    fn same_structure_plans_once() {
        let cache = SharedPlanCache::new(4);
        let a = qft_program(3);
        let b = qft_program(3); // fresh instance, same structure
        let plan_a = get(&cache, &a);
        let plan_b = get(&cache, &b);
        assert!(Arc::ptr_eq(&plan_a, &plan_b));
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let cache = SharedPlanCache::new(2);
        let p3 = qft_program(3);
        let p4 = qft_program(4);
        let p5 = qft_program(5);
        get(&cache, &p3);
        get(&cache, &p4);
        get(&cache, &p3); // touch p3: p4 becomes the LRU victim
        get(&cache, &p5);
        assert_eq!(cache.evictions(), 1);
        let model = CostModel::default();
        let config = SimConfig::fused(4);
        assert!(cache
            .peek(p3.structure_hash(), &model, &config, None)
            .is_some());
        assert!(cache
            .peek(p4.structure_hash(), &model, &config, None)
            .is_none());
        assert!(cache
            .peek(p5.structure_hash(), &model, &config, None)
            .is_some());
    }

    #[test]
    fn model_or_config_change_is_a_miss_that_replaces() {
        let cache = SharedPlanCache::new(4);
        let p = qft_program(3);
        get(&cache, &p);
        let other_config = SimConfig::fused(3);
        let plan = cache.get_or_plan(
            p.structure_hash(),
            &CostModel::default(),
            &other_config,
            None,
            p.instance_id(),
            || plan_hybrid(&p, &CostModel::default(), &other_config),
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1, "same key: replaced, not duplicated");
        // The replacement is what peek now sees under the new config.
        let seen = cache
            .peek(
                p.structure_hash(),
                &CostModel::default(),
                &other_config,
                None,
            )
            .unwrap();
        assert!(Arc::ptr_eq(&plan, &seen));
    }

    #[test]
    fn instance_strict_lookups_do_not_share_across_instances() {
        let cache = SharedPlanCache::new(4);
        let a = qft_program(3);
        let b = qft_program(3);
        let model = CostModel::default();
        let config = SimConfig::fused(4);
        cache.get_or_plan(
            a.structure_hash(),
            &model,
            &config,
            Some(a.instance_id()),
            a.instance_id(),
            || lower(&a),
        );
        assert!(cache
            .peek(b.structure_hash(), &model, &config, Some(b.instance_id()))
            .is_none());
        // …but a structural peek shares freely.
        assert!(cache
            .peek(b.structure_hash(), &model, &config, None)
            .is_some());
    }

    #[test]
    fn concurrent_same_structure_misses_collapse_to_one_lowering() {
        use std::sync::atomic::AtomicUsize;
        let cache = SharedPlanCache::new(4);
        let lowered = Arc::new(AtomicUsize::new(0));
        let programs: Vec<QuantumProgram> = (0..8).map(|_| qft_program(4)).collect();
        std::thread::scope(|scope| {
            for p in &programs {
                let cache = cache.clone();
                let lowered = Arc::clone(&lowered);
                scope.spawn(move || {
                    cache.get_or_plan(
                        p.structure_hash(),
                        &CostModel::default(),
                        &SimConfig::fused(4),
                        None,
                        p.instance_id(),
                        || {
                            lowered.fetch_add(1, Ordering::SeqCst);
                            lower(p)
                        },
                    );
                });
            }
        });
        assert_eq!(lowered.load(Ordering::SeqCst), 1, "single-flight");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn clones_are_handles_to_the_same_cache() {
        let cache = SharedPlanCache::new(4);
        let other = cache.clone();
        let p = qft_program(3);
        get(&cache, &p);
        assert_eq!(other.len(), 1);
        assert_eq!(other.misses(), 1);
        other.clear();
        assert!(cache.is_empty());
    }
}

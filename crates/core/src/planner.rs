//! Cost-model-driven execution planning: one plan IR, three backends.
//!
//! The paper's central tension (§3.3, §4.4, Table 2) is that *neither*
//! backend wins everywhere: emulation shortcuts win asymptotically, while
//! gate-level simulation wins at small operator sizes and on raw gate
//! runs. This module makes the choice explicit, per-op, and auditable:
//!
//! 1. every [`HighLevelOp`] **lowers** to a [`PlanStep`] naming a
//!    [`Backend`] plus a predicted cost from the generalized
//!    [`CostModel`] (which extends the Table 2 QPE crossover analysis to
//!    classical maps, QFTs, rotations, and raw gate runs via the
//!    memory-traffic estimators `Circuit::touched_entries` /
//!    `FusedCircuit::touched_entries`);
//! 2. a single [`PlanInterpreter`] executes any plan — the legacy
//!    [`Emulator`](crate::executor::Emulator) and
//!    [`GateLevelSimulator`](crate::executor::GateLevelSimulator) are
//!    thin wrappers over the fixed plans of [`plan_emulated`] /
//!    [`plan_simulated`], and
//!    [`HybridExecutor`](crate::executor::HybridExecutor) runs
//!    [`plan_hybrid`], which picks the cheapest backend per op;
//! 3. execution emits a [`PlanReport`] with per-op backend, predicted and
//!    measured cost, so every dispatch decision can be audited against
//!    the clock (see the `hybrid_ablation` bench).

use crate::classical::{apply_classical_map, apply_phase_oracle};
use crate::crossover::CostModel;
use crate::error::EmuError;
use crate::program::{HighLevelOp, QuantumProgram, RotationOp};
use crate::qpe::{apply_qpe, QpeStrategy};
use qcemu_fft::{inverse_qft_subspace, qft_subspace};
use qcemu_linalg::C64;
use qcemu_sim::circuits::qft::{inverse_qft_circuit, qft_circuit};
use qcemu_sim::{
    estimate_mps_cost, segment_circuit, Circuit, FusedCircuit, FusionPolicy, Gate, GateOp,
    MpsPolicy, MpsState, SegmentPolicy, SimConfig, StateVector, DEFAULT_MAX_FUSED_QUBITS,
    MPS_EXACT_TOL,
};
use std::fmt;
use std::time::Instant;

/// Probability mass tolerated on non-|0⟩ ancilla values after a run.
const ANCILLA_LEAK_TOL: f64 = 1e-9;

/// Execution backend of one plan step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Emulation shortcut for classical structure: permutation-table pass
    /// (classical maps), conditional phase scan (oracles), or the per-pair
    /// rotation sweep (paper §3.1).
    EmulateClassical,
    /// QFT via the classical FFT on the register subspace (paper §3.2).
    EmulateFft,
    /// Phase estimation with an explicit strategy (paper §3.3);
    /// `QpeStrategy::GateLevel` is the simulated variant.
    EmulateQpe {
        /// How the QPE is carried out.
        strategy: QpeStrategy,
    },
    /// Gate-level simulation through the fusion engine (cache-blocked
    /// multi-qubit sweeps).
    SimulateFused,
    /// Gate-level simulation through the segment executor
    /// (`qcemu_sim::segment`): the circuit is partitioned into blocked
    /// segments whose ops replay against L2-resident blocks, so deep
    /// compatible runs cross memory once instead of once per gate.
    SimulateSegmented {
        /// log2 of the block size in amplitudes — carried in the IR so
        /// pricing and execution use the *same* (possibly calibrated)
        /// block size (`CostModel::block_bits`).
        block_bits: usize,
    },
    /// Compressed simulation through the bond-truncated MPS backend
    /// (`qcemu_sim::mps`): O(χ³) per two-qubit gate instead of Θ(2ⁿ) per
    /// sweep. Only chosen when the entanglement-growth estimate proves
    /// the run stays exact under the cap, and execution still audits the
    /// truncation-error accumulator, falling back to a dense run on any
    /// forced truncation — a mispredicted χ costs time, never
    /// correctness.
    SimulateMps {
        /// Bond-dimension cap χ the step runs (and was priced) under.
        max_bond: usize,
    },
    /// Plain gate-by-gate simulation through the structural kernels.
    SimulateGateLevel,
}

impl Backend {
    /// `true` if this backend lowers the op to elementary-gate execution.
    pub fn is_simulate(&self) -> bool {
        matches!(
            self,
            Backend::SimulateFused
                | Backend::SimulateSegmented { .. }
                | Backend::SimulateMps { .. }
                | Backend::SimulateGateLevel
        )
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::EmulateClassical => write!(f, "emulate:classical"),
            Backend::EmulateFft => write!(f, "emulate:fft"),
            Backend::EmulateQpe { strategy } => match strategy {
                QpeStrategy::GateLevel => write!(f, "qpe:gate-level"),
                QpeStrategy::RepeatedSquaring => write!(f, "qpe:squaring"),
                QpeStrategy::Eigendecomposition => write!(f, "qpe:eigen"),
            },
            Backend::SimulateFused => write!(f, "simulate:fused"),
            Backend::SimulateSegmented { .. } => write!(f, "simulate:segmented"),
            Backend::SimulateMps { max_bond } => write!(f, "simulate:mps(χ≤{max_bond})"),
            Backend::SimulateGateLevel => write!(f, "simulate:gates"),
        }
    }
}

/// One lowered op: which backend runs it and what the model predicts it
/// costs (seconds on the cost model's synthetic machine).
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Index into `program.ops()`.
    pub op_index: usize,
    /// Human-readable op label (for reports).
    pub op: String,
    /// Chosen backend.
    pub backend: Backend,
    /// Predicted cost in model seconds (`f64::INFINITY` when the chosen
    /// backend cannot run the op, e.g. simulating an emulation-only map —
    /// execution then fails with the same error the legacy executor
    /// raised).
    pub predicted_s: f64,
    /// Work qubits this step needs above the program space (simulation
    /// backends only).
    pub n_ancilla: usize,
    /// Deferred-build circuit (classical/phase/rotation gate impls)
    /// materialised during costing — carried so execution does not
    /// rebuild it.
    pub(crate) circuit: Option<Circuit>,
    /// Fused block stream priced by the cost model — reused directly by
    /// fused execution (fusion is semantics-preserving at any window, so
    /// a cached stream is always state-correct).
    pub(crate) fused: Option<FusedCircuit>,
}

/// A fully lowered program: an ordered list of [`PlanStep`]s plus the
/// ancilla head-room their union requires.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    steps: Vec<PlanStep>,
    n_ancilla: usize,
    /// `instance_id` of the program this plan was lowered from; execution
    /// refuses any other program (steps index its op list and may carry
    /// circuits built from its closures).
    program_id: u64,
}

impl ExecutionPlan {
    /// The lowered steps in program order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Ancilla qubits the interpreter must append above the program space
    /// (the `2^anc` memory factor of paper Fig. 2) — the maximum over the
    /// plan's *simulated* steps, zero for all-emulated plans.
    pub fn n_ancilla(&self) -> usize {
        self.n_ancilla
    }

    /// Sum of the per-step cost predictions (model seconds).
    pub fn total_predicted_s(&self) -> f64 {
        self.steps.iter().map(|s| s.predicted_s).sum()
    }

    /// `instance_id` of the program this plan was lowered from.
    ///
    /// [`PlanInterpreter::execute`] refuses any other instance; the
    /// structure-keyed paths
    /// ([`HybridExecutor::run_structural`](crate::executor::HybridExecutor::run_structural),
    /// [`BatchExecutor`](crate::batch::BatchExecutor)) use this to decide
    /// whether carried closure-built artifacts may be executed directly
    /// or must be re-derived.
    pub fn planned_from(&self) -> u64 {
        self.program_id
    }

    fn from_steps(program: &QuantumProgram, steps: Vec<PlanStep>) -> ExecutionPlan {
        let n_ancilla = steps
            .iter()
            .filter(|s| s.backend.is_simulate())
            .map(|s| s.n_ancilla)
            .max()
            .unwrap_or(0);
        ExecutionPlan {
            steps,
            n_ancilla,
            program_id: program.instance_id(),
        }
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>3} {:<26} {:>17} {:>12}",
            "#", "op", "backend", "predicted"
        )?;
        for step in &self.steps {
            writeln!(
                f,
                "{:>3} {:<26} {:>17} {:>12}",
                step.op_index,
                step.op,
                step.backend.to_string(),
                fmt_model_secs(step.predicted_s),
            )?;
        }
        write!(f, "ancillas: {}", self.n_ancilla)
    }
}

/// Per-step entry of a [`PlanReport`]: the plan's choice plus the
/// measured wall time of the step.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Op label.
    pub op: String,
    /// Backend that ran the op.
    pub backend: Backend,
    /// Model-predicted cost (seconds).
    pub predicted_s: f64,
    /// Measured wall time (seconds).
    pub measured_s: f64,
}

/// Audit trail of one plan execution: per-op backend, predicted vs
/// measured cost. Render with `{}` for an aligned table.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// One entry per executed step, in program order.
    pub steps: Vec<StepReport>,
}

impl PlanReport {
    /// Total measured wall time across all steps.
    pub fn total_measured_s(&self) -> f64 {
        self.steps.iter().map(|s| s.measured_s).sum()
    }

    /// Total predicted cost across all steps.
    pub fn total_predicted_s(&self) -> f64 {
        self.steps.iter().map(|s| s.predicted_s).sum()
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<26} {:>17} {:>12} {:>12}",
            "op", "backend", "predicted", "measured"
        )?;
        for s in &self.steps {
            writeln!(
                f,
                "{:<26} {:>17} {:>12} {:>12}",
                s.op,
                s.backend.to_string(),
                fmt_model_secs(s.predicted_s),
                fmt_model_secs(s.measured_s),
            )?;
        }
        write!(
            f,
            "{:<26} {:>17} {:>12} {:>12}",
            "total",
            "",
            fmt_model_secs(self.total_predicted_s()),
            fmt_model_secs(self.total_measured_s())
        )
    }
}

pub(crate) fn fmt_model_secs(s: f64) -> String {
    if s.is_infinite() {
        "∞".into()
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

// ---------------------------------------------------------------------------
// Ancilla head-room (shared by every plan execution — the logic that used to
// live inline in `GateLevelSimulator::run`).
// ---------------------------------------------------------------------------

/// Extends a state with `n_anc` |0⟩ ancilla qubits above its own — the
/// memory the paper's Fig. 2 is about: the gate-level path pays `2^anc ×`.
pub fn extend_with_ancillas(initial: StateVector, n_anc: usize) -> StateVector {
    if n_anc == 0 {
        return initial;
    }
    let n = initial.n_qubits();
    let mut amps = vec![C64::ZERO; 1usize << (n + n_anc)];
    amps[..1 << n].copy_from_slice(initial.amplitudes());
    StateVector::from_amplitudes(amps)
}

/// Validates that all ancillas above the `n_program`-qubit space returned
/// to |0⟩ and truncates the state back down; a leak indicates a broken
/// reversible circuit.
pub fn truncate_ancillas(state: StateVector, n_program: usize) -> Result<StateVector, EmuError> {
    if state.n_qubits() == n_program {
        return Ok(state);
    }
    let keep = 1usize << n_program;
    let leaked: f64 = state.amplitudes()[keep..]
        .iter()
        .map(|z| z.norm_sqr())
        .sum();
    if leaked > ANCILLA_LEAK_TOL {
        return Err(EmuError::AncillaNotClean { leaked });
    }
    let amps = state.into_amplitudes();
    Ok(StateVector::from_amplitudes(amps[..keep].to_vec()))
}

// ---------------------------------------------------------------------------
// Lowering: per-op candidate costs.
// ---------------------------------------------------------------------------

/// Candidate backends for one op, with model costs. `None` marks a path
/// the op does not have (no gate-level implementation, or no emulation
/// shortcut for raw gate runs). The circuits the costing had to build
/// (deferred gate impls, fused block streams) ride along so the plan can
/// carry them to execution instead of rebuilding them.
struct SimCosts {
    unfused: Option<f64>,
    fused: Option<f64>,
    segmented: Option<f64>,
    /// `(max_bond, cost)` of the compressed candidate — present only when
    /// the entanglement-growth estimate certifies the circuit runs
    /// *exactly* under that cap ([`estimate_mps_cost`]).
    mps: Option<(usize, f64)>,
    n_ancilla: usize,
    circuit: Option<Circuit>,
    fused_circuit: Option<FusedCircuit>,
}

impl SimCosts {
    fn none_built(unfused: Option<f64>, fused: Option<f64>, segmented: Option<f64>) -> SimCosts {
        SimCosts {
            unfused,
            fused,
            segmented,
            mps: None,
            n_ancilla: 0,
            circuit: None,
            fused_circuit: None,
        }
    }

    /// The flavour `backend` executes with.
    fn for_backend(&self, backend: Backend) -> Option<f64> {
        match backend {
            Backend::SimulateFused => self.fused,
            Backend::SimulateSegmented { .. } => self.segmented,
            Backend::SimulateMps { max_bond } => self
                .mps
                .filter(|(cap, _)| *cap == max_bond)
                .map(|(_, cost)| cost),
            _ => self.unfused,
        }
    }
}

fn op_label(program: &QuantumProgram, op: &HighLevelOp) -> String {
    match op {
        HighLevelOp::Gates(c) => format!("gates[{}]", c.gate_count()),
        HighLevelOp::Classical(cm) => format!("classical '{}'", cm.name),
        HighLevelOp::Phase(po) => format!("oracle '{}'", po.name),
        HighLevelOp::Rotation(ro) => format!("rotation '{}'", ro.name),
        HighLevelOp::Qft(r) => format!("qft '{}'", program.register(*r).name),
        HighLevelOp::InverseQft(r) => format!("iqft '{}'", program.register(*r).name),
        HighLevelOp::Qpe(q) => format!(
            "qpe[n={},b={}]",
            program.register(q.target).len,
            program.register(q.phase).len
        ),
    }
}

/// The fusion window candidate plans cost fused execution with: the
/// interpreter's own greedy window if it has one, the default otherwise.
fn plan_window(config: &SimConfig) -> usize {
    match config.fusion {
        FusionPolicy::Greedy { max_fused_qubits } => max_fused_qubits,
        FusionPolicy::Disabled => DEFAULT_MAX_FUSED_QUBITS,
    }
}

/// Gate-path costs of a concrete circuit on a `2^n_state` state.
/// Each flavour is computed only when requested: the unfused estimate is
/// an O(G) count, but the fused one actually runs the fusion engine
/// (matrix compose + classify per block) — a plan that can never pick a
/// fused candidate must not pay for it. `want_mps` carries the bond cap
/// to price the compressed candidate under, or `None` to skip it.
fn circuit_costs(
    model: &CostModel,
    c: &Circuit,
    n_state: usize,
    window: usize,
    want_unfused: bool,
    want_fused: bool,
    want_segmented: bool,
    want_mps: Option<usize>,
) -> SimCosts {
    let unfused = want_unfused.then(|| model.t_gates(c.touched_entries(n_state), c.gate_count()));
    let (fused, fused_circuit) = if want_fused {
        let fc = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: window,
        });
        let t = model.t_gates_fused(fc.touched_entries(n_state), c.gate_count(), fc.ops().len());
        (Some(t), Some(fc))
    } else {
        (None, None)
    };
    // Price segmentation with the same policy `SimConfig::segmented()`
    // executes with, splitting traffic into its streamed and in-cache
    // terms. The compiled `SegmentedCircuit` is not carried: execution
    // re-segments, paying the per-gate compile cost the model includes.
    // Each blocked segment and each full-state sweep op launches one
    // parallel region, so that is the dispatch count.
    let segmented = want_segmented.then(|| {
        let seg = segment_circuit(c, model.block_bits, &FusionPolicy::greedy());
        model.t_gates_segmented(
            seg.streamed_entries(n_state),
            seg.incache_entries(n_state),
            c.gate_count(),
            seg.blocked_segments() + seg.sweep_segments(),
        )
    });
    // The compressed candidate only exists when the χ-growth estimate
    // certifies the whole run fits under the cap: an inexact estimate
    // means execution *would* truncate, and the interpreter would fall
    // back to a dense re-run anyway — pricing that as "cheap" would bias
    // the planner toward a path it can never take.
    let mps = want_mps.and_then(|max_bond| {
        let est = estimate_mps_cost(c, max_bond);
        est.exact
            .then(|| (max_bond, model.t_gates_mps(est.units, n_state)))
    });
    SimCosts {
        unfused,
        fused,
        segmented,
        mps,
        n_ancilla: 0,
        circuit: None,
        fused_circuit,
    }
}

/// Costs of one op's gate-level implementation (shared by the Classical,
/// Phase, and Rotation arms of [`sim_costs`]): builds the deferred
/// circuit and prices it at the width the op itself forces —
/// `n + max(n_anc_plan, its own ancillas)`.
fn gate_impl_sim_costs(
    model: &CostModel,
    program: &QuantumProgram,
    gi: &crate::program::GateImpl,
    n_anc_plan: usize,
    window: usize,
    want_unfused: bool,
    want_fused: bool,
    want_segmented: bool,
    want_mps: Option<usize>,
) -> SimCosts {
    let c = (gi.build)(program);
    let n_sim = program.n_qubits() + n_anc_plan.max(gi.n_ancilla);
    let costs = circuit_costs(
        model,
        &c,
        n_sim,
        window,
        want_unfused,
        want_fused,
        want_segmented,
        want_mps,
    );
    SimCosts {
        n_ancilla: gi.n_ancilla,
        circuit: Some(c),
        ..costs
    }
}

/// Predicted cost of the op's emulation shortcut, or `None` for raw gate
/// runs (which have none). Pure formula evaluation — never builds a
/// circuit. For QPE, returns the cheaper of the two dense strategies.
fn emulate_candidate(
    model: &CostModel,
    program: &QuantumProgram,
    op: &HighLevelOp,
    n_state: usize,
) -> Option<(Backend, f64)> {
    match op {
        HighLevelOp::Gates(_) => None,
        HighLevelOp::Classical(cm) => {
            let k: usize = cm.regs.iter().map(|&r| program.register(r).len).sum();
            Some((
                Backend::EmulateClassical,
                model.t_classical_emulated(n_state, k),
            ))
        }
        HighLevelOp::Phase(_) => {
            Some((Backend::EmulateClassical, model.t_oracle_emulated(n_state)))
        }
        HighLevelOp::Rotation(_) => Some((
            Backend::EmulateClassical,
            model.t_rotation_emulated(n_state),
        )),
        HighLevelOp::Qft(r) | HighLevelOp::InverseQft(r) => Some((
            Backend::EmulateFft,
            model.t_qft_emulated(n_state, program.register(*r).len),
        )),
        HighLevelOp::Qpe(qpe) => {
            let m = program.register(qpe.target).len;
            let b = program.register(qpe.phase).len;
            let g = qpe.unitary.gate_count().max(1);
            let (strategy, cost) = [
                QpeStrategy::RepeatedSquaring,
                QpeStrategy::Eigendecomposition,
            ]
            .into_iter()
            .map(|s| (s, model.t_qpe(n_state, m, g, b, s)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("two candidates");
            Some((Backend::EmulateQpe { strategy }, cost))
        }
    }
}

/// Predicted costs of the op's gate-level path(s), or `None` when it has
/// no gate-level implementation. Only the requested flavours are
/// computed (see [`circuit_costs`]).
///
/// `n_anc_plan` is the ancilla head-room the rest of the plan already
/// commits to: every sweep in this run pays `2^{n + n_anc_plan}` entries,
/// and an op whose own gate path needs more ancillas than that is costed
/// at its own (larger) width.
fn sim_costs(
    model: &CostModel,
    program: &QuantumProgram,
    op: &HighLevelOp,
    window: usize,
    n_anc_plan: usize,
    want_unfused: bool,
    want_fused: bool,
    want_segmented: bool,
    want_mps: Option<usize>,
) -> Option<SimCosts> {
    let n = program.n_qubits();
    let n_state = n + n_anc_plan;
    match op {
        HighLevelOp::Gates(c) => Some(circuit_costs(
            model,
            c,
            n_state,
            window,
            want_unfused,
            want_fused,
            want_segmented,
            want_mps,
        )),
        HighLevelOp::Classical(cm) => cm.gate_impl.as_ref().map(|gi| {
            gate_impl_sim_costs(
                model,
                program,
                gi,
                n_anc_plan,
                window,
                want_unfused,
                want_fused,
                want_segmented,
                want_mps,
            )
        }),
        HighLevelOp::Phase(po) => po.gate_impl.as_ref().map(|gi| {
            gate_impl_sim_costs(
                model,
                program,
                gi,
                n_anc_plan,
                window,
                want_unfused,
                want_fused,
                want_segmented,
                want_mps,
            )
        }),
        HighLevelOp::Rotation(ro) => Some(match &ro.gate_impl {
            Some(gi) => gate_impl_sim_costs(
                model,
                program,
                gi,
                n_anc_plan,
                window,
                want_unfused,
                want_fused,
                want_segmented,
                want_mps,
            ),
            None => {
                // The generic per-value expansion is exponential in the
                // control register; cost it analytically instead of
                // materialising it just to reject it (so every gate
                // flavour shares the same analytic estimate).
                let t = model.t_rotation_simulated(n_state, program.register(ro.x).len);
                SimCosts::none_built(Some(t), Some(t), Some(t))
            }
        }),
        HighLevelOp::Qft(r) | HighLevelOp::InverseQft(r) => {
            let bits = program.register(*r).len;
            let costs = circuit_costs(
                model,
                &qft_circuit(bits),
                n_state,
                window,
                want_unfused,
                want_fused,
                want_segmented,
                // QFT entanglement saturates any realistic bond cap and
                // the costed circuit is unremapped anyway — no
                // compressed candidate for register QFTs.
                None,
            );
            // The costed circuit addresses the register's *relative*
            // qubits; execution remaps it onto the program — don't carry
            // the unremapped artifacts.
            Some(SimCosts::none_built(
                costs.unfused,
                costs.fused,
                costs.segmented,
            ))
        }
        HighLevelOp::Qpe(qpe) => {
            // QPE's gate-level path runs through `apply_qpe`, not the
            // fusion engine — one candidate, same cost on every flavour.
            let m = program.register(qpe.target).len;
            let b = program.register(qpe.phase).len;
            let g = qpe.unitary.gate_count().max(1);
            let t = model.t_qpe(n_state, m, g, b, QpeStrategy::GateLevel);
            Some(SimCosts::none_built(Some(t), Some(t), Some(t)))
        }
    }
}

// ---------------------------------------------------------------------------
// Planners: the two legacy fixed-backend lowerings and the hybrid one.
// ---------------------------------------------------------------------------

/// Backend a `config`-driven simulation step uses for raw circuits.
/// A forced MPS policy wins outright (the caller explicitly asked for
/// compressed execution); segmentation is checked next: a blocked
/// segment policy subsumes the fusion policy (the sweeps between blocked
/// segments still fuse under the config's own `FusionPolicy`).
fn sim_backend(config: &SimConfig) -> Backend {
    if let MpsPolicy::Forced { max_bond } = config.mps {
        return Backend::SimulateMps { max_bond };
    }
    if let SegmentPolicy::Blocked { block_bits } = config.segments {
        return Backend::SimulateSegmented { block_bits };
    }
    match config.fusion {
        FusionPolicy::Disabled => Backend::SimulateGateLevel,
        FusionPolicy::Greedy { .. } => Backend::SimulateFused,
    }
}

///// Which gate-path cost flavours a fixed-backend plan must price:
/// `(fused, segmented, mps bond cap)`.
fn backend_wants(backend: Backend) -> (bool, bool, Option<usize>) {
    match backend {
        Backend::SimulateFused => (true, false, None),
        Backend::SimulateSegmented { .. } => (false, true, None),
        Backend::SimulateMps { max_bond } => (false, false, Some(max_bond)),
        _ => (false, false, None),
    }
}

/// Lowers every op onto its emulation shortcut (raw gate runs, which have
/// no shortcut, use the configured gate path) — the
/// [`Emulator`](crate::executor::Emulator)'s fixed plan. `choose_qpe`
/// picks the QPE strategy from `(target_len, phase_len)`.
pub fn plan_emulated(
    program: &QuantumProgram,
    model: &CostModel,
    config: &SimConfig,
    choose_qpe: impl Fn(usize, usize) -> QpeStrategy,
) -> ExecutionPlan {
    let n = program.n_qubits();
    let window = plan_window(config);
    let steps = program
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let (backend, predicted_s, fused_circuit) = match op {
                HighLevelOp::Gates(_) => {
                    let backend = sim_backend(config);
                    let (fused, seg, mps) = backend_wants(backend);
                    let costs = sim_costs(
                        model,
                        program,
                        op,
                        window,
                        0,
                        !fused && !seg && mps.is_none(),
                        fused,
                        seg,
                        mps,
                    )
                    .expect("raw gates always have a gate path");
                    let cost = costs.for_backend(backend);
                    (backend, cost.unwrap_or(f64::INFINITY), costs.fused_circuit)
                }
                HighLevelOp::Qpe(qpe) => {
                    let m = program.register(qpe.target).len;
                    let b = program.register(qpe.phase).len;
                    let strategy = choose_qpe(m, b);
                    let g = qpe.unitary.gate_count().max(1);
                    (
                        Backend::EmulateQpe { strategy },
                        model.t_qpe(n, m, g, b, strategy),
                        None,
                    )
                }
                _ => {
                    let (backend, cost) = emulate_candidate(model, program, op, n)
                        .expect("every non-gate op has a shortcut");
                    (backend, cost, None)
                }
            };
            PlanStep {
                op_index: i,
                op: op_label(program, op),
                backend,
                predicted_s,
                n_ancilla: 0,
                circuit: None,
                fused: fused_circuit,
            }
        })
        .collect();
    ExecutionPlan::from_steps(program, steps)
}

/// Lowers every op to elementary-gate execution — the
/// [`GateLevelSimulator`](crate::executor::GateLevelSimulator)'s fixed
/// plan. Ops without a gate-level implementation are kept (predicted cost
/// `∞`) and fail at execution with
/// [`EmuError::NoGateImplementation`], matching the legacy executor.
pub fn plan_simulated(
    program: &QuantumProgram,
    model: &CostModel,
    config: &SimConfig,
) -> ExecutionPlan {
    let n_anc_all = program.max_gate_ancillas();
    let backend = sim_backend(config);
    let (fused, seg, mps) = backend_wants(backend);
    let window = plan_window(config);
    let steps = program
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let costs = sim_costs(
                model,
                program,
                op,
                window,
                n_anc_all,
                !fused && !seg && mps.is_none(),
                fused,
                seg,
                mps,
            );
            let (cost, n_ancilla, circuit, fused_circuit) = match costs {
                Some(c) => (
                    c.for_backend(backend).unwrap_or(f64::INFINITY),
                    c.n_ancilla,
                    c.circuit,
                    c.fused_circuit,
                ),
                None => (f64::INFINITY, 0, None, None),
            };
            let backend = match op {
                // QPE's gate-level strategy is explicit in the IR.
                HighLevelOp::Qpe(_) => Backend::EmulateQpe {
                    strategy: QpeStrategy::GateLevel,
                },
                _ => backend,
            };
            PlanStep {
                op_index: i,
                op: op_label(program, op),
                backend,
                predicted_s: cost,
                n_ancilla,
                circuit,
                fused: fused_circuit,
            }
        })
        .collect();
    // The legacy simulator reserves head-room for every op up front,
    // whether or not a cheaper plan could avoid it.
    let mut plan = ExecutionPlan::from_steps(program, steps);
    plan.n_ancilla = n_anc_all;
    plan
}

/// Lowers each op onto its cheapest backend under `model` — the
/// [`HybridExecutor`](crate::executor::HybridExecutor)'s plan.
///
/// Backend choices couple through ancilla head-room: once any step
/// simulates an op that needs `a` work qubits, *every* sweep in the run
/// pays `2^{n+a}` entries. The planner resolves the coupling by fixed
/// point: plan with the current head-room, recompute the head-room the
/// chosen steps actually need, re-plan until stable. Choices near a
/// break-even can oscillate with the head-room (an op may simulate at
/// width `n` but emulate at `n+1`), so iteration is capped; if no fixed
/// point is reached, the last plan's choices are committed and its
/// predictions are re-costed at the head-room it will *actually* execute
/// with, keeping the [`PlanReport`] audit consistent.
pub fn plan_hybrid(
    program: &QuantumProgram,
    model: &CostModel,
    config: &SimConfig,
) -> ExecutionPlan {
    let mut n_anc = 0usize;
    for _ in 0..4 {
        let plan = plan_hybrid_once(program, model, config, n_anc);
        if plan.n_ancilla == n_anc {
            return plan;
        }
        n_anc = plan.n_ancilla;
    }
    let mut plan = plan_hybrid_once(program, model, config, n_anc);
    if plan.n_ancilla != n_anc {
        let window = plan_window(config);
        for step in &mut plan.steps {
            let op = &program.ops()[step.op_index];
            step.predicted_s =
                recost_step(model, program, op, step.backend, window, plan.n_ancilla);
        }
    }
    plan
}

/// Predicted cost of `op` on an already-chosen backend at execution
/// head-room `n_anc_exec` (the unconverged-fixed-point repair path of
/// [`plan_hybrid`]).
fn recost_step(
    model: &CostModel,
    program: &QuantumProgram,
    op: &HighLevelOp,
    backend: Backend,
    window: usize,
    n_anc_exec: usize,
) -> f64 {
    let n_state = program.n_qubits() + n_anc_exec;
    match backend {
        Backend::EmulateClassical | Backend::EmulateFft => {
            emulate_candidate(model, program, op, n_state)
                .map(|(_, c)| c)
                .unwrap_or(f64::INFINITY)
        }
        Backend::EmulateQpe { strategy } => match op {
            HighLevelOp::Qpe(qpe) => model.t_qpe(
                n_state,
                program.register(qpe.target).len,
                qpe.unitary.gate_count().max(1),
                program.register(qpe.phase).len,
                strategy,
            ),
            _ => f64::INFINITY,
        },
        Backend::SimulateFused => sim_costs(
            model, program, op, window, n_anc_exec, false, true, false, None,
        )
        .and_then(|c| c.fused)
        .unwrap_or(f64::INFINITY),
        Backend::SimulateSegmented { .. } => sim_costs(
            model, program, op, window, n_anc_exec, false, false, true, None,
        )
        .and_then(|c| c.segmented)
        .unwrap_or(f64::INFINITY),
        Backend::SimulateMps { max_bond } => sim_costs(
            model,
            program,
            op,
            window,
            n_anc_exec,
            false,
            false,
            false,
            Some(max_bond),
        )
        .and_then(|c| c.for_backend(backend))
        .unwrap_or(f64::INFINITY),
        Backend::SimulateGateLevel => sim_costs(
            model, program, op, window, n_anc_exec, true, false, false, None,
        )
        .and_then(|c| c.unfused)
        .unwrap_or(f64::INFINITY),
    }
}

fn plan_hybrid_once(
    program: &QuantumProgram,
    model: &CostModel,
    config: &SimConfig,
    n_anc_plan: usize,
) -> ExecutionPlan {
    let steps = program
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let n_state = program.n_qubits() + n_anc_plan;
            let window = plan_window(config);
            let mut candidates: Vec<(Backend, f64, usize)> = Vec::with_capacity(5);
            if let Some((backend, cost)) = emulate_candidate(model, program, op, n_state) {
                candidates.push((backend, cost, 0));
            }
            // A compressed candidate is priced under the config's policy
            // cap (`Auto` by default) — `circuit_costs` only surfaces it
            // when the χ-growth estimate certifies an exact run.
            let sim = sim_costs(
                model,
                program,
                op,
                window,
                n_anc_plan,
                true,
                true,
                true,
                config.mps.max_bond(),
            );
            if let Some(costs) = &sim {
                if let Some(cost) = costs.fused {
                    candidates.push((Backend::SimulateFused, cost, costs.n_ancilla));
                }
                if let Some(cost) = costs.unfused {
                    candidates.push((Backend::SimulateGateLevel, cost, costs.n_ancilla));
                }
                if let Some(cost) = costs.segmented {
                    candidates.push((
                        Backend::SimulateSegmented {
                            block_bits: model.block_bits,
                        },
                        cost,
                        costs.n_ancilla,
                    ));
                }
                if let Some((max_bond, cost)) = costs.mps {
                    candidates.push((Backend::SimulateMps { max_bond }, cost, costs.n_ancilla));
                }
            }
            let (backend, predicted_s, n_ancilla) = candidates
                .into_iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("every op has at least one backend");
            // Only a simulated winner gets the costing's built artifacts.
            let (circuit, fused_circuit) = match (backend.is_simulate(), sim) {
                (true, Some(costs)) => (costs.circuit, costs.fused_circuit),
                _ => (None, None),
            };
            // QPE always runs through `apply_qpe`; express the simulated
            // winner as the explicit gate-level strategy.
            let backend = if matches!(op, HighLevelOp::Qpe(_)) && backend.is_simulate() {
                Backend::EmulateQpe {
                    strategy: QpeStrategy::GateLevel,
                }
            } else {
                backend
            };
            PlanStep {
                op_index: i,
                op: op_label(program, op),
                backend,
                predicted_s,
                n_ancilla,
                circuit,
                fused: fused_circuit,
            }
        })
        .collect();
    ExecutionPlan::from_steps(program, steps)
}

// ---------------------------------------------------------------------------
// The one interpreter.
// ---------------------------------------------------------------------------

/// Executes [`ExecutionPlan`]s: the single interpreter loop behind all
/// three executors. Holds the knobs that are properties of the *runner*
/// rather than the plan: the gate-level [`SimConfig`] and whether
/// circuits are first decomposed to one- and two-qubit gates.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanInterpreter {
    /// Gate-level execution configuration (fusion policy) for
    /// [`Backend::SimulateFused`] steps.
    pub config: SimConfig,
    /// Decompose circuits into elementary one-/two-qubit gates before
    /// applying them (the paper-faithful cost model of Figs. 1–2).
    pub elementary: bool,
}

impl PlanInterpreter {
    /// Interpreter with a gate-level configuration.
    pub fn new(config: SimConfig) -> PlanInterpreter {
        PlanInterpreter {
            config,
            elementary: false,
        }
    }

    /// Runs `plan` over `program` from `initial`, returning the final
    /// state and the per-step audit report.
    pub fn execute(
        &self,
        program: &QuantumProgram,
        plan: &ExecutionPlan,
        initial: StateVector,
    ) -> Result<(StateVector, PlanReport), EmuError> {
        if initial.n_qubits() != program.n_qubits() {
            return Err(EmuError::DimensionMismatch {
                expected: program.n_qubits(),
                got: initial.n_qubits(),
            });
        }
        // A plan is only valid for the exact program instance it was
        // lowered from (clones included): it indexes the op list and may
        // carry circuits built from the program's closures, so even a
        // structurally identical rebuild must be re-planned.
        if plan.program_id != program.instance_id() {
            return Err(EmuError::PlanMismatch {
                reason: format!(
                    "plan was lowered from program instance {}, got {}",
                    plan.program_id,
                    program.instance_id()
                ),
            });
        }
        let n = program.n_qubits();
        let mut state = extend_with_ancillas(initial, plan.n_ancilla);
        let mut steps = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let op = &program.ops()[step.op_index];
            let t0 = Instant::now();
            self.execute_step(&mut state, program, op, step)?;
            steps.push(StepReport {
                op: step.op.clone(),
                backend: step.backend,
                predicted_s: step.predicted_s,
                measured_s: t0.elapsed().as_secs_f64(),
            });
        }
        let state = truncate_ancillas(state, n)?;
        Ok((state, PlanReport { steps }))
    }

    /// `SimConfig` a simulation step runs under: `SimulateFused` uses the
    /// interpreter's own fused config (or the default window if the
    /// interpreter is unfused); `SimulateSegmented` runs
    /// [`SimConfig::segmented`] at the block size the step was priced
    /// with; `SimulateGateLevel` is always unfused. `SimulateMps` maps to
    /// the default fused config — the *dense* configuration of its
    /// fallback path, and what backend-agnostic drivers (the batch
    /// executor) run such a step with when they cannot go compressed.
    pub(crate) fn step_config(&self, backend: Backend) -> SimConfig {
        match backend {
            Backend::SimulateFused => match self.config.fusion {
                FusionPolicy::Greedy { .. } => self.config,
                FusionPolicy::Disabled => SimConfig::fused(DEFAULT_MAX_FUSED_QUBITS),
            },
            Backend::SimulateSegmented { block_bits } => SimConfig {
                segments: SegmentPolicy::Blocked { block_bits },
                ..SimConfig::segmented()
            },
            Backend::SimulateMps { .. } => SimConfig::fused(DEFAULT_MAX_FUSED_QUBITS),
            Backend::SimulateGateLevel => SimConfig::unfused(),
            // Raw-gate steps on an emulated plan inherit the config.
            _ => self.config,
        }
    }

    fn lower<'c>(&self, c: &'c Circuit) -> std::borrow::Cow<'c, Circuit> {
        if self.elementary {
            std::borrow::Cow::Owned(qcemu_sim::decompose_circuit(c))
        } else {
            std::borrow::Cow::Borrowed(c)
        }
    }

    fn run_circuit(&self, state: &mut StateVector, c: &Circuit, backend: Backend) {
        state.run(&self.lower(c), &self.step_config(backend));
    }

    /// Attempts compressed execution of a [`Backend::SimulateMps`] step.
    /// Returns `false` (leaving `state` untouched) when the step is not
    /// an MPS step *or* when the run truncated: the planner only routes
    /// here when the χ-growth estimate certified an exact run, so a
    /// non-zero truncation error means the estimate was wrong for this
    /// incoming state — the caller then re-runs dense. A misprediction
    /// costs the wasted compressed attempt, never correctness.
    fn try_mps(&self, state: &mut StateVector, c: &Circuit, backend: Backend) -> bool {
        let Backend::SimulateMps { max_bond } = backend else {
            return false;
        };
        let mut mps = MpsState::from_statevector(state, max_bond);
        mps.run(&self.lower(c));
        if mps.truncation_error() > MPS_EXACT_TOL {
            return false;
        }
        *state = mps.to_statevector();
        true
    }

    /// Applies the fused block stream the planner priced, if the step
    /// carries one and this interpreter can use it (fused backend, no
    /// elementary lowering). Returns `true` when the step was handled.
    fn try_cached_fused(&self, state: &mut StateVector, step: &PlanStep) -> bool {
        if !self.elementary && step.backend == Backend::SimulateFused {
            if let Some(fused) = &step.fused {
                state.apply_fused_circuit(fused);
                return true;
            }
        }
        false
    }

    /// Runs a simulation step, reusing the artifacts the planner built
    /// during costing: the fused block stream (applied directly — fusion
    /// is semantics-preserving, so a cached stream is always
    /// state-correct), or the deferred-build circuit, falling back to
    /// `build` when the plan carries neither. Elementary lowering always
    /// goes through the raw circuit.
    fn run_sim_step(
        &self,
        state: &mut StateVector,
        step: &PlanStep,
        build: impl FnOnce() -> Circuit,
    ) {
        if self.try_cached_fused(state, step) {
            return;
        }
        let built;
        let c = match &step.circuit {
            Some(c) => c,
            None => {
                built = build();
                &built
            }
        };
        if !self.try_mps(state, c, step.backend) {
            self.run_circuit(state, c, step.backend);
        }
    }

    pub(crate) fn execute_step(
        &self,
        state: &mut StateVector,
        program: &QuantumProgram,
        op: &HighLevelOp,
        step: &PlanStep,
    ) -> Result<(), EmuError> {
        let simulate = step.backend.is_simulate();
        match op {
            HighLevelOp::Gates(c) => {
                if !self.try_cached_fused(state, step) && !self.try_mps(state, c, step.backend) {
                    self.run_circuit(state, c, step.backend);
                }
            }
            HighLevelOp::Classical(cm) => {
                if simulate {
                    let gi =
                        cm.gate_impl
                            .as_ref()
                            .ok_or_else(|| EmuError::NoGateImplementation {
                                op: cm.name.clone(),
                            })?;
                    self.run_sim_step(state, step, || (gi.build)(program));
                } else {
                    apply_classical_map(state, program, cm)?;
                }
            }
            HighLevelOp::Phase(po) => {
                if simulate {
                    let gi =
                        po.gate_impl
                            .as_ref()
                            .ok_or_else(|| EmuError::NoGateImplementation {
                                op: po.name.clone(),
                            })?;
                    self.run_sim_step(state, step, || (gi.build)(program));
                } else {
                    apply_phase_oracle(state, program, po);
                }
            }
            HighLevelOp::Rotation(ro) => {
                if simulate {
                    self.run_sim_step(state, step, || match &ro.gate_impl {
                        Some(gi) => (gi.build)(program),
                        None => rotation_expansion_circuit(program, ro),
                    });
                } else {
                    crate::classical::apply_controlled_rotation(state, program, ro);
                }
            }
            HighLevelOp::Qft(r) => {
                let bits = program.register(*r).bits();
                if simulate {
                    let c = qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                    self.run_circuit(state, &c, step.backend);
                } else {
                    let n_state = state.n_qubits();
                    qft_subspace(state.amplitudes_mut(), n_state, &bits);
                }
            }
            HighLevelOp::InverseQft(r) => {
                let bits = program.register(*r).bits();
                if simulate {
                    let c =
                        inverse_qft_circuit(bits.len()).remap_qubits(state.n_qubits(), |q| bits[q]);
                    self.run_circuit(state, &c, step.backend);
                } else {
                    let n_state = state.n_qubits();
                    inverse_qft_subspace(state.amplitudes_mut(), n_state, &bits);
                }
            }
            HighLevelOp::Qpe(qpe) => {
                let strategy = match step.backend {
                    Backend::EmulateQpe { strategy } => strategy,
                    _ => QpeStrategy::GateLevel,
                };
                let target_bits = program.register(qpe.target).bits();
                let phase_bits = program.register(qpe.phase).bits();
                apply_qpe(state, qpe, &target_bits, &phase_bits, strategy)?;
            }
        }
        Ok(())
    }
}

/// Builds the generic per-value expansion of a register-controlled
/// rotation: for each x value, X-conjugate the zero bits and apply a
/// multi-controlled Ry — the exponential network the emulator avoids.
pub(crate) fn rotation_expansion_circuit(program: &QuantumProgram, ro: &RotationOp) -> Circuit {
    let x = program.register(ro.x);
    let target = program.register(ro.target).offset;
    let bits = x.bits();
    let mut c = Circuit::new(program.n_qubits());
    for value in 0..(1u64 << x.len) {
        let theta = (ro.angle)(value);
        if theta.abs() < 1e-15 {
            continue;
        }
        for (j, &q) in bits.iter().enumerate() {
            if (value >> j) & 1 == 0 {
                c.push(Gate::x(q));
            }
        }
        c.push(Gate::Unary {
            op: GateOp::Ry(theta),
            target,
            controls: bits.clone(),
        });
        for (j, &q) in bits.iter().enumerate().rev() {
            if (value >> j) & 1 == 0 {
                c.push(Gate::x(q));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::stdops;

    fn model() -> CostModel {
        CostModel::default()
    }

    /// Mixed program: superposed multiply, a raw gate run, a QFT.
    fn mixed_program(m: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.hadamard_all(a);
        pb.set_constant(b, 3);
        pb.classical(stdops::multiply(a, b, c, m));
        pb.qft(c);
        pb.build().unwrap()
    }

    #[test]
    fn emulated_plan_uses_shortcuts_everywhere() {
        let prog = mixed_program(3);
        let plan = plan_emulated(&prog, &model(), &SimConfig::unfused(), |_, _| {
            QpeStrategy::RepeatedSquaring
        });
        assert_eq!(plan.steps().len(), prog.ops().len());
        assert_eq!(plan.n_ancilla(), 0);
        assert_eq!(plan.steps()[2].backend, Backend::EmulateClassical);
        assert_eq!(plan.steps()[3].backend, Backend::EmulateFft);
        // Raw gate preludes stay on the gate path.
        assert!(plan.steps()[0].backend.is_simulate());
    }

    #[test]
    fn simulated_plan_reserves_ancillas_and_uses_gates() {
        let prog = mixed_program(3);
        let plan = plan_simulated(&prog, &model(), &SimConfig::unfused());
        assert_eq!(plan.n_ancilla(), 1); // multiplier ancilla
        assert!(plan.steps().iter().all(|s| s.backend.is_simulate()));
        let fused = plan_simulated(&prog, &model(), &SimConfig::fused(4));
        assert!(fused
            .steps()
            .iter()
            .all(|s| s.backend == Backend::SimulateFused));
    }

    #[test]
    fn hybrid_plan_dispatches_per_op() {
        let prog = mixed_program(3);
        let plan = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        // The classical map always beats its Toffoli network.
        assert_eq!(plan.steps()[2].backend, Backend::EmulateClassical);
        // Raw gates have no shortcut.
        assert!(plan.steps()[0].backend.is_simulate());
        // Costs are finite and the report machinery sums them.
        assert!(plan.total_predicted_s().is_finite());
    }

    #[test]
    fn hybrid_avoids_ancilla_headroom_when_emulation_wins() {
        // The only ancilla-bearing op is the multiply; the hybrid plan
        // emulates it, so no head-room is reserved and the whole run
        // stays in the 2^n program space.
        let prog = mixed_program(3);
        let plan = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        assert_eq!(plan.n_ancilla(), 0);
    }

    #[test]
    fn hybrid_prefers_fft_for_wide_qft_and_gates_for_narrow() {
        let mut pb = ProgramBuilder::new();
        let wide = pb.register("wide", 16);
        pb.qft(wide);
        let prog = pb.build().unwrap();
        let plan = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        assert_eq!(
            plan.steps()[0].backend,
            Backend::EmulateFft,
            "16 FFT passes beat ~16²/2 gate sweeps"
        );

        let mut pb = ProgramBuilder::new();
        let narrow = pb.register("narrow", 2);
        let _pad = pb.register("pad", 14);
        pb.qft(narrow);
        let prog = pb.build().unwrap();
        let plan = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        assert!(
            plan.steps()[0].backend.is_simulate(),
            "a 2-bit QFT is 3 gates — cheaper than 2 full FFT passes, got {}",
            plan.steps()[0].backend
        );
    }

    #[test]
    fn hybrid_routes_cache_resident_qft_gates_to_segments() {
        // PR 5's ablation found greedy fusion *losing* on cache-resident
        // QFTs; the segmented tier wins that regime by replaying every
        // compatible gate against resident blocks. A raw QFT gate run
        // (no FFT shortcut available for raw gates) must now lower to
        // the segment executor, and its predicted cost must not regress
        // against plain unfused sweeps.
        let n = 16;
        let mut pb = ProgramBuilder::new();
        let _r = pb.register("r", n);
        pb.gates(|c| c.extend(&qft_circuit(n)));
        let prog = pb.build().unwrap();
        let m = model();
        let plan = plan_hybrid(&prog, &m, &SimConfig::fused(4));
        assert!(
            matches!(plan.steps()[0].backend, Backend::SimulateSegmented { .. }),
            "cache-resident QFT must pick the segment tier, got {}",
            plan.steps()[0].backend
        );
        let unfused = m.t_gates(
            qft_circuit(n).touched_entries(n),
            qft_circuit(n).gate_count(),
        );
        assert!(
            plan.steps()[0].predicted_s <= unfused,
            "segmented {} must not regress vs unfused {}",
            plan.steps()[0].predicted_s,
            unfused
        );

        // And the interpreter actually runs the segmented plan to the
        // same state the unfused path produces.
        let initial = StateVector::uniform_superposition(n);
        let (seg_state, report) = PlanInterpreter::default()
            .execute(&prog, &plan, initial.clone())
            .unwrap();
        let mut reference = initial;
        reference.run(&qft_circuit(n), &SimConfig::unfused());
        assert!(seg_state.max_diff_up_to_phase(&reference) < 1e-10);
        assert!(matches!(
            report.steps[0].backend,
            Backend::SimulateSegmented { .. }
        ));
    }

    #[test]
    fn segmented_config_drives_fixed_plans() {
        // A segment-policy interpreter config flips every raw-gate step
        // of the fixed plans onto the segment backend.
        let prog = mixed_program(3);
        let plan = plan_simulated(&prog, &model(), &SimConfig::segmented());
        assert!(matches!(
            plan.steps()[0].backend,
            Backend::SimulateSegmented { .. }
        ));
        assert!(plan.steps()[0].predicted_s.is_finite());
        let emu = plan_emulated(&prog, &model(), &SimConfig::segmented(), |_, _| {
            QpeStrategy::RepeatedSquaring
        });
        assert!(matches!(
            emu.steps()[0].backend,
            Backend::SimulateSegmented { .. }
        ));
    }

    /// Deep, low-entanglement raw gate run: one CNOT chain (χ = 2) under
    /// many single-qubit layers. Dense backends pay Θ(depth·2ⁿ); the
    /// compressed backend pays O(depth·χ³) plus one 2ⁿ boundary
    /// densification, so at this depth it must win the hybrid auction.
    fn low_entanglement_program(n: usize, layers: usize) -> QuantumProgram {
        let mut pb = ProgramBuilder::new();
        let _r = pb.register("r", n);
        pb.gates(move |c| {
            c.h(0);
            for q in 0..n - 1 {
                c.cnot(q, q + 1);
            }
            for layer in 0..layers {
                for q in 0..n {
                    if layer % 2 == 0 {
                        c.rz(q, 0.11 + 0.01 * (layer + q) as f64);
                    } else {
                        c.rx(q, 0.07 + 0.01 * (layer + q) as f64);
                    }
                }
            }
        });
        pb.build().unwrap()
    }

    #[test]
    fn hybrid_routes_deep_low_entanglement_gates_to_mps_and_executes_exactly() {
        let n = 14;
        let prog = low_entanglement_program(n, 80);
        let m = model();
        let plan = plan_hybrid(&prog, &m, &SimConfig::fused(4));
        assert!(
            matches!(plan.steps()[0].backend, Backend::SimulateMps { .. }),
            "deep χ=2 chain must pick the compressed tier, got {}",
            plan.steps()[0].backend
        );
        // The hybrid choice must not be slower than either fixed dense plan.
        for fixed in [
            plan_simulated(&prog, &m, &SimConfig::fused(4)),
            plan_simulated(&prog, &m, &SimConfig::segmented()),
            plan_simulated(&prog, &m, &SimConfig::unfused()),
        ] {
            assert!(
                plan.steps()[0].predicted_s <= fixed.steps()[0].predicted_s,
                "hybrid {} slower than fixed {} ({})",
                plan.steps()[0].predicted_s,
                fixed.steps()[0].backend,
                fixed.steps()[0].predicted_s
            );
        }

        // And the compressed execution reproduces the dense state exactly.
        let initial = StateVector::zero_state(n);
        let (mps_state, report) = PlanInterpreter::default()
            .execute(&prog, &plan, initial.clone())
            .unwrap();
        assert!(matches!(
            report.steps[0].backend,
            Backend::SimulateMps { .. }
        ));
        let reference_plan = plan_simulated(&prog, &m, &SimConfig::unfused());
        let (dense_state, _) = PlanInterpreter::default()
            .execute(&prog, &reference_plan, initial)
            .unwrap();
        assert!(mps_state.max_diff_up_to_phase(&dense_state) < 1e-10);
    }

    #[test]
    fn forced_mps_config_drives_fixed_plans() {
        // A forced MPS policy flips every raw-gate step of the fixed
        // plans onto the compressed backend, carrying the configured cap.
        let prog = low_entanglement_program(8, 4);
        let plan = plan_simulated(&prog, &model(), &SimConfig::mps(32));
        assert!(matches!(
            plan.steps()[0].backend,
            Backend::SimulateMps { max_bond: 32 }
        ));
        assert!(plan.steps()[0].predicted_s.is_finite());
        let initial = StateVector::zero_state(8);
        let (state, _) = PlanInterpreter::default()
            .execute(&prog, &plan, initial.clone())
            .unwrap();
        let reference_plan = plan_simulated(&prog, &model(), &SimConfig::unfused());
        let (dense_state, _) = PlanInterpreter::default()
            .execute(&prog, &reference_plan, initial)
            .unwrap();
        assert!(state.max_diff_up_to_phase(&dense_state) < 1e-10);
    }

    #[test]
    fn forced_mps_on_entangling_circuit_falls_back_dense_correct() {
        // χ = 2 cannot hold a QFT: the χ-growth estimate is inexact, so
        // the step prices to ∞, and at execution time the truncation
        // audit rejects the compressed attempt — the interpreter must
        // re-run dense from the untouched input state, bit-exact.
        let n = 6;
        let mut pb = ProgramBuilder::new();
        let _r = pb.register("r", n);
        pb.gates(move |c| c.extend(&qft_circuit(n)));
        let prog = pb.build().unwrap();
        let plan = plan_simulated(&prog, &model(), &SimConfig::mps(2));
        assert!(matches!(
            plan.steps()[0].backend,
            Backend::SimulateMps { max_bond: 2 }
        ));
        assert!(
            plan.steps()[0].predicted_s.is_infinite(),
            "an uncertified compressed path must never price as viable"
        );
        let initial = StateVector::uniform_superposition(n);
        let (state, _) = PlanInterpreter::default()
            .execute(&prog, &plan, initial.clone())
            .unwrap();
        let mut reference = initial;
        reference.run(&qft_circuit(n), &SimConfig::unfused());
        assert!(state.max_diff_up_to_phase(&reference) < 1e-10);
    }

    #[test]
    fn emulation_only_ops_plan_to_emulation_with_infinite_sim_cost() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 3);
        pb.classical(stdops::apply_classical_fn("xor3", vec![a], |v| v[0] ^= 3));
        let prog = pb.build().unwrap();
        let hybrid = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        assert_eq!(hybrid.steps()[0].backend, Backend::EmulateClassical);
        let sim = plan_simulated(&prog, &model(), &SimConfig::unfused());
        assert!(sim.steps()[0].predicted_s.is_infinite());
    }

    #[test]
    fn interpreter_matches_legacy_paths_on_mixed_program() {
        let prog = mixed_program(2);
        let initial = StateVector::zero_state(prog.n_qubits());
        let m = model();
        let emu_plan = plan_emulated(&prog, &m, &SimConfig::unfused(), |t, p| {
            if p > 2 * t {
                QpeStrategy::Eigendecomposition
            } else {
                QpeStrategy::RepeatedSquaring
            }
        });
        let sim_plan = plan_simulated(&prog, &m, &SimConfig::unfused());
        let hyb_plan = plan_hybrid(&prog, &m, &SimConfig::fused(4));
        let interp = PlanInterpreter::default();
        let (emu, _) = interp.execute(&prog, &emu_plan, initial.clone()).unwrap();
        let (sim, _) = interp.execute(&prog, &sim_plan, initial.clone()).unwrap();
        let (hyb, report) = interp.execute(&prog, &hyb_plan, initial).unwrap();
        assert!(emu.max_diff_up_to_phase(&sim) < 1e-10);
        assert!(emu.max_diff_up_to_phase(&hyb) < 1e-10);
        assert_eq!(report.steps.len(), prog.ops().len());
        assert!(report.total_measured_s() > 0.0);
        // The report renders.
        let table = report.to_string();
        assert!(table.contains("backend"), "{table}");
    }

    #[test]
    fn ancilla_helpers_roundtrip_and_catch_leaks() {
        let sv = StateVector::basis_state(2, 0b10);
        let extended = extend_with_ancillas(sv.clone(), 2);
        assert_eq!(extended.n_qubits(), 4);
        assert_eq!(extended.probability(0b10), 1.0);
        let back = truncate_ancillas(extended, 2).unwrap();
        assert!(back.max_diff_up_to_phase(&sv) < 1e-15);

        // A state with weight on an ancilla must be rejected.
        let dirty = StateVector::basis_state(3, 0b100);
        assert!(matches!(
            truncate_ancillas(dirty, 2),
            Err(EmuError::AncillaNotClean { .. })
        ));
    }

    #[test]
    fn mismatched_plan_and_program_are_rejected() {
        let prog_a = mixed_program(2);
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", prog_a.n_qubits());
        pb.qft(a);
        let prog_b = pb.build().unwrap();
        let plan = plan_hybrid(&prog_a, &model(), &SimConfig::fused(4));
        let err = PlanInterpreter::default()
            .execute(&prog_b, &plan, StateVector::zero_state(prog_b.n_qubits()))
            .unwrap_err();
        assert!(matches!(err, EmuError::PlanMismatch { .. }), "{err}");
    }

    #[test]
    fn plan_display_lists_every_step() {
        let prog = mixed_program(2);
        let plan = plan_hybrid(&prog, &model(), &SimConfig::fused(4));
        let rendered = plan.to_string();
        for step in plan.steps() {
            assert!(rendered.contains(&step.op), "missing {}", step.op);
        }
    }
}

//! Crossover analysis for QPE strategies (paper §3.3 + Table 2).
//!
//! "Which of these approaches is more efficient depends on the required
//! precision and the size of the matrix." Given measured (or modelled)
//! timings of the four primitive steps —
//!
//! * `t_apply_u` — one gate-level application of `U` to the state,
//! * `t_build_dense` — constructing dense `U` (O(G·2²ⁿ)),
//! * `t_gemm` — one dense `U·U` multiplication (the `zgemm` of Table 2),
//! * `t_eig` — one full eigendecomposition (the `zgeev` of Table 2),
//!
//! the advisor computes, per precision `b`,
//!
//! * simulation cost `T_sim(b) = (2^b − 1)·t_apply_u` (Eq. 7: `U` is applied
//!   `2^b − 1` times in total across the controlled powers),
//! * repeated-squaring cost `T_rs(b) = t_build + b·t_gemm`,
//! * eigendecomposition cost `T_eig = t_build + t_eig`,
//!
//! and reports the smallest `b` at which each emulation path beats
//! simulation — the lower panel of Table 2.
//!
//! **Gate fusion changes this comparison.** With the fusion engine
//! (`qcemu_sim::fusion`) the gate-level path no longer pays one sweep per
//! gate: runs of gates collapse into blocked sweeps, shrinking
//! `t_apply_u` by the memory-traffic ratio of the fused circuit to the
//! unfused one. An advisor that ignores fusion overestimates simulation
//! cost and switches to emulation too early;
//! [`QpeTimings::with_fused_apply`] rescales the timings so the
//! emulate-vs-simulate switch stays honest.

use crate::qpe::QpeStrategy;

/// Measured or modelled timings of the QPE primitives, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct QpeTimings {
    /// Number of qubits `U` acts on.
    pub n: usize,
    /// Gate count `G` of the circuit implementing `U`.
    pub g: usize,
    /// One gate-level application of `U` (`G` sparse gate kernels).
    pub t_apply_u: f64,
    /// Dense construction of `U`.
    pub t_build_dense: f64,
    /// One `2^n × 2^n` complex GEMM.
    pub t_gemm: f64,
    /// One `2^n × 2^n` eigendecomposition.
    pub t_eig: f64,
}

impl QpeTimings {
    /// Simulation cost of a `b`-bit QPE.
    pub fn t_sim(&self, b: u32) -> f64 {
        ((2f64).powi(b as i32) - 1.0) * self.t_apply_u
    }

    /// Repeated-squaring emulation cost of a `b`-bit QPE.
    pub fn t_repeated_squaring(&self, b: u32) -> f64 {
        self.t_build_dense + b as f64 * self.t_gemm
    }

    /// Eigendecomposition emulation cost (independent of `b`).
    pub fn t_eigendecomposition(&self) -> f64 {
        self.t_build_dense + self.t_eig
    }

    /// Accounts for gate fusion in the simulated (gate-level) path.
    ///
    /// At the sizes where the crossover matters the state vector no
    /// longer fits in cache, so `t_apply_u` is memory-bound and scales
    /// with the number of state-vector entries written per application of
    /// `U` — not with the gate count. Unfused execution writes
    /// `unfused_entries` (the sum of `qcemu_sim::touched_entries` over
    /// the circuit); the fused circuit writes `fused_entries`
    /// (`FusedCircuit::touched_entries`). Rescaling `t_apply_u` by their
    /// ratio keeps the advisor honest: fusion makes simulation cheaper,
    /// so the crossover precision `b` moves *up*, and an advisor that
    /// skipped this correction would abandon simulation too early.
    pub fn with_fused_apply(mut self, unfused_entries: usize, fused_entries: usize) -> QpeTimings {
        assert!(
            unfused_entries > 0 && fused_entries > 0,
            "traffic estimates must be positive"
        );
        self.t_apply_u *= fused_entries as f64 / unfused_entries as f64;
        self
    }

    /// Smallest `b` (≤ 64) at which repeated squaring beats simulation,
    /// or `None` if it never does.
    pub fn crossover_repeated_squaring(&self) -> Option<u32> {
        (1..=64).find(|&b| self.t_repeated_squaring(b) < self.t_sim(b))
    }

    /// Smallest `b` (≤ 64) at which eigendecomposition beats simulation.
    pub fn crossover_eigendecomposition(&self) -> Option<u32> {
        (1..=64).find(|&b| self.t_eigendecomposition() < self.t_sim(b))
    }

    /// Cheapest strategy at precision `b`.
    pub fn best_strategy(&self, b: u32) -> QpeStrategy {
        let sim = self.t_sim(b);
        let rs = self.t_repeated_squaring(b);
        let eig = self.t_eigendecomposition();
        if sim <= rs && sim <= eig {
            QpeStrategy::GateLevel
        } else if rs <= eig {
            QpeStrategy::RepeatedSquaring
        } else {
            QpeStrategy::Eigendecomposition
        }
    }
}

/// Analytic timing model (used where measurement is impractical, e.g. the
/// paper-scale rows of Table 2): costs are taken proportional to operation
/// counts with per-primitive throughput constants (ops/second).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QpeCostModel {
    /// Sustained rate for sparse gate application, amplitudes/s.
    pub gate_rate: f64,
    /// Sustained rate for dense construction, matrix entries/s.
    pub build_rate: f64,
    /// Sustained complex flops for GEMM.
    pub gemm_flops: f64,
    /// Sustained complex flops for the eigensolver (with its ~25·n³ flop
    /// count for Hessenberg + QR + vectors).
    pub eig_flops: f64,
}

impl QpeCostModel {
    /// Predicts primitive timings for an `n`-qubit, `G`-gate operator.
    pub fn predict(&self, n: usize, g: usize) -> QpeTimings {
        let dim = (2f64).powi(n as i32);
        QpeTimings {
            n,
            g,
            t_apply_u: g as f64 * dim / self.gate_rate,
            t_build_dense: g as f64 * dim * dim / self.build_rate,
            t_gemm: 8.0 * dim * dim * dim / self.gemm_flops,
            t_eig: 25.0 * 8.0 * dim * dim * dim / self.eig_flops,
        }
    }
}

/// Machine cost model for **every** high-level op, not just QPE — the
/// generalization the execution planner (`crate::planner`) consumes to
/// choose a backend per op.
///
/// Two regimes cover all backends:
///
/// * **memory-bound sweeps** — emulation shortcuts (table pass, FFT,
///   rotation sweep) and gate-level simulation both reduce to passes over
///   the 2ⁿ amplitudes; their cost is `entries written / entry_rate`,
///   with the entry counts coming from the traffic estimators
///   (`Circuit::touched_entries`, `FusedCircuit::touched_entries`);
/// * **label evaluation** — classical-map tables and oracle predicates
///   evaluate an `f(u64)`-style function per label at `table_rate`.
///
/// The QPE dense paths (GEMM / eigendecomposition) keep their dedicated
/// [`QpeCostModel`] rates. All predictions are *relative* costs on a
/// synthetic machine: the planner only compares them against each other,
/// so only the ratios matter. The defaults are calibrated to a
/// memory-bound state vector (≈10⁸–10⁹ entries/s) and hold up in the
/// `hybrid_ablation` bench's predicted-vs-measured columns; for the real
/// host's constants — which shift whenever the SIMD kernels change the
/// per-entry arithmetic cost — use [`CostModel::calibrated`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// State-vector entries written per second by the per-gate butterfly
    /// sweep (memory-bound at large n, arithmetic-bound in cache).
    pub entry_rate: f64,
    /// State-vector entries written per second by the fused blocked
    /// kernels (gather + 2^k×2^k product + scatter). Distinct from
    /// [`CostModel::entry_rate`] because the per-entry arithmetic differs
    /// — and because SIMD accelerates the two loops by different factors.
    pub fused_entry_rate: f64,
    /// State-vector entries *replayed in cache* per second by the segment
    /// executor (`qcemu_sim::segment`): every op after the first in a
    /// blocked segment re-touches an L2-resident block, so its rate is
    /// bounded by cache bandwidth and SIMD arithmetic rather than DRAM.
    /// The default keeps the typical order-of-magnitude gap between L2
    /// and DRAM streaming bandwidth over [`CostModel::entry_rate`].
    pub cache_rate: f64,
    /// Classical label evaluations per second (map tables, predicates,
    /// rotation angles).
    pub table_rate: f64,
    /// One-off cost per gate of fusing + classifying a circuit
    /// (matrix compose and structure detection, paid before the first
    /// fused sweep).
    pub fuse_per_gate: f64,
    /// Contraction work units per second of the compressed MPS backend
    /// (`qcemu_sim::mps`): the unit convention of
    /// [`estimate_mps_cost`](qcemu_sim::estimate_mps_cost), dominated by
    /// the χ³-scaling contract→SVD→truncate of each two-site apply. The
    /// SVD is dense arithmetic on tiny matrices, so the rate sits well
    /// below the streaming `entry_rate` per element — which is exactly
    /// why MPS only wins when χ stays small while 2ⁿ does not.
    pub mps_rate: f64,
    /// Seconds of fixed cost per parallel *dispatch* — one launch of the
    /// rayon shim's persistent worker pool (job publication, worker
    /// wake-up, completion wait). Every above-threshold sweep pays it
    /// once, so a depth-d circuit pays it d times while an emulation
    /// shortcut pays it once per pass — which is why it belongs in the
    /// planner's comparison. Measured by [`CostModel::calibrated`] as
    /// the wall time of an empty parallel region.
    pub dispatch_overhead: f64,
    /// Measured parallel speedup of the memory-bound sweep over a forced
    /// single-thread run (≥ 1). The calibrated `*_rate`s are measured
    /// with the pool warm and engaged, so *below*-threshold circuits —
    /// which the kernels run serially — are slower than `entries / rate`
    /// by exactly this factor; [`CostModel::t_sweeps`] applies it to the
    /// serial regime so small-state pricing stays honest on multi-core
    /// hosts. 1.0 on a single-thread host.
    pub thread_scale: f64,
    /// log2 of the segment executor's block size in amplitudes — the
    /// value both the segmented *pricing* (`t_gates_segmented`'s traffic
    /// split) and segmented *execution* (via
    /// `Backend::SimulateSegmented { block_bits }`) use. Defaults to
    /// `qcemu_sim::DEFAULT_BLOCK_BITS`; [`CostModel::calibrated`]
    /// replaces it with the block size the host's cache hierarchy
    /// actually replays fastest.
    pub block_bits: usize,
    /// Rates of the QPE dense-path primitives.
    pub qpe: QpeCostModel,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            entry_rate: 4e8,
            fused_entry_rate: 4e8,
            cache_rate: 4e9,
            table_rate: 5e7,
            fuse_per_gate: 2e-6,
            mps_rate: 2e8,
            dispatch_overhead: 2e-6,
            thread_scale: 1.0,
            block_bits: qcemu_sim::DEFAULT_BLOCK_BITS,
            qpe: QpeCostModel {
                gate_rate: 4e8,
                build_rate: 4e8,
                gemm_flops: 5e9,
                eig_flops: 1e9,
            },
        }
    }
}

impl CostModel {
    /// The host's **measured** cost model: micro-benchmarks every rate on
    /// first call (a few tens of milliseconds) and caches the result for
    /// the life of the process — the ROADMAP's "measured cost models"
    /// path, generalised beyond QPE.
    ///
    /// Calibrating at startup is what keeps the planner honest across
    /// kernel changes: enabling the `simd` feature speeds the fused
    /// dense product up by more than the butterfly sweep and far more
    /// than classical label evaluation, so crossover points genuinely
    /// move — a [`HybridExecutor`](crate::executor::HybridExecutor) fed
    /// this model (`HybridExecutor::calibrated()`) shifts its per-op
    /// backend choices automatically instead of trusting the hand-tuned
    /// [`CostModel::default`] ratios.
    ///
    /// The measured rates also persist to disk
    /// (`$XDG_CACHE_HOME`/`~/.cache` + `qcemu/calibration.json`, keyed
    /// by a host fingerprint), so later processes on the same host skip
    /// the micro-benchmarks entirely. Set `QCEMU_CALIB_CACHE` to an
    /// alternative path, or to `off`/`0`/empty to disable persistence;
    /// a fingerprint or schema mismatch silently falls back to
    /// re-measuring.
    pub fn calibrated() -> CostModel {
        use std::sync::OnceLock;
        static HOST: OnceLock<CostModel> = OnceLock::new();
        *HOST.get_or_init(|| {
            crate::calibration::load_cached().unwrap_or_else(|| {
                let m = CostModel::measure_host();
                crate::calibration::store_cached(&m);
                m
            })
        })
    }

    /// Runs the calibration micro-benchmarks **now**, uncached. Prefer
    /// [`CostModel::calibrated`]; this entry point exists for harnesses
    /// that want to re-measure (e.g. after toggling
    /// `qcemu_linalg::simd::force_scalar` to quantify what SIMD does to
    /// the model's ratios).
    pub fn measure_host() -> CostModel {
        calibrate::measure()
    }

    /// Cost of `sweeps` passes writing `entries` state-vector entries in
    /// total at `rate` (entries/s), accounting for how the kernels
    /// actually run: a pass over ≥ [`qcemu_sim::PAR_THRESHOLD`] entries
    /// goes through the persistent pool and pays
    /// [`CostModel::dispatch_overhead`] once per sweep; a smaller pass
    /// runs serially and forfeits the [`CostModel::thread_scale`] factor
    /// folded into the calibrated rates.
    pub fn t_sweeps(&self, entries: usize, sweeps: usize, rate: f64) -> f64 {
        let per_sweep = entries / sweeps.max(1);
        if per_sweep >= qcemu_sim::PAR_THRESHOLD {
            entries as f64 / rate + sweeps as f64 * self.dispatch_overhead
        } else {
            entries as f64 * self.thread_scale / rate
        }
    }

    /// Cost of writing `entries` state-vector entries in one memory-bound
    /// sweep (dispatch-aware; see [`CostModel::t_sweeps`]).
    pub fn t_entries(&self, entries: usize) -> f64 {
        self.t_sweeps(entries, 1, self.entry_rate)
    }

    /// Emulated classical map over a `k_bits`-wide register tuple on a
    /// `2^n_state` state: build/validate the 2^k permutation table (or
    /// evaluate per amplitude when the table would not fit), then one
    /// scatter sweep.
    pub fn t_classical_emulated(&self, n_state: usize, k_bits: usize) -> f64 {
        let evals = if k_bits <= crate::classical::TABLE_MAX_BITS {
            (1u64 << k_bits) as f64
        } else {
            (2f64).powi(n_state as i32)
        };
        evals / self.table_rate + self.t_entries(1usize << n_state)
    }

    /// Emulated phase oracle: one conditional scan, one predicate call per
    /// amplitude.
    pub fn t_oracle_emulated(&self, n_state: usize) -> f64 {
        let dim = (1usize << n_state) as f64;
        dim / self.table_rate + dim / self.entry_rate
    }

    /// Emulated register-controlled rotation: one 2×2 rotation per
    /// amplitude pair (every entry written once), one angle evaluation per
    /// pair.
    pub fn t_rotation_emulated(&self, n_state: usize) -> f64 {
        let dim = 1usize << n_state;
        (dim / 2) as f64 / self.table_rate + self.t_entries(dim)
    }

    /// Gate-level cost of the generic per-value expansion of a rotation
    /// over an `m_bits` control register (2^m multi-controlled rotations,
    /// X-conjugated onto each value pattern) — computed analytically so
    /// the planner never has to materialise the exponential circuit just
    /// to reject it.
    pub fn t_rotation_simulated(&self, n_state: usize, m_bits: usize) -> f64 {
        let values = (2f64).powi(m_bits as i32);
        let x_sweeps = m_bits as f64; // ~m/2 zero bits, conjugated twice
        let dim = (2f64).powi(n_state as i32);
        let ry_entries = (2f64).powi((n_state - m_bits) as i32 + 1);
        values * (x_sweeps * dim + ry_entries) / self.entry_rate
    }

    /// Emulated QFT on an `r_bits` register: an FFT pass per register bit
    /// over the full state, each pass one pool dispatch.
    pub fn t_qft_emulated(&self, n_state: usize, r_bits: usize) -> f64 {
        self.t_sweeps(r_bits * (1usize << n_state), r_bits, self.entry_rate)
    }

    /// Unfused gate-level execution writing `unfused_entries` across
    /// `sweeps` per-gate kernel launches (the circuit's gate count).
    pub fn t_gates(&self, unfused_entries: usize, sweeps: usize) -> f64 {
        self.t_sweeps(unfused_entries, sweeps, self.entry_rate)
    }

    /// Fused gate-level execution: `sweeps` blocked sweeps (the fused
    /// circuit's op count, each one pool dispatch at the fused kernels'
    /// own measured rate) writing `fused_entries`, plus the one-off
    /// fuse/classify cost of the circuit's `gate_count` gates.
    pub fn t_gates_fused(&self, fused_entries: usize, gate_count: usize, sweeps: usize) -> f64 {
        self.t_sweeps(fused_entries, sweeps, self.fused_entry_rate)
            + gate_count as f64 * self.fuse_per_gate
    }

    /// Cache-blocked segment execution
    /// (`qcemu_sim::SegmentedCircuit`): the `streamed` entries cross
    /// memory once per segment at the sweep rate, the `incache` entries
    /// are replayed against resident blocks at the cache rate, the
    /// circuit pays the same one-off per-gate compile cost as fusion,
    /// and each of the `dispatches` parallel-region launches (one per
    /// blocked segment plus one per full-state sweep op) pays the pool's
    /// dispatch overhead.
    pub fn t_gates_segmented(
        &self,
        streamed: usize,
        incache: usize,
        gate_count: usize,
        dispatches: usize,
    ) -> f64 {
        streamed as f64 / self.entry_rate
            + incache as f64 / self.cache_rate
            + gate_count as f64 * self.fuse_per_gate
            + dispatches as f64 * self.dispatch_overhead
    }

    /// Compressed (MPS) execution of a circuit whose predicted
    /// contraction work is `units`
    /// ([`estimate_mps_cost`](qcemu_sim::estimate_mps_cost), only
    /// meaningful when the estimate is `exact`): the χ-law contraction
    /// term plus the dense↔MPS boundary — the plan interpreter densifies
    /// the incoming state into site tensors and back, two full-state
    /// passes at the sweep rate. The boundary term is what keeps MPS
    /// honest per-op: a shallow circuit never wins just because its χ is
    /// small, only a *deep* low-entanglement circuit amortises the
    /// conversion.
    pub fn t_gates_mps(&self, units: f64, n_state: usize) -> f64 {
        units / self.mps_rate + 2.0 * (2f64).powi(n_state as i32) / self.entry_rate
    }

    /// QPE primitive timings for a `g`-gate unitary on an `m_bits` target
    /// register embedded in a `2^n_state` state. Unlike
    /// [`QpeCostModel::predict`] (which models the paper's stand-alone
    /// Table 2 setting), the gate-level `t_apply_u` here scales with the
    /// *full* state the program runs in — controlled-U sweeps the whole
    /// vector — while the dense build/GEMM/eig costs scale with the
    /// operator dimension `2^m` only.
    pub fn qpe_timings(&self, n_state: usize, m_bits: usize, g: usize) -> QpeTimings {
        let dim_state = (2f64).powi(n_state as i32);
        let dim_u = (2f64).powi(m_bits as i32);
        QpeTimings {
            n: m_bits,
            g,
            t_apply_u: g as f64 * dim_state / self.qpe.gate_rate,
            t_build_dense: g as f64 * dim_u * dim_u / self.qpe.build_rate,
            t_gemm: 8.0 * dim_u * dim_u * dim_u / self.qpe.gemm_flops,
            t_eig: 25.0 * 8.0 * dim_u * dim_u * dim_u / self.qpe.eig_flops,
        }
    }

    /// Total predicted cost of a `b`-bit QPE under `strategy`, including
    /// the parts the per-strategy `QpeTimings` formulas leave out because
    /// they cancel in *their* comparison: the final inverse QFT on the
    /// phase register (paid by **every** strategy — as a gate circuit on
    /// the gate-level path, as an FFT or folded into the analytic state
    /// write-out on the dense paths), and the `b` controlled dense-power
    /// applications of the two dense strategies. Omitting the inverse
    /// QFT from the gate-level candidate would bias the planner toward
    /// simulation exactly in the crossover region.
    pub fn t_qpe(
        &self,
        n_state: usize,
        m_bits: usize,
        g: usize,
        b: usize,
        strategy: QpeStrategy,
    ) -> f64 {
        let t = self.qpe_timings(n_state, m_bits, g);
        let dim_state = (2f64).powi(n_state as i32);
        let dim_u = (2f64).powi(m_bits as i32);
        let iqft = self.t_qft_emulated(n_state, b);
        let dense_apply = b as f64 * 8.0 * dim_state * dim_u / self.qpe.gemm_flops;
        match strategy {
            QpeStrategy::GateLevel => t.t_sim(b as u32) + iqft,
            QpeStrategy::RepeatedSquaring => t.t_repeated_squaring(b as u32) + dense_apply + iqft,
            QpeStrategy::Eigendecomposition => t.t_eigendecomposition() + dense_apply + iqft,
        }
    }
}

/// The calibration micro-benchmarks behind [`CostModel::measure_host`].
///
/// Each primitive is timed on a working set small enough to finish in a
/// few milliseconds but large enough to dominate timer noise (best of a
/// few repetitions after a warm-up). The sizes live in cache, so the
/// measured rates are upper bounds on the DRAM-bound large-n rates —
/// uniformly so across primitives, which is what matters: the planner
/// only compares costs against each other.
mod calibrate {
    use super::{CostModel, QpeCostModel};
    use qcemu_linalg::{eig, gemm, random_matrix, random_unitary};
    use qcemu_sim::{
        circuit_to_dense, estimate_mps_cost, qft_circuit, segment_circuit, Circuit, FusionPolicy,
        Gate, MpsState, StateVector,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rayon::prelude::IntoParallelIterator;
    use std::time::Instant;

    /// Best-of-`reps` wall time of `f`, after one untimed warm-up run.
    fn time(reps: usize, mut f: impl FnMut()) -> f64 {
        f();
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best.max(1e-9)
    }

    /// Qubit count the sweep benchmarks run at: 2^16 amplitudes = 1 MiB,
    /// big enough to amortise per-call overhead, small enough to stay
    /// fast at startup.
    const N: usize = 16;

    pub(super) fn measure() -> CostModel {
        // Start the persistent pool's workers before timing anything, so
        // the measured rates reflect steady-state dispatch — not the
        // one-off thread spawns of a cold pool.
        rayon::pool::warm_up();

        let dim = 1usize << N;
        let sv = StateVector::uniform_superposition(N);

        // Butterfly sweep: one general gate writes every entry.
        let gate = Gate::h(N / 2);
        let mut state = sv.clone();
        let t_butterfly = time(3, || {
            state.apply(&gate);
            std::hint::black_box(state.amplitudes()[1]);
        });

        // Per-dispatch overhead: wall time of a near-empty parallel
        // region is pure job publication + wake-up + completion wait.
        let reps = 64;
        let t_dispatch = time(3, || {
            for _ in 0..reps {
                (0..2).into_par_iter().for_each(|i| {
                    std::hint::black_box(i);
                });
            }
        }) / reps as f64;

        // Thread scaling of the memory-bound sweep: the same butterfly
        // under a forced single-thread install. The ratio is what the
        // serial (below-threshold) regime forfeits relative to the
        // pool-engaged rates measured above.
        let serial_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shim pool build is infallible");
        let mut serial_state = sv.clone();
        let t_butterfly_serial = time(3, || {
            serial_pool.install(|| serial_state.apply(&gate));
            std::hint::black_box(serial_state.amplitudes()[1]);
        });
        let thread_scale = (t_butterfly_serial / t_butterfly)
            .clamp(1.0, rayon::current_num_threads().max(1) as f64);

        // Fused blocked sweep: a dense 2^4-wide block (the classify
        // threshold guarantees the Dense mat-vec path) also writes every
        // entry, through gather + product + scatter.
        let mut c = Circuit::new(N);
        for _ in 0..4 {
            for q in 8..12 {
                c.h(q);
                c.ry(q, 0.37);
            }
        }
        let fused = c.fuse(&FusionPolicy::Greedy {
            max_fused_qubits: 4,
        });
        let sweeps = fused.ops().len().max(1);
        let mut state = sv.clone();
        let t_fused = time(3, || {
            state.apply_fused_circuit(&fused);
            std::hint::black_box(state.amplitudes()[1]);
        });

        // In-cache segment replay: a QFT compiled at whole-state block
        // size replays every op against a 64 KiB resident block, so the
        // measured rate is cache/SIMD-bound rather than DRAM-bound —
        // exactly the regime `t_gates_segmented`'s incache term models.
        let seg_n = 12;
        let seg = segment_circuit(&qft_circuit(seg_n), seg_n, &FusionPolicy::Disabled);
        let seg_entries = seg.incache_entries(seg_n).max(1);
        let mut state = StateVector::uniform_superposition(seg_n);
        let t_cache = time(3, || {
            seg.apply_slice_with(state.amplitudes_mut(), usize::MAX);
            std::hint::black_box(state.amplitudes()[1]);
        });

        // Classical label throughput: one table-build-style pass mapping
        // every label through an opaque boxed closure — the same dynamic
        // dispatch `apply_classical_map` pays per label, so the measured
        // rate reflects real map evaluation, not an inlined loop.
        let map: Box<dyn Fn(&mut [u64])> = std::hint::black_box(Box::new(|v: &mut [u64]| {
            v[0] = v[0].wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(13);
        }));
        let mut scratch = [0u64; 2];
        let t_table = time(3, || {
            let mut acc = 0u64;
            for v in 0..dim as u64 {
                scratch[0] = v;
                map(&mut scratch);
                acc ^= scratch[0];
            }
            std::hint::black_box(acc);
        });

        // Fusion (compose + classify) cost per gate.
        let qft = qft_circuit(10);
        let t_fuse = time(2, || {
            std::hint::black_box(qft.fuse(&FusionPolicy::greedy()).ops().len());
        });

        // MPS contraction throughput: a brickwork chain circuit run at a
        // representative bounded χ, normalised by the same work-unit
        // estimate the planner prices with — so rate × estimate
        // round-trips to wall time by construction.
        let chain_n = 10;
        let mut chain = Circuit::new(chain_n);
        for layer in 0..4 {
            for q in 0..chain_n {
                chain.ry(q, 0.3 + 0.1 * layer as f64 + 0.01 * q as f64);
            }
            for q in 0..chain_n - 1 {
                chain.cnot(q, q + 1);
            }
        }
        let mps_units = estimate_mps_cost(&chain, 16).units.max(1.0);
        let t_mps = time(3, || {
            let mut mps = MpsState::zero_state(chain_n, 16);
            mps.run(&chain);
            std::hint::black_box(mps.truncation_error());
        });

        // Cache-hierarchy probe for the segment block size: replay a
        // segmented QFT (larger than any candidate block) at each
        // candidate and keep the fastest — the measured stand-in for
        // "half a per-core L2" that DEFAULT_BLOCK_BITS hand-codes.
        let probe_n = 16;
        let probe = qft_circuit(probe_n);
        let mut probe_state = StateVector::uniform_superposition(probe_n);
        let block_bits = [10usize, 12, 14]
            .into_iter()
            .map(|bb| {
                let seg = segment_circuit(&probe, bb, &FusionPolicy::Disabled);
                let t = time(1, || {
                    seg.apply_slice_with(probe_state.amplitudes_mut(), usize::MAX);
                    std::hint::black_box(probe_state.amplitudes()[1]);
                });
                (t, bb)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, bb)| bb)
            .unwrap_or(qcemu_sim::DEFAULT_BLOCK_BITS);

        // QPE dense-path primitives at small operator sizes.
        let build_circuit = qft_circuit(6);
        let build_dim = 1usize << 6;
        let t_build = time(2, || {
            std::hint::black_box(circuit_to_dense(&build_circuit).shape());
        });
        let mut rng = StdRng::seed_from_u64(0x5eed);
        let (ga, gb) = (
            random_matrix(128, 128, &mut rng),
            random_matrix(128, 128, &mut rng),
        );
        let t_gemm = time(2, || {
            std::hint::black_box(gemm(&ga, &gb).shape());
        });
        let u = random_unitary(32, &mut rng);
        let t_eig = time(1, || {
            std::hint::black_box(eig(&u).map(|e| e.values.len()).unwrap_or(0));
        });

        CostModel {
            entry_rate: dim as f64 / t_butterfly,
            fused_entry_rate: (sweeps * dim) as f64 / t_fused,
            cache_rate: seg_entries as f64 / t_cache,
            table_rate: dim as f64 / t_table,
            fuse_per_gate: t_fuse / qft.gate_count().max(1) as f64,
            mps_rate: mps_units / t_mps,
            dispatch_overhead: t_dispatch.max(1e-9),
            thread_scale,
            block_bits,
            qpe: QpeCostModel {
                gate_rate: dim as f64 / t_butterfly,
                build_rate: (build_circuit.gate_count() * build_dim * build_dim) as f64 / t_build,
                gemm_flops: 8.0 * 128f64.powi(3) / t_gemm,
                eig_flops: 25.0 * 8.0 * 32f64.powi(3) / t_eig,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic machine with paper-like ratios.
    fn model() -> QpeCostModel {
        QpeCostModel {
            gate_rate: 1e9,
            build_rate: 1e9,
            gemm_flops: 2e10,
            eig_flops: 4e9,
        }
    }

    #[test]
    fn costs_are_monotone_in_b() {
        let t = model().predict(10, 37);
        assert!(t.t_sim(10) < t.t_sim(11));
        assert!(t.t_repeated_squaring(10) < t.t_repeated_squaring(11));
        // Eigendecomposition is flat in b.
        assert_eq!(t.t_eigendecomposition(), t.t_eigendecomposition());
    }

    #[test]
    fn crossover_grows_with_n() {
        // Paper Table 2: repeated-squaring crossover rises 6 → 24 bits as
        // n goes 8 → 14 (roughly ~2n + const in their data).
        let m = model();
        let mut prev = 0;
        for n in 8..=14 {
            let g = 4 * n - 3;
            let t = m.predict(n, g);
            let x = t.crossover_repeated_squaring().expect("must cross");
            assert!(
                x > prev,
                "crossover must increase: n={n}, x={x}, prev={prev}"
            );
            prev = x;
        }
    }

    #[test]
    fn crossover_scales_like_2n_asymptotically() {
        // §3.3: "There is an advantage in the asymptotic scaling […] if
        // b ≥ 2n". With constants equal, crossover/n → 2.
        let m = QpeCostModel {
            gate_rate: 1e9,
            build_rate: 1e9,
            gemm_flops: 8e9, // t_gemm = dim³/1e9 exactly
            eig_flops: 8e9,
        };
        let t = m.predict(16, 61);
        let x = t.crossover_repeated_squaring().unwrap();
        let ratio = x as f64 / 16.0;
        assert!(
            (1.7..=2.4).contains(&ratio),
            "crossover/n = {ratio}, expected ≈ 2"
        );
    }

    #[test]
    fn best_strategy_switches_with_precision() {
        let t = model().predict(10, 37);
        // Tiny precision: simulating a handful of U applications is cheapest.
        assert_eq!(t.best_strategy(1), QpeStrategy::GateLevel);
        // Past the crossover, an emulation path wins.
        let x = t.crossover_repeated_squaring().unwrap();
        assert_ne!(t.best_strategy(x + 4), QpeStrategy::GateLevel);
        // At high precision, eigendecomposition (flat in b) wins once
        // b·t_gemm exceeds t_eig — use a model with a fast eigensolver.
        let fast_eig = QpeCostModel {
            eig_flops: 2e10,
            ..model()
        };
        let t2 = fast_eig.predict(10, 37);
        assert_eq!(t2.best_strategy(60), QpeStrategy::Eigendecomposition);
    }

    #[test]
    fn eigendecomposition_crossover_behaviour() {
        let t = model().predict(9, 33);
        let x = t.crossover_eigendecomposition().expect("must cross");
        // One step before the crossover simulation must still win.
        assert!(t.t_sim(x - 1) <= t.t_eigendecomposition());
        assert!(t.t_sim(x) > t.t_eigendecomposition());
    }

    #[test]
    fn fusion_raises_the_simulation_crossover() {
        // Fusion only makes the gate-level path cheaper, so every
        // emulation crossover moves to a higher precision (or stays put).
        let t = model().predict(10, 37);
        let fused = t.with_fused_apply(4, 1); // 4× less traffic
        assert!(fused.t_apply_u < t.t_apply_u);
        let x = t.crossover_repeated_squaring().unwrap();
        let xf = fused.crossover_repeated_squaring().unwrap();
        assert!(xf >= x, "fused crossover {xf} must be ≥ unfused {x}");
        let e = t.crossover_eigendecomposition().unwrap();
        let ef = fused.crossover_eigendecomposition().unwrap();
        assert!(ef >= e);
    }

    #[test]
    fn fused_timings_from_real_circuit_traffic() {
        // Feed the advisor the actual traffic ratio of a fused QFT — the
        // workflow the fusion_ablation bench reports.
        use qcemu_sim::{qft_circuit, FusionPolicy};
        let n = 10;
        let c = qft_circuit(n);
        let unfused = c.fuse(&FusionPolicy::Disabled).touched_entries(n);
        let fused = c
            .fuse(&FusionPolicy::Greedy {
                max_fused_qubits: 5,
            })
            .touched_entries(n);
        assert!(fused < unfused, "fusion must cut QFT traffic");
        let t = model().predict(n, c.gate_count());
        let tf = t.with_fused_apply(unfused, fused);
        assert!(
            tf.crossover_repeated_squaring().unwrap() >= t.crossover_repeated_squaring().unwrap()
        );
    }

    #[test]
    fn cost_model_classical_crossover_mirrors_fig1() {
        // Paper Fig. 1: the emulated table pass beats the reversible
        // network, and the gap widens with size. The model's emulated cost
        // is a table build plus ONE sweep; any multi-gate network on the
        // same state costs at least gate_count sweeps.
        let m = CostModel::default();
        for n in 10..=20 {
            let emulated = m.t_classical_emulated(n, 3 * (n / 3));
            let network = m.t_gates(50 * (1usize << n), 50); // ~50-gate adder net
            assert!(emulated < network, "n = {n}");
        }
    }

    #[test]
    fn cost_model_qft_crossover_depends_on_register_width() {
        // r FFT passes versus ~r²/8 gate-sweep traffic: gates win for tiny
        // registers, the FFT wins for wide ones.
        let m = CostModel::default();
        let n = 20;
        // Wide register: FFT's r sweeps beat the circuit's ~r²/8.
        let r = 16;
        let circuit = qcemu_sim::qft_circuit(r);
        let gates = m.t_gates(circuit.touched_entries(n), circuit.gate_count());
        assert!(m.t_qft_emulated(n, r) < gates, "wide QFT must prefer FFT");
        // Narrow register: the 4 gates fuse into one 2-qubit block — one
        // blocked sweep beats 2 full FFT passes.
        let r = 2;
        let circuit = qcemu_sim::qft_circuit(r);
        let fc = circuit.fuse(&qcemu_sim::FusionPolicy::greedy());
        let fused = m.t_gates_fused(fc.touched_entries(n), circuit.gate_count(), fc.ops().len());
        assert!(
            fused < m.t_qft_emulated(n, r),
            "narrow QFT must prefer fused gates"
        );
    }

    #[test]
    fn cost_model_rotation_expansion_is_exponential() {
        let m = CostModel::default();
        let n = 18;
        // Emulation is flat in the control width; the expansion doubles
        // per control bit and loses catastrophically.
        let emu = m.t_rotation_emulated(n);
        assert!(m.t_rotation_simulated(n, 4) > emu);
        assert!(m.t_rotation_simulated(n, 10) > 20.0 * m.t_rotation_simulated(n, 5));
    }

    #[test]
    fn cost_model_qpe_total_includes_epilogue_and_orders_strategies() {
        let m = CostModel::default();
        // High precision on a small operator: eigendecomposition's flat
        // cost must beat per-bit repeated squaring, and both must beat
        // 2^b gate applications.
        let (n_state, m_bits, g, b) = (16, 4, 16, 24);
        let eig = m.t_qpe(n_state, m_bits, g, b, QpeStrategy::Eigendecomposition);
        let rs = m.t_qpe(n_state, m_bits, g, b, QpeStrategy::RepeatedSquaring);
        let sim = m.t_qpe(n_state, m_bits, g, b, QpeStrategy::GateLevel);
        assert!(eig < sim && rs < sim, "emulation beats 2^24 applications");
        // At b = 1 with a short circuit the gate-level path is cheapest:
        // one application of U beats building the dense operator.
        let g = 4;
        let sim1 = m.t_qpe(n_state, m_bits, g, 1, QpeStrategy::GateLevel);
        assert!(sim1 < m.t_qpe(n_state, m_bits, g, 1, QpeStrategy::RepeatedSquaring));
    }

    #[test]
    fn calibrated_model_is_finite_positive_and_cached() {
        let m = CostModel::calibrated();
        for (name, rate) in [
            ("entry_rate", m.entry_rate),
            ("fused_entry_rate", m.fused_entry_rate),
            ("cache_rate", m.cache_rate),
            ("table_rate", m.table_rate),
            ("mps_rate", m.mps_rate),
            ("gate_rate", m.qpe.gate_rate),
            ("build_rate", m.qpe.build_rate),
            ("gemm_flops", m.qpe.gemm_flops),
            ("eig_flops", m.qpe.eig_flops),
        ] {
            assert!(rate.is_finite() && rate > 0.0, "{name} = {rate}");
        }
        assert!(m.fuse_per_gate.is_finite() && m.fuse_per_gate > 0.0);
        assert!(
            m.dispatch_overhead.is_finite() && m.dispatch_overhead > 0.0,
            "dispatch_overhead = {}",
            m.dispatch_overhead
        );
        assert!(
            m.thread_scale.is_finite() && m.thread_scale >= 1.0,
            "thread_scale = {}",
            m.thread_scale
        );
        assert!(
            (1..=30).contains(&m.block_bits),
            "implausible block size: {}",
            m.block_bits
        );
        // Memoised: the second call must return the very same numbers.
        assert_eq!(m, CostModel::calibrated());
        // Sanity on the ordering the planner relies on: a state-vector
        // sweep is much faster per element than an eigensolve per flop
        // is slow — i.e. the measured machine can still tell the
        // regimes apart.
        assert!(
            m.entry_rate > 1e6,
            "implausibly slow sweep: {}",
            m.entry_rate
        );
        assert!(m.qpe.eig_flops > 1e6);
    }

    #[test]
    fn sweep_pricing_charges_dispatch_above_threshold_only() {
        let m = CostModel {
            dispatch_overhead: 1e-5,
            thread_scale: 3.0,
            ..CostModel::default()
        };
        // Above the parallel threshold: streamed traffic plus one
        // dispatch per sweep, and no serial penalty.
        let big = qcemu_sim::PAR_THRESHOLD * 4;
        let t = m.t_sweeps(10 * big, 10, m.entry_rate);
        let expected = 10.0 * big as f64 / m.entry_rate + 10.0 * m.dispatch_overhead;
        assert!((t - expected).abs() < 1e-12, "{t} vs {expected}");
        // Below it: serial execution forfeits the measured scaling and
        // pays no dispatch.
        let small = qcemu_sim::PAR_THRESHOLD / 2;
        let t = m.t_sweeps(small, 1, m.entry_rate);
        assert!((t - small as f64 * 3.0 / m.entry_rate).abs() < 1e-12);
        // The dispatch term makes many tiny above-threshold sweeps more
        // expensive than one sweep of the same total traffic — the
        // depth-d tax the pool rewrite shrinks but does not erase.
        let sweeps = 1000;
        assert!(
            m.t_sweeps(sweeps * big, sweeps, m.entry_rate)
                > m.t_sweeps(sweeps * big, 1, m.entry_rate)
        );
    }

    #[test]
    fn mps_cost_crossover_favours_deep_low_chi_circuits_only() {
        let m = CostModel::default();
        let n = 22;
        // Deep chain at bounded χ: contraction work is independent of n,
        // so past the boundary cost MPS beats per-gate dense sweeps.
        let depth = 400;
        let units = depth as f64 * 1.0e4; // ~χ³-scale work per 2q gate, χ ≤ 16
        let dense = m.t_gates(depth * (1usize << n), depth);
        assert!(m.t_gates_mps(units, n) < dense, "deep chain must pick MPS");
        // A shallow circuit never amortises the densify boundary: two
        // full-state passes already exceed one dense sweep.
        assert!(m.t_gates_mps(1.0, n) > m.t_gates(1usize << n, 1));
    }

    #[test]
    fn measured_style_timings_roundtrip() {
        // Direct construction (as the bench harness does from real clocks).
        let t = QpeTimings {
            n: 8,
            g: 29,
            t_apply_u: 1.44e-4,
            t_build_dense: 7.6e-4,
            t_gemm: 8.39e-4,
            t_eig: 9.6e-2,
        };
        // Paper Table 2 row n=8: crossover (repeated squaring) = 6,
        // eigendecomposition = 10. Our formulas on their numbers:
        assert_eq!(t.crossover_repeated_squaring(), Some(6));
        assert_eq!(t.crossover_eigendecomposition(), Some(10));
    }
}

//! Crossover analysis for QPE strategies (paper §3.3 + Table 2).
//!
//! "Which of these approaches is more efficient depends on the required
//! precision and the size of the matrix." Given measured (or modelled)
//! timings of the four primitive steps —
//!
//! * `t_apply_u` — one gate-level application of `U` to the state,
//! * `t_build_dense` — constructing dense `U` (O(G·2²ⁿ)),
//! * `t_gemm` — one dense `U·U` multiplication (the `zgemm` of Table 2),
//! * `t_eig` — one full eigendecomposition (the `zgeev` of Table 2),
//!
//! the advisor computes, per precision `b`,
//!
//! * simulation cost `T_sim(b) = (2^b − 1)·t_apply_u` (Eq. 7: `U` is applied
//!   `2^b − 1` times in total across the controlled powers),
//! * repeated-squaring cost `T_rs(b) = t_build + b·t_gemm`,
//! * eigendecomposition cost `T_eig = t_build + t_eig`,
//!
//! and reports the smallest `b` at which each emulation path beats
//! simulation — the lower panel of Table 2.
//!
//! **Gate fusion changes this comparison.** With the fusion engine
//! (`qcemu_sim::fusion`) the gate-level path no longer pays one sweep per
//! gate: runs of gates collapse into blocked sweeps, shrinking
//! `t_apply_u` by the memory-traffic ratio of the fused circuit to the
//! unfused one. An advisor that ignores fusion overestimates simulation
//! cost and switches to emulation too early;
//! [`QpeTimings::with_fused_apply`] rescales the timings so the
//! emulate-vs-simulate switch stays honest.

use crate::qpe::QpeStrategy;

/// Measured or modelled timings of the QPE primitives, in seconds.
#[derive(Clone, Copy, Debug)]
pub struct QpeTimings {
    /// Number of qubits `U` acts on.
    pub n: usize,
    /// Gate count `G` of the circuit implementing `U`.
    pub g: usize,
    /// One gate-level application of `U` (`G` sparse gate kernels).
    pub t_apply_u: f64,
    /// Dense construction of `U`.
    pub t_build_dense: f64,
    /// One `2^n × 2^n` complex GEMM.
    pub t_gemm: f64,
    /// One `2^n × 2^n` eigendecomposition.
    pub t_eig: f64,
}

impl QpeTimings {
    /// Simulation cost of a `b`-bit QPE.
    pub fn t_sim(&self, b: u32) -> f64 {
        ((2f64).powi(b as i32) - 1.0) * self.t_apply_u
    }

    /// Repeated-squaring emulation cost of a `b`-bit QPE.
    pub fn t_repeated_squaring(&self, b: u32) -> f64 {
        self.t_build_dense + b as f64 * self.t_gemm
    }

    /// Eigendecomposition emulation cost (independent of `b`).
    pub fn t_eigendecomposition(&self) -> f64 {
        self.t_build_dense + self.t_eig
    }

    /// Accounts for gate fusion in the simulated (gate-level) path.
    ///
    /// At the sizes where the crossover matters the state vector no
    /// longer fits in cache, so `t_apply_u` is memory-bound and scales
    /// with the number of state-vector entries written per application of
    /// `U` — not with the gate count. Unfused execution writes
    /// `unfused_entries` (the sum of `qcemu_sim::touched_entries` over
    /// the circuit); the fused circuit writes `fused_entries`
    /// (`FusedCircuit::touched_entries`). Rescaling `t_apply_u` by their
    /// ratio keeps the advisor honest: fusion makes simulation cheaper,
    /// so the crossover precision `b` moves *up*, and an advisor that
    /// skipped this correction would abandon simulation too early.
    pub fn with_fused_apply(mut self, unfused_entries: usize, fused_entries: usize) -> QpeTimings {
        assert!(
            unfused_entries > 0 && fused_entries > 0,
            "traffic estimates must be positive"
        );
        self.t_apply_u *= fused_entries as f64 / unfused_entries as f64;
        self
    }

    /// Smallest `b` (≤ 64) at which repeated squaring beats simulation,
    /// or `None` if it never does.
    pub fn crossover_repeated_squaring(&self) -> Option<u32> {
        (1..=64).find(|&b| self.t_repeated_squaring(b) < self.t_sim(b))
    }

    /// Smallest `b` (≤ 64) at which eigendecomposition beats simulation.
    pub fn crossover_eigendecomposition(&self) -> Option<u32> {
        (1..=64).find(|&b| self.t_eigendecomposition() < self.t_sim(b))
    }

    /// Cheapest strategy at precision `b`.
    pub fn best_strategy(&self, b: u32) -> QpeStrategy {
        let sim = self.t_sim(b);
        let rs = self.t_repeated_squaring(b);
        let eig = self.t_eigendecomposition();
        if sim <= rs && sim <= eig {
            QpeStrategy::GateLevel
        } else if rs <= eig {
            QpeStrategy::RepeatedSquaring
        } else {
            QpeStrategy::Eigendecomposition
        }
    }
}

/// Analytic timing model (used where measurement is impractical, e.g. the
/// paper-scale rows of Table 2): costs are taken proportional to operation
/// counts with per-primitive throughput constants (ops/second).
#[derive(Clone, Copy, Debug)]
pub struct QpeCostModel {
    /// Sustained rate for sparse gate application, amplitudes/s.
    pub gate_rate: f64,
    /// Sustained rate for dense construction, matrix entries/s.
    pub build_rate: f64,
    /// Sustained complex flops for GEMM.
    pub gemm_flops: f64,
    /// Sustained complex flops for the eigensolver (with its ~25·n³ flop
    /// count for Hessenberg + QR + vectors).
    pub eig_flops: f64,
}

impl QpeCostModel {
    /// Predicts primitive timings for an `n`-qubit, `G`-gate operator.
    pub fn predict(&self, n: usize, g: usize) -> QpeTimings {
        let dim = (2f64).powi(n as i32);
        QpeTimings {
            n,
            g,
            t_apply_u: g as f64 * dim / self.gate_rate,
            t_build_dense: g as f64 * dim * dim / self.build_rate,
            t_gemm: 8.0 * dim * dim * dim / self.gemm_flops,
            t_eig: 25.0 * 8.0 * dim * dim * dim / self.eig_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic machine with paper-like ratios.
    fn model() -> QpeCostModel {
        QpeCostModel {
            gate_rate: 1e9,
            build_rate: 1e9,
            gemm_flops: 2e10,
            eig_flops: 4e9,
        }
    }

    #[test]
    fn costs_are_monotone_in_b() {
        let t = model().predict(10, 37);
        assert!(t.t_sim(10) < t.t_sim(11));
        assert!(t.t_repeated_squaring(10) < t.t_repeated_squaring(11));
        // Eigendecomposition is flat in b.
        assert_eq!(t.t_eigendecomposition(), t.t_eigendecomposition());
    }

    #[test]
    fn crossover_grows_with_n() {
        // Paper Table 2: repeated-squaring crossover rises 6 → 24 bits as
        // n goes 8 → 14 (roughly ~2n + const in their data).
        let m = model();
        let mut prev = 0;
        for n in 8..=14 {
            let g = 4 * n - 3;
            let t = m.predict(n, g);
            let x = t.crossover_repeated_squaring().expect("must cross");
            assert!(
                x > prev,
                "crossover must increase: n={n}, x={x}, prev={prev}"
            );
            prev = x;
        }
    }

    #[test]
    fn crossover_scales_like_2n_asymptotically() {
        // §3.3: "There is an advantage in the asymptotic scaling […] if
        // b ≥ 2n". With constants equal, crossover/n → 2.
        let m = QpeCostModel {
            gate_rate: 1e9,
            build_rate: 1e9,
            gemm_flops: 8e9, // t_gemm = dim³/1e9 exactly
            eig_flops: 8e9,
        };
        let t = m.predict(16, 61);
        let x = t.crossover_repeated_squaring().unwrap();
        let ratio = x as f64 / 16.0;
        assert!(
            (1.7..=2.4).contains(&ratio),
            "crossover/n = {ratio}, expected ≈ 2"
        );
    }

    #[test]
    fn best_strategy_switches_with_precision() {
        let t = model().predict(10, 37);
        // Tiny precision: simulating a handful of U applications is cheapest.
        assert_eq!(t.best_strategy(1), QpeStrategy::GateLevel);
        // Past the crossover, an emulation path wins.
        let x = t.crossover_repeated_squaring().unwrap();
        assert_ne!(t.best_strategy(x + 4), QpeStrategy::GateLevel);
        // At high precision, eigendecomposition (flat in b) wins once
        // b·t_gemm exceeds t_eig — use a model with a fast eigensolver.
        let fast_eig = QpeCostModel {
            eig_flops: 2e10,
            ..model()
        };
        let t2 = fast_eig.predict(10, 37);
        assert_eq!(t2.best_strategy(60), QpeStrategy::Eigendecomposition);
    }

    #[test]
    fn eigendecomposition_crossover_behaviour() {
        let t = model().predict(9, 33);
        let x = t.crossover_eigendecomposition().expect("must cross");
        // One step before the crossover simulation must still win.
        assert!(t.t_sim(x - 1) <= t.t_eigendecomposition());
        assert!(t.t_sim(x) > t.t_eigendecomposition());
    }

    #[test]
    fn fusion_raises_the_simulation_crossover() {
        // Fusion only makes the gate-level path cheaper, so every
        // emulation crossover moves to a higher precision (or stays put).
        let t = model().predict(10, 37);
        let fused = t.with_fused_apply(4, 1); // 4× less traffic
        assert!(fused.t_apply_u < t.t_apply_u);
        let x = t.crossover_repeated_squaring().unwrap();
        let xf = fused.crossover_repeated_squaring().unwrap();
        assert!(xf >= x, "fused crossover {xf} must be ≥ unfused {x}");
        let e = t.crossover_eigendecomposition().unwrap();
        let ef = fused.crossover_eigendecomposition().unwrap();
        assert!(ef >= e);
    }

    #[test]
    fn fused_timings_from_real_circuit_traffic() {
        // Feed the advisor the actual traffic ratio of a fused QFT — the
        // workflow the fusion_ablation bench reports.
        use qcemu_sim::{qft_circuit, FusionPolicy};
        let n = 10;
        let c = qft_circuit(n);
        let unfused = c.fuse(&FusionPolicy::Disabled).touched_entries(n);
        let fused = c
            .fuse(&FusionPolicy::Greedy {
                max_fused_qubits: 5,
            })
            .touched_entries(n);
        assert!(fused < unfused, "fusion must cut QFT traffic");
        let t = model().predict(n, c.gate_count());
        let tf = t.with_fused_apply(unfused, fused);
        assert!(
            tf.crossover_repeated_squaring().unwrap() >= t.crossover_repeated_squaring().unwrap()
        );
    }

    #[test]
    fn measured_style_timings_roundtrip() {
        // Direct construction (as the bench harness does from real clocks).
        let t = QpeTimings {
            n: 8,
            g: 29,
            t_apply_u: 1.44e-4,
            t_build_dense: 7.6e-4,
            t_gemm: 8.39e-4,
            t_eig: 9.6e-2,
        };
        // Paper Table 2 row n=8: crossover (repeated squaring) = 6,
        // eigendecomposition = 10. Our formulas on their numbers:
        assert_eq!(t.crossover_repeated_squaring(), Some(6));
        assert_eq!(t.crossover_eigendecomposition(), Some(10));
    }
}

//! Standard library of high-level operations (paper §3.1 workloads).
//!
//! Each constructor returns a [`ClassicalMap`] carrying both execution
//! paths: the direct classical function for the emulator and (where the
//! paper benchmarks one) a deferred reversible-circuit builder for the
//! simulator, wired to the `qcemu-revarith` synthesisers.

use crate::program::{ClassicalMap, GateImpl, MapKind, PhaseOracle, QuantumProgram, RegisterId};
use qcemu_revarith::{adder, divider, divider_model, multiplier, multiplier_model};
use qcemu_sim::Circuit;
use qcemu_sim::{Gate, GateOp};
use std::sync::Arc;

/// In-place addition `b ← a + b (mod 2^m)` — Cuccaro adder on the
/// simulation path, word addition on the emulation path. One ancilla.
pub fn add(a: RegisterId, b: RegisterId, m: usize) -> ClassicalMap {
    ClassicalMap {
        name: format!("add[{m}]"),
        regs: vec![a, b],
        f: Arc::new(move |v| {
            let mask = if m >= 64 { u64::MAX } else { (1u64 << m) - 1 };
            v[1] = v[1].wrapping_add(v[0]) & mask;
        }),
        kind: MapKind::InPlaceBijection,
        gate_impl: Some(GateImpl {
            n_ancilla: 1,
            build: Arc::new(move |prog: &QuantumProgram| {
                let ad = adder(m, false);
                let ra = prog.register(a).offset;
                let rb = prog.register(b).offset;
                let anc = prog.n_qubits();
                ad.circuit.remap_qubits(prog.n_qubits() + 1, move |q| {
                    if q < m {
                        ra + q
                    } else if q < 2 * m {
                        rb + (q - m)
                    } else {
                        anc
                    }
                })
            }),
        }),
    }
}

/// Multiplication `(a, b, c) ↦ (a, b, c + a·b mod 2^m)` — the paper's
/// Fig. 1 workload: shift-and-add Toffoli network versus one basis-state
/// relabelling. One ancilla on the simulation path.
pub fn multiply(a: RegisterId, b: RegisterId, c: RegisterId, m: usize) -> ClassicalMap {
    ClassicalMap {
        name: format!("multiply[{m}]"),
        regs: vec![a, b, c],
        f: Arc::new(move |v| {
            v[2] = multiplier_model(m, v[0], v[1], v[2]);
        }),
        kind: MapKind::InPlaceBijection,
        gate_impl: Some(GateImpl {
            n_ancilla: 1,
            build: Arc::new(move |prog: &QuantumProgram| {
                let mc = multiplier(m);
                let ra = prog.register(a).offset;
                let rb = prog.register(b).offset;
                let rc = prog.register(c).offset;
                let anc = prog.n_qubits();
                mc.circuit.remap_qubits(prog.n_qubits() + 1, move |q| {
                    if q < m {
                        ra + q
                    } else if q < 2 * m {
                        rb + (q - m)
                    } else if q < 3 * m {
                        rc + (q - 2 * m)
                    } else {
                        anc
                    }
                })
            }),
        }),
    }
}

/// Division `(a, b, q=0, r=0) ↦ (a, b, ⌊a/b⌋, a mod b)` — the paper's
/// Fig. 2 workload. The simulation path needs **three** extra work qubits
/// (window flag, divisor zero-extension, Cuccaro carry) on top of the four
/// architectural registers; the emulation path needs none.
pub fn divide(
    a: RegisterId,
    b: RegisterId,
    q: RegisterId,
    r: RegisterId,
    m: usize,
) -> ClassicalMap {
    ClassicalMap {
        name: format!("divide[{m}]"),
        regs: vec![a, b, q, r],
        f: Arc::new(move |v| {
            let (quot, rem) = divider_model(m, v[0], v[1]);
            v[2] = quot;
            v[3] = rem;
        }),
        kind: MapKind::ZeroInitializedTargets { n_targets: 2 },
        gate_impl: Some(GateImpl {
            n_ancilla: 3,
            build: Arc::new(move |prog: &QuantumProgram| {
                let dc = divider(m);
                let ra = prog.register(a).offset;
                let rb = prog.register(b).offset;
                let rq = prog.register(q).offset;
                let rr = prog.register(r).offset;
                let anc0 = prog.n_qubits(); // window flag (divider's r bit m)
                let anc1 = anc0 + 1; // divisor zero-extension
                let anc2 = anc0 + 2; // Cuccaro carry
                dc.circuit.remap_qubits(prog.n_qubits() + 3, move |qb| {
                    if qb < m {
                        ra + qb
                    } else if qb < 2 * m {
                        rb + (qb - m)
                    } else if qb < 3 * m {
                        rq + (qb - 2 * m)
                    } else if qb < 4 * m {
                        rr + (qb - 3 * m)
                    } else if qb == 4 * m {
                        anc0 // window top bit
                    } else if qb == 4 * m + 1 {
                        anc1
                    } else {
                        anc2
                    }
                })
            }),
        }),
    }
}

/// Arbitrary in-place classical bijection — emulation only (no gate path).
/// This is the §3.1 "just evaluate the classical function directly" story
/// for functions nobody wants to synthesise reversibly.
pub fn apply_classical_fn(
    name: &str,
    regs: Vec<RegisterId>,
    f: impl Fn(&mut [u64]) + Send + Sync + 'static,
) -> ClassicalMap {
    ClassicalMap {
        name: name.to_string(),
        regs,
        f: Arc::new(f),
        kind: MapKind::InPlaceBijection,
        gate_impl: None,
    }
}

/// Arbitrary classical function into zero-initialised target registers —
/// emulation only.
pub fn apply_classical_fn_zero_targets(
    name: &str,
    regs: Vec<RegisterId>,
    n_targets: usize,
    f: impl Fn(&mut [u64]) + Send + Sync + 'static,
) -> ClassicalMap {
    ClassicalMap {
        name: name.to_string(),
        regs,
        f: Arc::new(f),
        kind: MapKind::ZeroInitializedTargets { n_targets },
        gate_impl: None,
    }
}

/// Phase oracle marking a single register value: `|v⟩ ↦ e^{iθ}|v⟩` iff
/// `v == value`. Carries a gate-level implementation (X-conjugated
/// multi-controlled phase), so both executors can run it — the Grover
/// oracle and diffusion reflection in one constructor.
pub fn mark_value(reg: RegisterId, value: u64, phase: f64) -> PhaseOracle {
    PhaseOracle {
        name: format!("mark[{value}]"),
        regs: vec![reg],
        predicate: Arc::new(move |v| v[0] == value),
        phase,
        gate_impl: Some(GateImpl {
            n_ancilla: 0,
            build: Arc::new(move |prog: &QuantumProgram| {
                let r = prog.register(reg);
                let bits = r.bits();
                let mut c = qcemu_sim::Circuit::new(prog.n_qubits());
                // X on the zero bits so "== value" becomes "all ones".
                for (j, &q) in bits.iter().enumerate() {
                    if (value >> j) & 1 == 0 {
                        c.push(Gate::x(q));
                    }
                }
                // Controlled phase on the last bit, controlled by the rest.
                let (&target, controls) = bits.split_last().expect("non-empty register");
                c.push(Gate::Unary {
                    op: GateOp::Phase(phase),
                    target,
                    controls: controls.to_vec(),
                });
                for (j, &q) in bits.iter().enumerate().rev() {
                    if (value >> j) & 1 == 0 {
                        c.push(Gate::x(q));
                    }
                }
                c
            }),
        }),
    }
}

/// Emulation-only phase oracle over an arbitrary predicate.
pub fn phase_if(
    name: &str,
    regs: Vec<RegisterId>,
    phase: f64,
    predicate: impl Fn(&[u64]) -> bool + Send + Sync + 'static,
) -> PhaseOracle {
    PhaseOracle {
        name: name.to_string(),
        regs,
        predicate: Arc::new(predicate),
        phase,
        gate_impl: None,
    }
}

/// Fixed-point evaluation of a mathematical function (paper §3.1's
/// "trigonometric functions … series expansion or iterative procedure with
/// many intermediate results"): maps `(x, y=0) ↦ (x, fix(f(x/2^m)))` where
/// `fix` quantises `f`'s value to `p` fractional bits, clamped to the
/// register range. Every intermediate the reversible implementation would
/// need simply does not exist — this op is emulation-only by design.
///
/// `x` is read as an unsigned fixed-point fraction in `[0, 1)` with `m`
/// bits; the result register `y` (width `p`) receives
/// `⌊clamp(f, 0, 1−2⁻ᵖ)·2ᵖ+½⌋`.
pub fn fixed_point_fn(
    x: RegisterId,
    y: RegisterId,
    m: usize,
    p: usize,
    name: &str,
    f: impl Fn(f64) -> f64 + Send + Sync + 'static,
) -> ClassicalMap {
    ClassicalMap {
        name: format!("fixpoint[{name}]"),
        regs: vec![x, y],
        f: Arc::new(move |v| {
            let arg = v[0] as f64 / (1u64 << m) as f64;
            let val = f(arg);
            let scale = (1u64 << p) as f64;
            let max = (1u64 << p) - 1;
            let q = (val * scale + 0.5).floor();
            v[1] = if q < 0.0 { 0 } else { (q as u64).min(max) };
        }),
        kind: MapKind::ZeroInitializedTargets { n_targets: 1 },
        gate_impl: None,
    }
}

/// `base^e mod modulus` by binary exponentiation in u128 intermediates.
pub fn pow_mod(base: u64, mut e: u64, modulus: u64) -> u64 {
    assert!(modulus > 0);
    let m = modulus as u128;
    let mut acc: u128 = 1 % m;
    let mut b = base as u128 % m;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    acc as u64
}

/// Modular multiplication map `y ← y·base^x mod N` for `y < N` (identity on
/// `y ≥ N`) — the modular-exponentiation step of Shor's algorithm, the
/// paper's §3.1 flagship example of an operation one emulates rather than
/// compiles to Toffolis. Requires `gcd(base, N) = 1` so the map is a
/// bijection. Emulation only.
pub fn modexp(x: RegisterId, y: RegisterId, base: u64, modulus: u64) -> ClassicalMap {
    assert!(modulus >= 1);
    assert_eq!(gcd(base % modulus, modulus), 1, "base must be a unit mod N");
    ClassicalMap {
        name: format!("modexp[{base}^x mod {modulus}]"),
        regs: vec![x, y],
        f: Arc::new(move |v| {
            if v[1] < modulus {
                let factor = pow_mod(base, v[0], modulus);
                v[1] = ((v[1] as u128 * factor as u128) % modulus as u128) as u64;
            }
        }),
        kind: MapKind::InPlaceBijection,
        gate_impl: None,
    }
}

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An empty circuit placeholder for tests that need *some* circuit value.
pub fn empty_circuit(n: usize) -> Circuit {
    Circuit::new(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Emulator, Executor, GateLevelSimulator};
    use crate::program::ProgramBuilder;
    use qcemu_sim::StateVector;

    #[test]
    fn pow_mod_basics() {
        assert_eq!(pow_mod(2, 10, 1000), 24);
        assert_eq!(pow_mod(7, 0, 15), 1);
        assert_eq!(pow_mod(7, 4, 15), 1); // order of 7 mod 15 is 4
        assert_eq!(pow_mod(3, 3, 5), 2);
        assert_eq!(pow_mod(0, 5, 7), 0);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 15), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn add_map_agrees_between_paths() {
        let m = 3;
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        pb.set_constant(a, 5);
        pb.set_constant(b, 6);
        pb.classical(add(a, b, m));
        let prog = pb.build().unwrap();
        let init = StateVector::zero_state(prog.n_qubits());
        let sim = GateLevelSimulator::new().run(&prog, init.clone()).unwrap();
        let emu = Emulator::new().run(&prog, init).unwrap();
        assert!(sim.max_diff_up_to_phase(&emu) < 1e-12);
        // b = 5 + 6 mod 8 = 3.
        let dist = emu.register_distribution(&prog.register(b).bits());
        assert!((dist[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn divide_map_agrees_between_paths() {
        let m = 2;
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let q = pb.register("q", m);
        let r = pb.register("r", m);
        pb.hadamard_all(a);
        pb.set_constant(b, 2);
        pb.classical(divide(a, b, q, r, m));
        let prog = pb.build().unwrap();
        let init = StateVector::zero_state(prog.n_qubits());
        let sim = GateLevelSimulator::new().run(&prog, init.clone()).unwrap();
        let emu = Emulator::new().run(&prog, init).unwrap();
        assert!(
            sim.max_diff_up_to_phase(&emu) < 1e-10,
            "div sim vs emu: {}",
            sim.max_diff_up_to_phase(&emu)
        );
        // Check q = a/2, r = a%2 on every branch.
        let all: Vec<usize> = (0..prog.n_qubits()).collect();
        for (idx, p) in emu.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let av = idx & 3;
            let qv = (idx >> 4) & 3;
            let rv = (idx >> 6) & 3;
            assert_eq!(qv, av / 2);
            assert_eq!(rv, av % 2);
        }
    }

    #[test]
    fn modexp_is_bijective_and_correct() {
        // 7^x mod 15 on 3-bit x, 4-bit y starting at 1.
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 3);
        let y = pb.register("y", 4);
        pb.hadamard_all(x);
        pb.set_constant(y, 1);
        pb.classical(modexp(x, y, 7, 15));
        let prog = pb.build().unwrap();
        let out = Emulator::new()
            .run(&prog, StateVector::zero_state(prog.n_qubits()))
            .unwrap();
        let all: Vec<usize> = (0..7).collect();
        for (idx, p) in out.register_distribution(&all).iter().enumerate() {
            if *p < 1e-15 {
                continue;
            }
            let xv = (idx & 7) as u64;
            let yv = ((idx >> 3) & 15) as u64;
            assert_eq!(yv, pow_mod(7, xv, 15), "branch x={xv}");
        }
    }

    #[test]
    fn fixed_point_sine_on_superposition() {
        // sin(πx) over x ∈ [0,1): 5-bit argument, 6-bit result.
        let (m, p) = (5usize, 6usize);
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", m);
        let y = pb.register("y", p);
        pb.hadamard_all(x);
        pb.classical(fixed_point_fn(x, y, m, p, "sin", |t| {
            (std::f64::consts::PI * t).sin()
        }));
        let prog = pb.build().unwrap();
        let out = Emulator::new()
            .run(&prog, StateVector::zero_state(prog.n_qubits()))
            .unwrap();
        let all: Vec<usize> = (0..m + p).collect();
        let mut branches = 0;
        for (idx, pr) in out.register_distribution(&all).iter().enumerate() {
            if *pr < 1e-15 {
                continue;
            }
            branches += 1;
            let xv = (idx & ((1 << m) - 1)) as f64 / 32.0;
            let yv = (idx >> m) as u64;
            let expect = ((std::f64::consts::PI * xv).sin() * 64.0 + 0.5).floor() as u64;
            assert_eq!(yv, expect.min(63), "x = {xv}");
        }
        assert_eq!(branches, 32, "every x branch survives");
        assert!((out.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fixed_point_clamps_out_of_range_values() {
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 2);
        let y = pb.register("y", 3);
        pb.classical(fixed_point_fn(x, y, 2, 3, "big", |_| 7.5)); // ≫ 1
        let prog = pb.build().unwrap();
        let out = Emulator::new()
            .run(&prog, StateVector::zero_state(5))
            .unwrap();
        // y must clamp to 7 (the register maximum), not overflow.
        let ybits: Vec<usize> = (2..5).collect();
        let dist = out.register_distribution(&ybits);
        assert!((dist[7] - 1.0).abs() < 1e-12);
        // Negative values clamp to zero.
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 2);
        let y = pb.register("y", 3);
        pb.classical(fixed_point_fn(x, y, 2, 3, "neg", |_| -2.0));
        let prog = pb.build().unwrap();
        let out = Emulator::new()
            .run(&prog, StateVector::zero_state(5))
            .unwrap();
        let dist = out.register_distribution(&ybits);
        assert!((dist[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_point_requires_zero_target() {
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 2);
        let y = pb.register("y", 2);
        pb.set_constant(y, 1); // dirty target
        pb.classical(fixed_point_fn(x, y, 2, 2, "id", |t| t));
        let prog = pb.build().unwrap();
        let err = Emulator::new()
            .run(&prog, StateVector::zero_state(4))
            .unwrap_err();
        assert!(matches!(err, crate::EmuError::TargetNotZero { .. }));
    }

    #[test]
    #[should_panic(expected = "unit mod N")]
    fn modexp_rejects_non_unit_base() {
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 2);
        let y = pb.register("y", 4);
        let _ = modexp(x, y, 5, 15); // gcd(5, 15) = 5
    }
}

//! Measurement emulation (paper §3.4).
//!
//! "While a quantum computer will often have to repeat an algorithm many
//! times to get a (statistical) measurement with high enough accuracy, the
//! classical emulation of such repeatedly executed measurements can easily
//! be done in one step." This module packages that shortcut: exact
//! expectation values and register distributions in one pass, alongside
//! the shot-sampling estimator a hardware run would use — the speedup is
//! simply the shot count.

use qcemu_sim::{measure, StateVector};
use rand::Rng;

/// Side-by-side result of the exact (emulated) and sampled (simulated
/// hardware) estimate of one observable.
#[derive(Clone, Copy, Debug)]
pub struct ExpectationComparison {
    /// Exact value from the amplitudes (one pass).
    pub exact: f64,
    /// Shot-based estimate.
    pub sampled: f64,
    /// Number of shots used for the estimate.
    pub shots: usize,
    /// Absolute error of the sampled estimate.
    pub error: f64,
}

/// Computes `⟨Z_q⟩` exactly and by sampling, for benchmark/report purposes.
pub fn compare_expectation_z(
    state: &StateVector,
    qubit: usize,
    shots: usize,
    rng: &mut impl Rng,
) -> ExpectationComparison {
    let exact = measure::expectation_z(state, qubit);
    let sampled = measure::expectation_z_sampled(state, qubit, shots, rng);
    ExpectationComparison {
        exact,
        sampled,
        shots,
        error: (exact - sampled).abs(),
    }
}

/// Exact probability distribution over a register — what the emulator
/// returns "for free" while hardware would sample it shot by shot.
pub fn exact_register_distribution(state: &StateVector, bits: &[usize]) -> Vec<f64> {
    state.register_distribution(bits)
}

/// Empirical distribution over a register from `shots` samples.
pub fn sampled_register_distribution(
    state: &StateVector,
    bits: &[usize],
    shots: usize,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let mut hist = vec![0usize; 1usize << bits.len()];
    for s in measure::sample_shots(state, shots, rng) {
        hist[StateVector::register_value(s, bits)] += 1;
    }
    hist.into_iter().map(|c| c as f64 / shots as f64).collect()
}

/// Total variation distance between two distributions (test metric for
/// sampling convergence).
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p
        .iter()
        .zip(q.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcemu_sim::{Circuit, Gate};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_matches_sampled_within_statistical_error() {
        let mut sv = StateVector::zero_state(4);
        sv.apply(&Gate::ry(2, 0.8));
        let mut rng = StdRng::seed_from_u64(200);
        let cmp = compare_expectation_z(&sv, 2, 50_000, &mut rng);
        // σ ≈ 1/√shots ≈ 0.0045; allow 5σ.
        assert!(cmp.error < 0.025, "error {} too large", cmp.error);
        assert_eq!(cmp.shots, 50_000);
    }

    #[test]
    fn sampled_distribution_converges_to_exact() {
        let mut sv = StateVector::zero_state(3);
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).ry(2, 1.2);
        sv.apply_circuit(&c);
        let bits = [0usize, 1, 2];
        let exact = exact_register_distribution(&sv, &bits);
        let mut rng = StdRng::seed_from_u64(201);
        let sampled = sampled_register_distribution(&sv, &bits, 40_000, &mut rng);
        let tv = total_variation(&exact, &sampled);
        assert!(tv < 0.02, "total variation {tv}");
    }

    #[test]
    fn exact_distribution_is_free_of_sampling_noise() {
        // Two calls must agree bit-for-bit (no RNG involved).
        let mut sv = StateVector::uniform_superposition(5);
        sv.apply(&Gate::cphase(0, 4, 0.3));
        let a = exact_register_distribution(&sv, &[0, 4]);
        let b = exact_register_distribution(&sv, &[0, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn total_variation_properties() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-15);
        assert_eq!(total_variation(&p, &p), 0.0);
    }
}

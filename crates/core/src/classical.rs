//! Direct emulation of classical functions on the state vector (§3.1).
//!
//! A classical map over registers is, at the amplitude level, a permutation
//! of basis-state labels within each coset of the untouched qubits: the
//! emulator "can simply perform the described mapping directly" instead of
//! running the Toffoli network. The permutation table over the involved
//! registers' joint space is built once, validated for bijectivity, and
//! applied to every coset in parallel.

use crate::error::EmuError;
use crate::program::{
    ClassicalMap, MapKind, PhaseOracle, ProgramRegister, QuantumProgram, RotationOp,
};
use qcemu_linalg::{simd, C64};
use qcemu_sim::{BatchStateVector, StateVector};
use rayon::prelude::*;

/// Above this many involved bits the permutation table (2^k entries) is
/// considered too large to materialise; the map is then applied on the fly.
pub(crate) const TABLE_MAX_BITS: usize = 24;

/// Applies a classical map to the state (the §3.1 emulation shortcut).
pub fn apply_classical_map(
    state: &mut StateVector,
    program: &QuantumProgram,
    map: &ClassicalMap,
) -> Result<(), EmuError> {
    let regs: Vec<&ProgramRegister> = map.regs.iter().map(|&r| program.register(r)).collect();
    let k: usize = regs.iter().map(|r| r.len).sum();
    let n = state.n_qubits();

    // For zero-initialised-target maps, verify the support first.
    if let MapKind::ZeroInitializedTargets { n_targets } = map.kind {
        let targets = &regs[regs.len() - n_targets..];
        verify_zero_support(state, targets, &map.name)?;
    }

    if k <= TABLE_MAX_BITS {
        let table = build_permutation_table(&regs, map)?;
        apply_table(state, &regs, &table, n);
        Ok(())
    } else {
        apply_on_the_fly(state, &regs, map, n)
    }
}

/// Applies a classical-predicate phase oracle: one conditional scan over
/// the amplitudes (§3.1 applied to diagonal operators).
pub fn apply_phase_oracle(state: &mut StateVector, program: &QuantumProgram, oracle: &PhaseOracle) {
    let regs: Vec<&ProgramRegister> = oracle.regs.iter().map(|&r| program.register(r)).collect();
    let factor = qcemu_linalg::C64::cis(oracle.phase);
    let predicate = &oracle.predicate;
    state
        .amplitudes_mut()
        .par_iter_mut()
        .enumerate()
        .for_each(|(i, amp)| {
            if *amp == C64::ZERO {
                return;
            }
            let values: Vec<u64> = regs.iter().map(|r| r.value_of(i)).collect();
            if predicate(&values) {
                *amp *= factor;
            }
        });
}

/// Above this register width the per-value sin/cos table is not built
/// (2^bits entries; 20 bits = 16 MiB of coefficients).
pub(crate) const ROTATION_TABLE_MAX_BITS: usize = 20;

/// Precomputes `(sin, cos)` of `θ(x)/2` per register value — worthwhile
/// whenever every table entry serves at least two amplitude pairs, which
/// drops the closure calls and transcendentals from `2^{n−1}` (one per
/// pair) to `2^{|x|}` (one per value, the §3.1 evaluate-per-basis-value
/// discipline applied to the rotation angle).
fn half_angle_table(
    angle: &(dyn Fn(u64) -> f64 + Send + Sync),
    xbits: usize,
    half: usize,
) -> Option<Vec<(f64, f64)>> {
    if xbits > ROTATION_TABLE_MAX_BITS || (1usize << xbits) > half / 2 {
        return None;
    }
    Some(
        (0..1u64 << xbits)
            .map(|v| (angle(v) / 2.0).sin_cos())
            .collect(),
    )
}

/// Applies a register-controlled Ry rotation: for every amplitude pair
/// differing in the target bit, a 2×2 rotation by the classically computed
/// angle θ(x). One sweep over the state, like every other emulation
/// shortcut; when the control register is narrower than the pair space,
/// the angles are tabulated per register value first (see
/// `half_angle_table`).
pub fn apply_controlled_rotation(
    state: &mut StateVector,
    program: &QuantumProgram,
    op: &RotationOp,
) {
    let x = program.register(op.x).clone();
    let t_off = program.register(op.target).offset;
    let tbit = 1usize << t_off;
    let n = state.n_qubits();
    let half = 1usize << (n - 1);
    let low_mask = tbit - 1;
    let amps = state.amplitudes_mut();

    struct Ptr(*mut C64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(amps.as_mut_ptr());
    let angle = &op.angle;
    let table = half_angle_table(&**angle, x.len, half);

    (0..half).into_par_iter().for_each(|k| {
        let p = &ptr;
        let i0 = ((k & !low_mask) << 1) | (k & low_mask);
        let xv = x.value_of(i0);
        let (s, c) = match &table {
            Some(t) => t[xv as usize],
            None => (angle(xv) / 2.0).sin_cos(),
        };
        // SAFETY: k ↦ i0 is injective with the target bit clear, so the
        // (i0, i0|tbit) pairs are pairwise disjoint.
        unsafe {
            let a = &mut *p.0.add(i0);
            let b = &mut *p.0.add(i0 | tbit);
            let a0 = *a;
            let b0 = *b;
            *a = a0.scale(c) - b0.scale(s);
            *b = a0.scale(s) + b0.scale(c);
        }
    });
}

/// Batched twin of [`apply_controlled_rotation`]: one sweep over the pair
/// indices advances **every ensemble member** in the batch-major layout,
/// with no per-member de-interleave/re-interleave copies.
///
/// `program` supplies the register layout (identical across a
/// structure-matched batch); `ops[j]` supplies member `j`'s angle closure —
/// this is how a parameter sweep varies per member while the pair
/// enumeration, register decode, and parallel dispatch are paid once for
/// the whole ensemble. The per-`(x, member)` transcendentals are inherent
/// to the operation and match the sequential cost exactly.
///
/// # Panics
///
/// Panics if `ops.len() != state.batch()` or the qubit counts disagree.
pub fn apply_controlled_rotation_batch(
    state: &mut BatchStateVector,
    program: &QuantumProgram,
    ops: &[&RotationOp],
) {
    assert_eq!(ops.len(), state.batch(), "one RotationOp per batch member");
    assert!(
        state.n_qubits() >= program.n_qubits(),
        "batch narrower than the program"
    );
    let op0 = ops[0];
    let x = program.register(op0.x).clone();
    let t_off = program.register(op0.target).offset;
    let tbit = 1usize << t_off;
    let n = state.n_qubits();
    let half = 1usize << (n - 1);
    let low_mask = tbit - 1;
    let batch = state.batch();
    let amps = state.amplitudes_mut();

    struct Ptr(*mut C64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(amps.as_mut_ptr());

    // Tabulated fast path: coefficients per (value, member), duplicated
    // per f64 lane in batch-major order, so each pair index turns into
    // one vectorised [`simd::rotate_lanes`] call over the whole ensemble
    // — every member rotating by its own angle in the same instruction
    // stream.
    if x.len <= ROTATION_TABLE_MAX_BITS && (1usize << x.len) <= half / 2 {
        let lanes = 2 * batch;
        let values = 1usize << x.len;
        let mut cos = vec![0.0f64; values * lanes];
        let mut sin = vec![0.0f64; values * lanes];
        for (j, op) in ops.iter().enumerate() {
            for v in 0..values {
                let (s, c) = ((op.angle)(v as u64) / 2.0).sin_cos();
                let o = v * lanes + 2 * j;
                cos[o] = c;
                cos[o + 1] = c;
                sin[o] = s;
                sin[o + 1] = s;
            }
        }
        (0..half).into_par_iter().for_each(|k| {
            let p = &ptr;
            let i0 = ((k & !low_mask) << 1) | (k & low_mask);
            let xv = x.value_of(i0) as usize;
            // SAFETY: k ↦ i0 is injective with the target bit clear, so
            // the two batch runs are pairwise disjoint across k.
            unsafe {
                let lo = std::slice::from_raw_parts_mut(p.0.add(i0 * batch), batch);
                let hi = std::slice::from_raw_parts_mut(p.0.add((i0 | tbit) * batch), batch);
                let o = xv * lanes;
                simd::rotate_lanes(lo, hi, &cos[o..o + lanes], &sin[o..o + lanes]);
            }
        });
        return;
    }

    (0..half).into_par_iter().for_each(|k| {
        let p = &ptr;
        let i0 = ((k & !low_mask) << 1) | (k & low_mask);
        let xv = x.value_of(i0);
        let lo = i0 * batch;
        let hi = (i0 | tbit) * batch;
        for (j, op) in ops.iter().enumerate() {
            let theta = (op.angle)(xv);
            let (s, c) = (theta / 2.0).sin_cos();
            // SAFETY: k ↦ i0 is injective with the target bit clear, so the
            // (lo, hi) batch runs are pairwise disjoint across k; distinct
            // j index distinct lanes within a run.
            unsafe {
                let a = &mut *p.0.add(lo + j);
                let b = &mut *p.0.add(hi + j);
                let a0 = *a;
                let b0 = *b;
                *a = a0.scale(c) - b0.scale(s);
                *b = a0.scale(s) + b0.scale(c);
            }
        }
    });
}

/// All amplitude weight must sit on basis states where every target
/// register reads 0.
fn verify_zero_support(
    state: &StateVector,
    targets: &[&ProgramRegister],
    op_name: &str,
) -> Result<(), EmuError> {
    const TOL: f64 = 1e-12;
    for (i, amp) in state.amplitudes().iter().enumerate() {
        if amp.norm_sqr() <= TOL {
            continue;
        }
        for t in targets {
            if t.value_of(i) != 0 {
                return Err(EmuError::TargetNotZero {
                    op: op_name.to_string(),
                    register: t.name.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Packs the per-register values of basis index `i` into the compact
/// `k`-bit label (register 0 in the lowest bits).
#[inline]
fn pack(regs: &[&ProgramRegister], i: usize) -> u64 {
    let mut packed = 0u64;
    let mut shift = 0u32;
    for r in regs {
        packed |= r.value_of(i) << shift;
        shift += r.len as u32;
    }
    packed
}

/// Expands a packed label to register-value scatter bits of a basis index.
#[inline]
fn unpack_to_index(regs: &[&ProgramRegister], packed: u64) -> usize {
    let mut idx = 0usize;
    let mut shift = 0u32;
    for r in regs {
        let v = (packed >> shift) & r.mask();
        idx |= (v as usize) << r.offset;
        shift += r.len as u32;
    }
    idx
}

/// Evaluates the map on one packed label, reusing `values` as scratch.
fn eval_map_scratch(
    regs: &[&ProgramRegister],
    map: &ClassicalMap,
    packed: u64,
    values: &mut Vec<u64>,
) -> u64 {
    values.clear();
    let mut shift = 0u32;
    for r in regs {
        values.push((packed >> shift) & r.mask());
        shift += r.len as u32;
    }
    (map.f)(values);
    let mut out = 0u64;
    let mut shift = 0u32;
    for (r, v) in regs.iter().zip(values.iter()) {
        assert!(
            *v <= r.mask(),
            "classical map '{}' wrote {v} into {}-bit register '{}'",
            map.name,
            r.len,
            r.name
        );
        out |= v << shift;
        shift += r.len as u32;
    }
    out
}

/// Builds and validates the 2^k permutation table.
fn build_permutation_table(
    regs: &[&ProgramRegister],
    map: &ClassicalMap,
) -> Result<Vec<u32>, EmuError> {
    let k: usize = regs.iter().map(|r| r.len).sum();
    let size = 1usize << k;
    // Parallel fill (rayon), then a serial O(2^k) bijectivity sweep.
    let mut table = vec![0u32; size];
    table
        .par_chunks_mut(1 << 12.min(k))
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            let base = (chunk_idx * chunk.len()) as u64;
            let mut scratch = Vec::with_capacity(regs.len());
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = eval_map_scratch(regs, map, base + off as u64, &mut scratch) as u32;
            }
        });
    if map.kind == MapKind::InPlaceBijection {
        let mut hit = vec![false; size];
        for &out in &table {
            let out_idx = out as usize;
            if hit[out_idx] {
                return Err(EmuError::NotReversible {
                    op: map.name.clone(),
                    collision: out as u64,
                });
            }
            hit[out_idx] = true;
        }
    }
    // For zero-target maps, check injectivity on the supported rows.
    if let MapKind::ZeroInitializedTargets { n_targets } = map.kind {
        let input_bits: usize = regs[..regs.len() - n_targets].iter().map(|r| r.len).sum();
        let mut seen = vec![false; size];
        for packed in 0..(1u64 << input_bits) {
            let out = table[packed as usize] as usize;
            if seen[out] {
                return Err(EmuError::NotReversible {
                    op: map.name.clone(),
                    collision: out as u64,
                });
            }
            seen[out] = true;
        }
    }
    Ok(table)
}

/// Applies the permutation table to every coset of the untouched qubits.
fn apply_table(state: &mut StateVector, regs: &[&ProgramRegister], table: &[u32], n: usize) {
    let reg_mask: usize = regs
        .iter()
        .flat_map(|r| r.bits())
        .fold(0usize, |m, q| m | (1usize << q));
    let _ = n;
    let amps = std::mem::take(state.amplitudes_mut());

    // Forward scatter: out[coset | π(v)] = in[coset | v]. Disjointness: π is
    // a bijection on the register subspace and cosets are disjoint.
    let mut result = vec![C64::ZERO; amps.len()];
    struct Ptr(*mut C64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(result.as_mut_ptr());

    let reg_list: Vec<(usize, usize)> = regs.iter().map(|r| (r.offset, r.len)).collect();
    amps.par_iter().enumerate().for_each(|(i, amp)| {
        let p = &ptr;
        if *amp == C64::ZERO {
            // Still must map structure for zero entries? Zero in, zero out —
            // result is pre-zeroed, skip.
            return;
        }
        let packed = pack_by_list(&reg_list, i);
        let mapped = table[packed as usize] as u64;
        let j = (i & !reg_mask) | unpack_by_list(&reg_list, mapped);
        // SAFETY: i ↦ j is injective on the support (π bijective per coset,
        // cosets disjoint), so writes are disjoint.
        unsafe {
            *p.0.add(j) = *amp;
        }
    });
    *state.amplitudes_mut() = result;
}

#[inline]
fn pack_by_list(regs: &[(usize, usize)], i: usize) -> u64 {
    let mut packed = 0u64;
    let mut shift = 0u32;
    for &(offset, len) in regs {
        let mask = (1u64 << len) - 1;
        packed |= (((i >> offset) as u64) & mask) << shift;
        shift += len as u32;
    }
    packed
}

#[inline]
fn unpack_by_list(regs: &[(usize, usize)], packed: u64) -> usize {
    let mut idx = 0usize;
    let mut shift = 0u32;
    for &(offset, len) in regs {
        let mask = (1u64 << len) - 1;
        idx |= (((packed >> shift) & mask) as usize) << offset;
        shift += len as u32;
    }
    idx
}

/// Table-free path for very wide register tuples: evaluate `f` per
/// supported amplitude; validate bijectivity by norm conservation.
fn apply_on_the_fly(
    state: &mut StateVector,
    regs: &[&ProgramRegister],
    map: &ClassicalMap,
    _n: usize,
) -> Result<(), EmuError> {
    let reg_mask: usize = regs
        .iter()
        .flat_map(|r| r.bits())
        .fold(0usize, |m, q| m | (1usize << q));
    let norm_before = state.norm();
    let amps = std::mem::take(state.amplitudes_mut());
    let mut result = vec![C64::ZERO; amps.len()];
    struct Ptr(*mut C64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(result.as_mut_ptr());

    amps.par_iter().enumerate().for_each(|(i, amp)| {
        let p = &ptr;
        if *amp == C64::ZERO {
            return;
        }
        let packed = pack(regs, i);
        let mut scratch = Vec::with_capacity(regs.len());
        let mapped = eval_map_scratch(regs, map, packed, &mut scratch);
        let j = (i & !reg_mask) | unpack_to_index(regs, mapped);
        // SAFETY: assuming f is the bijection the caller promised, writes
        // are disjoint; violations are caught by the norm check below.
        unsafe {
            *p.0.add(j) = *amp;
        }
    });
    *state.amplitudes_mut() = result;
    let norm_after = state.norm();
    if (norm_before - norm_after).abs() > 1e-6 {
        return Err(EmuError::NotReversible {
            op: map.name.clone(),
            collision: 0,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GateImpl, ProgramBuilder};
    use std::sync::Arc;

    fn two_reg_program(
        m: usize,
    ) -> (
        QuantumProgram,
        crate::program::RegisterId,
        crate::program::RegisterId,
    ) {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        (pb.build().unwrap(), a, b)
    }

    #[test]
    fn increment_map_permutes_basis_states() {
        let (prog, a, _b) = two_reg_program(3);
        let map = ClassicalMap {
            name: "inc".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] = (v[0] + 1) % 8),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        let mut sv = StateVector::basis_state(6, 0b000_101); // a = 5
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert_eq!(sv.probability(0b000_110), 1.0); // a = 6
    }

    #[test]
    fn swap_registers_map() {
        let (prog, a, b) = two_reg_program(2);
        let map = ClassicalMap {
            name: "swap".into(),
            regs: vec![a, b],
            f: Arc::new(|v| v.swap(0, 1)),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        // a = 3, b = 1 → a = 1, b = 3.
        let mut sv = StateVector::basis_state(4, 0b01_11);
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert_eq!(sv.probability(0b11_01), 1.0);
    }

    #[test]
    fn map_on_superposition_preserves_norm_and_moves_all_branches() {
        let (prog, a, _b) = two_reg_program(3);
        let map = ClassicalMap {
            name: "xor5".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] ^= 5),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        let mut sv = StateVector::uniform_superposition(6);
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        // XOR is an involution: applying twice returns to uniform.
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        let expect = StateVector::uniform_superposition(6);
        assert!(sv.max_diff_up_to_phase(&expect) < 1e-12);
    }

    #[test]
    fn non_bijective_map_is_rejected() {
        let (prog, a, _b) = two_reg_program(3);
        let map = ClassicalMap {
            name: "collapse".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] = 0), // everything → 0
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        let mut sv = StateVector::uniform_superposition(6);
        let err = apply_classical_map(&mut sv, &prog, &map).unwrap_err();
        assert!(matches!(err, EmuError::NotReversible { .. }));
    }

    #[test]
    fn zero_target_map_requires_zero_support() {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 2);
        let t = pb.register("t", 2);
        let prog = pb.build().unwrap();
        let map = ClassicalMap {
            name: "square".into(),
            regs: vec![a, t],
            f: Arc::new(|v| v[1] = (v[0] * v[0]) % 4),
            kind: MapKind::ZeroInitializedTargets { n_targets: 1 },
            gate_impl: None,
        };
        // Valid: t = 0.
        let mut sv = StateVector::basis_state(4, 0b00_11); // a = 3, t = 0
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert_eq!(sv.probability(0b01_11), 1.0); // t = 9 mod 4 = 1

        // Invalid: t ≠ 0.
        let mut sv = StateVector::basis_state(4, 0b10_00);
        let err = apply_classical_map(&mut sv, &prog, &map).unwrap_err();
        assert!(matches!(err, EmuError::TargetNotZero { .. }));
    }

    #[test]
    fn untouched_registers_are_untouched() {
        let (prog, a, b) = two_reg_program(3);
        let _ = b;
        let map = ClassicalMap {
            name: "inc".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] = (v[0] + 3) % 8),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        // b carries superposition; a increments per branch.
        let mut sv = StateVector::zero_state(6);
        sv.apply(&qcemu_sim::Gate::h(3)); // b bit 0
        sv.apply(&qcemu_sim::Gate::h(5)); // b bit 2
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        let dist = sv.register_distribution(&prog.register(a).bits());
        assert!((dist[3] - 1.0).abs() < 1e-12, "a = 0 + 3 in every branch");
        let distb = sv.register_distribution(&prog.register(b).bits());
        let expect = [0.25, 0.25, 0.0, 0.0, 0.25, 0.25, 0.0, 0.0];
        for (v, e) in distb.iter().zip(expect.iter()) {
            assert!((v - e).abs() < 1e-12);
        }
    }

    #[test]
    fn map_with_gate_impl_unused_by_emulator() {
        // gate_impl presence must not change emulation behaviour.
        let (prog, a, _b) = two_reg_program(2);
        let map = ClassicalMap {
            name: "inc".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] = (v[0] + 1) % 4),
            kind: MapKind::InPlaceBijection,
            gate_impl: Some(GateImpl {
                n_ancilla: 0,
                build: Arc::new(|_| qcemu_sim::Circuit::new(4)),
            }),
        };
        let mut sv = StateVector::basis_state(4, 0);
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert_eq!(sv.probability(1), 1.0);
    }

    #[test]
    fn controlled_rotation_matches_gate_expansion() {
        use crate::executor::{Emulator, Executor, GateLevelSimulator};
        use crate::program::RotationOp;
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 3);
        let t = pb.register("t", 1);
        pb.hadamard_all(x);
        pb.rotation(RotationOp {
            name: "enc".into(),
            x,
            target: t,
            angle: Arc::new(|v| 0.2 + 0.37 * v as f64),
            gate_impl: None,
        });
        let prog = pb.build().unwrap();
        let init = StateVector::zero_state(prog.n_qubits());
        let emu = Emulator::new().run(&prog, init.clone()).unwrap();
        let sim = GateLevelSimulator::new().run(&prog, init.clone()).unwrap();
        let elem = GateLevelSimulator::elementary().run(&prog, init).unwrap();
        assert!(emu.max_diff_up_to_phase(&sim) < 1e-10, "emu vs sim");
        assert!(emu.max_diff_up_to_phase(&elem) < 1e-9, "emu vs elementary");
        assert!((emu.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_rotation_probability_encodes_function() {
        use crate::executor::{Emulator, Executor};
        use crate::program::RotationOp;
        // θ(x) = 2·asin(√(x/8)): P(t=1 | x) must equal x/8.
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 3);
        let t = pb.register("t", 1);
        pb.hadamard_all(x);
        pb.rotation(RotationOp {
            name: "enc".into(),
            x,
            target: t,
            angle: Arc::new(|v| 2.0 * ((v as f64 / 8.0).sqrt()).asin()),
            gate_impl: None,
        });
        let prog = pb.build().unwrap();
        let out = Emulator::new()
            .run(&prog, StateVector::zero_state(4))
            .unwrap();
        // Joint distribution over (x, t).
        let all: Vec<usize> = (0..4).collect();
        let dist = out.register_distribution(&all);
        for xv in 0..8usize {
            let p1 = dist[xv | 8];
            let expect = (xv as f64 / 8.0) / 8.0; // P(x)·P(1|x)
            assert!((p1 - expect).abs() < 1e-10, "x = {xv}: {p1} vs {expect}");
        }
        // Mean of f(x) = x/8 over uniform x = 35/80.
        let p_one = qcemu_sim::prob_qubit_one(&out, 3);
        assert!((p_one - 35.0 / 80.0).abs() < 1e-10);
    }

    #[test]
    fn rotation_validation_rejects_wide_target() {
        use crate::program::RotationOp;
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 2);
        let t = pb.register("t", 2); // too wide
        pb.rotation(RotationOp {
            name: "bad".into(),
            x,
            target: t,
            angle: Arc::new(|_| 0.0),
            gate_impl: None,
        });
        assert!(pb.build().is_err());
    }

    #[test]
    fn phase_oracle_emulation_matches_gates() {
        use crate::executor::{Emulator, Executor, GateLevelSimulator};
        use crate::stdops::mark_value;
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 4);
        pb.hadamard_all(x);
        pb.phase_oracle(mark_value(x, 11, 1.234));
        let prog = pb.build().unwrap();
        let init = StateVector::zero_state(4);
        let emu = Emulator::new().run(&prog, init.clone()).unwrap();
        let sim = GateLevelSimulator::new().run(&prog, init).unwrap();
        assert!(emu.max_diff_up_to_phase(&sim) < 1e-12);
        // The marked amplitude carries the phase; check directly.
        let a = emu.amplitudes()[11];
        assert!((a.arg() - 1.234).abs() < 1e-10);
    }

    #[test]
    fn emulation_only_phase_oracle_fails_simulation() {
        use crate::executor::{Executor, GateLevelSimulator};
        use crate::stdops::phase_if;
        let mut pb = ProgramBuilder::new();
        let x = pb.register("x", 3);
        pb.phase_oracle(phase_if("parity", vec![x], std::f64::consts::PI, |v| {
            v[0].count_ones() % 2 == 1
        }));
        let prog = pb.build().unwrap();
        assert!(matches!(
            GateLevelSimulator::new().run(&prog, StateVector::zero_state(3)),
            Err(EmuError::NoGateImplementation { .. })
        ));
    }

    #[test]
    fn wide_map_on_the_fly_path() {
        // 26 involved bits > TABLE_MAX_BITS → on-the-fly branch. Use a
        // small state but a wide *register tuple* is impossible… so instead
        // force the path with a 26-qubit register on a 26-qubit state but
        // tiny support.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", 26);
        let prog = pb.build().unwrap();
        let map = ClassicalMap {
            name: "bigxor".into(),
            regs: vec![a],
            f: Arc::new(|v| v[0] ^= 0x2AAAAAA),
            kind: MapKind::InPlaceBijection,
            gate_impl: None,
        };
        let mut sv = StateVector::basis_state(26, 1);
        apply_classical_map(&mut sv, &prog, &map).unwrap();
        assert_eq!(sv.probability(1 ^ 0x2AAAAAA), 1.0);
    }
}

//! Error types for program construction and execution.

use std::fmt;

/// Errors raised while building or executing a quantum program.
#[derive(Debug, Clone, PartialEq)]
pub enum EmuError {
    /// A classical map was not a bijection on its register tuple space.
    NotReversible {
        /// Operation name.
        op: String,
        /// A colliding output value (two inputs mapped here).
        collision: u64,
    },
    /// A zero-initialised-target operation found amplitude weight on a
    /// non-zero target register value.
    TargetNotZero {
        /// Operation name.
        op: String,
        /// Register name.
        register: String,
    },
    /// The gate-level path was requested for an op that has no gate-level
    /// implementation (emulation-only classical function).
    NoGateImplementation {
        /// Operation name.
        op: String,
    },
    /// The QPE operator circuit is not unitary / wrong size.
    BadUnitary {
        /// Explanation.
        reason: String,
    },
    /// Register arithmetic (overlap, width mismatch, unknown id).
    BadRegister {
        /// Explanation.
        reason: String,
    },
    /// The initial state has the wrong dimension for the program.
    DimensionMismatch {
        /// Expected qubit count.
        expected: usize,
        /// Provided qubit count.
        got: usize,
    },
    /// Ancilla qubits were not restored to |0⟩ by the gate-level run —
    /// indicates a broken reversible circuit.
    AncillaNotClean {
        /// Residual probability mass on non-zero ancilla values.
        leaked: f64,
    },
    /// Eigendecomposition failure (propagated from the linear algebra).
    Eigensolver(String),
    /// An execution plan was run against a program it was not lowered
    /// from (op count or op identity disagrees).
    PlanMismatch {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::NotReversible { op, collision } => {
                write!(
                    f,
                    "classical map '{op}' is not reversible (collision at output {collision})"
                )
            }
            EmuError::TargetNotZero { op, register } => {
                write!(
                    f,
                    "operation '{op}' requires register '{register}' to be |0⟩"
                )
            }
            EmuError::NoGateImplementation { op } => {
                write!(
                    f,
                    "operation '{op}' has no gate-level implementation (emulation only)"
                )
            }
            EmuError::BadUnitary { reason } => write!(f, "bad unitary: {reason}"),
            EmuError::BadRegister { reason } => write!(f, "bad register: {reason}"),
            EmuError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "initial state has {got} qubits, program needs {expected}"
                )
            }
            EmuError::AncillaNotClean { leaked } => {
                write!(
                    f,
                    "ancillas not restored to |0⟩ (leaked probability {leaked:.3e})"
                )
            }
            EmuError::Eigensolver(msg) => write!(f, "eigensolver: {msg}"),
            EmuError::PlanMismatch { reason } => {
                write!(f, "plan does not match program: {reason}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmuError::NotReversible {
            op: "mystery".into(),
            collision: 7,
        };
        assert!(e.to_string().contains("mystery"));
        assert!(e.to_string().contains('7'));

        let e = EmuError::DimensionMismatch {
            expected: 8,
            got: 5,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('5'));
    }
}

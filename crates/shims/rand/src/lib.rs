//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The qcemu build environment has no crates.io access, so this in-tree
//! crate provides the (deliberately small) subset of the `rand` 0.8 API the
//! workspace actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<u64>()`, `gen::<f64>()`, `gen_bool`
//!   and `gen_range` over integer/float ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//!   SplitMix64 (the reference construction from Blackman & Vigna,
//!   "Scrambled linear pseudorandom number generators", 2019);
//! * [`thread_rng`] / [`rngs::ThreadRng`] — a per-thread `StdRng` seeded
//!   from the system clock and a per-thread counter.
//!
//! It is **not** the real `rand` crate: streams differ, so seeded tests are
//! reproducible against this shim only. That is exactly what the qcemu test
//! suite needs (determinism within a build), and nothing else in the
//! workspace depends on rand-compatible streams.

use std::cell::RefCell;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`] (the shim's stand-in
/// for `rand::distributions::Standard`). For `f64` the sample is uniform in
/// `[0, 1)` with 53 bits of precision.
pub trait Standard: Sized {
    /// Draws one uniform sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`u64`, `f64`, `bool`, …).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from an integer or float range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Pre-packaged generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator: the shim's stand-in for `rand::rngs::StdRng`.
    ///
    /// Seeding runs the 64-bit seed through SplitMix64 to fill the four
    /// lanes of state, as recommended by the algorithm's authors.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Per-thread generator returned by [`crate::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new(inner: StdRng) -> Self {
            ThreadRng { inner }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

thread_local! {
    static THREAD_RNG_SEQ: RefCell<u64> = const { RefCell::new(0) };
}

/// Returns a fresh per-thread generator seeded from the system clock, the
/// thread id hash, and a per-thread call counter (unlike the real
/// `thread_rng`, each call returns an independent owned generator).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::hash::{Hash, Hasher};
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    let seq = THREAD_RNG_SEQ.with(|c| {
        let mut c = c.borrow_mut();
        *c += 1;
        *c
    });
    let seed = nanos ^ hasher.finish().rotate_left(17) ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D);
    rngs::ThreadRng::new(<rngs::StdRng as SeedableRng>::seed_from_u64(seed))
}

/// Top-level convenience: one sample from a fresh [`thread_rng`].
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

/// `rand::prelude` stand-in.
pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }
}

//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The qcemu build environment has no crates.io access, so this in-tree
//! crate reproduces the subset of the proptest DSL that
//! `tests/properties.rs` uses:
//!
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   integer/float [`Range`]s and tuples of strategies;
//! * [`collection::vec`] for random-length vectors;
//! * the [`proptest!`] macro (`fn name(pat in strategy, …) { … }` with an
//!   optional `#![proptest_config(…)]` header), plus [`prop_assert!`] /
//!   [`prop_assert_eq!`];
//! * [`test_runner::Config`] (aliased [`prelude::ProptestConfig`]) with
//!   `with_cases`.
//!
//! Differences from real proptest, deliberate for a dependency-free build:
//! no shrinking (a failing case reports its values but is not minimised),
//! and the per-test RNG is seeded deterministically from the test name, so
//! failures reproduce exactly under `cargo test`.

use std::ops::Range;

/// Deterministic test runner state: configuration and RNG.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Run configuration (only the case count is modelled).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property is checked with.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// RNG handed to strategies; deterministic per test name.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds the RNG from an FNV-1a hash of `name`, so every test has
        /// its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`] trait and adapters.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of type `Value`.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (no shrinking in the shim).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// Constant-value strategy (`Just`).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a random length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec<S::Value>` whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (a subset of real proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..10, v in collection::vec(0usize..4, 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let mut inputs = ::std::string::String::new();
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $(
                                let sampled =
                                    $crate::strategy::Strategy::sample(&($strat), &mut rng);
                                {
                                    use ::std::fmt::Write as _;
                                    let sep = if inputs.is_empty() { "" } else { ", " };
                                    let _ = ::std::write!(
                                        inputs,
                                        "{}{} = {:?}",
                                        sep,
                                        stringify!($arg),
                                        &sampled
                                    );
                                }
                                let $arg = sampled;
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest property `{}` failed on case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            inputs,
                            msg
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` that fails the current proptest case with a message instead of
/// panicking directly (must be used inside [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {} = {:?}, {} = {:?}",
                stringify!($left),
                l,
                stringify!($right),
                r
            ));
        }
    }};
}

/// Convenience re-export so `proptest::sample`-style paths resolve.
pub use strategy::Strategy;

/// Samples `strategy` once with a fresh deterministic RNG — handy for
/// doc-tests and debugging strategies outside [`proptest!`].
pub fn sample_once<S: Strategy>(strategy: &S, name: &str) -> S::Value {
    let mut rng = test_runner::TestRng::deterministic(name);
    strategy.sample(&mut rng)
}

/// Re-export of the range type strategies are implemented over.
pub type SizeRange = Range<usize>;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0, z in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn tuples_and_maps_compose(v in collection::vec((0u64..4, 0u64..4).prop_map(|(a, b)| a + b), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for x in &v {
                prop_assert!(*x <= 6);
            }
        }

        #[test]
        fn eq_assertion_works(a in 0u64..100) {
            prop_assert_eq!(a + 1, 1 + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        // No #[test] attribute: generated as a plain fn, invoked (and
        // expected to panic) by `failure_message_includes_inputs`.
        fn always_fails(x in 0u64..4, y in 10u64..14) {
            prop_assert!(x + y > 100, "sum too small");
        }
    }

    #[test]
    fn failure_message_includes_inputs() {
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap();
        assert!(msg.contains("x = "), "missing x in: {msg}");
        assert!(msg.contains("y = "), "missing y in: {msg}");
        assert!(msg.contains("sum too small"), "missing message in: {msg}");
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let s = 0u64..1_000_000;
        let a = super::sample_once(&s, "x");
        let b = super::sample_once(&s, "x");
        assert_eq!(a, b);
    }
}

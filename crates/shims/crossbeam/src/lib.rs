//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The qcemu build environment has no crates.io access; the only crossbeam
//! feature the workspace uses is `crossbeam::channel::{unbounded, Sender,
//! Receiver}` for the virtual cluster's rank-to-rank mailboxes
//! (`qcemu_cluster::comm`). Those are multi-producer single-consumer with
//! one owned `Receiver` per rank thread, which `std::sync::mpsc` models
//! exactly, so this shim is a thin re-export.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded FIFO channel (`std::sync::mpsc::channel`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn unbounded_channel_ferries_messages_across_threads() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
            tx.send(8).unwrap();
        });
        h.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }
}

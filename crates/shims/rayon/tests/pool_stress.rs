//! Stress and semantics suite for the persistent worker pool behind the
//! rayon shim.
//!
//! Everything here must hold at **any** pool size: CI runs this suite
//! under `QCEMU_THREADS=4` (oversubscribed on a single-core runner —
//! deliberately, to exercise parking, condvar handoff and straggler
//! rebalancing) and again under `QCEMU_THREADS=1` (fully serial). The
//! pool size is decided once per process from the environment, so the
//! tests assert invariants, not specific interleavings.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn full_coverage_under_repeated_dispatch() {
    // Many back-to-back jobs through the same pool: every index covered
    // exactly once per job, no cross-job leakage.
    for len in [2usize, 3, 64, 1000, 1 << 14] {
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        (0..len).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} of len {len}");
        }
    }
}

#[test]
fn concurrent_top_level_dispatches() {
    // Daemon shape: several OS threads each dispatching jobs into the
    // one process-wide pool at the same time. Every job must complete
    // with full coverage regardless of queue interleaving.
    let total = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..50 {
                    let local = AtomicUsize::new(0);
                    (0..512).into_par_iter().for_each(|_| {
                        local.fetch_add(1, Ordering::Relaxed);
                    });
                    assert_eq!(local.load(Ordering::Relaxed), 512);
                    total.fetch_add(512, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 512);
}

#[test]
fn nested_join_inside_par_iter_divides_budget() {
    // A join inside a parallel body sees the divided budget, and the
    // division nests: with B outer threads each body gets ⌈B/workers⌉,
    // and each join arm half of that — never more than the install cap.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let max_seen = AtomicUsize::new(0);
    let sum = AtomicUsize::new(0);
    pool.install(|| {
        (0..8).into_par_iter().for_each(|i| {
            let body_budget = rayon::current_num_threads();
            assert!(
                body_budget <= 4,
                "body budget {body_budget} exceeds install cap"
            );
            let (a, b) = rayon::join(
                || {
                    max_seen.fetch_max(rayon::current_num_threads(), Ordering::Relaxed);
                    i
                },
                || {
                    max_seen.fetch_max(rayon::current_num_threads(), Ordering::Relaxed);
                    i * 2
                },
            );
            sum.fetch_add(a + b, Ordering::Relaxed);
        });
    });
    assert_eq!(sum.load(Ordering::Relaxed), (0..8).map(|i| 3 * i).sum());
    // 8 participants under a 4-thread install → budget 1 per body; join
    // arms inherit ≤ 1. (With fewer live workers the budget can only be
    // coarser, never above the cap.)
    assert!(max_seen.load(Ordering::Relaxed) <= 4);
}

#[test]
fn install_scopes_are_observed_inside_parallel_bodies() {
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let seen = Mutex::new(Vec::new());
    one.install(|| {
        (0..16).into_par_iter().for_each(|_| {
            seen.lock().unwrap().push(rayon::current_num_threads());
        });
    });
    assert!(
        seen.lock().unwrap().iter().all(|&t| t == 1),
        "a 1-thread install must run every body serially"
    );
    // And the scope ends with the install.
    assert!(rayon::current_num_threads() >= 1);
}

#[test]
fn panic_in_one_block_propagates_and_pool_is_reusable() {
    for round in 0..3 {
        let caught = std::panic::catch_unwind(|| {
            (0..4096).into_par_iter().for_each(|i| {
                if i == 2048 + round {
                    panic!("round {round}");
                }
            });
        });
        let payload = caught.expect_err("panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, format!("round {round}"), "payload must survive");
        // Immediately reuse the pool: no poisoned lock, full coverage.
        let count = AtomicUsize::new(0);
        (0..4096).into_par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4096);
    }
}

#[test]
fn mutable_adapters_preserve_disjoint_block_contract() {
    // par_iter_mut / par_chunks_mut reconstruct &mut sub-slices from raw
    // parts; verify every element is written once with its own value,
    // under enough load for multi-worker claims to interleave.
    let mut v = vec![0u64; 1 << 14];
    v.par_iter_mut().enumerate().for_each(|(i, x)| {
        assert_eq!(*x, 0);
        *x = i as u64 + 1;
    });
    assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));

    let mut w = vec![0u64; 1 << 14];
    w.par_chunks_mut(97).enumerate().for_each(|(ci, chunk)| {
        for x in chunk.iter_mut() {
            assert_eq!(*x, 0);
            *x = ci as u64 + 1;
        }
    });
    for (i, &x) in w.iter().enumerate() {
        assert_eq!(x, (i / 97) as u64 + 1, "element {i}");
    }
}

#[test]
fn map_collect_is_ordered_under_load() {
    for _ in 0..20 {
        let v: Vec<u64> = (0..10_000)
            .into_par_iter()
            .map(|i| (i * i) as u64)
            .collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i * i) as u64));
    }
}

#[test]
fn stats_count_dispatches_and_stay_monotonic() {
    let before = rayon::pool::stats();
    // At least one of these goes through the dispatch path whenever the
    // pool has workers; with QCEMU_THREADS=1 the counters legitimately
    // stay flat — monotonicity is the invariant, not growth.
    for _ in 0..10 {
        (0..4096).into_par_iter().for_each(|i| {
            std::hint::black_box(i);
        });
    }
    let after = rayon::pool::stats();
    assert!(after.tasks_dispatched >= before.tasks_dispatched);
    assert!(after.blocks_stolen >= before.blocks_stolen);
    assert!(after.parks >= before.parks);
    assert!(after.wakeups >= before.wakeups);
    assert!(after.peak_workers >= before.peak_workers);
    assert!(after.threads >= 1);
    if after.threads > 1 {
        assert!(
            after.tasks_dispatched > before.tasks_dispatched,
            "a multi-thread pool must dispatch these jobs"
        );
    }
}

#[test]
fn serial_equivalence_any_thread_count() {
    // The parallel adapters must compute exactly what the serial loop
    // computes — at QCEMU_THREADS=1 this pins the fully-serial path,
    // at higher counts it is the correctness oracle for handoff.
    let serial: u64 = (0..100_000u64).map(|i| i.wrapping_mul(2654435761)).sum();
    let total = std::sync::atomic::AtomicU64::new(0);
    (0..100_000).into_par_iter().for_each(|i| {
        total.fetch_add((i as u64).wrapping_mul(2654435761), Ordering::Relaxed);
    });
    assert_eq!(total.load(Ordering::Relaxed), serial);
}

#[test]
fn forced_spawn_per_call_still_covers_everything() {
    // The legacy scoped-spawn path stays available as the bench
    // baseline and the nested-call fallback; it must remain correct.
    rayon::pool::force_spawn_per_call(true);
    let count = AtomicUsize::new(0);
    (0..10_000).into_par_iter().for_each(|_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    rayon::pool::force_spawn_per_call(false);
    assert_eq!(count.load(Ordering::Relaxed), 10_000);
}

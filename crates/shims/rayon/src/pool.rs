//! Persistent worker pool behind the shim's parallel iterators.
//!
//! Every parallel call used to pay `std::thread::scope` spawn + join —
//! acceptable for one-off sweeps, ruinous for a depth-d circuit that
//! dispatches d kernels per run. This module replaces that with a
//! process-wide pool started lazily on the first above-threshold
//! dispatch:
//!
//! * **Workers park on a condvar** (after a brief spin so back-to-back
//!   kernel dispatches — the per-gate hot path — never pay a futex
//!   round trip), and are handed work through a small job queue.
//! * **Dynamic chunk handoff**: each job owns an atomic range splitter
//!   over `0..len`. Participants (the caller *and* the pool workers)
//!   repeatedly claim contiguous index blocks of `len / (4·p)` until
//!   the range is exhausted, so a straggler's remaining work is picked
//!   up by whoever finishes first. Every `body(range)` call still
//!   receives a **contiguous block disjoint** from all others — the
//!   contract the state-vector kernels rely on for unsynchronised
//!   writes.
//! * **Budget semantics are unchanged**: participants run under a
//!   thread-count override of `outer / participants`, so nested
//!   parallel calls divide the budget exactly as before, and a
//!   [`ThreadPool::install`](crate::ThreadPool::install) bound caps how
//!   many pool workers may join a job. Nested parallel calls *from a
//!   pool worker* fall back to the old scoped-spawn path (they cannot
//!   block on the pool they occupy), which in practice means they run
//!   serially because the divided budget is 1.
//! * **Panics propagate**: a panicking `body` is caught, the job is
//!   drained, and the first payload is re-thrown on the calling thread
//!   once every in-flight block has retired. The pool itself holds no
//!   lock across user code, so a panic never poisons it — the next
//!   dispatch reuses the same workers.
//! * **`QCEMU_THREADS`** sets the pool size (default:
//!   `std::thread::available_parallelism`); `QCEMU_THREADS=1` disables
//!   the pool and runs every parallel call serially on the caller.
//!
//! Observability: [`stats`] exposes monotonic counters
//! (`tasks_dispatched`, `blocks_stolen`, `parks`, `wakeups`,
//! `peak_workers`), and [`dump_stats_if_debug`] prints them to stderr
//! when `QCEMU_POOL_DEBUG` is set — mirroring the
//! `calibration`/`QCEMU_CALIB_DEBUG` pattern in `qcemu-core`.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::{current_num_threads, inner_threads, set_thread_count};

/// Spin iterations before a worker parks / a caller blocks on the
/// completion condvar. Roughly a few microseconds — long enough to
/// bridge the gap between back-to-back per-gate dispatches.
const SPIN_ITERS: usize = 4096;

/// Chunks handed out per participant (on average): 4 gives stragglers
/// three rebalancing opportunities without measurable splitter traffic.
const CHUNKS_PER_PARTICIPANT: usize = 4;

thread_local! {
    /// Set for the lifetime of a pool worker thread: parallel calls made
    /// *from* a worker must not block on the pool they occupy.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on a pool worker thread (nested parallel calls fall back to
/// scoped spawning there).
pub(crate) fn in_pool_worker() -> bool {
    IN_POOL_WORKER.with(|c| c.get())
}

/// Monotonic pool counters (process-wide, lock-free).
#[derive(Default)]
struct StatCells {
    tasks_dispatched: AtomicU64,
    blocks_stolen: AtomicU64,
    parks: AtomicU64,
    wakeups: AtomicU64,
    peak_workers: AtomicU64,
    participants: AtomicU64,
}

static STATS: StatCells = StatCells {
    tasks_dispatched: AtomicU64::new(0),
    blocks_stolen: AtomicU64::new(0),
    parks: AtomicU64::new(0),
    wakeups: AtomicU64::new(0),
    peak_workers: AtomicU64::new(0),
    participants: AtomicU64::new(0),
};

/// Snapshot of the pool counters returned by [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel jobs handed to the pool (serial and fallback-spawned
    /// calls are not counted).
    pub tasks_dispatched: u64,
    /// Contiguous index blocks claimed by a participant *beyond its
    /// first* — i.e. blocks the static even split would have left on a
    /// straggler, rebalanced through the atomic splitter instead.
    pub blocks_stolen: u64,
    /// Times an idle worker gave up spinning and parked on the condvar.
    pub parks: u64,
    /// Times a parked worker was woken by a new job.
    pub wakeups: u64,
    /// Peak number of participants (caller + workers) simultaneously
    /// executing job blocks.
    pub peak_workers: u64,
    /// Configured pool size (`QCEMU_THREADS` or the host parallelism);
    /// the pool spawns `threads - 1` workers and the caller is the
    /// remaining participant.
    pub threads: usize,
}

/// Current pool counters. Cheap (relaxed atomic loads); available (all
/// zeros) even before the first dispatch starts the pool.
pub fn stats() -> PoolStats {
    PoolStats {
        tasks_dispatched: STATS.tasks_dispatched.load(Ordering::Relaxed),
        blocks_stolen: STATS.blocks_stolen.load(Ordering::Relaxed),
        parks: STATS.parks.load(Ordering::Relaxed),
        wakeups: STATS.wakeups.load(Ordering::Relaxed),
        peak_workers: STATS.peak_workers.load(Ordering::Relaxed),
        threads: default_threads(),
    }
}

/// `true` when the `QCEMU_POOL_DEBUG` env var is set non-empty.
fn debug_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("QCEMU_POOL_DEBUG")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Prints the pool counters to stderr when `QCEMU_POOL_DEBUG` is set
/// (no-op otherwise) — call at natural end-of-run points, the way
/// `QCEMU_CALIB_DEBUG` reports rejected calibration loads.
pub fn dump_stats_if_debug() {
    if debug_enabled() {
        let s = stats();
        eprintln!(
            "qcemu-pool: threads={} dispatched={} stolen={} parks={} wakeups={} peak={}",
            s.threads, s.tasks_dispatched, s.blocks_stolen, s.parks, s.wakeups, s.peak_workers
        );
    }
}

/// Parses `QCEMU_THREADS`-style values: a positive integer, clamped to
/// at least 1; anything unparsable is `None` (fall back to the host).
pub(crate) fn parse_thread_env(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// The pool size: `QCEMU_THREADS` if set (oversubscription allowed —
/// forcing 4 workers on a 1-core runner is how CI exercises parking and
/// handoff), otherwise the host's available parallelism. Read once.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("QCEMU_THREADS")
            .ok()
            .as_deref()
            .and_then(parse_thread_env)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Benchmark baseline switch: when set, every parallel call routes
/// through the legacy spawn-per-call path instead of the pool, so the
/// `pool_ablation` harness can measure exactly what the pool buys
/// end-to-end within one process. Not for production use.
static SPAWN_PER_CALL: AtomicBool = AtomicBool::new(false);

/// Forces (or unforces) the legacy spawn-per-call dispatch path.
pub fn force_spawn_per_call(on: bool) {
    SPAWN_PER_CALL.store(on, Ordering::Relaxed);
}

/// One parallel job: a type-erased block body plus the atomic range
/// splitter and completion/panic state.
///
/// Safety: `body` borrows from the dispatching caller's stack with the
/// lifetime erased. The caller blocks in [`Job::wait`] until `pending`
/// reaches zero, and no participant dereferences `body` after its last
/// claimed block retires, so the borrow never outlives the frame — the
/// same guarantee `std::thread::scope` provides, held by protocol
/// instead of by type.
struct Job {
    body: &'static (dyn Fn(Range<usize>) + Sync),
    /// Next unclaimed index.
    cursor: AtomicUsize,
    /// One past the last index.
    end: usize,
    /// Claim granularity (indices per block).
    chunk: usize,
    /// Indices claimed but not yet retired + indices never claimed.
    pending: AtomicUsize,
    /// Pool workers still allowed to join (budget − 1 at creation).
    helper_slots: AtomicIsize,
    /// Thread budget each participant runs blocks under.
    inner_budget: usize,
    /// First panic payload from any participant's body.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_m: Mutex<()>,
    done_cv: Condvar,
}

impl Job {
    /// Claims the next contiguous block, or `None` when exhausted.
    fn claim(&self) -> Option<Range<usize>> {
        let lo = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if lo >= self.end {
            return None;
        }
        Some(lo..(lo + self.chunk).min(self.end))
    }

    /// `true` once every index has been claimed (not necessarily retired).
    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.end
    }

    /// Retires `n` indices; the last retirement wakes the waiting caller.
    fn retire(&self, n: usize) {
        if self.pending.fetch_sub(n, Ordering::Release) == n {
            let _g = self.done_m.lock().unwrap();
            self.done_cv.notify_all();
        }
    }

    /// Records the first panic payload and claims-and-retires the rest of
    /// the range so the job completes without running further blocks.
    fn abort_with(&self, payload: Box<dyn std::any::Any + Send>) {
        {
            let mut p = self.panic.lock().unwrap();
            if p.is_none() {
                *p = Some(payload);
            }
        }
        while let Some(r) = self.claim() {
            self.retire(r.len());
        }
    }

    /// Blocks until every index has retired (spin first, then condvar).
    fn wait(&self) {
        for _ in 0..SPIN_ITERS {
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut g = self.done_m.lock().unwrap();
        while self.pending.load(Ordering::Acquire) != 0 {
            g = self.done_cv.wait(g).unwrap();
        }
    }
}

/// Runs blocks of `job` on the current thread until the splitter runs
/// dry. Shared by the dispatching caller and the pool workers.
fn participate(job: &Job) {
    let _budget = set_thread_count(job.inner_budget);
    let n = STATS.participants.fetch_add(1, Ordering::Relaxed) + 1;
    STATS.peak_workers.fetch_max(n, Ordering::Relaxed);
    let mut first = true;
    while let Some(r) = job.claim() {
        if !first {
            STATS.blocks_stolen.fetch_add(1, Ordering::Relaxed);
        }
        first = false;
        let len = r.len();
        match catch_unwind(AssertUnwindSafe(|| (job.body)(r))) {
            Ok(()) => job.retire(len),
            Err(payload) => {
                // Record the payload *before* retiring this block: if it
                // is the last pending work, retiring first would let the
                // waiting caller observe completion with an empty panic
                // slot and return success.
                job.abort_with(payload);
                job.retire(len);
                break;
            }
        }
    }
    STATS.participants.fetch_sub(1, Ordering::Relaxed);
}

/// The queue + parking shared by all workers.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_cv: Condvar,
    /// Bumped on every push so idle workers can spin without the lock.
    queue_seq: AtomicU64,
}

impl PoolShared {
    /// Scans the queue (under its lock) for a job that still has both
    /// unclaimed blocks and a helper slot; prunes unusable entries.
    fn try_take(queue: &mut VecDeque<Arc<Job>>) -> Option<Arc<Job>> {
        while let Some(front) = queue.front() {
            if front.exhausted() || front.helper_slots.load(Ordering::Relaxed) <= 0 {
                queue.pop_front();
                continue;
            }
            let job = Arc::clone(front);
            if job.helper_slots.fetch_sub(1, Ordering::Relaxed) <= 0 {
                // Lost a race with another worker for the last slot.
                queue.pop_front();
                continue;
            }
            if job.helper_slots.load(Ordering::Relaxed) <= 0 {
                queue.pop_front();
            }
            return Some(job);
        }
        None
    }

    /// Blocks (spin, then park) until a job is claimable.
    fn next_job(&self, last_seq: &mut u64) -> Arc<Job> {
        loop {
            {
                let mut q = self.queue.lock().unwrap();
                if let Some(job) = Self::try_take(&mut q) {
                    return job;
                }
            }
            // Spin briefly on the push sequence — bridges back-to-back
            // per-gate dispatches without a futex round trip.
            let mut saw_push = false;
            for _ in 0..SPIN_ITERS {
                if self.queue_seq.load(Ordering::Relaxed) != *last_seq {
                    saw_push = true;
                    break;
                }
                std::hint::spin_loop();
            }
            let mut q = self.queue.lock().unwrap();
            if let Some(job) = Self::try_take(&mut q) {
                return job;
            }
            if !saw_push {
                STATS.parks.fetch_add(1, Ordering::Relaxed);
                let (guard, _) = self
                    .work_cv
                    .wait_timeout(q, std::time::Duration::from_millis(100))
                    .unwrap();
                q = guard;
                STATS.wakeups.fetch_add(1, Ordering::Relaxed);
                if let Some(job) = Self::try_take(&mut q) {
                    return job;
                }
            }
            *last_seq = self.queue_seq.load(Ordering::Relaxed);
        }
    }

    fn push(&self, job: Arc<Job>) {
        STATS.tasks_dispatched.fetch_add(1, Ordering::Relaxed);
        let mut q = self.queue.lock().unwrap();
        q.push_back(job);
        self.queue_seq.fetch_add(1, Ordering::Relaxed);
        self.work_cv.notify_all();
    }

    fn remove(&self, job: &Arc<Job>) {
        let mut q = self.queue.lock().unwrap();
        q.retain(|j| !Arc::ptr_eq(j, job));
    }
}

/// The process-wide pool: `default_threads() − 1` detached workers.
struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = default_threads().saturating_sub(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            queue_seq: AtomicU64::new(0),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("qcemu-pool-{i}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|c| c.set(true));
                    let mut last_seq = 0u64;
                    loop {
                        let job = shared.next_job(&mut last_seq);
                        participate(&job);
                    }
                })
                .expect("rayon-shim: failed to spawn pool worker");
        }
        if debug_enabled() {
            eprintln!(
                "qcemu-pool: started {workers} workers (threads={})",
                workers + 1
            );
        }
        Pool { shared, workers }
    })
}

/// Starts the pool (if the configured size warrants one) and runs one
/// trivial job through it, so the first *measured* kernel dispatch pays
/// neither thread spawning nor first-touch costs. Calibration calls
/// this before timing any rate.
pub fn warm_up() {
    if default_threads() <= 1 {
        return;
    }
    let p = pool();
    if p.workers == 0 {
        return;
    }
    let sink = AtomicUsize::new(0);
    run_indexed((p.workers + 1) * CHUNKS_PER_PARTICIPANT, |r| {
        sink.fetch_add(r.len(), Ordering::Relaxed);
    });
    std::hint::black_box(sink.load(Ordering::Relaxed));
}

/// The legacy dispatch: split `0..len` into `min(outer, len)` contiguous
/// blocks and run them on `std::thread::scope` threads, paying spawn +
/// join per call. Retained as the nested-call fallback (a pool worker
/// cannot block on its own pool) and as the `pool_ablation` baseline.
pub(crate) fn spawn_for_each_block(len: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    let outer = current_num_threads();
    let workers = outer.min(len.max(1));
    if workers <= 1 || len < 2 {
        body(0..len);
        return;
    }
    let inner = inner_threads(outer, workers);
    let per = len.div_ceil(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let lo = w * per;
            let hi = ((w + 1) * per).min(len);
            if lo >= hi {
                break;
            }
            s.spawn(move || {
                let _threads = set_thread_count(inner);
                body(lo..hi)
            });
        }
    });
}

/// The dispatch primitive every shim adapter funnels through: invokes
/// `body` with disjoint contiguous sub-ranges covering `0..len`, in
/// parallel when the thread budget and pool allow it.
pub(crate) fn run_indexed(len: usize, body: impl Fn(Range<usize>) + Sync) {
    let outer = current_num_threads();
    if outer <= 1 || len < 2 {
        body(0..len);
        return;
    }
    if SPAWN_PER_CALL.load(Ordering::Relaxed) || in_pool_worker() || default_threads() <= 1 {
        spawn_for_each_block(len, &body);
        return;
    }
    let p = pool();
    if p.workers == 0 {
        spawn_for_each_block(len, &body);
        return;
    }
    dispatch(p, len, outer, &body);
}

fn dispatch(p: &'static Pool, len: usize, outer: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
    let participants = outer.min(p.workers + 1).min(len);
    if participants <= 1 {
        body(0..len);
        return;
    }
    // Erase the borrow: `Job::wait` below outlives every dereference.
    let body: &'static (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(body) };
    let job = Arc::new(Job {
        body,
        cursor: AtomicUsize::new(0),
        end: len,
        chunk: len.div_ceil(CHUNKS_PER_PARTICIPANT * participants).max(1),
        pending: AtomicUsize::new(len),
        helper_slots: AtomicIsize::new(participants as isize - 1),
        inner_budget: inner_threads(outer, participants),
        panic: Mutex::new(None),
        done_m: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    p.shared.push(Arc::clone(&job));
    participate(&job);
    job.wait();
    p.shared.remove(&job);
    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_thread_env_accepts_positive_integers() {
        assert_eq!(parse_thread_env("4"), Some(4));
        assert_eq!(parse_thread_env(" 2 "), Some(2));
        assert_eq!(parse_thread_env("0"), Some(1), "zero clamps to serial");
        assert_eq!(parse_thread_env("four"), None);
        assert_eq!(parse_thread_env(""), None);
    }

    #[test]
    fn stats_are_monotonic_and_cheap() {
        let a = stats();
        warm_up();
        let b = stats();
        assert!(b.tasks_dispatched >= a.tasks_dispatched);
        assert!(b.parks >= a.parks);
        assert_eq!(b.threads, default_threads());
    }
}

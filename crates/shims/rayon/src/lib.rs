//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The qcemu build environment has no crates.io access, so this in-tree
//! crate reproduces the slice/range parallel-iterator surface the workspace
//! uses — `par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `into_par_iter` on ranges (with `for_each`, `enumerate`, `zip`,
//! `map`/`collect`), plus [`current_num_threads`], [`join`] and a
//! [`ThreadPoolBuilder`] whose [`ThreadPool::install`] scopes the visible
//! thread count.
//!
//! Unlike real rayon there is no work-stealing pool: each parallel call
//! splits its index space into `current_num_threads()` contiguous blocks
//! and runs them on `std::thread::scope` threads. That keeps the same
//! *disjointness* contract the kernels rely on (each worker owns a
//! contiguous block) at the cost of per-call spawn overhead — acceptable
//! for the 2^20-amplitude workloads where parallelism matters. Worker
//! threads inherit an even share of the caller's thread budget, so nested
//! parallel calls (e.g. the four-step FFT parallelising rows whose
//! per-row FFTs are themselves parallel) divide rather than multiply the
//! number of live threads, and a `ThreadPool::install` bound applies at
//! every nesting level.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous thread-count override on drop, so a scoped
/// override survives panics in the guarded closure.
struct ThreadCountGuard {
    prev: Option<usize>,
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        NUM_THREADS_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Sets this thread's visible thread count until the guard drops.
fn set_thread_count(n: usize) -> ThreadCountGuard {
    ThreadCountGuard {
        prev: NUM_THREADS_OVERRIDE.with(|o| o.replace(Some(n.max(1)))),
    }
}

/// Thread budget each of `workers` spawned workers inherits, so nested
/// parallel calls divide the caller's budget instead of multiplying it.
fn inner_threads(outer: usize, workers: usize) -> usize {
    (outer / workers.max(1)).max(1)
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Defaults to [`std::thread::available_parallelism`]; inside
/// [`ThreadPool::install`] it reports that pool's configured size.
pub fn current_num_threads() -> usize {
    NUM_THREADS_OVERRIDE.with(|o| {
        o.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let outer = current_num_threads();
    if outer <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let inner = inner_threads(outer, 2);
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _threads = set_thread_count(inner);
            b()
        });
        let ra = {
            let _threads = set_thread_count(inner);
            a()
        };
        let rb = hb.join().expect("rayon-shim: join worker panicked");
        (ra, rb)
    })
}

/// Splits `0..len` into at most `workers` contiguous blocks and invokes
/// `body(block_range)` on scoped threads (serially when it isn't worth it).
fn for_each_block(len: usize, body: impl Fn(Range<usize>) + Sync) {
    let outer = current_num_threads();
    let workers = outer.min(len.max(1));
    if workers <= 1 || len < 2 {
        body(0..len);
        return;
    }
    let inner = inner_threads(outer, workers);
    let per = len.div_ceil(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let lo = w * per;
            let hi = ((w + 1) * per).min(len);
            if lo >= hi {
                break;
            }
            let body = &body;
            s.spawn(move || {
                let _threads = set_thread_count(inner);
                body(lo..hi)
            });
        }
    });
}

/// Range → parallel iterator conversion (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The parallel-iterator adapter type.
    type Iter;
    /// Converts `self` into its parallel adapter.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel adapter over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Calls `f(i)` for every index, split across worker threads.
    pub fn for_each<F: Fn(usize) + Sync + Send>(self, f: F) {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        for_each_block(len, |block| {
            for i in block {
                f(start + i);
            }
        });
    }

    /// Maps every index through `f`, preserving order.
    pub fn map<T, F: Fn(usize) -> T + Sync + Send>(self, f: F) -> ParRangeMap<T, F> {
        ParRangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Result of [`ParRange::map`]; consumed by [`ParRangeMap::collect`].
pub struct ParRangeMap<T, F> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send, F: Fn(usize) -> T + Sync + Send> ParRangeMap<T, F> {
    /// Evaluates all elements in parallel and collects them in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let outer = current_num_threads();
        let workers = outer.min(len.max(1));
        if workers <= 1 || len < 2 {
            return (start..start + len).map(self.f).collect();
        }
        let inner = inner_threads(outer, workers);
        let per = len.div_ceil(workers);
        let f = &self.f;
        let mut parts: Vec<Vec<T>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .filter_map(|w| {
                    let lo = w * per;
                    let hi = ((w + 1) * per).min(len);
                    (lo < hi).then(|| {
                        s.spawn(move || {
                            let _threads = set_thread_count(inner);
                            (start + lo..start + hi).map(f).collect::<Vec<T>>()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim: map worker panicked"))
                .collect()
        });
        let mut all = Vec::with_capacity(len);
        for part in parts.iter_mut() {
            all.append(part);
        }
        all.into_iter().collect()
    }
}

/// `&[T]` / `&Vec<T>` → [`ParSlice`] (`.par_iter()`).
pub trait ParallelSlice<T> {
    /// Parallel shared-slice iterator.
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Calls `f(&item)` for every element.
    pub fn for_each<F: Fn(&'a T) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        for_each_block(slice.len(), |block| {
            for item in &slice[block] {
                f(item);
            }
        });
    }

    /// Index-carrying variant: yields `(index, &item)` pairs.
    pub fn enumerate(self) -> ParSliceEnumerate<'a, T> {
        ParSliceEnumerate { slice: self.slice }
    }
}

/// Enumerated parallel iterator over `&[T]`.
pub struct ParSliceEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceEnumerate<'a, T> {
    /// Calls `f((i, &item))` for every element.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        for_each_block(slice.len(), |block| {
            for i in block {
                f((i, &slice[i]));
            }
        });
    }
}

/// `&mut [T]` → [`ParSliceMut`] / [`ParChunksMut`] (`.par_iter_mut()`,
/// `.par_chunks_mut(n)`).
pub trait ParallelSliceMut<T> {
    /// Parallel mutable iterator over elements.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
    /// Parallel iterator over contiguous mutable chunks of length
    /// `chunk_size` (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        self.as_mut_slice().par_iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Splits `slice` at the block boundaries of a `workers`-way partition,
/// returning `(start_index, sub_slice)` pairs.
fn split_blocks<'a, T>(slice: &'a mut [T], workers: usize) -> Vec<(usize, &'a mut [T])> {
    let len = slice.len();
    let per = len.div_ceil(workers.max(1)).max(1);
    let mut parts = Vec::with_capacity(workers);
    let mut rest = slice;
    let mut offset = 0;
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        parts.push((offset, head));
        offset += take;
        rest = tail;
    }
    parts
}

/// Parallel mutable iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Calls `f(&mut item)` for every element.
    pub fn for_each<F: Fn(&mut T) + Sync + Send>(self, f: F) {
        let outer = current_num_threads();
        let workers = outer.min(self.slice.len().max(1));
        if workers <= 1 || self.slice.len() < 2 {
            self.slice.iter_mut().for_each(f);
            return;
        }
        let inner = inner_threads(outer, workers);
        let parts = split_blocks(self.slice, workers);
        std::thread::scope(|s| {
            for (_, part) in parts {
                let f = &f;
                s.spawn(move || {
                    let _threads = set_thread_count(inner);
                    part.iter_mut().for_each(f)
                });
            }
        });
    }

    /// Index-carrying variant: yields `(index, &mut item)` pairs.
    pub fn enumerate(self) -> ParSliceMutEnumerate<'a, T> {
        ParSliceMutEnumerate { slice: self.slice }
    }

    /// Locksteps two mutable slices (truncating to the shorter).
    pub fn zip(self, other: ParSliceMut<'a, T>) -> ParZipMut<'a, T> {
        ParZipMut {
            a: self.slice,
            b: other.slice,
        }
    }
}

/// Enumerated parallel mutable iterator.
pub struct ParSliceMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMutEnumerate<'a, T> {
    /// Calls `f((i, &mut item))` for every element.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync + Send>(self, f: F) {
        let outer = current_num_threads();
        let workers = outer.min(self.slice.len().max(1));
        if workers <= 1 || self.slice.len() < 2 {
            for (i, item) in self.slice.iter_mut().enumerate() {
                f((i, item));
            }
            return;
        }
        let inner = inner_threads(outer, workers);
        let parts = split_blocks(self.slice, workers);
        std::thread::scope(|s| {
            for (offset, part) in parts {
                let f = &f;
                s.spawn(move || {
                    let _threads = set_thread_count(inner);
                    for (i, item) in part.iter_mut().enumerate() {
                        f((offset + i, item));
                    }
                });
            }
        });
    }
}

/// Parallel lockstep over two mutable slices.
pub struct ParZipMut<'a, T> {
    a: &'a mut [T],
    b: &'a mut [T],
}

impl<'a, T: Send> ParZipMut<'a, T> {
    /// Index-carrying variant: yields `(i, (&mut a, &mut b))`.
    pub fn enumerate(self) -> ParZipMutEnumerate<'a, T> {
        ParZipMutEnumerate {
            a: self.a,
            b: self.b,
        }
    }

    /// Calls `f((&mut a, &mut b))` for every lockstep pair.
    pub fn for_each<F: Fn((&mut T, &mut T)) + Sync + Send>(self, f: F) {
        ParZipMutEnumerate {
            a: self.a,
            b: self.b,
        }
        .for_each(|(_, pair)| f(pair));
    }
}

/// Enumerated parallel lockstep over two mutable slices.
pub struct ParZipMutEnumerate<'a, T> {
    a: &'a mut [T],
    b: &'a mut [T],
}

impl<'a, T: Send> ParZipMutEnumerate<'a, T> {
    /// Calls `f((i, (&mut a, &mut b)))` for every lockstep pair.
    pub fn for_each<F: Fn((usize, (&mut T, &mut T))) + Sync + Send>(self, f: F) {
        let len = self.a.len().min(self.b.len());
        let (a, b) = (&mut self.a[..len], &mut self.b[..len]);
        let outer = current_num_threads();
        let workers = outer.min(len.max(1));
        if workers <= 1 || len < 2 {
            for (i, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                f((i, (x, y)));
            }
            return;
        }
        let inner = inner_threads(outer, workers);
        let pa = split_blocks(a, workers);
        let pb = split_blocks(b, workers);
        std::thread::scope(|s| {
            for ((offset, part_a), (_, part_b)) in pa.into_iter().zip(pb) {
                let f = &f;
                s.spawn(move || {
                    let _threads = set_thread_count(inner);
                    for (i, (x, y)) in part_a.iter_mut().zip(part_b.iter_mut()).enumerate() {
                        f((offset + i, (x, y)));
                    }
                });
            }
        });
    }
}

/// Parallel iterator over contiguous mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    fn chunks(self) -> Vec<&'a mut [T]> {
        self.slice.chunks_mut(self.chunk_size).collect()
    }

    /// Calls `f(chunk)` for every chunk.
    pub fn for_each<F: Fn(&mut [T]) + Sync + Send>(self, f: F) {
        ParChunksMutEnumerate { inner: self }.for_each(|(_, chunk)| f(chunk));
    }

    /// Index-carrying variant: yields `(chunk_index, chunk)` pairs.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Locksteps this chunk iterator with another (rayon's
    /// `IndexedParallelIterator::zip`), yielding `(chunk_a, chunk_b)`
    /// pairs truncated to the shorter side.
    pub fn zip(self, other: ParChunksMut<'a, T>) -> ParChunksMutZip<'a, T> {
        ParChunksMutZip { a: self, b: other }
    }
}

/// Lockstep pair of two parallel chunk iterators.
pub struct ParChunksMutZip<'a, T> {
    a: ParChunksMut<'a, T>,
    b: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutZip<'a, T> {
    /// Calls `f((chunk_a, chunk_b))` for every lockstep chunk pair.
    pub fn for_each<F: Fn((&mut [T], &mut [T])) + Sync + Send>(self, f: F) {
        self.enumerate().for_each(|(_, pair)| f(pair));
    }

    /// Index-carrying variant: yields `(i, (chunk_a, chunk_b))`.
    pub fn enumerate(self) -> ParChunksMutZipEnumerate<'a, T> {
        ParChunksMutZipEnumerate { inner: self }
    }
}

/// Enumerated lockstep pair of two parallel chunk iterators.
pub struct ParChunksMutZipEnumerate<'a, T> {
    inner: ParChunksMutZip<'a, T>,
}

impl<'a, T: Send> ParChunksMutZipEnumerate<'a, T> {
    /// Calls `f((i, (chunk_a, chunk_b)))` for every lockstep chunk pair.
    pub fn for_each<F: Fn((usize, (&mut [T], &mut [T]))) + Sync + Send>(self, f: F) {
        let mut ca = self.inner.a.chunks();
        let mut cb = self.inner.b.chunks();
        let n_chunks = ca.len().min(cb.len());
        ca.truncate(n_chunks);
        cb.truncate(n_chunks);
        let outer = current_num_threads();
        let workers = outer.min(n_chunks.max(1));
        if workers <= 1 || n_chunks < 2 {
            for (i, (a, b)) in ca.into_iter().zip(cb).enumerate() {
                f((i, (a, b)));
            }
            return;
        }
        let inner = inner_threads(outer, workers);
        let per = n_chunks.div_ceil(workers);
        std::thread::scope(|s| {
            let mut start = 0;
            while !ca.is_empty() {
                let take = per.min(ca.len());
                let rest_a = ca.split_off(take);
                let rest_b = cb.split_off(take);
                let group_a = std::mem::replace(&mut ca, rest_a);
                let group_b = std::mem::replace(&mut cb, rest_b);
                let f = &f;
                s.spawn(move || {
                    let _threads = set_thread_count(inner);
                    for (i, (a, b)) in group_a.into_iter().zip(group_b).enumerate() {
                        f((start + i, (a, b)));
                    }
                });
                start += take;
            }
        });
    }
}

/// Enumerated parallel iterator over contiguous mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Calls `f((chunk_index, chunk))` for every chunk.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync + Send>(self, f: F) {
        let mut chunks = self.inner.chunks();
        let n_chunks = chunks.len();
        let outer = current_num_threads();
        let workers = outer.min(n_chunks.max(1));
        if workers <= 1 || n_chunks < 2 {
            for (i, chunk) in chunks.into_iter().enumerate() {
                f((i, chunk));
            }
            return;
        }
        let inner = inner_threads(outer, workers);
        let per = n_chunks.div_ceil(workers);
        std::thread::scope(|s| {
            let mut start = 0;
            while !chunks.is_empty() {
                let take = per.min(chunks.len());
                let rest = chunks.split_off(take);
                let group = std::mem::replace(&mut chunks, rest);
                let f = &f;
                s.spawn(move || {
                    let _threads = set_thread_count(inner);
                    for (i, chunk) in group.into_iter().enumerate() {
                        f((start + i, chunk));
                    }
                });
                start += take;
            }
        });
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon-shim: thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` (only `num_threads`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count the built pool reports.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A scoped thread-count context, standing in for a real rayon pool:
/// [`ThreadPool::install`] makes [`current_num_threads`] report the pool's
/// size inside the closure, so size-gated parallel/serial code paths behave
/// as they would under real rayon.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count visible to
    /// [`current_num_threads`].
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _threads = set_thread_count(self.num_threads);
        f()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `rayon::prelude` stand-in: the traits that hang `par_*` methods off
/// slices, vectors and ranges.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_for_each_covers_all_indices() {
        let hits: Vec<std::sync::atomic::AtomicUsize> = (0..1000)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..997).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 997);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_iter_mut_and_chunks_mut() {
        let mut v = vec![1u64; 4096];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
        v.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[150], 1);
        assert_eq!(v[4095], 40);
    }

    #[test]
    fn zip_enumerate_locksteps() {
        let mut a = vec![0usize; 512];
        let mut b = vec![0usize; 512];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_thread_count_after_panic() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_parallelism_divides_thread_budget() {
        // Each worker of an outer parallel call sees outer/workers threads,
        // so a nested parallel call cannot oversubscribe.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let max_inner = std::sync::atomic::AtomicUsize::new(0);
        pool.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                max_inner.fetch_max(current_num_threads(), std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(max_inner.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}

//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The qcemu build environment has no crates.io access, so this in-tree
//! crate reproduces the slice/range parallel-iterator surface the workspace
//! uses — `par_iter`, `par_iter_mut`, `par_chunks_mut`,
//! `into_par_iter` on ranges (with `for_each`, `enumerate`, `zip`,
//! `map`/`collect`), plus [`current_num_threads`], [`join`] and a
//! [`ThreadPoolBuilder`] whose [`ThreadPool::install`] scopes the visible
//! thread count.
//!
//! Since PR 10 the dispatch is a lazily-started **persistent worker
//! pool** ([`pool`]): workers park on a condvar (brief spin first) and
//! are handed contiguous index blocks through an atomic range splitter,
//! so stragglers are rebalanced dynamically while each `body(range)`
//! call still owns a contiguous block *disjoint* from every other — the
//! contract the state-vector kernels rely on for unsynchronised writes.
//! A depth-d circuit therefore pays the pool's dispatch latency (~µs)
//! per gate instead of a `std::thread::scope` spawn + join. Worker
//! threads inherit an even share of the caller's thread budget, so
//! nested parallel calls (e.g. the four-step FFT parallelising rows
//! whose per-row FFTs are themselves parallel) divide rather than
//! multiply the number of live threads, and a [`ThreadPool::install`]
//! bound applies at every nesting level. `QCEMU_THREADS` sets the pool
//! size; panics in parallel bodies propagate to the caller without
//! poisoning the pool. See [`pool`] for the design and its counters.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Mutex;

pub mod pool;

thread_local! {
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous thread-count override on drop, so a scoped
/// override survives panics in the guarded closure.
struct ThreadCountGuard {
    prev: Option<usize>,
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        NUM_THREADS_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// Sets this thread's visible thread count until the guard drops.
fn set_thread_count(n: usize) -> ThreadCountGuard {
    ThreadCountGuard {
        prev: NUM_THREADS_OVERRIDE.with(|o| o.replace(Some(n.max(1)))),
    }
}

/// Thread budget each of `workers` job participants inherits, so nested
/// parallel calls divide the caller's budget instead of multiplying it.
fn inner_threads(outer: usize, workers: usize) -> usize {
    (outer / workers.max(1)).max(1)
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Defaults to the pool size ([`pool::default_threads`]: `QCEMU_THREADS`
/// or [`std::thread::available_parallelism`]); inside
/// [`ThreadPool::install`] it reports that pool's configured size, and
/// inside a parallel body it reports the participant's divided budget.
pub fn current_num_threads() -> usize {
    NUM_THREADS_OVERRIDE.with(|o| o.get().unwrap_or_else(pool::default_threads))
}

/// Runs two closures, potentially in parallel, returning both results.
///
/// Routed through the persistent pool as a two-block job: the caller
/// claims one arm, an idle worker (if any) claims the other, and a
/// panic in either arm resumes on the calling thread. Each arm runs
/// under half the caller's thread budget, as before.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let outer = current_num_threads();
    if outer <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    pool::run_indexed(2, |block| {
        for i in block {
            if i == 0 {
                let f = fa
                    .lock()
                    .unwrap()
                    .take()
                    .expect("join: arm 0 claimed twice");
                *ra.lock().unwrap() = Some(f());
            } else {
                let f = fb
                    .lock()
                    .unwrap()
                    .take()
                    .expect("join: arm 1 claimed twice");
                *rb.lock().unwrap() = Some(f());
            }
        }
    });
    (
        ra.into_inner().unwrap().expect("join: arm 0 did not run"),
        rb.into_inner().unwrap().expect("join: arm 1 did not run"),
    )
}

/// Raw-pointer wrapper that lets disjoint-range parallel bodies
/// reconstruct their `&mut` sub-slices. Sound because the pool hands
/// every body call a contiguous block disjoint from all others.
struct SendPtr<T>(*mut T);

// Manual impls: the derives would add unwanted `T: Copy` bounds.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// # Safety
    /// `range` must be in bounds and disjoint from every other range
    /// reconstructed from this pointer while the slice is borrowed.
    unsafe fn slice_mut<'a>(self, range: Range<usize>) -> &'a mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(range.start), range.len())
    }
}

/// Range → parallel iterator conversion (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// The parallel-iterator adapter type.
    type Iter;
    /// Converts `self` into its parallel adapter.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel adapter over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Calls `f(i)` for every index, split across pool workers.
    pub fn for_each<F: Fn(usize) + Sync + Send>(self, f: F) {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        pool::run_indexed(len, |block| {
            for i in block {
                f(start + i);
            }
        });
    }

    /// Maps every index through `f`, preserving order.
    pub fn map<T, F: Fn(usize) -> T + Sync + Send>(self, f: F) -> ParRangeMap<T, F> {
        ParRangeMap {
            range: self.range,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Result of [`ParRange::map`]; consumed by [`ParRangeMap::collect`].
pub struct ParRangeMap<T, F> {
    range: Range<usize>,
    f: F,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Send, F: Fn(usize) -> T + Sync + Send> ParRangeMap<T, F> {
    /// Evaluates all elements in parallel and collects them in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        let mut out: Vec<std::mem::MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: `MaybeUninit` needs no initialisation; every slot is
        // written exactly once below (blocks are disjoint and cover 0..len).
        unsafe { out.set_len(len) };
        let base = SendPtr(out.as_mut_ptr());
        pool::run_indexed(len, |block| {
            // Capture the wrapper, not its raw-pointer field (edition-2021
            // closures would otherwise capture the non-Sync `*mut` directly).
            let base = base;
            for i in block {
                // SAFETY: in-bounds, and index `i` belongs to exactly one block.
                unsafe { (*base.0.add(i)).write(f(start + i)) };
            }
        });
        // SAFETY: fully initialised above; re-type the buffer in place.
        let vec: Vec<T> = unsafe {
            let mut out = std::mem::ManuallyDrop::new(out);
            Vec::from_raw_parts(out.as_mut_ptr() as *mut T, len, out.capacity())
        };
        vec.into_iter().collect()
    }
}

/// `&[T]` / `&Vec<T>` → [`ParSlice`] (`.par_iter()`).
pub trait ParallelSlice<T> {
    /// Parallel shared-slice iterator.
    fn par_iter(&self) -> ParSlice<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Calls `f(&item)` for every element.
    pub fn for_each<F: Fn(&'a T) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        pool::run_indexed(slice.len(), |block| {
            for item in &slice[block.start..block.end] {
                f(item);
            }
        });
    }

    /// Index-carrying variant: yields `(index, &item)` pairs.
    pub fn enumerate(self) -> ParSliceEnumerate<'a, T> {
        ParSliceEnumerate { slice: self.slice }
    }
}

/// Enumerated parallel iterator over `&[T]`.
pub struct ParSliceEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceEnumerate<'a, T> {
    /// Calls `f((i, &item))` for every element.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync + Send>(self, f: F) {
        let slice = self.slice;
        pool::run_indexed(slice.len(), |block| {
            for i in block {
                f((i, &slice[i]));
            }
        });
    }
}

/// `&mut [T]` → [`ParSliceMut`] / [`ParChunksMut`] (`.par_iter_mut()`,
/// `.par_chunks_mut(n)`).
pub trait ParallelSliceMut<T> {
    /// Parallel mutable iterator over elements.
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T>;
    /// Parallel iterator over contiguous mutable chunks of length
    /// `chunk_size` (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        ParSliceMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "par_chunks_mut: chunk size must be > 0");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_iter_mut(&mut self) -> ParSliceMut<'_, T> {
        self.as_mut_slice().par_iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk_size)
    }
}

/// Parallel mutable iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Calls `f(&mut item)` for every element.
    pub fn for_each<F: Fn(&mut T) + Sync + Send>(self, f: F) {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        pool::run_indexed(len, |block| {
            // SAFETY: blocks are disjoint, so each element is borrowed once.
            let part = unsafe { base.slice_mut(block) };
            part.iter_mut().for_each(&f);
        });
    }

    /// Index-carrying variant: yields `(index, &mut item)` pairs.
    pub fn enumerate(self) -> ParSliceMutEnumerate<'a, T> {
        ParSliceMutEnumerate { slice: self.slice }
    }

    /// Locksteps two mutable slices (truncating to the shorter).
    pub fn zip(self, other: ParSliceMut<'a, T>) -> ParZipMut<'a, T> {
        ParZipMut {
            a: self.slice,
            b: other.slice,
        }
    }
}

/// Enumerated parallel mutable iterator.
pub struct ParSliceMutEnumerate<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMutEnumerate<'a, T> {
    /// Calls `f((i, &mut item))` for every element.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync + Send>(self, f: F) {
        let len = self.slice.len();
        let base = SendPtr(self.slice.as_mut_ptr());
        pool::run_indexed(len, |block| {
            let offset = block.start;
            // SAFETY: blocks are disjoint, so each element is borrowed once.
            let part = unsafe { base.slice_mut(block) };
            for (i, item) in part.iter_mut().enumerate() {
                f((offset + i, item));
            }
        });
    }
}

/// Parallel lockstep over two mutable slices.
pub struct ParZipMut<'a, T> {
    a: &'a mut [T],
    b: &'a mut [T],
}

impl<'a, T: Send> ParZipMut<'a, T> {
    /// Index-carrying variant: yields `(i, (&mut a, &mut b))`.
    pub fn enumerate(self) -> ParZipMutEnumerate<'a, T> {
        ParZipMutEnumerate {
            a: self.a,
            b: self.b,
        }
    }

    /// Calls `f((&mut a, &mut b))` for every lockstep pair.
    pub fn for_each<F: Fn((&mut T, &mut T)) + Sync + Send>(self, f: F) {
        ParZipMutEnumerate {
            a: self.a,
            b: self.b,
        }
        .for_each(|(_, pair)| f(pair));
    }
}

/// Enumerated parallel lockstep over two mutable slices.
pub struct ParZipMutEnumerate<'a, T> {
    a: &'a mut [T],
    b: &'a mut [T],
}

impl<'a, T: Send> ParZipMutEnumerate<'a, T> {
    /// Calls `f((i, (&mut a, &mut b)))` for every lockstep pair.
    pub fn for_each<F: Fn((usize, (&mut T, &mut T))) + Sync + Send>(self, f: F) {
        let len = self.a.len().min(self.b.len());
        let base_a = SendPtr(self.a.as_mut_ptr());
        let base_b = SendPtr(self.b.as_mut_ptr());
        pool::run_indexed(len, |block| {
            let offset = block.start;
            // SAFETY: blocks are disjoint and within both slices' bounds.
            let part_a = unsafe { base_a.slice_mut(block.clone()) };
            let part_b = unsafe { base_b.slice_mut(block) };
            for (i, (x, y)) in part_a.iter_mut().zip(part_b.iter_mut()).enumerate() {
                f((offset + i, (x, y)));
            }
        });
    }
}

/// Parallel iterator over contiguous mutable chunks.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Calls `f(chunk)` for every chunk.
    pub fn for_each<F: Fn(&mut [T]) + Sync + Send>(self, f: F) {
        ParChunksMutEnumerate { inner: self }.for_each(|(_, chunk)| f(chunk));
    }

    /// Index-carrying variant: yields `(chunk_index, chunk)` pairs.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate { inner: self }
    }

    /// Locksteps this chunk iterator with another (rayon's
    /// `IndexedParallelIterator::zip`), yielding `(chunk_a, chunk_b)`
    /// pairs truncated to the shorter side.
    pub fn zip(self, other: ParChunksMut<'a, T>) -> ParChunksMutZip<'a, T> {
        ParChunksMutZip { a: self, b: other }
    }
}

/// The chunk with index `ci` of a `len`-element slice cut into
/// `chunk_size`-element chunks (the last chunk may be shorter).
fn chunk_bounds(ci: usize, chunk_size: usize, len: usize) -> Range<usize> {
    let lo = ci * chunk_size;
    lo..(lo + chunk_size).min(len)
}

/// Lockstep pair of two parallel chunk iterators.
pub struct ParChunksMutZip<'a, T> {
    a: ParChunksMut<'a, T>,
    b: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutZip<'a, T> {
    /// Calls `f((chunk_a, chunk_b))` for every lockstep chunk pair.
    pub fn for_each<F: Fn((&mut [T], &mut [T])) + Sync + Send>(self, f: F) {
        self.enumerate().for_each(|(_, pair)| f(pair));
    }

    /// Index-carrying variant: yields `(i, (chunk_a, chunk_b))`.
    pub fn enumerate(self) -> ParChunksMutZipEnumerate<'a, T> {
        ParChunksMutZipEnumerate { inner: self }
    }
}

/// Enumerated lockstep pair of two parallel chunk iterators.
pub struct ParChunksMutZipEnumerate<'a, T> {
    inner: ParChunksMutZip<'a, T>,
}

impl<'a, T: Send> ParChunksMutZipEnumerate<'a, T> {
    /// Calls `f((i, (chunk_a, chunk_b)))` for every lockstep chunk pair.
    pub fn for_each<F: Fn((usize, (&mut [T], &mut [T]))) + Sync + Send>(self, f: F) {
        let (len_a, cs_a) = (self.inner.a.slice.len(), self.inner.a.chunk_size);
        let (len_b, cs_b) = (self.inner.b.slice.len(), self.inner.b.chunk_size);
        let n_chunks = len_a.div_ceil(cs_a).min(len_b.div_ceil(cs_b));
        let base_a = SendPtr(self.inner.a.slice.as_mut_ptr());
        let base_b = SendPtr(self.inner.b.slice.as_mut_ptr());
        pool::run_indexed(n_chunks, |block| {
            for ci in block {
                // SAFETY: chunk index `ci` belongs to exactly one block, so
                // each chunk pair is reconstructed and borrowed once.
                let chunk_a = unsafe { base_a.slice_mut(chunk_bounds(ci, cs_a, len_a)) };
                let chunk_b = unsafe { base_b.slice_mut(chunk_bounds(ci, cs_b, len_b)) };
                f((ci, (chunk_a, chunk_b)));
            }
        });
    }
}

/// Enumerated parallel iterator over contiguous mutable chunks.
pub struct ParChunksMutEnumerate<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Calls `f((chunk_index, chunk))` for every chunk.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync + Send>(self, f: F) {
        let (len, cs) = (self.inner.slice.len(), self.inner.chunk_size);
        let n_chunks = len.div_ceil(cs);
        let base = SendPtr(self.inner.slice.as_mut_ptr());
        pool::run_indexed(n_chunks, |block| {
            for ci in block {
                // SAFETY: chunk index `ci` belongs to exactly one block.
                let chunk = unsafe { base.slice_mut(chunk_bounds(ci, cs, len)) };
                f((ci, chunk));
            }
        });
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rayon-shim: thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` (only `num_threads`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count the built pool reports.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads).max(1),
        })
    }
}

/// A scoped thread-count context over the shared persistent pool:
/// [`ThreadPool::install`] makes [`current_num_threads`] report the
/// pool's size inside the closure, which caps how many workers of the
/// process-wide pool a parallel call may enlist — so size-gated
/// parallel/serial code paths behave as they would under real rayon.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count visible to
    /// [`current_num_threads`].
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _threads = set_thread_count(self.num_threads);
        f()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `rayon::prelude` stand-in: the traits that hang `par_*` methods off
/// slices, vectors and ranges.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_for_each_covers_all_indices() {
        let hits: Vec<std::sync::atomic::AtomicUsize> = (0..1000)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        (0..1000).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..997).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 997);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_iter_mut_and_chunks_mut() {
        let mut v = vec![1u64; 4096];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
        v.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[150], 1);
        assert_eq!(v[4095], 40);
    }

    #[test]
    fn zip_enumerate_locksteps() {
        let mut a = vec![0usize; 512];
        let mut b = vec![0usize; 512];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn chunks_zip_handles_ragged_lengths() {
        // 10 chunks of a (len 1000, cs 100) vs 7 chunks of b (len 650,
        // cs 100): truncated to 7 pairs, with b's last chunk short.
        let mut a = vec![0usize; 1000];
        let mut b = vec![0usize; 650];
        a.par_chunks_mut(100)
            .zip(b.par_chunks_mut(100))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                assert_eq!(ca.len(), 100);
                assert_eq!(cb.len(), if i == 6 { 50 } else { 100 });
                for x in ca.iter_mut() {
                    *x = i + 1;
                }
                for y in cb.iter_mut() {
                    *y = i + 1;
                }
            });
        assert_eq!(a[699], 7);
        assert_eq!(a[700], 0, "a's chunks beyond the zip are untouched");
        assert_eq!(b[649], 7);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_restores_thread_count_after_panic() {
        let before = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_parallelism_divides_thread_budget() {
        // Each participant of an outer parallel call sees outer/workers
        // threads, so a nested parallel call cannot oversubscribe.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let max_inner = std::sync::atomic::AtomicUsize::new(0);
        pool.install(|| {
            (0..4).into_par_iter().for_each(|_| {
                max_inner.fetch_max(current_num_threads(), std::sync::atomic::Ordering::Relaxed);
            });
        });
        assert_eq!(max_inner.load(std::sync::atomic::Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            join(|| 1, || -> i32 { panic!("arm b failed") });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "arm b failed", "original payload must survive");
        // The pool must remain usable after the propagated panic.
        let (a, b) = join(|| 3, || 4);
        assert_eq!((a, b), (3, 4));
    }

    #[test]
    fn par_iter_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            (0..1024).into_par_iter().for_each(|i| {
                if i == 700 {
                    panic!("body panicked at {i}");
                }
            });
        });
        assert!(caught.is_err());
        // Reuse after the panic: full coverage, no poisoning.
        let hits = std::sync::atomic::AtomicUsize::new(0);
        (0..1024).into_par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1024);
    }
}

//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The qcemu build environment has no crates.io access, so this in-tree
//! crate provides the subset of the criterion API that
//! `crates/bench/benches/kernels.rs` uses — [`Criterion`],
//! `benchmark_group`/`bench_function`/`bench_with_input`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple median-of-samples wall-clock timer instead of
//! criterion's statistical machinery. Output is one line per benchmark:
//!
//! ```text
//! kernels_2^20/h_general        median 1.234 ms  (20 samples)
//! ```

use std::time::Instant;

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Parameterised benchmark name (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Median seconds per iteration, recorded by [`Bencher::iter`].
    median_s: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the median sample time.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Calibrate: grow the per-sample iteration count until one sample
        // costs ≳ 1 ms, so cheap kernels aren't measured at timer noise.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= 1e-3 || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t0.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_s = times[times.len() / 2];
        self.iters_per_sample = iters;
    }
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            median_s: 0.0,
            iters_per_sample: 0,
        };
        f(&mut b);
        let (scaled, unit) = scale_seconds(b.median_s);
        println!(
            "{:<44} median {:>9.3} {}  ({} samples x {} iters)",
            format!("{}/{}", self.name, id),
            scaled,
            unit,
            self.sample_size,
            b.iters_per_sample
        );
    }

    /// Runs one benchmark under this group's settings.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs one parameterised benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

fn scale_seconds(s: f64) -> (f64, &'static str) {
    if s >= 1.0 {
        (s, "s ")
    } else if s >= 1e-3 {
        (s * 1e3, "ms")
    } else if s >= 1e-6 {
        (s * 1e6, "us")
    } else {
        (s * 1e9, "ns")
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! # qcemu-bench
//!
//! Shared harness utilities for the per-figure/per-table benchmark
//! binaries (see `src/bin/`): timing, a minimal CLI-flag parser, and
//! table formatting. Each binary prints the same rows/series its paper
//! counterpart reports, plus the paper's reference numbers where useful.

use std::time::Instant;

/// Times one execution of `f` in seconds.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Median of `reps` timings of `f` (at least one rep).
pub fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Adaptive repetitions: roughly `budget_s` of wall time, 1..=max reps.
pub fn reps_for_budget(estimate_s: f64, budget_s: f64, max: usize) -> usize {
    if estimate_s <= 0.0 {
        return max;
    }
    ((budget_s / estimate_s) as usize).clamp(1, max)
}

/// Tiny `--flag value` parser over `std::env::args` (no dependency).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// From an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// Value of `--name <v>` or `--name=<v>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        let eq_prefix = format!("--{name}=");
        let mut iter = self.raw.iter();
        while let Some(a) = iter.next() {
            if let Some(v) = a.strip_prefix(&eq_prefix) {
                return v.parse().ok();
            }
            if *a == flag {
                return iter.next().and_then(|v| v.parse().ok());
            }
        }
        None
    }

    /// `true` if the bare flag is present.
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| *a == flag)
    }
}

/// One `key: value` sequence encoded as a JSON object, in insertion
/// order. Values are numbers or strings; non-finite numbers encode as
/// `null` (JSON has no NaN/∞).
#[derive(Default, Clone)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    /// Adds a float field (`null` when non-finite).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        let enc = if v.is_finite() {
            format!("{v:?}")
        } else {
            "null".into()
        };
        self.fields.push((key.into(), enc));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.into(), v.to_string()));
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.into(), format!("\"{}\"", json_escape(v))));
        self
    }

    fn encode(&self, indent: &str) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{indent}  \"{}\": {}", json_escape(k), v))
            .collect();
        format!("{{\n{}\n{indent}}}", body.join(",\n"))
    }
}

/// Machine-readable mirror of a harness's printed table, written as
/// `BENCH_<name>.json` when the binary is invoked with `--json`:
/// `{ "name", "config": {...}, "rows": [{... "ns_per_op" ...}, ...] }`.
/// Hand-rolled encoder — the harnesses stay dependency-free.
pub struct BenchReport {
    name: String,
    config: JsonObj,
    rows: Vec<JsonObj>,
}

impl BenchReport {
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.into(),
            config: JsonObj::new(),
            rows: Vec::new(),
        }
    }

    /// Records the harness configuration (flag values, feature set).
    pub fn set_config(&mut self, config: JsonObj) {
        self.config = config;
    }

    /// Appends one measured row (include `ns_per_op` and any speedups).
    pub fn push(&mut self, row: JsonObj) {
        self.rows.push(row);
    }

    /// Serialises the full report.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("    {}", r.encode("    ")))
            .collect();
        format!(
            "{{\n  \"name\": \"{}\",\n  \"config\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_escape(&self.name),
            self.config.encode("  "),
            rows.join(",\n")
        )
    }

    /// When `enabled`, writes `BENCH_<name>.json` in the working
    /// directory and returns its path; prints the destination so the
    /// table and its machine-readable twin are cross-referenced.
    pub fn write_if(&self, enabled: bool) -> Option<std::path::PathBuf> {
        if !enabled {
            return None;
        }
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.name));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("json report: {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("json report write failed ({}): {e}", path.display());
                None
            }
        }
    }
}

/// Pretty seconds: engineering-ish formatting matching the paper's
/// log-scale plots.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} s ", s)
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints a standard harness header naming the experiment.
pub fn header(title: &str, detail: &str) {
    rule(78);
    println!("{title}");
    println!("{detail}");
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_both_forms() {
        let a = Args::from_vec(vec!["--max-m".into(), "7".into(), "--fast".into()]);
        assert_eq!(a.get::<usize>("max-m"), Some(7));
        assert!(a.has("fast"));
        assert!(!a.has("slow"));
        let b = Args::from_vec(vec!["--max-m=9".into()]);
        assert_eq!(b.get::<usize>("max-m"), Some(9));
        assert_eq!(b.get::<usize>("missing"), None);
    }

    #[test]
    fn timing_is_positive() {
        let (t, v) = time_once(|| (0..1000).sum::<usize>());
        assert!(t >= 0.0);
        assert_eq!(v, 499_500);
        let m = time_median(3, || {
            std::hint::black_box((1..20u128).product::<u128>());
        });
        assert!(m >= 0.0);
    }

    #[test]
    fn budget_reps() {
        assert_eq!(reps_for_budget(0.1, 1.0, 100), 10);
        assert_eq!(reps_for_budget(10.0, 1.0, 100), 1);
        assert_eq!(reps_for_budget(0.0, 1.0, 7), 7);
    }

    #[test]
    fn json_report_round_trips_structure() {
        let mut rep = BenchReport::new("unit");
        rep.set_config(JsonObj::new().int("n", 20).str("mode", "fast"));
        rep.push(
            JsonObj::new()
                .str("circuit", "qft")
                .num("ns_per_op", 12.5)
                .num("speedup", f64::INFINITY),
        );
        let json = rep.to_json();
        assert!(json.contains("\"name\": \"unit\""));
        assert!(json.contains("\"n\": 20"));
        assert!(json.contains("\"mode\": \"fast\""));
        assert!(json.contains("\"ns_per_op\": 12.5"));
        // Non-finite numbers must degrade to null, not invalid JSON.
        assert!(json.contains("\"speedup\": null"));
        // Balanced braces/brackets as a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
        assert!(rep.write_if(false).is_none());
    }

    #[test]
    fn json_escaping() {
        let row = JsonObj::new().str("k\"ey", "a\\b\nc");
        assert_eq!(row.encode(""), "{\n  \"k\\\"ey\": \"a\\\\b\\nc\"\n}");
    }

    #[test]
    fn formatting() {
        assert!(fmt_secs(1.5e-9).contains("ns"));
        assert!(fmt_secs(1.5e-5).contains("µs"));
        assert!(fmt_secs(1.5e-2).contains("ms"));
        assert!(fmt_secs(2.0).contains('s'));
    }
}

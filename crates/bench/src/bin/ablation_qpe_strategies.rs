//! **Ablation**: execute all three QPE strategies end-to-end across the
//! precision sweep and verify the crossover *empirically* — Table 2
//! predicts crossovers from primitive timings; this harness runs the whole
//! phase estimations and reports where emulation actually starts winning,
//! plus the advisor's prediction next to it.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin ablation_qpe_strategies
//!         [-- --n 5 --max-b 12]`

use qcemu_bench::{fmt_secs, header, time_once, Args};
use qcemu_core::{
    Emulator, Executor, GateLevelSimulator, ProgramBuilder, QpeOp, QpeStrategy, QpeTimings,
};
use qcemu_linalg::{eig, gemm};
use qcemu_sim::circuits::{tfim_gate_count, tfim_trotter_step, TfimParams};
use qcemu_sim::{circuit_to_dense, StateVector};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n").unwrap_or(5);
    let max_b: usize = args.get("max-b").unwrap_or(12);

    header(
        "Ablation — QPE strategies executed across the precision sweep",
        "gate-level vs repeated squaring vs eigendecomposition, same program",
    );

    let unitary = tfim_trotter_step(n, TfimParams::default());

    // Advisor prediction from measured primitives.
    let timings = {
        let mut sv = StateVector::zero_state(n);
        let (mut t_apply, _) = time_once(|| sv.apply_circuit(&unitary));
        // median-ish of a few reps
        for _ in 0..4 {
            let (t, _) = time_once(|| sv.apply_circuit(&unitary));
            t_apply = t_apply.min(t);
        }
        let (t_build, u) = time_once(|| circuit_to_dense(&unitary));
        let (t_gemm, _) = time_once(|| std::hint::black_box(gemm(&u, &u)));
        let (t_eig, _) = time_once(|| std::hint::black_box(eig(&u).unwrap()));
        QpeTimings {
            n,
            g: tfim_gate_count(n),
            t_apply_u: t_apply,
            t_build_dense: t_build,
            t_gemm,
            t_eig,
        }
    };

    println!(
        "{:>3} {:>12} {:>12} {:>12}   winner(measured)   advisor",
        "b", "gate-level", "repeat-sq", "eigendecomp"
    );
    let mut empirical_crossover: Option<usize> = None;
    for b in 2..=max_b {
        let run = |strategy: Option<QpeStrategy>| -> f64 {
            let mut pb = ProgramBuilder::new();
            let target = pb.register("t", n);
            let phase = pb.register("p", b);
            pb.gates(|c| {
                c.h(0);
            });
            pb.qpe(QpeOp {
                unitary: unitary.clone(),
                target,
                phase,
            });
            let program = pb.build().unwrap();
            let init = StateVector::zero_state(program.n_qubits());
            let (t, out) = time_once(|| match strategy {
                None => GateLevelSimulator::new().run(&program, init.clone()),
                Some(s) => Emulator::with_qpe_strategy(s).run(&program, init.clone()),
            });
            out.expect("qpe run");
            t
        };
        let t_gate = run(None);
        let t_rs = run(Some(QpeStrategy::RepeatedSquaring));
        let t_eig = run(Some(QpeStrategy::Eigendecomposition));
        let winner = if t_gate <= t_rs && t_gate <= t_eig {
            "gate-level"
        } else if t_rs <= t_eig {
            "repeat-sq"
        } else {
            "eigendecomp"
        };
        if winner != "gate-level" && empirical_crossover.is_none() {
            empirical_crossover = Some(b);
        }
        let advisor = format!("{:?}", timings.best_strategy(b as u32));
        println!(
            "{:>3} {:>12} {:>12} {:>12}   {:<16}   {}",
            b,
            fmt_secs(t_gate),
            fmt_secs(t_rs),
            fmt_secs(t_eig),
            winner,
            advisor
        );
    }

    println!();
    match (empirical_crossover, timings.crossover_repeated_squaring()) {
        (Some(e), Some(p)) => {
            println!("empirical crossover: b = {e}; primitive-model prediction b = {p}");
            println!("(the primitive model prices the paper's one-ancilla iterative QPE;");
            println!(" this harness executes the COHERENT b-ancilla variant, which costs the");
            println!(" simulator an extra O(2^b) — paper 3.3: 'coherent phase estimation");
            println!(" algorithms … will incur an additional factor O(2^b) in simulation");
            println!(" effort' — so the empirical crossover lands earlier, as observed)");
        }
        _ => println!("no crossover observed in range — increase --max-b"),
    }
}

//! **Figure 6**: single-node entangling operation (H on qubit 0, then a
//! chain of CNOTs conditioned on it) — ours vs qHiPSTER-like vs
//! LIQUiD-like, n = 15..22.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig6_entangle
//!         [-- --min-n 15 --max-n 21]`
//!
//! Paper reference: "our simulator achieves significant speedups of 2× and
//! 6×, respectively".

use qcemu_baselines::{LiquidSim, QhipsterSim};
use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_sim::circuits::entangle_circuit;
use qcemu_sim::StateVector;

fn main() {
    let args = Args::parse();
    let min_n: usize = args.get("min-n").unwrap_or(15);
    let max_n: usize = args.get("max-n").unwrap_or(21);

    header(
        "Figure 6 — entangling operation: ours vs qHiPSTER-like vs LIQUiD-like",
        "circuit: H(0), then CNOT(0 -> k) for k = 1..n (GHZ preparation)",
    );
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "ours", "qHiPSTER", "LIQUiD", "vs qHiP", "vs LIQUiD"
    );

    for n in min_n..=max_n {
        let circuit = entangle_circuit(n);
        let reps = if n <= 19 { 5 } else { 3 };

        let t_ours = time_median(reps, || {
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&circuit);
            std::hint::black_box(sv.amplitudes()[0]);
        });

        let qhip = QhipsterSim::new();
        let t_qhip = time_median(reps, || {
            let mut sv = StateVector::zero_state(n);
            qhip.run(&circuit, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });

        let liq = LiquidSim::new();
        let t_liq = time_median(1, || {
            let mut sv = StateVector::zero_state(n);
            liq.run(&circuit, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });

        println!(
            "{:>3} {:>12} {:>12} {:>12} {:>11.2}x {:>11.2}x",
            n,
            fmt_secs(t_ours),
            fmt_secs(t_qhip),
            fmt_secs(t_liq),
            t_qhip / t_ours,
            t_liq / t_ours,
        );
    }
    println!();
    println!("note: a CNOT in 'ours' moves 2^(n-1) amplitudes via control-compressed");
    println!("      index enumeration; the generic kernel sweeps all 2^n with a");
    println!("      predicate; the gate-object simulator gathers 4-amplitude blocks.");
    println!("      Paper Fig. 6: 2x over qHiPSTER, 6x over LIQUiD.");
}

//! **Batch ablation**: the [`BatchExecutor`] (plan once, advance N state
//! vectors through batch-major kernels) versus a sequential `run()` loop
//! over the same ensemble, on a quantum-Monte-Carlo-style parameter
//! sweep.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin batch_ablation
//!         [-- --m 12 --reps 3]`
//!
//! Each ensemble member is an amplitude-estimation-shaped program on
//! `m + 5` qubits — superpose the m-bit value register and a 4-bit
//! counter, amplitude-encode `f_scale(x)` onto the indicator qubit (the
//! per-member closure), then two diffusion-style rounds of H layers and
//! entangler chains — with a different integrand scale per member. The
//! members are distinct program *instances* with identical structure,
//! exactly the shape a parameter sweep produces.
//!
//! Expected shape: batched throughput (states/sec) pulls ahead of the
//! sequential loop as the batch grows, ≥ 2× from batch 8 on both SIMD
//! and scalar builds. The wins are all fixed-cost amortisation:
//!
//! * planning + fusion run once per *structure* instead of once per
//!   member (the sequential loop re-plans every member — its plan cache
//!   is instance-keyed, and each member is a fresh instance);
//! * every gate step's pair enumeration, gather bookkeeping, and kernel
//!   dispatch are paid once for the whole ensemble, and the in-cache
//!   fused replay works on `batch`-length runs instead of single
//!   amplitudes;
//! * batch-major layout gives every amplitude a contiguous run of
//!   `batch` entries, so the SIMD build vectorises at qubit positions
//!   where per-state sweeps fall back to scalar, and the emulated
//!   rotation becomes one per-lane Givens sweep over tabulated
//!   coefficients for the whole ensemble.

use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_core::{
    BatchExecutor, Executor, HybridExecutor, ProgramBuilder, QuantumProgram, RotationOp,
};
use qcemu_sim::Gate;
use qcemu_sim::{BatchStateVector, StateVector};
use std::sync::Arc;

/// One sweep member on `m + 5` qubits — the gate content of an amplitude
/// estimation sweep: a value register `x` (m bits), the indicator qubit,
/// and a 4-bit counting register. Superpose `x` and the counter,
/// amplitude-encode `f_scale(x) = scale·(x+½)/2^m` onto the indicator
/// (the per-member closure), then two diffusion-style rounds of H layers
/// and entangler chains across the whole width.
fn member(m: usize, scale: f64) -> QuantumProgram {
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", m);
    let ind = pb.register("ind", 1);
    let count = pb.register("count", 4);
    let n = m + 5;
    pb.hadamard_all(x);
    pb.hadamard_all(count);
    pb.rotation(RotationOp {
        name: "amplitude-encode".into(),
        x,
        target: ind,
        angle: Arc::new(move |v| {
            let f = scale * (v as f64 + 0.5) / (1u64 << m) as f64;
            2.0 * f.min(1.0).sqrt().asin()
        }),
        gate_impl: None,
    });
    for _ in 0..2 {
        pb.gates(|c| {
            for q in 0..m {
                c.push(Gate::h(q));
            }
            for q in 0..n - 1 {
                c.push(Gate::cnot(q, q + 1));
            }
            for q in 0..m {
                c.push(Gate::h(q));
            }
        });
    }
    pb.build().unwrap()
}

fn members_for(m: usize, batch: usize) -> Vec<QuantumProgram> {
    (0..batch)
        .map(|j| member(m, 0.35 + 0.05 * j as f64))
        .collect()
}

fn main() {
    let args = Args::parse();
    let m: usize = args.get("m").unwrap_or(12);
    let reps: usize = args.get("reps").unwrap_or(3);
    let n = m + 5;

    header(
        "Batch ablation — plan-once batched execution vs sequential run() loop",
        "amplitude-encoding parameter sweep; distinct instances, identical structure",
    );
    println!(
        "m = {m} ({n} qubits, 2^{n} amplitudes/member; SIMD backend: {})\n",
        qcemu_linalg::simd::backend_name()
    );

    // Correctness first: every batched member must match its solo run.
    let check = members_for(m.min(7), 5);
    let nc = check[0].n_qubits();
    let batched = BatchExecutor::new()
        .run(&check, BatchStateVector::zero_state(nc, check.len()))
        .unwrap();
    let solo = HybridExecutor::new();
    for (j, prog) in check.iter().enumerate() {
        let reference = solo.run(prog, StateVector::zero_state(nc)).unwrap();
        let diff = batched.member_max_diff(j, &reference);
        assert!(diff < 1e-12, "member {j} deviates by {diff:.3e}");
    }
    println!("batched ≡ sequential on every member (≤1e-12)\n");

    println!(
        "{:>6} {:>14} {:>14} {:>13} {:>13} {:>9}",
        "batch", "seq wall", "batch wall", "seq st/s", "batch st/s", "speedup"
    );
    let mut speedup_at_8 = None;
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let members = members_for(m, batch);
        let sequential = HybridExecutor::new();
        let t_seq = time_median(reps, || {
            for prog in &members {
                let out = sequential.run(prog, StateVector::zero_state(n)).unwrap();
                std::hint::black_box(out.amplitudes()[0]);
            }
        });
        let batch_exec = BatchExecutor::new();
        let t_batch = time_median(reps, || {
            let out = batch_exec
                .run(&members, BatchStateVector::zero_state(n, batch))
                .unwrap();
            std::hint::black_box(out.amplitudes()[0]);
        });
        let speedup = t_seq / t_batch;
        if batch == 8 {
            speedup_at_8 = Some(speedup);
        }
        println!(
            "{:>6} {:>14} {:>14} {:>13.1} {:>13.1} {:>8.2}x",
            batch,
            fmt_secs(t_seq),
            fmt_secs(t_batch),
            batch as f64 / t_seq,
            batch as f64 / t_batch,
            speedup
        );
    }
    if let Some(s) = speedup_at_8 {
        println!("\nspeedup at batch 8: {s:.2}x (acceptance floor: 2x)");
    }

    // Per-step route audit for one representative batch.
    let members = members_for(m, 8);
    let exec = BatchExecutor::new();
    let (_, report) = exec
        .run_with_report(&members, BatchStateVector::zero_state(n, 8))
        .unwrap();
    println!("\nbatched step report (batch 8):");
    println!("{report}");
    println!();
    println!("note: the sequential loop runs distinct program instances, so its");
    println!("      instance-keyed plan cache misses every member — it re-plans");
    println!("      and re-fuses per member, and pays every parallel-kernel");
    println!("      dispatch per member. The batch executor keys its cache on");
    println!("      structure_hash (one lowering for the whole sweep) and");
    println!("      advances all members per gate step through the batch-major");
    println!("      kernels; only the closure-bearing rotation loops members.");
}

//! **MPS ablation**: the bond-truncated compressed backend vs dense
//! state-vector sweeps on low-entanglement circuits.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin mps_ablation
//!         [-- --max-n 40 --dense-max-n 24 --depth 60 --max-bond 64 --json]`
//!
//! No paper counterpart: the paper's simulator (§4.5) always pays Θ(2ⁿ)
//! per sweep. A matrix-product state pays O(depth·χ³) for bond dimension
//! χ, so circuits whose entanglement stays bounded (GHZ chains, shallow
//! line-QAOA, banded QFTs) run at widths where a dense vector does not
//! even fit in memory — the headline here is an n = 40 chain in well
//! under a second, where the dense state alone would need 16 TiB.
//! Three sections:
//!   1. compressed scaling at n = 16…40 (time, peak χ, truncation);
//!   2. crossover vs the dense fused backend at n = 16…dense-max-n,
//!      cross-checked state-exact through `to_statevector`;
//!   3. the hybrid planner routing a deep low-entanglement gate run to
//!      `Backend::SimulateMps` (predicted costs per backend tier).
//! `--json` additionally writes `BENCH_mps_ablation.json`. The cost
//! model and reference numbers live in `docs/PERFORMANCE.md`
//! ("Compressed (MPS) backend").

use qcemu_bench::{fmt_secs, header, rule, time_median, Args, BenchReport, JsonObj};
use qcemu_core::{plan_hybrid, plan_simulated, CostModel, PlanInterpreter, ProgramBuilder};
use qcemu_sim::{estimate_mps_cost, Circuit, MpsState, SimConfig, StateVector, DEFAULT_MAX_BOND};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GHZ chain: H then nearest-neighbour CNOTs — χ = 2 at every cut.
fn ghz_chain(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    c
}

/// `p` line-QAOA layers: nearest-neighbour cost phases + a mixer —
/// χ grows at most 2× per layer.
fn line_qaoa(n: usize, p: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..p {
        let gamma = 0.4 + 0.13 * layer as f64;
        let beta = 0.7 - 0.11 * layer as f64;
        for q in 0..n - 1 {
            c.cphase(q, q + 1, gamma);
        }
        for q in 0..n {
            c.rx(q, beta);
        }
    }
    c
}

/// QFT truncated to controlled phases within `band` of the target: the
/// standard approximate QFT, whose entanglement is bounded by the band.
fn banded_qft(n: usize, band: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in (0..n).rev() {
        c.h(q);
        for d in 1..=band.min(q) {
            c.cphase(q - d, q, std::f64::consts::PI / (1 << d) as f64);
        }
    }
    c
}

/// Deep low-entanglement workload for the dense crossover: one GHZ
/// chain under `layers` alternating single-qubit rotation layers.
fn deep_chain(n: usize, layers: usize) -> Circuit {
    let mut c = ghz_chain(n);
    for layer in 0..layers {
        for q in 0..n {
            if layer % 2 == 0 {
                c.rz(q, 0.11 + 0.01 * (layer + q) as f64);
            } else {
                c.rx(q, 0.07 + 0.01 * (layer + q) as f64);
            }
        }
    }
    c
}

fn main() {
    let args = Args::parse();
    let max_n: usize = args.get("max-n").unwrap_or(40);
    let dense_max_n: usize = args.get("dense-max-n").unwrap_or(24);
    let depth: usize = args.get("depth").unwrap_or(60);
    let max_bond: usize = args.get("max-bond").unwrap_or(DEFAULT_MAX_BOND);
    let mut report = BenchReport::new("mps_ablation");
    report.set_config(
        JsonObj::new()
            .int("max_n", max_n as u64)
            .int("dense_max_n", dense_max_n as u64)
            .int("depth", depth as u64)
            .int("max_bond", max_bond as u64),
    );

    header(
        "MPS ablation — bond-truncated compressed backend vs dense sweeps",
        "low-entanglement circuits cost O(depth·χ³) compressed vs Θ(depth·2ⁿ) dense",
    );

    // ---- 1. compressed scaling past the dense wall -------------------
    println!(
        "{:>3} {:<12} {:>6} {:>12} {:>7} {:>10} {:>12}",
        "n", "circuit", "gates", "time", "peak χ", "trunc err", "sample 32"
    );
    for n in [16usize, 24, 32, 40] {
        if n > max_n {
            continue;
        }
        for (name, circuit) in [
            ("ghz-chain", deep_chain(n, depth)),
            ("line-qaoa", line_qaoa(n, 3)),
            ("banded-qft", banded_qft(n, 2)),
        ] {
            let est = estimate_mps_cost(&circuit, max_bond);
            let mut peak = 0usize;
            let mut trunc = 0.0f64;
            let t = time_median(if n <= 24 { 3 } else { 2 }, || {
                let mut mps = MpsState::zero_state(n, max_bond);
                mps.run(&circuit);
                peak = mps.peak_bond();
                trunc = mps.truncation_error();
            });
            // Shot sampling straight off the tensors — no 2ⁿ densify.
            let mut mps = MpsState::zero_state(n, max_bond);
            mps.run(&circuit);
            let t_sample = time_median(3, || {
                let mut rng = StdRng::seed_from_u64(7);
                std::hint::black_box(mps.sample_shots(32, &mut rng));
            });
            println!(
                "{:>3} {:<12} {:>6} {:>12} {:>7} {:>10.1e} {:>12}",
                n,
                name,
                circuit.gate_count(),
                fmt_secs(t),
                peak,
                trunc,
                fmt_secs(t_sample)
            );
            report.push(
                JsonObj::new()
                    .str("section", "scaling")
                    .int("n", n as u64)
                    .str("circuit", name)
                    .int("gates", circuit.gate_count() as u64)
                    .num("ns_per_op", t * 1e9)
                    .int("peak_bond", peak as u64)
                    .num("trunc_error", trunc)
                    .num("sample32_ns", t_sample * 1e9)
                    .int("est_chi_peak", est.chi_peak as u64)
                    .str("est_exact", if est.exact { "true" } else { "false" }),
            );
        }
    }
    println!("(dense state at n = 40: 2⁴⁰ amplitudes = 16 TiB — not runnable)");

    // ---- 2. crossover vs the dense fused backend ---------------------
    rule(78);
    println!(
        "{:>3} {:<12} {:>12} {:>12} {:>9} {:>12}",
        "n", "circuit", "dense", "mps+densify", "speedup", "max |Δψ|"
    );
    let mut n = 16;
    while n <= dense_max_n.min(max_n) {
        let circuit = deep_chain(n, depth);
        let reps = if n <= 20 { 3 } else { 1 };
        let t_dense = time_median(reps, || {
            let mut sv = StateVector::zero_state(n);
            sv.run(&circuit, &SimConfig::fused(4));
            std::hint::black_box(sv.amplitudes()[0]);
        });
        let mut out = StateVector::zero_state(1);
        let t_mps = time_median(reps, || {
            let mut mps = MpsState::zero_state(n, max_bond);
            mps.run(&circuit);
            out = mps.to_statevector();
        });
        let mut reference = StateVector::zero_state(n);
        reference.run(&circuit, &SimConfig::fused(4));
        let diff = out.max_diff_up_to_phase(&reference);
        println!(
            "{:>3} {:<12} {:>12} {:>12} {:>8.1}x {:>12.1e}",
            n,
            "ghz-chain",
            fmt_secs(t_dense),
            fmt_secs(t_mps),
            t_dense / t_mps,
            diff
        );
        report.push(
            JsonObj::new()
                .str("section", "crossover")
                .int("n", n as u64)
                .str("circuit", "ghz-chain")
                .num("ns_per_op", t_mps * 1e9)
                .num("dense_ns_per_op", t_dense * 1e9)
                .num("speedup_vs_dense", t_dense / t_mps)
                .num("max_diff", diff),
        );
        assert!(diff < 1e-10, "compressed run diverged from dense");
        n += 4;
    }

    // ---- 3. hybrid planner routes the low-entanglement op ------------
    rule(78);
    let n_plan = 16.min(max_n);
    let mut pb = ProgramBuilder::new();
    let _r = pb.register("r", n_plan);
    let chain = deep_chain(n_plan, depth);
    pb.gates(|c| c.extend(&chain));
    let prog = pb.build().unwrap();
    let model = CostModel::default();
    let plan = plan_hybrid(&prog, &model, &SimConfig::fused(4));
    println!("hybrid plan, deep chain at n = {n_plan}:");
    for (cfg_name, cfg) in [
        ("fused", SimConfig::fused(4)),
        ("segmented", SimConfig::segmented()),
        ("unfused", SimConfig::unfused()),
    ] {
        let fixed = plan_simulated(&prog, &model, &cfg);
        println!(
            "  fixed {:<10} predicted {}",
            cfg_name,
            fmt_secs(fixed.steps()[0].predicted_s)
        );
    }
    println!(
        "  hybrid -> {:<12} predicted {}",
        plan.steps()[0].backend.to_string(),
        fmt_secs(plan.steps()[0].predicted_s)
    );
    let (t_hybrid, _) = qcemu_bench::time_once(|| {
        PlanInterpreter::default()
            .execute(&prog, &plan, StateVector::zero_state(n_plan))
            .unwrap()
    });
    println!("  hybrid wall time {}", fmt_secs(t_hybrid));
    report.push(
        JsonObj::new()
            .str("section", "hybrid")
            .int("n", n_plan as u64)
            .str("backend", &plan.steps()[0].backend.to_string())
            .num("predicted_s", plan.steps()[0].predicted_s)
            .num("ns_per_op", t_hybrid * 1e9),
    );

    report.write_if(args.has("json"));
}

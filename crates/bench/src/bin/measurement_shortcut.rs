//! **§3.4**: measurement emulation — exact expectation values in one pass
//! versus shot sampling. The paper notes "the time savings … are just the
//! number of repetitions of the circuit" and skips the benchmark; we run it
//! anyway to close the loop.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin measurement_shortcut
//!         [-- --n 20]`

use qcemu_bench::{fmt_secs, header, time_once, Args};
use qcemu_core::measurement::{compare_expectation_z, total_variation};
use qcemu_sim::circuits::{tfim_trotter_step, TfimParams};
use qcemu_sim::{measure, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n").unwrap_or(20);

    header(
        "Section 3.4 — measurement: exact expectation vs shot sampling",
        "state: 4 TFIM Trotter steps from |+...+>; observable <Z_0>",
    );

    // Prepare a non-trivial state.
    let mut sv = StateVector::uniform_superposition(n);
    let step = tfim_trotter_step(n, TfimParams::default());
    for _ in 0..4 {
        sv.apply_circuit(&step);
    }

    let (t_exact, exact) = time_once(|| measure::expectation_z(&sv, 0));
    println!(
        "exact (one pass over 2^{n} amplitudes): <Z_0> = {exact:+.6} in {}",
        fmt_secs(t_exact)
    );
    println!();
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "shots", "estimate", "|error|", "T_sample", "vs exact"
    );

    let mut rng = StdRng::seed_from_u64(34);
    for shots in [100usize, 1_000, 10_000, 100_000] {
        let (t, cmp) = time_once(|| compare_expectation_z(&sv, 0, shots, &mut rng));
        println!(
            "{:>9} {:>12.6} {:>12.2e} {:>12} {:>9.1}x",
            shots,
            cmp.sampled,
            cmp.error,
            fmt_secs(t),
            t / t_exact.max(1e-12)
        );
    }

    println!();
    println!("distribution access: exact register distribution vs sampled histogram");
    let bits = [0usize, 1, 2, 3];
    let (t_dist, dist) = time_once(|| sv.register_distribution(&bits));
    let mut rng = StdRng::seed_from_u64(35);
    let shots = 100_000;
    let (t_hist, hist) = time_once(|| {
        let mut h = vec![0usize; 16];
        for s in measure::sample_shots(&sv, shots, &mut rng) {
            h[StateVector::register_value(s, &bits)] += 1;
        }
        h.into_iter()
            .map(|c| c as f64 / shots as f64)
            .collect::<Vec<_>>()
    });
    println!(
        "exact: {} | {shots}-shot histogram: {} | total variation: {:.4}",
        fmt_secs(t_dist),
        fmt_secs(t_hist),
        total_variation(&dist, &hist)
    );
    println!();
    println!("note: on real hardware every shot reruns the whole circuit, so the");
    println!("      emulation advantage is (shots x circuit time) / one pass — far");
    println!("      larger than the sampling-only ratio shown here.");
}

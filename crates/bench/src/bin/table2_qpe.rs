//! **Table 2**: QPE on the time evolution of a 1-D transverse-field Ising
//! model — timings of every primitive step plus the crossover precisions at
//! which emulation beats simulation.
//!
//! Columns mirror the paper:
//! `T_applyU` (one gate-level application of U), `T_build` (dense U
//! construction), `T_gemm` (one U·U, the `zgemm` row), `T_eig` (one
//! eigendecomposition, the `zgeev` row), and the crossover bits for
//! repeated squaring and eigendecomposition.
//!
//! Rows up to `--max-n-measured` (default 10; eigendecomposition capped
//! separately at `--max-n-eig`, default 9) are measured on this host; rows
//! beyond are extrapolated from the measured throughput constants, flagged
//! with `*`.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin table2_qpe
//!         [-- --min-n 8 --max-n 14 --max-n-measured 10 --max-n-eig 9]`

use qcemu_bench::{fmt_secs, header, reps_for_budget, time_median, time_once, Args};
use qcemu_core::QpeTimings;
use qcemu_linalg::{eig, gemm, random_state};
use qcemu_sim::circuits::{tfim_gate_count, tfim_trotter_step, TfimParams};
use qcemu_sim::{circuit_to_dense, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let min_n: usize = args.get("min-n").unwrap_or(8);
    let max_n: usize = args.get("max-n").unwrap_or(14);
    let max_n_measured: usize = args.get("max-n-measured").unwrap_or(10);
    let max_n_eig: usize = args.get("max-n-eig").unwrap_or(9);

    header(
        "Table 2 — QPE on the 1-D transverse-field Ising model",
        "U = one Trotter step, G = 4n-3 gates; crossovers per paper section 3.3",
    );
    println!(
        "{:>4} {:>4} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "n", "G", "T_applyU", "T_build", "T_gemm", "T_eig", "x(RS)", "x(eig)"
    );

    // Throughput constants accumulated from measured rows for extrapolation.
    let mut gate_rate = f64::NAN; // amplitudes*gates per second
    let mut build_rate = f64::NAN; // entries*gates per second
    let mut gemm_flops = f64::NAN;
    let mut eig_flops = f64::NAN;

    for n in min_n..=max_n {
        let g = tfim_gate_count(n);
        let dim_f = (2f64).powi(n as i32);
        let measured = n <= max_n_measured;

        let (t_apply, t_build, t_gemm, t_eig, star) = if measured {
            let circuit = tfim_trotter_step(n, TfimParams::default());
            let mut rng = StdRng::seed_from_u64(2016);
            let input = random_state(1 << n, &mut rng);

            // T_applyU.
            let (est, _) = time_once(|| {
                let mut sv = StateVector::from_amplitudes(input.clone());
                sv.apply_circuit(&circuit);
                std::hint::black_box(sv.amplitudes()[0]);
            });
            let reps = reps_for_budget(est, 0.5, 50);
            let t_apply = time_median(reps, || {
                let mut sv = StateVector::from_amplitudes(input.clone());
                sv.apply_circuit(&circuit);
                std::hint::black_box(sv.amplitudes()[0]);
            });

            // T_build (dense U).
            let (t_build, u) = time_once(|| circuit_to_dense(&circuit));

            // T_gemm.
            let (t_gemm, _) = time_once(|| std::hint::black_box(gemm(&u, &u)));

            // T_eig (optional).
            let t_eig = if n <= max_n_eig {
                let (t, e) = time_once(|| eig(&u));
                e.expect("eigensolver must converge on a unitary");
                Some(t)
            } else {
                None
            };

            gate_rate = g as f64 * dim_f / t_apply;
            build_rate = g as f64 * dim_f * dim_f / t_build;
            gemm_flops = 8.0 * dim_f.powi(3) / t_gemm;
            if let Some(te) = t_eig {
                eig_flops = 200.0 * dim_f.powi(3) / te;
            }

            let t_eig_value = t_eig.unwrap_or(200.0 * dim_f.powi(3) / eig_flops);
            let star = if t_eig.is_some() { " " } else { "e" };
            (t_apply, t_build, t_gemm, t_eig_value, star)
        } else {
            // Extrapolate from the last measured constants.
            let t_apply = g as f64 * dim_f / gate_rate;
            let t_build = g as f64 * dim_f * dim_f / build_rate;
            let t_gemm = 8.0 * dim_f.powi(3) / gemm_flops;
            let t_eig = 200.0 * dim_f.powi(3) / eig_flops;
            (t_apply, t_build, t_gemm, t_eig, "*")
        };

        let timings = QpeTimings {
            n,
            g,
            t_apply_u: t_apply,
            t_build_dense: t_build,
            t_gemm,
            t_eig,
        };
        let x_rs = timings
            .crossover_repeated_squaring()
            .map(|b| b.to_string())
            .unwrap_or_else(|| ">64".into());
        let x_eig = timings
            .crossover_eigendecomposition()
            .map(|b| b.to_string())
            .unwrap_or_else(|| ">64".into());

        println!(
            "{:>3}{} {:>4} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
            n,
            star,
            g,
            fmt_secs(t_apply),
            fmt_secs(t_build),
            fmt_secs(t_gemm),
            fmt_secs(t_eig),
            x_rs,
            x_eig
        );
    }

    println!();
    println!("paper Table 2 (Xeon E5 + MKL)      crossover x(RS): 6 9 12 15 18 21 24");
    println!("for n = 8..14                       crossover x(eig): 10 12 14 15 18 19 21");
    println!();
    println!("legend: '*' = extrapolated from measured throughputs; 'e' = T_eig");
    println!("        extrapolated (eigensolver capped at --max-n-eig). Crossovers");
    println!("        computed as: smallest b with T_build + b*T_gemm < (2^b-1)*T_applyU");
    println!("        (repeated squaring) or T_build + T_eig < (2^b-1)*T_applyU (eigen).");
}

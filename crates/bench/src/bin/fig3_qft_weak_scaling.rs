//! **Figure 3**: QFT weak scaling — gate-level simulation vs FFT emulation.
//!
//! Two sections:
//! 1. **Executed** (reduced scale): the real distributed QFT circuit and
//!    distributed four-step FFT run on the virtual cluster (threads as
//!    ranks, default 2^18 amplitudes per rank, P = 1..8) — validating the
//!    actual code paths and their communication volumes.
//! 2. **Modelled** (paper scale): Eq. (5) and Eq. (6) evaluated on the
//!    paper's Stampede constants for n = 28..36, P = 2^(n−28), printing the
//!    same series as Fig. 3 (times in seconds, speedup 6–15×).
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig3_qft_weak_scaling
//!         [-- --n-local 18 --max-p 8]`

use qcemu_bench::{fmt_secs, header, Args};
use qcemu_cluster::{run_qft_emulation, run_qft_simulation, CommPolicy, MachineModel};

fn main() {
    let args = Args::parse();
    let n_local: usize = args.get("n-local").unwrap_or(18);
    let max_p: usize = args.get("max-p").unwrap_or(8);

    header(
        "Figure 3 — QFT weak scaling: simulation vs emulation (FFT)",
        "executed on the virtual cluster at reduced scale + modelled at paper scale",
    );

    println!("[executed] {n_local} local qubits per rank, ranks share this machine's cores");
    println!(
        "{:>3} {:>3} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "n", "P", "T_sim(wall)", "T_emu(wall)", "speedup", "commS(sim)", "commS(emu)"
    );
    let machine = MachineModel::stampede();
    let mut p = 1usize;
    while p <= max_p {
        let sim = run_qft_simulation(n_local, p, CommPolicy::Specialized, machine);
        let emu = run_qft_emulation(n_local, p, machine);
        println!(
            "{:>3} {:>3} {:>12} {:>12} {:>8.1}x {:>14} {:>14}",
            sim.n_qubits,
            p,
            fmt_secs(sim.max_wall_s),
            fmt_secs(emu.max_wall_s),
            sim.max_wall_s / emu.max_wall_s.max(1e-12),
            fmt_secs(sim.max_sim_comm_s),
            fmt_secs(emu.max_sim_comm_s),
        );
        p *= 2;
    }

    println!();
    println!("[modelled] paper scale on Stampede constants (Eq. 5 / Eq. 6), weak scaling");
    println!(
        "{:>3} {:>4} {:>12} {:>12} {:>9}   paper Fig. 3",
        "n", "P", "T_QFT", "T_FFT", "speedup"
    );
    for n in 28u32..=36 {
        let p = 1usize << (n - 28);
        let t_qft = machine.t_qft(n, p);
        let t_fft = machine.t_fft(n, p);
        let note = match n {
            28 => "~15x on 1 node (28*20/40 = 14 est.)",
            29 | 30 => "dip: FFT communicates more than QFT at small P",
            36 => "paper observes ~6x (network congestion)",
            _ => "",
        };
        println!(
            "{:>3} {:>4} {:>12} {:>12} {:>8.1}x   {}",
            n,
            p,
            fmt_secs(t_qft),
            fmt_secs(t_fft),
            t_qft / t_fft,
            note
        );
    }
    println!();
    println!("note: the executed section shares 2 physical cores among all ranks, so");
    println!("      wall times include contention; the communication columns use the");
    println!("      simulated interconnect clock. The modelled section is the paper's");
    println!("      own cost model with its Stampede constants.");
}

//! **Segment ablation**: per-gate sweeps vs greedy fusion vs the
//! cache-blocked segment executor on QFT, GHZ-entangling, and random
//! circuits at out-of-cache sizes.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin segment_ablation
//!         [-- --min-n 20 --max-n 22 --block-bits 14 --fuse-k 4 --json]`
//!
//! `--json` additionally writes `BENCH_segment_ablation.json`, a
//! machine-readable mirror of the printed table.
//!
//! No paper counterpart: the paper's simulator (§4.5) streams the state
//! once per gate. Fusion (PR 5) collapses *adjacent* gates into one
//! blocked sweep; segmentation goes further and replays a whole run of
//! compatible gates against one L2-sized block of amplitudes before
//! moving to the next block, so a depth-d compatible segment crosses
//! memory ~once instead of d times. Columns: measured wall time, speedup
//! over both baselines, the modelled streamed-traffic ratio, and the
//! segment census. The traffic model and reference numbers live in
//! `docs/PERFORMANCE.md` ("Cache-blocked segments").

use qcemu_bench::{fmt_secs, header, time_median, time_once, Args, BenchReport, JsonObj};
use qcemu_sim::{
    entangle_circuit, qft_circuit, segment_circuit, Circuit, FusionPolicy, Gate, StateVector,
    DEFAULT_BLOCK_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random circuit: a dense mix of diagonal, butterfly, and
/// controlled gates, biased toward low targets the way compiled arithmetic
/// kernels are, with enough high-qubit gates to force segment boundaries.
fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let q = rng.gen_range(0..n);
        match rng.gen_range(0..5u32) {
            0 => c.push(Gate::h(q)),
            1 => c.push(Gate::rz(q, rng.gen_range(0.0..std::f64::consts::PI))),
            2 => c.push(Gate::ry(q, rng.gen_range(0.0..std::f64::consts::PI))),
            3 => {
                let c2 = (q + 1 + rng.gen_range(0..n - 1)) % n;
                c.push(Gate::cphase(
                    c2,
                    q,
                    rng.gen_range(0.0..std::f64::consts::PI),
                ));
            }
            _ => {
                let c2 = (q + 1 + rng.gen_range(0..n - 1)) % n;
                c.push(Gate::cnot(c2, q));
            }
        }
    }
    c
}

fn main() {
    let args = Args::parse();
    let min_n: usize = args.get("min-n").unwrap_or(20);
    let max_n: usize = args.get("max-n").unwrap_or(22);
    let block_bits: usize = args.get("block-bits").unwrap_or(DEFAULT_BLOCK_BITS);
    let fuse_k: usize = args.get("fuse-k").unwrap_or(4);
    let mut report = BenchReport::new("segment_ablation");
    report.set_config(
        JsonObj::new()
            .int("min_n", min_n as u64)
            .int("max_n", max_n as u64)
            .int("block_bits", block_bits as u64)
            .int("fuse_k", fuse_k as u64),
    );

    header(
        "Segment ablation — per-gate sweeps vs fusion vs cache-blocked segments",
        "each blocked segment replays its gates against one L2-resident block per pass",
    );
    println!(
        "{:>3} {:<10} {:<9} {:>6} {:>12} {:>9} {:>9} {:>9} {:>16}",
        "n",
        "circuit",
        "mode",
        "depth",
        "time",
        "vs gate",
        "vs fused",
        "traffic",
        "segments (blk/swp)"
    );

    for n in min_n..=max_n {
        for (name, circuit) in [
            ("fig5-qft", qft_circuit(n)),
            ("fig6-ghz", entangle_circuit(n)),
            ("random", random_circuit(n, 3 * n, 0x5eed)),
        ] {
            let reps = if n <= 20 { 3 } else { 2 };
            let depth = circuit.depth();
            let unfused_traffic = circuit.touched_entries(n) as f64;

            let t_gate = time_median(reps, || {
                let mut sv = StateVector::uniform_superposition(n);
                sv.apply_circuit(&circuit);
                std::hint::black_box(sv.amplitudes()[0]);
            });
            println!(
                "{:>3} {:<10} {:<9} {:>6} {:>12} {:>8.2}x {:>8.2}x {:>9.3} {:>16}",
                n,
                name,
                "per-gate",
                depth,
                fmt_secs(t_gate),
                1.0,
                0.0,
                1.0,
                "-"
            );
            report.push(
                JsonObj::new()
                    .int("n", n as u64)
                    .str("circuit", name)
                    .str("mode", "per-gate")
                    .num("ns_per_op", t_gate * 1e9)
                    .num("speedup_vs_gate", 1.0)
                    .num("traffic_ratio", 1.0),
            );

            let policy = FusionPolicy::Greedy {
                max_fused_qubits: fuse_k,
            };
            let (t_fuse, fused) = time_once(|| circuit.fuse(&policy));
            let t_fused = time_median(reps, || {
                let mut sv = StateVector::uniform_superposition(n);
                sv.apply_fused_circuit(&fused);
                std::hint::black_box(sv.amplitudes()[0]);
            });
            println!(
                "{:>3} {:<10} {:<9} {:>6} {:>12} {:>8.2}x {:>8.2}x {:>9.3} {:>13} (fuse {})",
                n,
                name,
                "fused",
                fused.ops().len(),
                fmt_secs(t_fused),
                t_gate / t_fused,
                1.0,
                fused.touched_entries(n) as f64 / unfused_traffic,
                "-",
                fmt_secs(t_fuse),
            );
            report.push(
                JsonObj::new()
                    .int("n", n as u64)
                    .str("circuit", name)
                    .str("mode", "fused")
                    .num("ns_per_op", t_fused * 1e9)
                    .num("speedup_vs_gate", t_gate / t_fused)
                    .num(
                        "traffic_ratio",
                        fused.touched_entries(n) as f64 / unfused_traffic,
                    ),
            );

            let (t_seg_compile, seg) = time_once(|| segment_circuit(&circuit, block_bits, &policy));
            let t_seg = time_median(reps, || {
                let mut sv = StateVector::uniform_superposition(n);
                seg.apply_slice(sv.amplitudes_mut());
                std::hint::black_box(sv.amplitudes()[0]);
            });
            println!(
                "{:>3} {:<10} {:<9} {:>6} {:>12} {:>8.2}x {:>8.2}x {:>9.3} {:>11}/{} (seg {})",
                n,
                name,
                "segmented",
                seg.blocked_ops(),
                fmt_secs(t_seg),
                t_gate / t_seg,
                t_fused / t_seg,
                seg.streamed_entries(n) as f64 / unfused_traffic,
                seg.blocked_segments(),
                seg.sweep_segments(),
                fmt_secs(t_seg_compile),
            );
            report.push(
                JsonObj::new()
                    .int("n", n as u64)
                    .str("circuit", name)
                    .str("mode", "segmented")
                    .num("ns_per_op", t_seg * 1e9)
                    .num("speedup_vs_gate", t_gate / t_seg)
                    .num("speedup_vs_fused", t_fused / t_seg)
                    .num(
                        "traffic_ratio",
                        seg.streamed_entries(n) as f64 / unfused_traffic,
                    ),
            );
        }
    }
    report.write_if(args.has("json"));
    println!();
    println!("note: 'depth' is circuit depth for per-gate, executable blocks for fused,");
    println!("      and in-block replay ops for segmented; 'traffic' is the modelled");
    println!("      ratio of *streamed* state-vector entries to per-gate execution");
    println!("      (SegmentedCircuit::streamed_entries / Circuit::touched_entries).");
    println!("      Segmented runs additionally replay gates against resident blocks;");
    println!("      that in-cache term is costed separately by CostModel::cache_rate.");
    println!("      See docs/PERFORMANCE.md ('Cache-blocked segments') for the model.");
}

//! **Hybrid ablation**: fixed-backend execution (emulator, fused
//! gate-level simulator) versus the cost-model-driven `HybridExecutor`
//! on a mixed Shor-style workload — modular arithmetic, a raw entangling
//! gate run, a Grover-style check oracle, an amplitude-encoding rotation,
//! and the final (inverse) QFT before exact measurement readout.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin hybrid_ablation
//!         [-- --m 6 --reps 3]`
//!
//! No paper counterpart: the paper (§3.3, §4.4, Table 2) shows *neither*
//! backend wins everywhere and publishes per-workload crossovers; this
//! harness shows the planner turning that observation into per-op
//! dispatch. Expected shape: the hybrid wall time tracks
//! min(emulator, fused simulator) within noise — it emulates the
//! classical map, oracle, rotation and wide QFT (where the simulator
//! pays 2^ancilla memory and exponential expansions) while fusing the
//! raw gate run (where the emulator has no shortcut and pays one sweep
//! per gate). The per-op `PlanReport` (predicted vs measured) is printed
//! so every dispatch decision can be audited; see docs/PERFORMANCE.md
//! ("Choosing a backend") for reference numbers.

use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_core::{
    stdops, Emulator, Executor, GateLevelSimulator, HybridExecutor, ProgramBuilder, QuantumProgram,
    RotationOp,
};
use qcemu_sim::{Gate, StateVector};
use std::sync::Arc;

/// Mixed Shor-style program on 3m+1 qubits: counting register `x`,
/// constant multiplicand `y`, product `z`, rotation target `t`.
fn workload(m: usize) -> QuantumProgram {
    let mut pb = ProgramBuilder::new();
    let x = pb.register("x", m);
    let y = pb.register("y", m);
    let z = pb.register("z", m);
    let t = pb.register("t", 1);
    // Superposed counting register, constant multiplicand.
    pb.hadamard_all(x);
    pb.set_constant(y, 3);
    // Modular arithmetic: z ← x·y mod 2^m (the §3.1 shortcut's home turf;
    // the simulator runs the shift-and-add Toffoli network + 1 ancilla).
    pb.classical(stdops::multiply(x, y, z, m));
    // A raw entangling pass over the product and target — no shortcut
    // exists, so every executor pays gate-level cost; fusion decides how
    // many sweeps.
    pb.gates(|c| {
        let n = 3 * m + 1;
        for round in 0..3 {
            for q in 0..n - 1 {
                c.push(Gate::h(q));
                c.push(Gate::cnot(q, q + 1));
                c.push(Gate::phase(q + 1, 0.37 + 0.11 * round as f64));
            }
        }
    });
    // Grover-style check oracle on the product register.
    pb.phase_oracle(stdops::mark_value(z, 3, std::f64::consts::PI));
    // Amplitude-encoding rotation driven by the product value (quantum
    // Monte-Carlo flavour): per-value multi-controlled-Ry expansion on
    // the gate path, one sweep on the emulation path.
    pb.rotation(RotationOp {
        name: "encode".into(),
        x: z,
        target: t,
        angle: Arc::new(move |v| {
            let denom = (1u64 << m) as f64;
            2.0 * ((v as f64 / denom).sqrt()).asin()
        }),
        gate_impl: None,
    });
    // Shor's readout: inverse QFT on the counting register (wide → FFT
    // territory), then a narrow QFT+undo on y to give the planner a case
    // where fused gates beat the FFT.
    pb.inverse_qft(x);
    pb.qft(y);
    pb.inverse_qft(y);
    pb.build().unwrap()
}

fn main() {
    let args = Args::parse();
    let m: usize = args.get("m").unwrap_or(6);
    let reps: usize = args.get("reps").unwrap_or(3);
    let program = workload(m);
    let n = program.n_qubits();

    header(
        "Hybrid ablation — fixed backends vs cost-model per-op dispatch",
        "mixed Shor-style workload: modular multiply + gate run + oracle + rotation + QFTs",
    );
    println!(
        "m = {m} ({n} qubits, {} ops; simulator pays +{} ancilla qubit(s))\n",
        program.ops().len(),
        program.max_gate_ancillas()
    );

    let initial = StateVector::zero_state(n);
    let emulator = Emulator::new();
    let fused_sim = GateLevelSimulator::fused();
    let hybrid = HybridExecutor::new();
    // Measured host rates (pays a one-off ~100 ms micro-benchmark): with
    // SIMD kernels the fused/dense rates move more than the table rates,
    // so calibrated dispatch can differ from the default model's.
    let calibrated = HybridExecutor::calibrated();

    // Correctness first: all three must produce the same state, and the
    // exact §3.4 measurement readout over x must agree.
    let ref_state = emulator.run(&program, initial.clone()).unwrap();
    let sim_state = fused_sim.run(&program, initial.clone()).unwrap();
    let (hyb_state, report) = hybrid.run_with_report(&program, initial.clone()).unwrap();
    let cal_state = calibrated.run(&program, initial.clone()).unwrap();
    let x_bits: Vec<usize> = (0..m).collect();
    let ref_dist = ref_state.register_distribution(&x_bits);
    for (name, state) in [
        ("fused sim", &sim_state),
        ("hybrid", &hyb_state),
        ("hybrid calibrated", &cal_state),
    ] {
        let diff = ref_state.max_diff_up_to_phase(state);
        assert!(diff < 1e-9, "{name} deviates by {diff:.3e}");
        let dist = state.register_distribution(&x_bits);
        let tv: f64 = ref_dist
            .iter()
            .zip(&dist)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 1e-10, "{name} measurement statistics deviate");
    }
    println!("all executors agree (≤1e-9); measurement statistics identical\n");

    println!("{:<22} {:>12} {:>9}", "executor", "wall time", "vs best");
    let mut rows = Vec::new();
    for (name, exec) in [
        ("emulator", &emulator as &dyn Executor),
        ("fused simulator", &fused_sim),
        ("hybrid", &hybrid),
        ("hybrid calibrated", &calibrated),
    ] {
        let t = time_median(reps, || {
            let out = exec.run(&program, initial.clone()).unwrap();
            std::hint::black_box(out.amplitudes()[0]);
        });
        rows.push((name, t));
    }
    let best_fixed = rows[0].1.min(rows[1].1);
    for (name, t) in &rows {
        println!("{:<22} {:>12} {:>8.2}x", name, fmt_secs(*t), t / best_fixed);
    }
    let hybrid_t = rows[2].1;
    println!(
        "\nhybrid vs min(fixed) = {:.2}x  ({} vs {})\n",
        hybrid_t / best_fixed,
        fmt_secs(hybrid_t),
        fmt_secs(best_fixed)
    );

    println!("hybrid plan report (per-op backend, predicted vs measured):");
    println!("{report}");
    println!();
    println!("note: predictions are model seconds on the CostModel's synthetic");
    println!("      machine — compare their *ordering* per op, not the scale.");
    println!("      The emulator runs the raw gate run unfused (one sweep per");
    println!("      gate); the fused simulator pays the multiply's Toffoli");
    println!("      network, the rotation's per-value expansion, and 2^ancilla");
    println!("      memory. The hybrid takes the cheaper side of each.");
    println!("      'hybrid calibrated' plans from measured host rates");
    println!("      (CostModel::calibrated); both hybrid rows reuse their");
    println!("      memoised plan across the timed repetitions, so planning");
    println!("      and fusion are paid once per program, not once per run.");
}

//! **Fusion ablation**: unfused gate-by-gate application vs the gate-fusion
//! engine at block widths k ∈ {2..5}, on the paper's Fig. 5 (QFT) and
//! Fig. 6 (entangling) circuits.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fusion_ablation
//!         [-- --min-n 20 --max-n 21 --min-k 2 --max-k 5]`
//!
//! No paper counterpart: the paper's simulator (§4.5) applies one gate per
//! state sweep; this harness quantifies what the qHiPSTER-class fusion
//! layer adds on top. Columns: measured wall time, speedup over unfused,
//! the traffic model's predicted entry-write ratio, and the block census.
//! How to read the output (and the memory-traffic model behind the
//! `traffic` column) is documented in `docs/PERFORMANCE.md`.

use qcemu_bench::{fmt_secs, header, time_median, time_once, Args};
use qcemu_sim::{entangle_circuit, qft_circuit, FusionPolicy, StateVector};

fn main() {
    let args = Args::parse();
    let min_n: usize = args.get("min-n").unwrap_or(20);
    let max_n: usize = args.get("max-n").unwrap_or(21);
    let min_k: usize = args.get("min-k").unwrap_or(2);
    let max_k: usize = args.get("max-k").unwrap_or(5);

    header(
        "Fusion ablation — unfused vs greedy gate fusion at k = 2..5",
        "one blocked sweep per fused run of gates, vs one sweep per gate (Fig. 5/6 circuits)",
    );
    println!(
        "{:>3} {:<9} {:>5} {:>7} {:>12} {:>9} {:>9} {:>22}",
        "n", "circuit", "k", "sweeps", "time", "speedup", "traffic", "blocks (diag/perm/gen)"
    );

    for n in min_n..=max_n {
        for (name, circuit) in [
            ("fig5-qft", qft_circuit(n)),
            ("fig6-ghz", entangle_circuit(n)),
        ] {
            let reps = if n <= 20 { 3 } else { 2 };
            let unfused_traffic = circuit.fuse(&FusionPolicy::Disabled).touched_entries(n) as f64;

            let t_unfused = time_median(reps, || {
                let mut sv = StateVector::uniform_superposition(n);
                sv.apply_circuit(&circuit);
                std::hint::black_box(sv.amplitudes()[0]);
            });
            println!(
                "{:>3} {:<9} {:>5} {:>7} {:>12} {:>8.2}x {:>9.3} {:>22}",
                n,
                name,
                "-",
                circuit.gate_count(),
                fmt_secs(t_unfused),
                1.0,
                1.0,
                "-"
            );

            for k in min_k..=max_k {
                let policy = FusionPolicy::Greedy {
                    max_fused_qubits: k,
                };
                // Fusion (compose + classify) is paid once per circuit and
                // amortised over reps — reported via `fuse` below.
                let (t_fuse, fused) = time_once(|| circuit.fuse(&policy));
                let census = fused.census();
                let t_fused = time_median(reps, || {
                    let mut sv = StateVector::uniform_superposition(n);
                    sv.apply_fused_circuit(&fused);
                    std::hint::black_box(sv.amplitudes()[0]);
                });
                println!(
                    "{:>3} {:<9} {:>5} {:>7} {:>12} {:>8.2}x {:>9.3} {:>15}/{}/{}  (fuse {})",
                    n,
                    name,
                    k,
                    census.total_ops(),
                    fmt_secs(t_fused),
                    t_unfused / t_fused,
                    fused.touched_entries(n) as f64 / unfused_traffic,
                    census.diagonal_blocks,
                    census.permutation_blocks,
                    census.general_blocks + census.dense_blocks,
                    fmt_secs(t_fuse),
                );
            }
        }
    }
    println!();
    println!("note: 'sweeps' counts executable ops (gates, or blocks after fusion);");
    println!("      'traffic' is the modelled ratio of state-vector entries written");
    println!("      (FusedCircuit::touched_entries / sum of per-gate touched_entries).");
    println!("      Fused runs replay each block's gates on an L1-resident 2^k buffer,");
    println!("      so flops match unfused execution while memory passes shrink.");
    println!("      See docs/PERFORMANCE.md for the model and reference numbers.");
}

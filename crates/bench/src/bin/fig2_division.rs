//! **Figure 2**: time per integer division of two m-qubit numbers —
//! restoring divider on 4m+3 qubits (simulation) versus the direct
//! divmod map on 4m qubits (emulation).
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig2_division
//!         [-- --min-m 2 --max-m-sim 5 --max-m-emu 7]`
//!
//! Paper reference (Fig. 2): speedups of 100× to beyond 10⁴×, larger than
//! multiplication because the divider needs extra work qubits ("the test
//! for less/equal by checking for overflow"), and the simulable size is
//! memory-capped earlier (paper stops at m = 7).

use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_core::{stdops, Emulator, Executor, GateLevelSimulator, ProgramBuilder};
use qcemu_sim::{Gate, StateVector};

fn main() {
    let args = Args::parse();
    let min_m: usize = args.get("min-m").unwrap_or(2);
    let max_m_sim: usize = args.get("max-m-sim").unwrap_or(5);
    let max_m_emu: usize = args.get("max-m-emu").unwrap_or(7);
    let max_m = max_m_sim.max(max_m_emu);

    header(
        "Figure 2 — division: simulation vs emulation",
        "workload: a uniform, b uniform over 1..2^m; (a,b,0,0) -> (a, b, a/b, a%b)",
    );
    println!(
        "{:>3} {:>8} {:>7} {:>14} {:>14} {:>9}",
        "m", "n(sim)", "gates", "T_sim", "T_emu", "speedup"
    );

    for m in min_m..=max_m {
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let q = pb.register("q", m);
        let r = pb.register("r", m);
        pb.classical(stdops::divide(a, b, q, r, m));
        let program = pb.build().expect("valid program");
        let n = program.n_qubits();

        // a uniform; b uniform (divider semantics are defined for b = 0 too,
        // both paths agree bit-for-bit, so the full superposition is fine).
        let mut initial = StateVector::zero_state(n);
        for qb in 0..2 * m {
            initial.apply(&Gate::h(qb));
        }

        let gates = qcemu_revarith::divider(m).circuit.gate_count();

        let t_sim = if m <= max_m_sim {
            let sim = GateLevelSimulator::elementary();
            let reps = if m <= 4 { 3 } else { 1 };
            Some(time_median(reps, || {
                let out = sim.run(&program, initial.clone()).expect("sim ok");
                std::hint::black_box(out.amplitudes()[0]);
            }))
        } else {
            None
        };

        let t_emu = if m <= max_m_emu {
            let emu = Emulator::new();
            let reps = if m <= 6 { 9 } else { 3 };
            Some(time_median(reps, || {
                let out = emu.run(&program, initial.clone()).expect("emu ok");
                std::hint::black_box(out.amplitudes()[0]);
            }))
        } else {
            None
        };

        let speedup = match (t_sim, t_emu) {
            (Some(s), Some(e)) if e > 0.0 => format!("{:8.1}x", s / e),
            _ => "       -".into(),
        };
        println!(
            "{:>3} {:>8} {:>7} {:>14} {:>14} {}",
            m,
            format!("{}+3", 4 * m),
            gates,
            t_sim.map(fmt_secs).unwrap_or_else(|| "-".into()),
            t_emu.map(fmt_secs).unwrap_or_else(|| "-".into()),
            speedup
        );
    }
    println!();
    println!("note: the divider's three work qubits put simulation at 2^(4m+3)");
    println!("      amplitudes vs the emulator's 2^(4m): an 8x memory gap on top of");
    println!("      the O(m^2) Toffoli-network gate count. Paper Fig. 2: 100x-10^4x.");
}

//! **Figure 5**: single-node QFT — our simulator vs qHiPSTER-like vs
//! LIQUiD-like, n = 18..22 qubits.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig5_qft_single_node
//!         [-- --min-n 18 --max-n 21 --skip-liquid]`
//!
//! Paper reference: our simulator ≈ 1.2–2× faster than qHiPSTER and
//! ≈ 10–14× faster than LIQUi|⟩ on this range.

use qcemu_baselines::{LiquidSim, QhipsterSim};
use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::StateVector;

fn main() {
    let args = Args::parse();
    let min_n: usize = args.get("min-n").unwrap_or(18);
    let max_n: usize = args.get("max-n").unwrap_or(21);
    let skip_liquid = args.has("skip-liquid");

    header(
        "Figure 5 — single-node QFT: ours vs qHiPSTER-like vs LIQUiD-like",
        "same state-vector layout; only the kernel/architecture strategy differs",
    );
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "ours", "qHiPSTER", "LIQUiD", "vs qHiP", "vs LIQUiD"
    );

    for n in min_n..=max_n {
        let circuit = qft_circuit(n);
        let reps = if n <= 19 { 3 } else { 1 };

        let t_ours = time_median(reps, || {
            let mut sv = StateVector::uniform_superposition(n);
            sv.apply_circuit(&circuit);
            std::hint::black_box(sv.amplitudes()[0]);
        });

        let qhip = QhipsterSim::new();
        let t_qhip = time_median(reps, || {
            let mut sv = StateVector::uniform_superposition(n);
            qhip.run(&circuit, &mut sv);
            std::hint::black_box(sv.amplitudes()[0]);
        });

        let t_liq = if skip_liquid {
            None
        } else {
            let liq = LiquidSim::new();
            Some(time_median(1, || {
                let mut sv = StateVector::uniform_superposition(n);
                liq.run(&circuit, &mut sv);
                std::hint::black_box(sv.amplitudes()[0]);
            }))
        };

        println!(
            "{:>3} {:>12} {:>12} {:>12} {:>11.2}x {:>11}",
            n,
            fmt_secs(t_ours),
            fmt_secs(t_qhip),
            t_liq.map(fmt_secs).unwrap_or_else(|| "-".into()),
            t_qhip / t_ours,
            t_liq
                .map(|t| format!("{:.2}x", t / t_ours))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!();
    println!("note: 'ours' exploits gate structure (controlled phases touch 1/4 of the");
    println!("      state, controls compress the index space); qHiPSTER-like runs a");
    println!("      dense 2x2 kernel over every pair; LIQUiD-like applies boxed gate");
    println!("      matrices single-threaded with fusion. Paper Fig. 5: ~1.2-2x and");
    println!("      ~10-14x respectively.");
}

//! **Pool ablation**: the persistent worker pool behind the rayon shim
//! vs the legacy spawn-per-call dispatch it replaced.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin pool_ablation
//!         [-- --min-n 16 --max-n 22 --e2e-n 20 --quick --json]`
//!
//! `--json` additionally writes `BENCH_pool_ablation.json`; `--quick`
//! shrinks every leg to CI-friendly sizes (the CI step runs
//! `--quick --json` under `QCEMU_THREADS=4`).
//!
//! Four legs, one table each:
//!
//! 1. **dispatch** — a minimal parallel region (two indices, empty body)
//!    timed back-to-back: pure per-call overhead. The pool hands the job
//!    to already-parked workers over a condvar; the baseline pays thread
//!    creation + join every call. The ratio is the headline number the
//!    calibrated `CostModel::dispatch_overhead` feeds on.
//! 2. **scaling** — butterfly-sweep rate (one H per qubit) at n in
//!    `--min-n ..= --max-n` under 1/2/4-thread installs. On a machine
//!    with that many cores the rate curve is the thread-scaling factor;
//!    on an oversubscribed runner it documents that oversubscription is
//!    at worst neutral.
//! 3. **e2e** — deep above-threshold circuits (QFT and the GHZ ladder
//!    at `--e2e-n`) wall-to-wall, pool vs spawn-per-call.
//! 4. **serve** — an in-process daemon serving a concurrent sweep (the
//!    `serve_demo` workload), pool vs spawn-per-call, since the daemon
//!    is the one consumer that dispatches from several OS threads into
//!    the single process-wide pool.
//!
//! All numbers are host-dependent; the committed `BENCH_pool_ablation.json`
//! records the trend on the CI runner, not an absolute claim. Ends by
//! printing the pool counters (`rayon::pool::stats()`), and honours
//! `QCEMU_POOL_DEBUG` like every other consumer.

use qcemu_bench::{fmt_secs, header, time_median, Args, BenchReport, JsonObj};
use qcemu_serve::{
    AdmissionPolicy, EmuClient, EmuServer, ServerConfig, SubmitOptions, WireOp, WireProgram,
    WireRegister,
};
use qcemu_sim::{entangle_circuit, qft_circuit, Circuit, Gate, StateVector};
use rayon::prelude::*;
use std::time::Duration;

/// One butterfly sweep per qubit: n disjoint-pair sweeps over 2^n
/// entries each, the exact shape `CostModel` calibration prices.
fn butterfly_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::h(q));
    }
    c
}

/// Seconds per dispatch of a minimal parallel region, amortised over
/// `batch` back-to-back calls. With `spawn` the legacy scoped-spawn
/// path is forced; otherwise the persistent pool serves the calls.
fn dispatch_seconds(reps: usize, batch: usize, spawn: bool) -> f64 {
    rayon::pool::force_spawn_per_call(spawn);
    let t = time_median(reps, || {
        for _ in 0..batch {
            (0..2usize).into_par_iter().for_each(|i| {
                std::hint::black_box(i);
            });
        }
    });
    rayon::pool::force_spawn_per_call(false);
    t / batch as f64
}

/// Wall time of one full state-vector run of `circuit`, with the
/// dispatch mode forced for the duration.
fn e2e_seconds(reps: usize, circuit: &Circuit, spawn: bool) -> f64 {
    rayon::pool::force_spawn_per_call(spawn);
    let n = circuit.n_qubits();
    let t = time_median(reps, || {
        let mut sv = StateVector::uniform_superposition(n);
        sv.apply_circuit(circuit);
        std::hint::black_box(sv.amplitudes()[0]);
    });
    rayon::pool::force_spawn_per_call(false);
    t
}

/// The serve_demo sweep body widened to the admission limit: identical
/// structure per slope, so the daemon lowers once and coalesces
/// concurrent arrivals.
fn sweep_program(slope: f64) -> WireProgram {
    WireProgram {
        registers: vec![
            WireRegister {
                name: "x".into(),
                len: 9,
            },
            WireRegister {
                name: "ind".into(),
                len: 1,
            },
        ],
        ops: vec![
            WireOp::Hadamard(0),
            WireOp::Rotation {
                x: 0,
                target: 1,
                slope,
                intercept: 0.1,
            },
            WireOp::Qft(0),
            WireOp::InverseQft(0),
        ],
    }
}

/// Median wall time (over `reps` fresh daemons) for `clients`
/// concurrent tenants sweeping the rotation slope, with the dispatch
/// mode forced for each server's whole lifetime. Medianed because one
/// run is a couple of milliseconds — connection setup noise is real.
fn serve_seconds(reps: usize, clients: usize, spawn: bool) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| serve_once(clients, spawn))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// One daemon lifetime: bind, serve the sweep, shut down.
fn serve_once(clients: usize, spawn: bool) -> f64 {
    rayon::pool::force_spawn_per_call(spawn);
    // The sweep states are small (2^10 amplitudes), so the kernel
    // parallel threshold is forced to 1: every sweep becomes a real
    // dispatch from the daemon's worker threads — the per-call-overhead
    // regime the persistent pool exists for.
    let config = ServerConfig {
        workers: 2,
        batch_window: Duration::from_millis(5),
        policy: AdmissionPolicy {
            max_qubits: 10,
            ..AdmissionPolicy::default()
        },
        config: qcemu_sim::SimConfig::fused(qcemu_sim::DEFAULT_MAX_FUSED_QUBITS)
            .with_par_threshold(1),
        ..ServerConfig::default()
    };
    let handle = EmuServer::bind("127.0.0.1:0", config)
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();
    let options = SubmitOptions {
        shots: 8,
        seed: 42,
        want_amplitudes: false,
    };

    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for i in 0..clients {
            scope.spawn(move || {
                let program = sweep_program(0.2 + 0.1 * i as f64);
                let mut client = EmuClient::connect(addr).expect("connect");
                client.submit(&program, &options).expect("submit");
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    handle.shutdown();
    rayon::pool::force_spawn_per_call(false);
    elapsed
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let min_n: usize = args.get("min-n").unwrap_or(16);
    let max_n: usize = args.get("max-n").unwrap_or(if quick { 18 } else { 22 });
    let e2e_n: usize = args.get("e2e-n").unwrap_or(if quick { 18 } else { 20 });
    let batch: usize = args.get("batch").unwrap_or(if quick { 64 } else { 256 });
    let reps = if quick { 3 } else { 5 };
    let clients = if quick { 4 } else { 8 };

    let mut report = BenchReport::new("pool_ablation");
    report.set_config(
        JsonObj::new()
            .int("min_n", min_n as u64)
            .int("max_n", max_n as u64)
            .int("e2e_n", e2e_n as u64)
            .int("dispatch_batch", batch as u64)
            .int("threads", rayon::pool::stats().threads as u64)
            .str("quick", if quick { "yes" } else { "no" }),
    );

    header(
        "Pool ablation — persistent worker pool vs spawn-per-call dispatch",
        "same rayon-compatible surface, same disjoint-block contract, different engine",
    );

    // ---- leg 1: dispatch latency -------------------------------------
    rayon::pool::warm_up();
    let t_pool = dispatch_seconds(reps, batch, false);
    let t_spawn = dispatch_seconds(reps, batch, true);
    let ratio = t_spawn / t_pool.max(1e-12);
    println!("\ndispatch latency (minimal region, {batch}-call batches):");
    println!(
        "  {:<16} {:>12}\n  {:<16} {:>12}\n  {:<16} {:>11.1}x",
        "pool",
        fmt_secs(t_pool),
        "spawn-per-call",
        fmt_secs(t_spawn),
        "overhead ratio",
        ratio
    );
    if rayon::pool::stats().threads <= 1 {
        println!("  (single-thread pool: both paths run inline; ratio is ~1 by design)");
    }
    report.push(
        JsonObj::new()
            .str("section", "dispatch")
            .num("ns_per_op", t_pool * 1e9)
            .num("spawn_ns_per_op", t_spawn * 1e9)
            .num("overhead_ratio", ratio),
    );

    // ---- leg 2: thread-scaling curves --------------------------------
    println!("\nbutterfly sweep rate under forced thread budgets:");
    println!(
        "  {:>3} {:>8} {:>12} {:>14} {:>9}",
        "n", "threads", "time", "entries/s", "vs t=1"
    );
    for n in min_n..=max_n {
        let circuit = butterfly_circuit(n);
        let entries = (n as f64) * (1u64 << n) as f64;
        let mut t_serial = 0.0;
        for threads in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let t = pool.install(|| e2e_seconds(reps.min(3), &circuit, false));
            if threads == 1 {
                t_serial = t;
            }
            let speedup = t_serial / t.max(1e-12);
            println!(
                "  {:>3} {:>8} {:>12} {:>14.3e} {:>8.2}x",
                n,
                threads,
                fmt_secs(t),
                entries / t,
                speedup
            );
            report.push(
                JsonObj::new()
                    .str("section", "scaling")
                    .int("n", n as u64)
                    .int("threads", threads as u64)
                    .num("ns_per_op", t * 1e9)
                    .num("entries_per_s", entries / t)
                    .num("speedup_vs_1t", speedup),
            );
        }
    }

    // ---- leg 3: end-to-end circuits ----------------------------------
    println!("\nend-to-end deep circuits at n = {e2e_n} (pool vs spawn-per-call):");
    println!(
        "  {:<10} {:>6} {:>12} {:>12} {:>9}",
        "circuit", "depth", "pool", "spawn", "speedup"
    );
    for (name, circuit) in [
        ("fig5-qft", qft_circuit(e2e_n)),
        ("fig6-ghz", entangle_circuit(e2e_n)),
    ] {
        let t_pool = e2e_seconds(reps.min(3), &circuit, false);
        let t_spawn = e2e_seconds(reps.min(3), &circuit, true);
        let speedup = t_spawn / t_pool.max(1e-12);
        println!(
            "  {:<10} {:>6} {:>12} {:>12} {:>8.2}x",
            name,
            circuit.depth(),
            fmt_secs(t_pool),
            fmt_secs(t_spawn),
            speedup
        );
        report.push(
            JsonObj::new()
                .str("section", "e2e")
                .str("circuit", name)
                .int("n", e2e_n as u64)
                .int("depth", circuit.depth() as u64)
                .num("ns_per_op", t_pool * 1e9)
                .num("spawn_ns_per_op", t_spawn * 1e9)
                .num("speedup", speedup),
        );
    }

    // ---- leg 4: serve workload ---------------------------------------
    println!("\nserve workload ({clients} concurrent tenants, one sweep each):");
    let s_pool = serve_seconds(reps.min(3), clients, false);
    let s_spawn = serve_seconds(reps.min(3), clients, true);
    let s_speedup = s_spawn / s_pool.max(1e-12);
    println!(
        "  {:<16} {:>12}\n  {:<16} {:>12}\n  {:<16} {:>11.2}x",
        "pool",
        fmt_secs(s_pool),
        "spawn-per-call",
        fmt_secs(s_spawn),
        "speedup",
        s_speedup
    );
    report.push(
        JsonObj::new()
            .str("section", "serve")
            .int("clients", clients as u64)
            .num("ns_per_op", s_pool * 1e9)
            .num("spawn_ns_per_op", s_spawn * 1e9)
            .num("speedup", s_speedup),
    );

    // ---- pool counters -----------------------------------------------
    let stats = rayon::pool::stats();
    println!(
        "\npool counters: threads={} dispatched={} stolen={} parks={} wakeups={} peak={}",
        stats.threads,
        stats.tasks_dispatched,
        stats.blocks_stolen,
        stats.parks,
        stats.wakeups,
        stats.peak_workers
    );
    report.push(
        JsonObj::new()
            .str("section", "pool_stats")
            .int("threads", stats.threads as u64)
            .int("tasks_dispatched", stats.tasks_dispatched)
            .int("blocks_stolen", stats.blocks_stolen)
            .int("parks", stats.parks)
            .int("wakeups", stats.wakeups)
            .int("peak_workers", stats.peak_workers),
    );

    report.write_if(args.has("json"));
    rayon::pool::dump_stats_if_debug();
}

//! **Figure 1**: time per multiplication of two m-qubit numbers into a
//! third register — gate-level simulation (Cuccaro shift-and-add network on
//! 3m+1 qubits) versus emulation (basis-state relabelling on 3m qubits).
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig1_multiplication
//!         [-- --min-m 2 --max-m-sim 7 --max-m-emu 9]`
//!
//! Paper reference (Fig. 1): speedups of roughly 100–500× over m = 2..10,
//! growing with m. Absolute numbers differ (their Xeon E5-2697v2 vs this
//! host) but the shape — emulation flat-ish in m while simulation grows by
//! ~8× per extra bit (state doubles ×3, gates grow ~quadratically) — is
//! machine independent.

use qcemu_bench::{fmt_secs, header, time_median, Args};
use qcemu_core::{stdops, Emulator, Executor, GateLevelSimulator, ProgramBuilder};
use qcemu_sim::{Gate, StateVector};

fn main() {
    let args = Args::parse();
    let min_m: usize = args.get("min-m").unwrap_or(2);
    let max_m_sim: usize = args.get("max-m-sim").unwrap_or(7);
    let max_m_emu: usize = args.get("max-m-emu").unwrap_or(9);
    let max_m = max_m_sim.max(max_m_emu);

    header(
        "Figure 1 — multiplication: simulation vs emulation",
        "workload: a, b uniform superposition; (a, b, 0) -> (a, b, a*b mod 2^m)",
    );
    println!(
        "{:>3} {:>8} {:>7} {:>14} {:>14} {:>9}",
        "m", "n(sim)", "gates", "T_sim", "T_emu", "speedup"
    );

    for m in min_m..=max_m {
        // Program: registers a, b, c; single multiply op.
        let mut pb = ProgramBuilder::new();
        let a = pb.register("a", m);
        let b = pb.register("b", m);
        let c = pb.register("c", m);
        pb.classical(stdops::multiply(a, b, c, m));
        let program = pb.build().expect("valid program");
        let n = program.n_qubits();

        // Prepare the input state once (uniform superposition on a and b),
        // outside the timers.
        let mut initial = StateVector::zero_state(n);
        for q in 0..2 * m {
            initial.apply(&Gate::h(q));
        }

        let gates = qcemu_revarith::multiplier(m).circuit.gate_count();

        let t_sim = if m <= max_m_sim {
            let sim = GateLevelSimulator::elementary();
            let reps = if m <= 5 { 5 } else { 1 };
            let t = time_median(reps, || {
                let out = sim.run(&program, initial.clone()).expect("sim ok");
                std::hint::black_box(out.amplitudes()[0]);
            });
            Some(t)
        } else {
            None
        };

        let t_emu = if m <= max_m_emu {
            let emu = Emulator::new();
            let reps = if m <= 6 { 9 } else { 3 };
            let t = time_median(reps, || {
                let out = emu.run(&program, initial.clone()).expect("emu ok");
                std::hint::black_box(out.amplitudes()[0]);
            });
            Some(t)
        } else {
            None
        };

        let speedup = match (t_sim, t_emu) {
            (Some(s), Some(e)) if e > 0.0 => format!("{:8.1}x", s / e),
            _ => "       -".into(),
        };
        println!(
            "{:>3} {:>8} {:>7} {:>14} {:>14} {}",
            m,
            format!("{}+1", 3 * m),
            gates,
            t_sim.map(fmt_secs).unwrap_or_else(|| "-".into()),
            t_emu.map(fmt_secs).unwrap_or_else(|| "-".into()),
            speedup
        );
    }
    println!();
    println!("note: T_sim includes the 2^(3m+1)-amplitude state the ancilla forces;");
    println!("      T_emu works on 2^(3m). Paper Fig. 1 reports 100-500x at m = 2..10.");
}

//! **Serving throughput**: request latency through the `qcemu-serve`
//! daemon on a 17-qubit mixed workload (arithmetic + rotation + QFT),
//! comparing three regimes:
//!
//! * **cold-plan** — every request is a structurally *distinct* program
//!   (fresh register names), so each one pays the full lowering:
//!   cost-model dispatch, reversible-circuit synthesis for the
//!   arithmetic ops, gate fusion.
//! * **warm-cache** — every request shares one structure (a parameter
//!   sweep): after the first lowering, the cross-request plan cache
//!   serves all of them, and each request pays execution only.
//! * **batched** — the same sweep submitted concurrently: the worker
//!   coalesces structurally identical in-flight jobs into one
//!   [`qcemu_core::BatchExecutor`] run inside the batching window.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin serve_throughput
//!         [-- --m 4 --requests 24]`
//!
//! Expected shape: warm-cache latency ≥ 2× better than cold-plan (the
//! lowering dominates small-program serving), with batched at least
//! matching warm on per-request wall time. These are the numbers behind
//! the serving table in `docs/PERFORMANCE.md`.

use qcemu_bench::{fmt_secs, header, time_once, Args};
use qcemu_serve::{
    AdmissionPolicy, EmuClient, EmuServer, ServerConfig, SubmitOptions, WireOp, WireProgram,
    WireRegister,
};
use qcemu_sim::{Gate, GateOp};
use std::thread;
use std::time::Duration;

/// The mixed workload: registers `a,b,c,r` of `m` qubits plus a 1-qubit
/// indicator (`4m + 1` total, 17 at the default `m = 4`). Two Hadamard
/// preps, two deep local gate runs (Trotter-style: `depth` gates each,
/// confined to one register's support — the fusion engine collapses each
/// run into a single dense block, so the matrix-product chain is paid at
/// *plan* time and execution replays one block), a multiply and an add
/// (reversible synthesis at plan time), a parameter-carrying rotation,
/// and a QFT⁻¹·QFT pair on the accumulator.
fn deep_local_runs(m: usize, depth: usize) -> Vec<Gate> {
    let mut gates = Vec::with_capacity(2 * depth);
    for block in 0..2usize {
        let base = block * m;
        for i in 0..depth {
            let q = base + (i % m);
            let q2 = base + ((i + 1) % m);
            gates.push(match i % 3 {
                0 => Gate::Unary {
                    op: GateOp::Rz(0.01 * i as f64),
                    target: q,
                    controls: Vec::new(),
                },
                1 => Gate::Unary {
                    op: GateOp::H,
                    target: q,
                    controls: Vec::new(),
                },
                _ => Gate::Unary {
                    op: GateOp::X,
                    target: q2,
                    controls: vec![q],
                },
            });
        }
    }
    gates
}

fn workload(tag: &str, m: usize, depth: usize, slope: f64) -> WireProgram {
    let reg = |name: &str| WireRegister {
        name: format!("{name}{tag}"),
        len: m as u32,
    };
    WireProgram {
        registers: vec![
            reg("a"),
            reg("b"),
            reg("c"),
            reg("r"),
            WireRegister {
                name: format!("ind{tag}"),
                len: 1,
            },
        ],
        ops: vec![
            WireOp::Hadamard(0),
            WireOp::Hadamard(1),
            WireOp::Gates(deep_local_runs(m, depth)),
            WireOp::Multiply { a: 0, b: 1, c: 2 },
            WireOp::Add { a: 2, b: 3 },
            WireOp::Rotation {
                x: 0,
                target: 4,
                slope,
                intercept: 0.05,
            },
            WireOp::Qft(2),
            WireOp::InverseQft(2),
        ],
    }
}

fn server_config(batch_window: Duration) -> ServerConfig {
    ServerConfig {
        workers: 1,
        batch_window,
        policy: AdmissionPolicy {
            max_qubits: 26,
            max_cost_s: f64::INFINITY,
            ..AdmissionPolicy::default()
        },
        plan_cache_capacity: 64,
        ..ServerConfig::default()
    }
}

fn main() {
    let args = Args::parse();
    let m: usize = args.get("m").unwrap_or(4);
    let requests: usize = args.get("requests").unwrap_or(24);
    let depth: usize = args.get("depth").unwrap_or(45_000);
    let n_qubits = 4 * m + 1;
    header(
        "serve_throughput",
        &format!("{n_qubits}-qubit mixed workload (2x{depth}-deep local runs), {requests} requests per mode"),
    );

    let options = SubmitOptions {
        shots: 16,
        seed: 7,
        want_amplitudes: false,
    };

    // Workload generation and wire encoding (tens of MB of gate lists)
    // happen outside every timed window — the bench measures serving
    // cost (transfer, decode, admission, planning, execution), not
    // client-side program construction.
    let encode = |p: &WireProgram| qcemu_serve::wire::encode_submit(p, &options);
    let cold_payloads: Vec<Vec<u8>> = (0..requests)
        .map(|i| encode(&workload(&format!("-{i}"), m, depth, 0.3)))
        .collect();
    let sweep_payloads: Vec<Vec<u8>> = (0..requests)
        .map(|i| encode(&workload("", m, depth, 0.3 + 0.01 * i as f64)))
        .collect();
    let warm_up = encode(&workload("", m, depth, 0.0));

    // --- cold-plan: every request a fresh structure -------------------
    let handle = EmuServer::bind("127.0.0.1:0", server_config(Duration::ZERO))
        .expect("bind")
        .start()
        .expect("start");
    let mut client = EmuClient::connect(handle.addr()).expect("connect");
    let (cold_s, _) = time_once(|| {
        for p in &cold_payloads {
            client.submit_encoded(p).expect("cold submit");
        }
    });
    let cold_stats = handle.stats();
    handle.shutdown();

    // --- warm-cache: one structure, a parameter sweep -----------------
    let handle = EmuServer::bind("127.0.0.1:0", server_config(Duration::ZERO))
        .expect("bind")
        .start()
        .expect("start");
    let mut client = EmuClient::connect(handle.addr()).expect("connect");
    // Pay the single lowering outside the timed window.
    client.submit_encoded(&warm_up).expect("warm-up submit");
    let (warm_s, _) = time_once(|| {
        for p in &sweep_payloads {
            client.submit_encoded(p).expect("warm submit");
        }
    });
    let warm_stats = handle.stats();
    handle.shutdown();

    // --- batched: the sweep submitted concurrently --------------------
    let handle = EmuServer::bind("127.0.0.1:0", server_config(Duration::from_millis(10)))
        .expect("bind")
        .start()
        .expect("start");
    let addr = handle.addr();
    let mut client = EmuClient::connect(addr).expect("connect");
    client.submit_encoded(&warm_up).expect("warm-up submit");
    let (batched_s, batch_sizes) = time_once(|| {
        thread::scope(|scope| {
            let joins: Vec<_> = sweep_payloads
                .iter()
                .map(|p| {
                    scope.spawn(move || {
                        EmuClient::connect(addr)
                            .expect("connect")
                            .submit_encoded(p)
                            .expect("batched submit")
                            .batch_size
                    })
                })
                .collect();
            joins
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect::<Vec<_>>()
        })
    });
    let max_batch = batch_sizes.iter().copied().max().unwrap_or(1);
    handle.shutdown();

    let per = |total: f64| total / requests as f64;
    let rps = |total: f64| requests as f64 / total;
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "mode", "total", "per-request", "req/s", "misses", "hits"
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.1} {:>8} {:>8}",
        "cold-plan",
        fmt_secs(cold_s),
        fmt_secs(per(cold_s)),
        rps(cold_s),
        cold_stats.plan_misses,
        cold_stats.plan_hits
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.1} {:>8} {:>8}",
        "warm-cache",
        fmt_secs(warm_s),
        fmt_secs(per(warm_s)),
        rps(warm_s),
        warm_stats.plan_misses,
        warm_stats.plan_hits
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10.1} {:>8} {:>8}",
        "batched",
        fmt_secs(batched_s),
        fmt_secs(per(batched_s)),
        rps(batched_s),
        "-",
        "-"
    );
    println!();
    println!(
        "warm-cache speedup over cold-plan: {:.2}x  (largest coalesced batch: {max_batch})",
        cold_s / warm_s
    );
}

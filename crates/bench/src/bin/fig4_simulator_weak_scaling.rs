//! **Figure 4**: our simulator vs qHiPSTER-like on the distributed QFT.
//!
//! The paper's point: "our parallel simulator shows a growing advantage as
//! the requirement for communication increases [because it] takes advantage
//! of the structure of gate matrices, allowing e.g. to reduce the
//! communication for diagonal gates such as the conditional phase shift."
//!
//! Executed section: both policies run the same QFT on the virtual cluster;
//! the table shows exchanged bytes and exchange counts (the mechanism) plus
//! wall/modelled times. Modelled section: per-gate communication accounting
//! at paper scale — the specialised simulator exchanges only for Hadamards
//! (and swaps) on global qubits, the generic one for *every* global-target
//! gate.
//!
//! Usage: `cargo run -p qcemu-bench --release --bin fig4_simulator_weak_scaling
//!         [-- --n-local 18 --max-p 8]`

use qcemu_bench::{fmt_secs, header, Args};
use qcemu_cluster::{run_qft_simulation, CommPolicy, MachineModel, BYTES_PER_AMP};
use qcemu_sim::circuits::qft::qft_circuit;
use qcemu_sim::Gate;

/// Counts QFT gates that require an exchange when the top `log2p` qubits
/// are distributed: under the specialised policy only non-diagonal gates
/// (H, and the CNOTs a global SWAP decomposes into); under the generic
/// policy every gate whose target is global.
fn count_exchanges(n: usize, log2p: usize, specialized: bool) -> usize {
    let circuit = qft_circuit(n);
    let n_local = n - log2p;
    let mut exchanges = 0usize;
    for g in circuit.gates() {
        match g {
            Gate::Unary { op, target, .. } => {
                if *target >= n_local {
                    let diagonal = op.is_diagonal();
                    if !specialized || !diagonal {
                        exchanges += 1;
                    }
                }
            }
            Gate::Swap { a, b, .. } => {
                // Decomposed into 3 CNOTs; each with a global participant
                // costs one exchange (both policies: X is not diagonal).
                let globals = usize::from(*a >= n_local) + usize::from(*b >= n_local);
                if globals > 0 {
                    exchanges += 3;
                }
            }
        }
    }
    exchanges
}

fn main() {
    let args = Args::parse();
    let n_local: usize = args.get("n-local").unwrap_or(18);
    let max_p: usize = args.get("max-p").unwrap_or(8);
    let machine = MachineModel::stampede();

    header(
        "Figure 4 — our simulator vs qHiPSTER-like: distributed QFT weak scaling",
        "mechanism: diagonal gates (conditional phase shifts) need no communication",
    );

    println!("[executed] {n_local} local qubits per rank");
    println!(
        "{:>3} {:>3} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "n", "P", "exch(ours)", "exch(qhip)", "bytes(ours)", "bytes(qhip)", "speedup*"
    );
    let mut p = 2usize;
    while p <= max_p {
        let ours = run_qft_simulation(n_local, p, CommPolicy::Specialized, machine);
        let qhip = run_qft_simulation(n_local, p, CommPolicy::Generic, machine);
        let t_ours = ours.max_wall_s + ours.max_sim_comm_s;
        let t_qhip = qhip.max_wall_s + qhip.max_sim_comm_s;
        println!(
            "{:>3} {:>3} {:>10} {:>10} {:>12} {:>12} {:>8.2}x",
            ours.n_qubits,
            p,
            ours.max_exchanges,
            qhip.max_exchanges,
            ours.total_bytes,
            qhip.total_bytes,
            t_qhip / t_ours.max(1e-12),
        );
        p *= 2;
    }
    println!("(*wall + modelled communication; ranks share 2 cores, so compute is noisy)");

    println!();
    println!("[modelled] paper scale: exchange counts x 16N/(B_net*P) per exchange");
    println!(
        "{:>3} {:>4} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "n", "P", "exch(ours)", "exch(qhip)", "Tcomm(ours)", "Tcomm(qhip)", "speedup"
    );
    for n in 28usize..=36 {
        let p = 1usize << (n - 28);
        if p == 1 {
            println!(
                "{:>3} {:>4} {:>10} {:>10} {:>12} {:>12} {:>9}",
                n, p, 0, 0, "-", "-", "1.00x"
            );
            continue;
        }
        let log2p = n - 28;
        let ex_ours = count_exchanges(n, log2p, true);
        let ex_qhip = count_exchanges(n, log2p, false);
        let per_exchange =
            BYTES_PER_AMP * (2f64).powi(n as i32) / (machine.net_bw_per_node * p as f64);
        let compute = machine.t_qft(n as u32, p) - (log2p as f64) * per_exchange;
        let t_ours = compute + ex_ours as f64 * per_exchange;
        let t_qhip = compute + ex_qhip as f64 * per_exchange;
        println!(
            "{:>3} {:>4} {:>10} {:>10} {:>12} {:>12} {:>8.2}x",
            n,
            p,
            ex_ours,
            ex_qhip,
            fmt_secs(t_ours),
            fmt_secs(t_qhip),
            t_qhip / t_ours,
        );
    }
    println!();
    println!("note: the generic simulator pays an exchange for every conditional phase");
    println!("      shift targeting a distributed qubit; ours pays only for Hadamards");
    println!("      and swaps. The advantage therefore grows with P — the paper's");
    println!("      Fig. 4 observation. The communication-avoiding planner goes");
    println!("      further still (qubit remapping + distributed fusion): see the");
    println!("      fig4_remap_ablation bench.");
}
